// memlp::obs — Prometheus text exposition of the metrics registry.
//
// Renders a MetricsRegistry snapshot in the Prometheus text format
// (version 0.0.4): counters as `counter`, gauges as `gauge`, histograms as
// `summary` with quantile-labelled p50/p95/p99 samples plus `_sum`/`_count`
// (and a `_max` gauge, which summaries lack but dashboards want). Metric
// names are sanitized to the Prometheus charset and prefixed `memlp_`, so
// the registry's dotted names ("xbar.solve_seconds") become scrape-ready
// ("memlp_xbar_solve_seconds"). Written one-shot to a `.prom` file
// (`--metrics-out`, MEMLP_METRICS_OUT) for node_exporter's textfile
// collector or `tools/memlp_top`.
#pragma once

#include <string>

namespace memlp::obs {

class MetricsRegistry;

/// `name` mapped to the Prometheus charset ([a-zA-Z0-9_:], prefixed
/// `memlp_`, every other character replaced by '_').
std::string prometheus_metric_name(const std::string& name);

/// The registry's current values as a Prometheus text document.
std::string to_prometheus(const MetricsRegistry& registry);

/// Writes to_prometheus(registry) to `path`; false when the file cannot be
/// opened.
bool write_prometheus(const MetricsRegistry& registry,
                      const std::string& path);

}  // namespace memlp::obs
