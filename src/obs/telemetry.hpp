// memlp::obs — run-wide telemetry facade.
//
// One object tying the observability substrate together for a process:
//   * owns the process uptime epoch the exposition's `process.uptime_seconds`
//     gauge (and memlp_top's solves/sec column) is measured against,
//   * installs the common/contracts.hpp failure hook, so a MEMLP_EXPECT trip
//     anywhere dumps the flight recorder before ContractViolation unwinds,
//   * resolves MEMLP_METRICS_OUT once and exposes `write_metrics()` /
//     `write_metrics_if_configured()` for drivers (memlp_solve, the batch
//     engine, the benches) to snapshot the registry at natural boundaries —
//     "periodic" exposition without a background thread, which the par layer
//     deliberately does not offer.
//
// `Telemetry::global()` is cheap and idempotent; any component that wants
// the failure hook armed just touches it.
#pragma once

#include <string>

#include "common/stopwatch.hpp"

namespace memlp::obs {

class FlightRecorder;
class HealthMonitor;

class Telemetry {
 public:
  /// Seconds since this Telemetry (in practice: the process) started.
  [[nodiscard]] double uptime_s() const { return epoch_.seconds(); }

  /// The global flight recorder / health monitor (convenience accessors).
  [[nodiscard]] FlightRecorder& recorder() const;
  [[nodiscard]] HealthMonitor& health() const;

  /// Destination resolved from MEMLP_METRICS_OUT ("" = none). A `--metrics-out`
  /// flag overrides this via set_metrics_out().
  [[nodiscard]] const std::string& metrics_out() const noexcept {
    return metrics_out_;
  }
  void set_metrics_out(std::string path) { metrics_out_ = std::move(path); }

  /// Snapshots MetricsRegistry::global() to `path` in Prometheus text
  /// format, refreshing the `process.uptime_seconds` gauge first.
  bool write_metrics(const std::string& path) const;

  /// write_metrics(metrics_out()) when a destination is configured; returns
  /// the path written ("" when none).
  std::string write_metrics_if_configured() const;

  /// The process-wide instance. First call arms the contract-failure hook.
  static Telemetry& global();

 private:
  Telemetry();

  Stopwatch epoch_;
  std::string metrics_out_;
};

}  // namespace memlp::obs
