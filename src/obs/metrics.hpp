// memlp::obs — thread-safe metrics registry.
//
// A process-wide registry of named counters and gauges, updated by the
// solvers at solve granularity (one lookup-free atomic add per metric per
// solve — never inside per-iteration hot paths). `snapshot()` exports the
// current values for machine consumption; memlp_solve appends it to the
// trace stream as a final `metrics` event.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace memlp::obs {

class Event;

/// Summary of one histogram's observations. Units are whatever the caller
/// observed (the histogram's name carries the unit suffix by convention,
/// e.g. "xbar.solve_seconds").
struct HistogramStats {
  std::uint64_t count = 0;
  double total = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Capped-reservoir distribution tracker: count/total/max stay exact, the
/// quantiles (nearest-rank p50/p95/p99) come from the first
/// `kMaxSamples` observations. observe() takes one uncontended mutex —
/// record at solve granularity, never inside per-iteration hot paths.
class Histogram {
 public:
  static constexpr std::size_t kMaxSamples = 2048;

  void observe(double value);
  [[nodiscard]] HistogramStats stats() const;
  void reset();

 private:
  mutable std::mutex mutex_;  // memlint:allow(R1): histogram-internal lock
  std::uint64_t count_ = 0;
  double total_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;  ///< capped at kMaxSamples.
};

/// Monotonically increasing counter. add() is lock-free.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value. set() is lock-free.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Named counters/gauges with stable addresses: the reference returned by
/// counter()/gauge() stays valid for the registry's lifetime, so callers may
/// cache it and update lock-free afterwards.
class MetricsRegistry {
 public:
  /// Returns (creating on first use) the counter named `name`.
  Counter& counter(const std::string& name);

  /// Returns (creating on first use) the gauge named `name`.
  Gauge& gauge(const std::string& name);

  /// Returns (creating on first use) the histogram named `name`.
  Histogram& histogram(const std::string& name);

  /// Current values, name-sorted.
  [[nodiscard]] std::map<std::string, std::uint64_t> counter_values() const;
  [[nodiscard]] std::map<std::string, double> gauge_values() const;
  [[nodiscard]] std::map<std::string, HistogramStats> histogram_values() const;

  /// JSON export: {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string snapshot_json() const;

  /// The snapshot as a flat `metrics` trace event (counters then gauges).
  [[nodiscard]] Event snapshot_event() const;

  /// Zeroes every registered metric (tests).
  void reset();

  /// The process-wide registry.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;  // memlint:allow(R1): registry-internal lock
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace memlp::obs
