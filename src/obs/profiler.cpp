#include "obs/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <unordered_map>

#include "common/par.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"

namespace memlp::obs {
namespace {

/// Per-(slot, path) percentile sample cap; count/total/max stay exact.
constexpr std::size_t kMaxSamplesPerPath = 2048;

/// Per-slot raw-span cap in timeline mode (drops are counted).
constexpr std::size_t kMaxTimelinePerSlot = 1 << 18;

std::atomic<Profiler*> g_active{nullptr};

/// One stack frame: where the thread's path string truncates back to on
/// leave, and when the frame opened (profiler-epoch seconds).
struct Frame {
  std::size_t path_len = 0;
  double start_s = 0.0;
};

thread_local std::string t_path;
thread_local std::vector<Frame> t_frames;

// Call-path prefix of the thread that launched the current pooled parallel
// region. Written by the region_begin hook before the job is published and
// read by workers only while executing that job, so the pool's job hand-off
// (and its one-region-at-a-time serialization) orders every access.
std::string g_region_prefix;  // NOLINT(cert-err58-cpp)

// --- par::TimelineHooks bridge ---------------------------------------------

void hook_region_begin(std::size_t, std::size_t) {
  if (Profiler::active() == nullptr) return;
  g_region_prefix = t_path;
}

void hook_region_end(double elapsed_s) {
  Profiler* profiler = Profiler::active();
  if (profiler == nullptr || !profiler->timeline_enabled()) return;
  std::string path =
      g_region_prefix.empty() ? "par.region" : g_region_prefix + "/par.region";
  profiler->record_timeline(std::move(path), par::thread_slot(),
                            profiler->now_s() - elapsed_s, elapsed_s);
}

void hook_chunk(std::size_t slot, std::size_t begin, std::size_t end,
                double elapsed_s) {
  Profiler* profiler = Profiler::active();
  if (profiler == nullptr || !profiler->timeline_enabled()) return;
  std::string path = g_region_prefix.empty() ? std::string("par.chunk")
                                             : g_region_prefix + "/par.chunk";
  path += "[" + std::to_string(begin) + "," + std::to_string(end) + ")";
  profiler->record_timeline(std::move(path), slot,
                            profiler->now_s() - elapsed_s, elapsed_s);
}

constexpr par::TimelineHooks kParHooks{&hook_region_begin, &hook_region_end,
                                       &hook_chunk};

}  // namespace

/// Per-thread recording slot. Each slot is written by (at most) one thread
/// at a time in the common case, but slot sharing past the thread cap and
/// the merge in aggregate() make a lock necessary; contention is nil.
struct Profiler::Slot {
  struct PathAgg {
    std::uint64_t count = 0;
    double total_s = 0.0;
    double max_s = 0.0;
    std::vector<double> samples_s;  ///< capped at kMaxSamplesPerPath.
  };

  std::mutex mutex;  // memlint:allow(R1): profiler slot-internal lock
  std::unordered_map<std::string, PathAgg> paths;
  std::vector<SpanRecord> timeline;
  std::uint64_t timeline_dropped = 0;
};

Profiler::Profiler(bool record_timeline) : record_timeline_(record_timeline) {
  slots_.reserve(par::thread_slot_limit());
  for (std::size_t i = 0; i < par::thread_slot_limit(); ++i)
    slots_.push_back(std::make_unique<Slot>());
}

Profiler::~Profiler() {
  if (active() == this) set_active(nullptr);
}

void Profiler::enter(const char* name) {
  if (t_frames.empty() && par::in_parallel_region() &&
      !g_region_prefix.empty() && t_path.empty()) {
    // Pool worker opening its first frame inside a region: inherit the
    // launching thread's call path so "xbar/solve" nests identically at
    // every thread count (see the header's threading model).
    t_path = g_region_prefix;
  }
  Frame frame;
  frame.path_len = t_path.size();
  frame.start_s = now_s();
  if (!t_path.empty()) t_path += '/';
  t_path += name;
  t_frames.push_back(frame);
}

void Profiler::leave() {
  if (t_frames.empty()) return;
  const Frame frame = t_frames.back();
  t_frames.pop_back();
  const double dur_s = now_s() - frame.start_s;
  record(t_path, frame.start_s, dur_s);
  t_path.resize(frame.path_len);
  // Dropping the outermost frame also drops any inherited region prefix.
  if (t_frames.empty()) t_path.clear();
}

void Profiler::record(const std::string& path, double start_s, double dur_s) {
  Slot& slot = *slots_[par::thread_slot()];
  std::lock_guard<std::mutex> lock(slot.mutex);
  Slot::PathAgg& agg = slot.paths[path];
  agg.count += 1;
  agg.total_s += dur_s;
  agg.max_s = std::max(agg.max_s, dur_s);
  if (agg.samples_s.size() < kMaxSamplesPerPath) agg.samples_s.push_back(dur_s);
  if (record_timeline_) {
    if (slot.timeline.size() < kMaxTimelinePerSlot)
      slot.timeline.push_back({path, par::thread_slot(), start_s, dur_s});
    else
      ++slot.timeline_dropped;
  }
}

void Profiler::record_timeline(std::string path, std::size_t slot_index,
                               double start_s, double dur_s) {
  if (!record_timeline_) return;
  Slot& slot = *slots_[std::min(slot_index, slots_.size() - 1)];
  std::lock_guard<std::mutex> lock(slot.mutex);
  if (slot.timeline.size() < kMaxTimelinePerSlot)
    slot.timeline.push_back({std::move(path), slot_index, start_s, dur_s});
  else
    ++slot.timeline_dropped;
}

std::vector<CallPathStats> Profiler::aggregate() const {
  struct Merged {
    std::uint64_t count = 0;
    double total_s = 0.0;
    double max_s = 0.0;
    std::vector<double> samples_s;
  };
  // Slots merged in increasing index order (the deterministic-merge order
  // of the par contract); the map keeps the result path-sorted.
  std::map<std::string, Merged> merged;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    for (const auto& [path, agg] : slot->paths) {
      Merged& into = merged[path];
      into.count += agg.count;
      into.total_s += agg.total_s;
      into.max_s = std::max(into.max_s, agg.max_s);
      into.samples_s.insert(into.samples_s.end(), agg.samples_s.begin(),
                            agg.samples_s.end());
    }
  }
  std::vector<CallPathStats> out;
  out.reserve(merged.size());
  for (auto& [path, agg] : merged) {
    CallPathStats stats;
    stats.path = path;
    stats.count = agg.count;
    stats.total_s = agg.total_s;
    stats.max_s = agg.max_s;
    std::sort(agg.samples_s.begin(), agg.samples_s.end());
    const auto nearest_rank = [&](double q) {
      if (agg.samples_s.empty()) return 0.0;
      const auto n = static_cast<double>(agg.samples_s.size());
      const auto rank = static_cast<std::size_t>(std::ceil(q * n));
      return agg.samples_s[rank == 0 ? 0 : rank - 1];
    };
    stats.p50_s = nearest_rank(0.50);
    stats.p95_s = nearest_rank(0.95);
    stats.p99_s = nearest_rank(0.99);
    out.push_back(std::move(stats));
  }
  return out;
}

std::vector<SpanRecord> Profiler::timeline() const {
  std::vector<SpanRecord> out;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    out.insert(out.end(), slot->timeline.begin(), slot->timeline.end());
  }
  return out;
}

std::uint64_t Profiler::timeline_dropped() const {
  std::uint64_t dropped = 0;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    dropped += slot->timeline_dropped;
  }
  return dropped;
}

TextTable Profiler::table() const {
  const auto stats = aggregate();
  double root_total_s = 0.0;
  for (const CallPathStats& s : stats)
    if (s.path.find('/') == std::string::npos) root_total_s += s.total_s;
  TextTable table("profile: phase breakdown (per call path)");
  table.set_header({"path", "count", "total [ms]", "p50 [ms]", "p95 [ms]",
                    "p99 [ms]", "max [ms]", "share"});
  for (const CallPathStats& s : stats) {
    const double share =
        root_total_s > 0.0 ? s.total_s / root_total_s : 0.0;
    char share_cell[16];
    std::snprintf(share_cell, sizeof share_cell, "%5.1f%%", share * 100.0);
    table.add_row({s.path, TextTable::num(static_cast<long long>(s.count)),
                   TextTable::num(s.total_s * 1e3, 4),
                   TextTable::num(s.p50_s * 1e3, 4),
                   TextTable::num(s.p95_s * 1e3, 4),
                   TextTable::num(s.p99_s * 1e3, 4),
                   TextTable::num(s.max_s * 1e3, 4), share_cell});
  }
  return table;
}

void Profiler::export_spans(TraceSink& sink) const {
  for (const SpanRecord& span : timeline()) {
    const std::size_t cut = span.path.rfind('/');
    Event event("span");
    event
        .with("name", cut == std::string::npos ? span.path
                                               : span.path.substr(cut + 1))
        .with("path", span.path)
        .with("tid", span.slot)
        .with("ts_us", span.start_s * 1e6)
        .with("dur_us", span.dur_s * 1e6);
    sink.emit(event);
  }
}

bool Profiler::write_chrome_trace(const std::string& path) const {
  ChromeTraceSink sink(path);
  if (!sink.ok()) return false;
  export_spans(sink);
  sink.flush();
  return true;
}

void Profiler::reset() {
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    slot->paths.clear();
    slot->timeline.clear();
    slot->timeline_dropped = 0;
  }
}

std::string Profiler::current_call_path() {
  if (!t_path.empty()) return t_path;
  // Mirror enter()'s inheritance: a pool worker that has not opened a
  // frame yet still attributes to the launching thread's path.
  if (t_frames.empty() && par::in_parallel_region() &&
      !g_region_prefix.empty())
    return g_region_prefix;
  return {};
}

Profiler* Profiler::active() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

void Profiler::set_active(Profiler* profiler) noexcept {
  g_active.store(profiler, std::memory_order_release);
  par::set_timeline_hooks(profiler != nullptr ? &kParHooks : nullptr);
}

}  // namespace memlp::obs
