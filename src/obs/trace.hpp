// memlp::obs — structured solver tracing.
//
// The paper's whole evaluation (§4, Figs. 5–7) is built from per-iteration
// and per-phase quantities: PDIP iteration counts, crossbar write/read
// tallies, latency/energy decomposition. This module is the substrate that
// makes those quantities observable on every solve instead of only inside
// the bench harnesses:
//
//   * TraceSink — an event stream. JSONL (one JSON object per line) and CSV
//     (long format: seq,ts,type,key,value) implementations plus a null sink.
//   * Event — a typed record: a `type` tag plus flat key/value fields.
//   * IterationRecord / SolveSummary — the typed records every solver emits.
//   * PhaseSpan — RAII scoped timer emitting a `phase` event with counter
//     snapshot deltas attached by the caller (e.g. `programming`,
//     `iterations`, `noc_exchange`).
//
// Cost discipline: a solver holds a `TraceSink*` that is nullptr when
// tracing is off, and every instrumentation site checks the pointer before
// building an Event — no allocation, no formatting, no virtual call on the
// untraced hot path. `default_trace_sink()` resolves the process-wide sink
// from MEMLP_TRACE once; options structs can override it programmatically.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

#include "common/stopwatch.hpp"

namespace memlp::obs {

/// One flat field of a trace event.
struct Field {
  std::string key;
  std::variant<std::int64_t, double, bool, std::string> value;
};

/// A typed trace record: a `type` tag plus flat key/value fields.
class Event {
 public:
  explicit Event(std::string type) : type_(std::move(type)) {}

  Event& with(std::string key, double v) {
    fields_.push_back({std::move(key), v});
    return *this;
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Event& with(std::string key, T v) {
    fields_.push_back({std::move(key), static_cast<std::int64_t>(v)});
    return *this;
  }
  Event& with(std::string key, bool v) {
    fields_.push_back({std::move(key), v});
    return *this;
  }
  Event& with(std::string key, std::string v) {
    fields_.push_back({std::move(key), std::move(v)});
    return *this;
  }
  Event& with(std::string key, const char* v) {
    return with(std::move(key), std::string(v));
  }

  [[nodiscard]] const std::string& type() const noexcept { return type_; }
  [[nodiscard]] const std::vector<Field>& fields() const noexcept {
    return fields_;
  }

  /// Looks up a field by key (nullptr when absent).
  [[nodiscard]] const Field* find(std::string_view key) const noexcept;

  /// Numeric value of a field (int64 widened to double); `fallback` when the
  /// field is absent or non-numeric.
  [[nodiscard]] double number(std::string_view key,
                              double fallback = 0.0) const noexcept;

  /// The event as a one-line JSON object: {"type":...,<fields>}.
  [[nodiscard]] std::string to_json() const;

 private:
  std::string type_;
  std::vector<Field> fields_;
};

/// Destination of a trace stream. Implementations must be safe to call from
/// multiple threads.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const Event& event) = 0;
  virtual void flush() {}
};

/// Swallows every event (for call sites that want a non-null sink).
class NullTraceSink final : public TraceSink {
 public:
  void emit(const Event&) override {}
};

/// One JSON object per line; every record gains `seq` (emission index) and
/// `ts` (seconds since the sink was opened).
class JsonlTraceSink final : public TraceSink {
 public:
  /// "-" or "stderr" stream to stderr; any other string is a file path.
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;

  /// False when the file could not be opened (emits become no-ops).
  [[nodiscard]] bool ok() const noexcept { return file_ != nullptr; }

  void emit(const Event& event) override;
  void flush() override;

 private:
  std::FILE* file_ = nullptr;
  bool owned_ = false;
  std::mutex mutex_;  // memlint:allow(R1): sink-internal serialization lock
  Stopwatch clock_;
  std::uint64_t seq_ = 0;
};

/// Long-format CSV: header `seq,ts,type,key,value`, one row per field (one
/// row with an empty key for field-less events).
class CsvTraceSink final : public TraceSink {
 public:
  explicit CsvTraceSink(const std::string& path);
  ~CsvTraceSink() override;

  [[nodiscard]] bool ok() const noexcept { return file_ != nullptr; }

  void emit(const Event& event) override;
  void flush() override;

 private:
  std::FILE* file_ = nullptr;
  std::mutex mutex_;  // memlint:allow(R1): sink-internal serialization lock
  Stopwatch clock_;
  std::uint64_t seq_ = 0;
};

/// Buffers events in memory (tests, and memlp_solve's --convergence table).
class MemoryTraceSink final : public TraceSink {
 public:
  void emit(const Event& event) override;

  /// Snapshot of everything emitted so far.
  [[nodiscard]] std::vector<Event> events() const;

  /// Snapshot filtered by event type.
  [[nodiscard]] std::vector<Event> events_of(std::string_view type) const;

 private:
  mutable std::mutex mutex_;  // memlint:allow(R1): sink-internal lock
  std::vector<Event> events_;
};

/// Fans one stream out to two sinks (either may be nullptr). Emission is
/// serialized by an internal mutex so that concurrent solver threads deliver
/// whole events to both children in the same order.
class TeeTraceSink final : public TraceSink {
 public:
  TeeTraceSink(TraceSink* first, TraceSink* second)
      : first_(first), second_(second) {}
  void emit(const Event& event) override;
  void flush() override;

 private:
  std::mutex mutex_;  // memlint:allow(R1): sink-internal serialization lock
  TraceSink* first_;
  TraceSink* second_;
};

/// Opens a sink for `spec`: "-"/"stderr" → JSONL on stderr, "*.csv" → CSV
/// file, "*.chrome.json" → Chrome trace-event JSON (obs/chrome_trace.hpp),
/// anything else → JSONL file. Returns nullptr when the file cannot be
/// opened.
std::unique_ptr<TraceSink> open_trace_sink(const std::string& spec);

/// The process-wide sink resolved from MEMLP_TRACE, once: unset or falsey →
/// nullptr (tracing off); a truthy token ("1", "true", ...) → JSONL on
/// stderr; anything else is treated as a path per open_trace_sink. Solvers
/// fall back to this when their options carry no explicit sink.
TraceSink* default_trace_sink();

/// Per-iteration solver record. Fields left at kUnset are omitted from the
/// event, so each solver only reports what it actually measures.
struct IterationRecord {
  const char* solver = "";
  std::size_t iteration = 0;  ///< 1-based within the solve (or attempt).
  std::size_t attempt = 0;    ///< 1-based attempt (crossbar solvers; 0 = n/a).
  double mu = kUnset;         ///< centering parameter the step solved with —
                              ///< Eq. (8) δ·gap/size, or σ·µ_mean in
                              ///< predictor-corrector mode.
  double mu_affine = kUnset;  ///< µ after the affine predictor step (PC mode).
  double sigma = kUnset;      ///< Mehrotra centering weight σ (PC mode).
  double primal_inf = kUnset;
  double dual_inf = kUnset;
  double gap = kUnset;        ///< duality gap zᵀx + yᵀw.
  double objective = kUnset;
  double alpha_p = kUnset;    ///< primal step length θ (Eq. 11).
  double alpha_d = kUnset;    ///< dual step length θ (Eq. 11).
  double merit = kUnset;      ///< crossbar solvers' worst relative residual.
  double condition = kUnset;  ///< Newton-system condition estimate.

  static constexpr double kUnset = -1.0;

  [[nodiscard]] Event to_event() const;
};

/// Final record of one solve; extend the event with solver-specific fields
/// before emitting.
struct SolveSummary {
  const char* solver = "";
  std::string status;
  std::size_t iterations = 0;
  double objective = 0.0;
  double wall_seconds = IterationRecord::kUnset;  ///< software solvers only.

  [[nodiscard]] Event to_event() const;
};

/// RAII scoped phase timer. On close (or destruction) emits a `phase` event
/// with the phase name and wall_seconds plus any noted fields; an optional
/// on_close hook lets the caller attach counter snapshot deltas that are
/// only known at the end of the span. When a Profiler is active the span
/// also opens a matching profiler frame (named by the phase), so existing
/// phase instrumentation feeds `--profile` for free. Inert when `sink` is
/// nullptr and no profiler is active.
class PhaseSpan {
 public:
  PhaseSpan(TraceSink* sink, const char* solver, std::string phase);
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;
  ~PhaseSpan() { close(); }

  /// True when a sink is attached — callers use this to skip computing
  /// annotation values on the untraced path.
  [[nodiscard]] bool active() const noexcept { return sink_ != nullptr; }

  template <typename T>
  void note(std::string key, T value) {
    if (sink_ != nullptr) event_.with(std::move(key), value);
  }

  /// Runs `hook` just before the event is emitted (typically to note
  /// counter deltas). No-op when inactive.
  void on_close(std::function<void(PhaseSpan&)> hook);

  /// Emits the phase event now; later calls (and the destructor) are no-ops.
  void close();

 private:
  TraceSink* sink_;
  Event event_;
  Stopwatch timer_;
  std::function<void(PhaseSpan&)> hook_;
  bool profiled_ = false;  ///< a profiler frame was opened for this span.
  bool flight_open_ = true;  ///< the recorder's exit record is still owed.
  char flight_tag_[23] = {};  ///< phase name copy for the exit record.
};

}  // namespace memlp::obs
