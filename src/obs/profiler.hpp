// memlp::obs — hierarchical scoped-span profiler.
//
// The paper's evaluation decomposes solver cost into phases (programming
// vs iterations, §3.5; settles vs writes vs control, §4.4). This module
// makes that decomposition measurable on any run, HPL-style: RAII
// `ProfileSpan`s nest into call paths ("xbar/iterations/settle"), every
// `obs::PhaseSpan` opens a matching profiler frame automatically, and the
// aggregate reports count / total / p50 / p95 / max per call path.
//
// Threading model (the memlp::par contract, docs/parallelism.md):
//   * Each thread owns a span stack (thread-local) and a recording slot
//     indexed by par::thread_slot(); slots are merged in increasing index
//     order, so aggregation is deterministic.
//   * Spans opened inside a pooled parallel region inherit the calling
//     thread's call path as a prefix (the pool serializes regions, so the
//     prefix is unambiguous). A solve that runs under `par` therefore
//     produces the same call paths — and the same counts — at every
//     MEMLP_THREADS value; only the measured durations differ.
//   * Pool worker chunks are additionally recorded as timeline-only spans
//     (via par::TimelineHooks) so Chrome traces show per-thread occupancy;
//     they never enter the aggregate, which keeps it thread-count-invariant.
//
// Cost discipline: `Profiler::active()` is one relaxed atomic load, and an
// inactive ProfileSpan does nothing else. Recording one span is a clock
// read, a thread-local path append, and one per-slot mutex-protected map
// update — cheap at phase/iteration granularity, and never on untimed paths.
//
// The Chrome trace-event exporter rides the TraceSink machinery: spans are
// replayed as `span` events into any sink; `ChromeTraceSink`
// (obs/chrome_trace.hpp) renders them as a chrome://tracing / Perfetto
// JSON document.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/table.hpp"

namespace memlp::obs {

class TraceSink;

/// Aggregated statistics of one call path, e.g. "xbar/iterations/settle".
struct CallPathStats {
  std::string path;
  std::uint64_t count = 0;
  double total_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

/// One raw span occurrence (timeline mode only).
struct SpanRecord {
  std::string path;
  std::size_t slot = 0;  ///< par::thread_slot() of the recording thread.
  double start_s = 0.0;  ///< seconds since the profiler's epoch.
  double dur_s = 0.0;
};

/// Hierarchical scoped-span profiler. Aggregation is always on; pass
/// `record_timeline = true` to additionally keep every raw span (bounded;
/// needed for Chrome trace export).
class Profiler {
 public:
  explicit Profiler(bool record_timeline = false);
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Seconds since this profiler was constructed (the timeline epoch).
  [[nodiscard]] double now_s() const noexcept { return clock_.seconds(); }

  [[nodiscard]] bool timeline_enabled() const noexcept {
    return record_timeline_;
  }

  /// Opens a frame named `name` nested under the calling thread's current
  /// path. Prefer ProfileSpan; PhaseSpan and the par hooks call these.
  void enter(const char* name);

  /// Closes the calling thread's innermost frame and records the span.
  void leave();

  /// Records a timeline-only span (no aggregation): pool worker chunks and
  /// other per-thread occupancy marks. No-op when the timeline is off.
  void record_timeline(std::string path, std::size_t slot, double start_s,
                       double dur_s);

  /// Merged per-call-path statistics: slots merged in increasing index
  /// order, result sorted by path. Counts and paths are identical at every
  /// thread count; durations are wall-clock and vary run to run.
  [[nodiscard]] std::vector<CallPathStats> aggregate() const;

  /// Raw spans (timeline mode), in slot order then per-slot record order.
  [[nodiscard]] std::vector<SpanRecord> timeline() const;

  /// Spans dropped after the per-slot timeline cap was hit.
  [[nodiscard]] std::uint64_t timeline_dropped() const;

  /// The aggregate as the `--profile` phase-breakdown table.
  [[nodiscard]] TextTable table() const;

  /// Replays every timeline span into `sink` as a `span` event with
  /// `name`, `path`, `tid`, `ts_us`, `dur_us` fields (ChromeTraceSink
  /// renders these as "X" slices; any other sink just logs them).
  void export_spans(TraceSink& sink) const;

  /// Writes the timeline as a Chrome trace-event JSON file
  /// (chrome://tracing or https://ui.perfetto.dev). False on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Discards all recorded data (the epoch is kept).
  void reset();

  /// The calling thread's current call path ("" when no frame is open),
  /// with the parallel-region prefix inheritance `enter()` applies: inside
  /// a pooled region a worker with no open frame reports the launching
  /// thread's path. This is how the CostLedger (obs/cost_ledger.hpp)
  /// attributes charges identically at every thread count.
  [[nodiscard]] static std::string current_call_path();

  /// The process-wide profiler (nullptr when profiling is off). Reads are
  /// one relaxed atomic load — safe on hot paths.
  static Profiler* active() noexcept;

  /// Installs `profiler` as the process-wide profiler (nullptr disables)
  /// and wires the par::TimelineHooks bridge. Not thread-safe against
  /// in-flight spans: switch only while no instrumented solve is running.
  static void set_active(Profiler* profiler) noexcept;

 private:
  struct Slot;

  void record(const std::string& path, double start_s, double dur_s);

  bool record_timeline_ = false;
  Stopwatch clock_;
  std::vector<std::unique_ptr<Slot>> slots_;  ///< par::thread_slot_limit().
};

/// RAII scoped profiling span. Inert (one atomic load) when no profiler is
/// active; otherwise opens a frame on construction and records it on
/// destruction.
class ProfileSpan {
 public:
  explicit ProfileSpan(const char* name) : ProfileSpan(Profiler::active(), name) {}
  ProfileSpan(Profiler* profiler, const char* name) : profiler_(profiler) {
    if (profiler_ != nullptr) profiler_->enter(name);
  }
  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;
  ~ProfileSpan() { close(); }

  [[nodiscard]] bool active() const noexcept { return profiler_ != nullptr; }

  /// Records the span now; later calls (and the destructor) are no-ops.
  void close() {
    if (profiler_ == nullptr) return;
    profiler_->leave();
    profiler_ = nullptr;
  }

 private:
  Profiler* profiler_;
};

}  // namespace memlp::obs
