// memlp::obs — solver health monitoring.
//
// The engine's exit conditions already detect pathologies (stall, hard
// divergence, wild jumps); this module turns those detections — plus
// cross-solve patterns the engine cannot see from inside one run (retry
// storms, settle-cache thrash) — into a typed anomaly stream with three
// fan-outs per report: a metrics counter (`health.<solver>.<anomaly>`), a
// flight-recorder record (post-mortem context), and an optional `anomaly`
// trace event on the solve's sink. Per-solver rollups feed `memlp_top`'s
// anomaly column via the Prometheus exposition.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace memlp::obs {

class TraceSink;

/// Anomaly catalogue (docs/observability.md documents each trigger).
enum class Anomaly : std::uint8_t {
  kStall = 0,             ///< iterate frozen / no progress exit.
  kDivergence = 1,        ///< residuals or iterates growing without bound.
  kWildJump = 2,          ///< >100× one-step jump in |x| and |y|.
  kMuOscillation = 3,     ///< µ flip-flopping instead of decreasing.
  kSettleCacheThrash = 4, ///< factor cache refreshing instead of reusing.
  kRetryStorm = 5,        ///< analog solve needing ≥3 attempts.
};

/// Metric/dump name of `anomaly` ("stall", "divergence", ...).
const char* anomaly_name(Anomaly anomaly) noexcept;

/// Process-wide anomaly collector. report() is cheap enough for exit paths
/// (one map insert under an uncontended mutex + one atomic counter add) but
/// must not be called per iteration — detectors aggregate first.
class HealthMonitor {
 public:
  /// Records one anomaly occurrence for `solver`: bumps
  /// `health.<solver>.<anomaly>` in MetricsRegistry::global(), appends a
  /// flight-recorder record (`value`/`iteration` attached), and emits an
  /// `anomaly` trace event when `sink` is non-null.
  void report(Anomaly anomaly, const char* solver, TraceSink* sink = nullptr,
              double value = 0.0, double iteration = 0.0);

  /// Per-solver-kind anomaly counts: solver → anomaly name → count.
  [[nodiscard]] std::map<std::string, std::map<std::string, std::uint64_t>>
  rollup() const;

  /// Total reports across all solvers and kinds.
  [[nodiscard]] std::uint64_t total() const;

  /// Drops all rollup state (tests). Metrics counters are reset separately
  /// via MetricsRegistry::reset().
  void reset();

  /// The process-wide monitor.
  static HealthMonitor& global();

 private:
  mutable std::mutex mutex_;  // memlint:allow(R1): monitor-internal lock
  std::map<std::string, std::map<std::string, std::uint64_t>> counts_;
};

}  // namespace memlp::obs
