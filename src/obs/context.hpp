// memlp::obs — per-solve trace-context propagation.
//
// A serving-style run (engine::solve_batch with mixed solver kinds, or the
// future memlp_serve daemon) interleaves many solves onto one trace stream
// and one metrics registry. `SolveContext` is the identity that makes the
// interleaving attributable: every solve carries {trace_id, solve_id,
// tenant, attempt}, and every sink stamps the active context onto the
// events it writes — so a mixed batch trace can be filtered by `trace_id`
// back to exactly one solve's phase/iteration/cost history.
//
// Propagation model (mirrors obs::Profiler's call-path inheritance,
// docs/parallelism.md):
//   * `ScopedSolveContext` installs a context on the calling thread
//     (thread-local, restored on destruction — nesting is allowed and the
//     innermost context wins).
//   * Pooled parallel regions inherit the launching thread's context: the
//     region-begin hook (par::set_region_begin_hook) snapshots it before
//     the job is published, and a worker with no context of its own reads
//     the snapshot while executing region chunks. Batch items install their
//     own context inside the worker body, so per-item attribution is exact
//     and — like everything else in memlp::par — independent of the thread
//     count (reports and ids are assigned by index, merged in index order).
//   * Minting is deterministic where determinism matters: solve_batch mints
//     one contiguous trace-id block up front on the calling thread (item i
//     gets base + i and solve_id i), so ids are identical at every
//     MEMLP_THREADS value.
//
// Cost discipline: reading the current context is one thread-local load;
// annotation work happens only inside sinks that are already formatting an
// event. With no context installed nothing is stamped — which keeps the
// golden engine traces (core-wrapper solves, no registry) bit-exact.
#pragma once

#include <cstdint>
#include <string>

namespace memlp::obs {

class Event;

/// Identity of one solve inside a run. `trace_id` is unique per solve
/// process-wide (minted from an atomic counter, starting at 1; 0 means "no
/// context"); `solve_id` is the stable position of the solve inside its
/// batch (0 for single solves); `tenant` is the request's attribution tag
/// (empty = unattributed); `attempt` is the 1-based analog retry index
/// (0 = whole-solve scope).
struct SolveContext {
  std::uint64_t trace_id = 0;
  std::uint64_t solve_id = 0;
  std::string tenant;
  std::uint32_t attempt = 0;

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }
};

/// The context governing the calling thread: its own installed context if
/// any, else the launching thread's context when inside a pooled parallel
/// region, else nullptr. The pointer stays valid for the duration of the
/// enclosing ScopedSolveContext / parallel region.
[[nodiscard]] const SolveContext* current_solve_context() noexcept;

/// Reserves `count` consecutive trace ids and returns the first. Ids are
/// process-unique and never 0.
std::uint64_t mint_trace_ids(std::size_t count = 1);

/// Appends `trace_id`/`solve_id` (and `tenant` when non-empty) to `event`
/// iff a context is active on the calling thread. Sinks call this at emit
/// time so instrumentation sites stay context-free.
void annotate_context(Event& event);

/// RAII context installer: installs `context` as the calling thread's
/// current context, restoring the previous one (possibly none) on
/// destruction. Also installs the par region-begin hook on first use so
/// pooled regions launched under a context inherit it.
class ScopedSolveContext {
 public:
  explicit ScopedSolveContext(SolveContext context);
  ScopedSolveContext(const ScopedSolveContext&) = delete;
  ScopedSolveContext& operator=(const ScopedSolveContext&) = delete;
  ~ScopedSolveContext();

  /// The installed context (mutable so drivers can advance `attempt`).
  [[nodiscard]] SolveContext& context() noexcept { return context_; }
  [[nodiscard]] const SolveContext& context() const noexcept {
    return context_;
  }

 private:
  SolveContext context_;
  const SolveContext* previous_;
};

}  // namespace memlp::obs
