#include "obs/trace.hpp"

#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/csv.hpp"
#include "common/json.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/context.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/profiler.hpp"

namespace memlp::obs {
namespace {

std::string field_to_json(const Field& field) {
  struct Visitor {
    std::string operator()(std::int64_t v) const { return json_number(v); }
    std::string operator()(double v) const { return json_number(v); }
    std::string operator()(bool v) const { return v ? "true" : "false"; }
    std::string operator()(const std::string& v) const {
      return json_string(v);
    }
  };
  return json_string(field.key) + ":" + std::visit(Visitor{}, field.value);
}

std::string field_to_csv_value(const Field& field) {
  struct Visitor {
    std::string operator()(std::int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const { return json_number(v); }
    std::string operator()(bool v) const { return v ? "true" : "false"; }
    std::string operator()(const std::string& v) const { return v; }
  };
  return std::visit(Visitor{}, field.value);
}

}  // namespace

const Field* Event::find(std::string_view key) const noexcept {
  for (const Field& field : fields_)
    if (field.key == key) return &field;
  return nullptr;
}

double Event::number(std::string_view key, double fallback) const noexcept {
  const Field* field = find(key);
  if (field == nullptr) return fallback;
  if (const auto* d = std::get_if<double>(&field->value)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&field->value))
    return static_cast<double>(*i);
  return fallback;
}

std::string Event::to_json() const {
  std::string out = "{\"type\":" + json_string(type_);
  for (const Field& field : fields_) out += "," + field_to_json(field);
  out += "}";
  return out;
}

// --- JsonlTraceSink ---------------------------------------------------------

JsonlTraceSink::JsonlTraceSink(const std::string& path) {
  if (path == "-" || path == "stderr") {
    file_ = stderr;
  } else {
    file_ = std::fopen(path.c_str(), "w");
    owned_ = true;
  }
}

JsonlTraceSink::~JsonlTraceSink() {
  if (file_ != nullptr && owned_) std::fclose(file_);
}

void JsonlTraceSink::emit(const Event& event) {
  if (file_ == nullptr) return;
  // Stamp seq/ts ahead of the payload so every line is self-describing.
  std::string line = "{\"type\":" + json_string(event.type());
  // Context fields are stamped by the sink, not the instrumentation site, so
  // the same solver code yields context-free lines outside a SolveContext
  // (keeping the engine golden traces bit-exact) and attributable lines
  // inside one.
  if (const SolveContext* context = current_solve_context();
      context != nullptr && context->valid()) {
    line += ",\"trace_id\":" + std::to_string(context->trace_id);
    line += ",\"solve_id\":" + std::to_string(context->solve_id);
    if (!context->tenant.empty())
      line += ",\"tenant\":" + json_string(context->tenant);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  line += ",\"seq\":" + std::to_string(seq_++);
  line += ",\"ts\":" + json_number(clock_.seconds());
  for (const Field& field : event.fields()) line += "," + field_to_json(field);
  line += "}\n";
  std::fputs(line.c_str(), file_);
}

void JsonlTraceSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fflush(file_);
}

// --- CsvTraceSink -----------------------------------------------------------

CsvTraceSink::CsvTraceSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ != nullptr) std::fputs("seq,ts,type,key,value\n", file_);
}

CsvTraceSink::~CsvTraceSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvTraceSink::emit(const Event& event) {
  if (file_ == nullptr) return;
  const SolveContext* context = current_solve_context();
  if (context != nullptr && !context->valid()) context = nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string prefix = std::to_string(seq_++) + "," +
                             json_number(clock_.seconds()) + "," +
                             csv_escape(event.type()) + ",";
  // Long format: the active context becomes ordinary key/value rows of the
  // same event (same seq), present only when a context is installed.
  if (context != nullptr) {
    std::fputs(
        (prefix + "trace_id," + std::to_string(context->trace_id) + "\n")
            .c_str(),
        file_);
    std::fputs(
        (prefix + "solve_id," + std::to_string(context->solve_id) + "\n")
            .c_str(),
        file_);
    if (!context->tenant.empty())
      std::fputs(
          (prefix + "tenant," + csv_escape(context->tenant) + "\n").c_str(),
          file_);
  }
  if (event.fields().empty()) {
    if (context == nullptr) std::fputs((prefix + ",\n").c_str(), file_);
    return;
  }
  for (const Field& field : event.fields()) {
    const std::string line = prefix + csv_escape(field.key) + "," +
                             csv_escape(field_to_csv_value(field)) + "\n";
    std::fputs(line.c_str(), file_);
  }
}

void CsvTraceSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fflush(file_);
}

// --- MemoryTraceSink --------------------------------------------------------

void MemoryTraceSink::emit(const Event& event) {
  // Stored copies carry the emitting thread's context (when one is active),
  // mirroring what the streaming sinks stamp on their lines — tests filter
  // events() by trace_id exactly like a JSONL consumer would.
  Event annotated = event;
  annotate_context(annotated);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(annotated));
}

std::vector<Event> MemoryTraceSink::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::vector<Event> MemoryTraceSink::events_of(std::string_view type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  for (const Event& event : events_)
    if (event.type() == type) out.push_back(event);
  return out;
}

// --- TeeTraceSink -----------------------------------------------------------

void TeeTraceSink::emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (first_ != nullptr) first_->emit(event);
  if (second_ != nullptr) second_->emit(event);
}

void TeeTraceSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (first_ != nullptr) first_->flush();
  if (second_ != nullptr) second_->flush();
}

// --- factories --------------------------------------------------------------

std::unique_ptr<TraceSink> open_trace_sink(const std::string& spec) {
  if (spec.size() >= 4 && spec.compare(spec.size() - 4, 4, ".csv") == 0) {
    auto sink = std::make_unique<CsvTraceSink>(spec);
    if (!sink->ok()) return nullptr;
    return sink;
  }
  constexpr std::string_view kChrome = ".chrome.json";
  if (spec.size() >= kChrome.size() &&
      spec.compare(spec.size() - kChrome.size(), kChrome.size(), kChrome) ==
          0) {
    auto sink = std::make_unique<ChromeTraceSink>(spec);
    if (!sink->ok()) return nullptr;
    return sink;
  }
  auto sink = std::make_unique<JsonlTraceSink>(spec);
  if (!sink->ok()) return nullptr;
  return sink;
}

TraceSink* default_trace_sink() {
  // Resolved once per process; the unique_ptr keeps the sink alive for the
  // program's lifetime (stream destinations flush on exit via fclose).
  static const std::unique_ptr<TraceSink> sink =
      []() -> std::unique_ptr<TraceSink> {
    const char* raw = std::getenv("MEMLP_TRACE");
    if (raw == nullptr || *raw == 0) return nullptr;
    const std::string value(raw);
    if (value == "0" || value == "false" || value == "no" || value == "off")
      return nullptr;
    if (value == "1" || value == "true" || value == "yes" || value == "on")
      return std::make_unique<JsonlTraceSink>("stderr");
    return open_trace_sink(value);
  }();
  return sink.get();
}

// --- typed records ----------------------------------------------------------

namespace {

void with_if_set(Event& event, const char* key, double value) {
  if (value != IterationRecord::kUnset) event.with(key, value);
}

}  // namespace

Event IterationRecord::to_event() const {
  Event event("iteration");
  event.with("solver", solver).with("iteration", iteration);
  if (attempt != 0) event.with("attempt", attempt);
  with_if_set(event, "mu", mu);
  with_if_set(event, "mu_affine", mu_affine);
  with_if_set(event, "sigma", sigma);
  with_if_set(event, "primal_inf", primal_inf);
  with_if_set(event, "dual_inf", dual_inf);
  with_if_set(event, "gap", gap);
  with_if_set(event, "objective", objective);
  with_if_set(event, "alpha_p", alpha_p);
  with_if_set(event, "alpha_d", alpha_d);
  with_if_set(event, "merit", merit);
  with_if_set(event, "condition", condition);
  return event;
}

Event SolveSummary::to_event() const {
  Event event("solve_summary");
  event.with("solver", solver)
      .with("status", status)
      .with("iterations", iterations)
      .with("objective", objective);
  with_if_set(event, "wall_seconds", wall_seconds);
  return event;
}

// --- PhaseSpan --------------------------------------------------------------

PhaseSpan::PhaseSpan(TraceSink* sink, const char* solver, std::string phase)
    : sink_(sink), event_("phase") {
  // The flight recorder sees every span, traced or not — phase transitions
  // are the skeleton a post-mortem dump hangs everything else on.
  flight_record(FlightEventKind::kPhaseEnter, phase.c_str());
  std::strncpy(flight_tag_, phase.c_str(), sizeof(flight_tag_) - 1);
  // Open the profiler frame first: the phase string is moved into the event
  // below, and the profiler needs it by name.
  if (Profiler* profiler = Profiler::active()) {
    profiler->enter(phase.c_str());
    profiled_ = true;
  }
  if (sink_ != nullptr)
    event_.with("solver", solver).with("phase", std::move(phase));
}

void PhaseSpan::on_close(std::function<void(PhaseSpan&)> hook) {
  if (sink_ != nullptr) hook_ = std::move(hook);
}

void PhaseSpan::close() {
  if (flight_open_) {
    flight_open_ = false;
    flight_record(FlightEventKind::kPhaseExit, flight_tag_, timer_.seconds());
  }
  if (profiled_) {
    profiled_ = false;
    // The profiler that opened the frame is still active by contract
    // (set_active is documented as unsafe against in-flight spans).
    if (Profiler* profiler = Profiler::active()) profiler->leave();
  }
  if (sink_ == nullptr) return;
  if (hook_) hook_(*this);
  event_.with("wall_seconds", timer_.seconds());
  TraceSink* sink = sink_;
  sink_ = nullptr;  // before emit: the hook must not re-enter close().
  sink->emit(event_);
}

}  // namespace memlp::obs
