#include "obs/cost_ledger.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>

#include "common/par.hpp"
#include "obs/context.hpp"
#include "obs/profiler.hpp"

namespace memlp::obs {
namespace {

/// Per-slot raw-charge cap in timeline mode (drops are counted).
constexpr std::size_t kMaxTimelinePerSlot = 1 << 18;

std::atomic<CostLedger*> g_active{nullptr};

}  // namespace

/// Per-thread recording slot; same locking rationale as Profiler::Slot
/// (slot sharing past the thread cap and the merge in tree() need a lock,
/// contention is nil).
struct CostLedger::Slot {
  std::mutex mutex;  // memlint:allow(R1): ledger slot-internal lock
  std::unordered_map<std::string, CostCounters> paths;
  std::vector<CostSample> timeline;
  std::uint64_t timeline_dropped = 0;
};

CostLedger::CostLedger(bool record_timeline)
    : record_timeline_(record_timeline) {
  slots_.reserve(par::thread_slot_limit());
  for (std::size_t i = 0; i < par::thread_slot_limit(); ++i)
    slots_.push_back(std::make_unique<Slot>());
}

CostLedger::~CostLedger() {
  if (active() == this) set_active(nullptr);
}

void CostLedger::charge(const CostCounters& amount) {
  if (amount.zero()) return;
  // Resolve the call path exactly as Profiler::enter would nest a frame:
  // a pool worker inherits the launching thread's path, so attributions
  // are thread-count-invariant (see the header's determinism notes).
  std::string path = Profiler::current_call_path();
  if (path.empty()) path = kUnattributed;
  Slot& slot = *slots_[par::thread_slot()];
  std::lock_guard<std::mutex> lock(slot.mutex);
  slot.paths[path] += amount;
  if (record_timeline_) {
    if (slot.timeline.size() < kMaxTimelinePerSlot) {
      Profiler* profiler = Profiler::active();
      const double ts_s =
          profiler != nullptr ? profiler->now_s() : clock_.seconds();
      CostSample sample{std::move(path), ts_s, 0, 0, amount};
      if (const SolveContext* context = current_solve_context();
          context != nullptr && context->valid()) {
        sample.trace_id = context->trace_id;
        sample.solve_id = context->solve_id;
      }
      slot.timeline.push_back(std::move(sample));
    } else {
      ++slot.timeline_dropped;
    }
  }
}

CostTree CostLedger::tree() const {
  // Slots merged in increasing index order (the deterministic-merge order
  // of the par contract); integer sums make the order immaterial, but the
  // convention matches Profiler::aggregate.
  CostTree merged;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    for (const auto& [path, counters] : slot->paths) merged[path] += counters;
  }
  return merged;
}

CostCounters CostLedger::total() const {
  CostCounters sum;
  for (const auto& [path, counters] : tree()) sum += counters;
  return sum;
}

std::vector<CostSample> CostLedger::timeline() const {
  std::vector<CostSample> out;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    out.insert(out.end(), slot->timeline.begin(), slot->timeline.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CostSample& a, const CostSample& b) {
                     return a.ts_s < b.ts_s;
                   });
  return out;
}

std::uint64_t CostLedger::timeline_dropped() const {
  std::uint64_t dropped = 0;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    dropped += slot->timeline_dropped;
  }
  return dropped;
}

void CostLedger::reset() {
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    slot->paths.clear();
    slot->timeline.clear();
    slot->timeline_dropped = 0;
  }
}

CostLedger* CostLedger::active() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

void CostLedger::set_active(CostLedger* ledger) noexcept {
  g_active.store(ledger, std::memory_order_release);
}

}  // namespace memlp::obs
