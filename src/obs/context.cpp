#include "obs/context.hpp"

#include <atomic>
#include <cstddef>
#include <utility>

#include "common/par.hpp"
#include "obs/trace.hpp"

namespace memlp::obs {
namespace {

thread_local const SolveContext* t_context = nullptr;

// Snapshot of the launching thread's context for the one in-flight pooled
// region. Written by the region-begin hook before the job is published and
// read by workers executing that job's chunks; the pool's job hand-off
// (and its one-region-at-a-time serialization) orders every access — the
// same argument that makes the profiler's g_region_prefix safe.
SolveContext g_region_context;     // NOLINT(cert-err58-cpp)
bool g_region_context_valid = false;

void capture_region_context() noexcept {
  if (t_context != nullptr) {
    g_region_context = *t_context;
    g_region_context_valid = true;
  } else {
    g_region_context_valid = false;
  }
}

void ensure_region_hook_installed() {
  static const bool installed = [] {
    par::set_region_begin_hook(&capture_region_context);
    return true;
  }();
  (void)installed;
}

}  // namespace

const SolveContext* current_solve_context() noexcept {
  if (t_context != nullptr) return t_context;
  if (par::in_parallel_region() && g_region_context_valid)
    return &g_region_context;
  return nullptr;
}

std::uint64_t mint_trace_ids(std::size_t count) {
  static std::atomic<std::uint64_t> next{1};
  if (count == 0) count = 1;
  return next.fetch_add(count, std::memory_order_relaxed);
}

void annotate_context(Event& event) {
  const SolveContext* context = current_solve_context();
  if (context == nullptr || !context->valid()) return;
  event.with("trace_id", context->trace_id);
  event.with("solve_id", context->solve_id);
  if (!context->tenant.empty()) event.with("tenant", context->tenant);
}

ScopedSolveContext::ScopedSolveContext(SolveContext context)
    : context_(std::move(context)), previous_(t_context) {
  ensure_region_hook_installed();
  t_context = &context_;
}

ScopedSolveContext::~ScopedSolveContext() { t_context = previous_; }

}  // namespace memlp::obs
