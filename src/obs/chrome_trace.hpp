// memlp::obs — Chrome trace-event JSON sink.
//
// Renders a trace stream as a chrome://tracing / Perfetto
// (https://ui.perfetto.dev) document: `span` events (as produced by
// Profiler::export_spans) become complete "X" slices on their recording
// thread's track, and every other event type becomes an instant "i" mark
// with its fields attached as args. This rides the TraceSink interface, so
// it can also sit behind TeeTraceSink next to a JSONL stream.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "common/stopwatch.hpp"
#include "obs/trace.hpp"

namespace memlp::obs {

/// TraceSink writing the Chrome trace-event JSON object format:
///   {"traceEvents":[...],"displayTimeUnit":"ms"}
/// The document is completed when the sink is destroyed (or on the first
/// flush after the last emit — flush() only flushes the stream; the closing
/// bracket is written by the destructor).
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;

  /// False when the file could not be opened (emits become no-ops).
  [[nodiscard]] bool ok() const noexcept { return file_ != nullptr; }

  void emit(const Event& event) override;
  void flush() override;

 private:
  std::FILE* file_ = nullptr;
  std::mutex mutex_;  // memlint:allow(R1): sink-internal serialization lock
  Stopwatch clock_;
  std::uint64_t emitted_ = 0;
};

}  // namespace memlp::obs
