#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/json.hpp"
#include "common/par.hpp"
#include "obs/context.hpp"

namespace memlp::obs {
namespace {

/// Dump names of the kind-specific a/b/c values (nullptr = omit the value).
struct KindSchema {
  const char* name;
  const char* a;
  const char* b;
  const char* c;
};

KindSchema kind_schema(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kPhaseEnter:
      return {"phase_enter", nullptr, nullptr, nullptr};
    case FlightEventKind::kPhaseExit:
      return {"phase_exit", "wall_seconds", nullptr, nullptr};
    case FlightEventKind::kIteration:
      return {"iteration", "iteration", "mu", "merit"};
    case FlightEventKind::kRetry:
      return {"retry", "attempt", "code", nullptr};
    case FlightEventKind::kCacheRefresh:
      return {"cache_refresh", "full_factorizations", nullptr, nullptr};
    case FlightEventKind::kAnomaly:
      return {"anomaly", "value", "iteration", nullptr};
    case FlightEventKind::kSolveEnd:
      return {"solve_end", "iterations", "optimal", nullptr};
    case FlightEventKind::kMark:
      return {"mark", "a", "b", "c"};
  }
  return {"unknown", "a", "b", "c"};
}

}  // namespace

const char* flight_kind_name(FlightEventKind kind) noexcept {
  return kind_schema(kind).name;
}

/// Per-thread ring; the mutex is uncontended in steady state (only snapshot
/// and slot sharing past the thread cap contend with the owning thread).
struct FlightRecorder::Slot {
  std::mutex mutex;  // memlint:allow(R1): recorder slot-internal lock
  std::vector<FlightRecord> ring;  ///< reserved in full on first record.
  std::uint64_t written = 0;       ///< total records; ring[written % cap].
};

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::FlightRecorder(std::size_t capacity_per_thread)
    : capacity_(std::max<std::size_t>(capacity_per_thread, 1)) {
  slots_.reserve(par::thread_slot_limit());
  for (std::size_t i = 0; i < par::thread_slot_limit(); ++i)
    slots_.push_back(std::make_unique<Slot>());
}

void FlightRecorder::record(FlightEventKind kind, const char* tag, double a,
                            double b, double c) noexcept {
  FlightRecord rec;
  rec.ts_s = clock_.seconds();
  rec.kind = kind;
  rec.a = a;
  rec.b = b;
  rec.c = c;
  if (tag != nullptr) {
    std::strncpy(rec.tag, tag, sizeof(rec.tag) - 1);
    rec.tag[sizeof(rec.tag) - 1] = 0;
  }
  if (const SolveContext* context = current_solve_context();
      context != nullptr && context->valid()) {
    rec.trace_id = context->trace_id;
    rec.solve_id = context->solve_id;
  }
  Slot& slot = *slots_[par::thread_slot()];
  std::lock_guard<std::mutex> lock(slot.mutex);
  if (slot.ring.capacity() == 0) slot.ring.reserve(capacity_);
  if (slot.ring.size() < capacity_) {
    slot.ring.push_back(rec);
  } else {
    slot.ring[slot.written % capacity_] = rec;
  }
  ++slot.written;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    out.insert(out.end(), slot->ring.begin(), slot->ring.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightRecord& a, const FlightRecord& b) {
                     return a.ts_s < b.ts_s;
                   });
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  std::uint64_t total = 0;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    total += slot->written;
  }
  return total;
}

void FlightRecorder::reset() {
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    slot->ring.clear();
    slot->written = 0;
  }
}

bool FlightRecorder::dump_to(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  for (const FlightRecord& rec : snapshot()) {
    const KindSchema schema = kind_schema(rec.kind);
    std::string line = "{\"ts\":" + json_number(rec.ts_s);
    line += ",\"kind\":" + json_string(schema.name);
    if (rec.tag[0] != 0) line += ",\"tag\":" + json_string(rec.tag);
    if (rec.trace_id != 0) {
      line += ",\"trace_id\":" + std::to_string(rec.trace_id);
      line += ",\"solve_id\":" + std::to_string(rec.solve_id);
    }
    if (schema.a != nullptr)
      line += ",\"" + std::string(schema.a) + "\":" + json_number(rec.a);
    if (schema.b != nullptr)
      line += ",\"" + std::string(schema.b) + "\":" + json_number(rec.b);
    if (schema.c != nullptr)
      line += ",\"" + std::string(schema.c) + "\":" + json_number(rec.c);
    line += "}\n";
    std::fputs(line.c_str(), file);
  }
  std::fclose(file);
  return true;
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void flight_record(FlightEventKind kind, const char* tag, double a, double b,
                   double c) noexcept {
  FlightRecorder::global().record(kind, tag, a, b, c);
}

std::string flight_dump_path() {
  const char* raw = std::getenv("MEMLP_FLIGHT_DUMP");
  if (raw == nullptr || *raw == 0) return "memlp_flight.jsonl";
  const std::string value(raw);
  if (value == "0" || value == "false" || value == "no" || value == "off")
    return "";
  return value;
}

std::string flight_dump_on_failure(const char* reason) noexcept {
  // One dump per process: the first failure is the root cause, and later
  // failures (often cascades of the first) must not overwrite its evidence.
  static std::atomic<bool> dumped{false};
  try {
    const std::string path = flight_dump_path();
    if (path.empty()) return "";
    FlightRecorder& recorder = FlightRecorder::global();
    if (recorder.recorded() == 0) return "";
    if (dumped.exchange(true, std::memory_order_acq_rel)) return "";
    recorder.record(FlightEventKind::kMark,
                    reason != nullptr ? reason : "failure");
    if (!recorder.dump_to(path)) return "";
    return path;
  } catch (...) {
    return "";  // never let a post-mortem dump mask the original failure.
  }
}

}  // namespace memlp::obs
