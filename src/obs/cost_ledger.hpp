// memlp::obs — hierarchical cost-attribution ledger.
//
// The paper's headline claim is energy efficiency, but `HardwareStats` only
// reports end-of-solve totals. The ledger attributes every analog hardware
// event (write pulses, settles, summing-amp ops, NoC hops) and every digital
// kernel (flops/bytes in memlp::linalg) to the currently-open `Profiler`
// call path, so a solve yields a phase×component cost tree, e.g.
// `xbar/iterations/settle → {settles, flops, bytes, ...}`. The counters are
// priced into joules/seconds by `perf::HardwareModel` at export time
// (src/perf/cost_tree.hpp).
//
// Determinism (the memlp::par contract, docs/parallelism.md):
//   * The ledger stores ONLY integer operation counters per call path.
//     Integer sums are associative, so merging per-thread slots in
//     increasing index order yields bit-identical trees at every
//     MEMLP_THREADS value; floating-point pricing happens once, on the
//     already-merged totals.
//   * Charge sites resolve their call path through
//     `Profiler::current_call_path()`, which applies the same
//     parallel-region prefix inheritance as `Profiler::enter`, so a charge
//     made from a pool worker lands on the same path as it would on the
//     launching thread.
//
// Cost discipline: `CostLedger::charge()` with no active ledger is one
// relaxed atomic load. Charge sites batch: a crossbar program() charges its
// full cell/pulse delta once, an LU factorization charges its closed-form
// flop count once — never per cell or per multiply-accumulate.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"

namespace memlp::obs {

/// Integer operation counters attributed to one call path. Analog counters
/// mirror the operands of `perf::HardwareModel::price`; `flops`/`bytes`
/// count digital linear-algebra work and are reported unpriced.
struct CostCounters {
  std::uint64_t settles = 0;        ///< analog MVM/solve/global settles.
  std::uint64_t cells_written = 0;  ///< memristor cells programmed.
  std::uint64_t write_pulses = 0;   ///< programming pulses issued.
  std::uint64_t amp_vector_ops = 0;   ///< summing-amp bank vector ops.
  std::uint64_t amp_element_ops = 0;  ///< summing-amp per-element ops.
  std::uint64_t noc_value_hops = 0;   ///< Σ (segment length × hop count).
  std::uint64_t controller_iterations = 0;  ///< CMOS controller iterations.
  std::uint64_t flops = 0;  ///< digital floating-point operations.
  std::uint64_t bytes = 0;  ///< digital memory traffic (estimated).

  CostCounters& operator+=(const CostCounters& other) noexcept {
    settles += other.settles;
    cells_written += other.cells_written;
    write_pulses += other.write_pulses;
    amp_vector_ops += other.amp_vector_ops;
    amp_element_ops += other.amp_element_ops;
    noc_value_hops += other.noc_value_hops;
    controller_iterations += other.controller_iterations;
    flops += other.flops;
    bytes += other.bytes;
    return *this;
  }

  /// Counter-wise difference (for monotonic-snapshot diffs).
  [[nodiscard]] CostCounters since(const CostCounters& earlier) const noexcept {
    return {settles - earlier.settles,
            cells_written - earlier.cells_written,
            write_pulses - earlier.write_pulses,
            amp_vector_ops - earlier.amp_vector_ops,
            amp_element_ops - earlier.amp_element_ops,
            noc_value_hops - earlier.noc_value_hops,
            controller_iterations - earlier.controller_iterations,
            flops - earlier.flops,
            bytes - earlier.bytes};
  }

  [[nodiscard]] bool zero() const noexcept {
    return settles == 0 && cells_written == 0 && write_pulses == 0 &&
           amp_vector_ops == 0 && amp_element_ops == 0 &&
           noc_value_hops == 0 && controller_iterations == 0 && flops == 0 &&
           bytes == 0;
  }

  friend bool operator==(const CostCounters& a,
                         const CostCounters& b) noexcept {
    return a.settles == b.settles && a.cells_written == b.cells_written &&
           a.write_pulses == b.write_pulses &&
           a.amp_vector_ops == b.amp_vector_ops &&
           a.amp_element_ops == b.amp_element_ops &&
           a.noc_value_hops == b.noc_value_hops &&
           a.controller_iterations == b.controller_iterations &&
           a.flops == b.flops && a.bytes == b.bytes;
  }
  friend bool operator!=(const CostCounters& a,
                         const CostCounters& b) noexcept {
    return !(a == b);
  }
};

/// The merged ledger: call path → integer counters, path-sorted. The map
/// holds only paths that received at least one non-zero charge.
using CostTree = std::map<std::string, CostCounters>;

/// One raw charge occurrence (timeline mode only; Chrome counter tracks).
/// `trace_id`/`solve_id` carry the solve context active at the charge site
/// (0 when none), so a mixed-batch cost timeline slices per solve.
struct CostSample {
  std::string path;
  double ts_s = 0.0;  ///< seconds since the profiler epoch (or the
                      ///< ledger's own clock when no profiler is active).
  std::uint64_t trace_id = 0;
  std::uint64_t solve_id = 0;
  CostCounters delta;
};

/// Hierarchical cost ledger. Aggregation is always on; pass
/// `record_timeline = true` to additionally keep every raw charge
/// (bounded; needed for Chrome counter-track export).
class CostLedger {
 public:
  /// Path charged when no profiler frame is open at the charge site.
  static constexpr const char* kUnattributed = "unattributed";

  explicit CostLedger(bool record_timeline = false);
  ~CostLedger();
  CostLedger(const CostLedger&) = delete;
  CostLedger& operator=(const CostLedger&) = delete;

  /// Adds `amount` to the calling thread's current profiler call path
  /// (kUnattributed when none is open). Zero amounts are dropped.
  void charge(const CostCounters& amount);

  /// Merged call-path → counters tree: per-thread slots merged in
  /// increasing index order, result path-sorted. Bit-identical at every
  /// thread count (integer counters only).
  [[nodiscard]] CostTree tree() const;

  /// Column-wise total over the whole tree.
  [[nodiscard]] CostCounters total() const;

  /// Raw charges (timeline mode), merged across slots and sorted by
  /// timestamp. Order among equal timestamps follows slot index.
  [[nodiscard]] std::vector<CostSample> timeline() const;

  [[nodiscard]] bool timeline_enabled() const noexcept {
    return record_timeline_;
  }

  /// Charges dropped after the per-slot timeline cap was hit.
  [[nodiscard]] std::uint64_t timeline_dropped() const;

  /// Discards all recorded data.
  void reset();

  /// The process-wide ledger (nullptr when cost accounting is off). Reads
  /// are one relaxed atomic load — safe on hot paths.
  static CostLedger* active() noexcept;

  /// Installs `ledger` as the process-wide ledger (nullptr disables). Not
  /// thread-safe against in-flight charges: switch only while no
  /// instrumented solve is running.
  static void set_active(CostLedger* ledger) noexcept;

  /// Charges the active ledger, if any: the one-liner for charge sites.
  static void charge_active(const CostCounters& amount) {
    if (CostLedger* ledger = active()) ledger->charge(amount);
  }

 private:
  struct Slot;

  bool record_timeline_ = false;
  Stopwatch clock_;
  std::vector<std::unique_ptr<Slot>> slots_;  ///< par::thread_slot_limit().
};

}  // namespace memlp::obs
