#include "obs/chrome_trace.hpp"

#include <variant>

#include "common/json.hpp"
#include "obs/context.hpp"

namespace memlp::obs {
namespace {

std::string field_value_json(const Field& field) {
  struct Visitor {
    std::string operator()(std::int64_t v) const { return json_number(v); }
    std::string operator()(double v) const { return json_number(v); }
    std::string operator()(bool v) const { return v ? "true" : "false"; }
    std::string operator()(const std::string& v) const {
      return json_string(v);
    }
  };
  return std::visit(Visitor{}, field.value);
}

}  // namespace

ChromeTraceSink::ChromeTraceSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ != nullptr)
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", file_);
}

ChromeTraceSink::~ChromeTraceSink() {
  if (file_ == nullptr) return;
  std::fputs("\n]}\n", file_);
  std::fclose(file_);
}

void ChromeTraceSink::emit(const Event& event) {
  if (file_ == nullptr) return;
  // `span` events carry their own clock (profiler epoch); everything else is
  // stamped with this sink's clock as an instant mark.
  std::string record = "{";
  std::string args;
  if (event.type() == "counter") {
    // Cost-ledger counter tracks: same clock as spans (profiler epoch).
    const Field* name = event.find("name");
    const std::string label =
        name != nullptr && std::holds_alternative<std::string>(name->value)
            ? std::get<std::string>(name->value)
            : std::string("counter");
    record += "\"name\":" + json_string(label);
    record += ",\"cat\":\"counter\",\"ph\":\"C\"";
    record += ",\"ts\":" + json_number(event.number("ts_us"));
    record += ",\"pid\":0";
    args = "\"value\":" + json_number(event.number("value"));
  } else if (event.type() == "span") {
    const Field* name = event.find("name");
    const std::string label =
        name != nullptr && std::holds_alternative<std::string>(name->value)
            ? std::get<std::string>(name->value)
            : std::string("span");
    record += "\"name\":" + json_string(label);
    record += ",\"cat\":\"span\",\"ph\":\"X\"";
    record += ",\"ts\":" + json_number(event.number("ts_us"));
    record += ",\"dur\":" + json_number(event.number("dur_us"));
    record += ",\"pid\":0,\"tid\":" +
              json_number(static_cast<std::int64_t>(event.number("tid")));
    if (const Field* path = event.find("path"))
      args = "\"path\":" + field_value_json(*path);
  } else {
    record += "\"name\":" + json_string(event.type());
    record += ",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"g\"";
    record += ",\"ts\":" + json_number(clock_.seconds() * 1e6);
    record += ",\"pid\":0,\"tid\":0";
    // Instant marks carry the active solve context as args, so a Perfetto
    // query can slice a mixed-batch trace down to one trace_id.
    if (const SolveContext* context = current_solve_context();
        context != nullptr && context->valid()) {
      args += "\"trace_id\":" + json_number(
                  static_cast<std::int64_t>(context->trace_id));
      args += ",\"solve_id\":" + json_number(
                  static_cast<std::int64_t>(context->solve_id));
      if (!context->tenant.empty())
        args += ",\"tenant\":" + json_string(context->tenant);
    }
    for (const Field& field : event.fields()) {
      if (!args.empty()) args += ",";
      args += json_string(field.key) + ":" + field_value_json(field);
    }
  }
  record += ",\"args\":{" + args + "}}";
  std::lock_guard<std::mutex> lock(mutex_);
  if (emitted_++ > 0) std::fputs(",\n", file_);
  std::fputs(record.c_str(), file_);
}

void ChromeTraceSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fflush(file_);
}

}  // namespace memlp::obs
