#include "obs/exposition.hpp"

#include <cstdio>

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace memlp::obs {
namespace {

bool prometheus_name_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Prometheus sample values: json_number already renders doubles
/// round-trippably and integers without an exponent, both valid here.
std::string prom_value(double v) { return json_number(v); }

void append_summary(std::string& out, const std::string& name,
                    const HistogramStats& stats) {
  out += "# TYPE " + name + " summary\n";
  out += name + "{quantile=\"0.5\"} " + prom_value(stats.p50) + "\n";
  out += name + "{quantile=\"0.95\"} " + prom_value(stats.p95) + "\n";
  out += name + "{quantile=\"0.99\"} " + prom_value(stats.p99) + "\n";
  out += name + "_sum " + prom_value(stats.total) + "\n";
  out += name + "_count " + std::to_string(stats.count) + "\n";
  out += "# TYPE " + name + "_max gauge\n";
  out += name + "_max " + prom_value(stats.max) + "\n";
}

}  // namespace

std::string prometheus_metric_name(const std::string& name) {
  std::string out = "memlp_";
  out.reserve(out.size() + name.size());
  for (char c : name) out += prometheus_name_char(c) ? c : '_';
  return out;
}

std::string to_prometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, value] : registry.counter_values()) {
    const std::string prom = prometheus_metric_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : registry.gauge_values()) {
    const std::string prom = prometheus_metric_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + prom_value(value) + "\n";
  }
  for (const auto& [name, stats] : registry.histogram_values())
    append_summary(out, prometheus_metric_name(name), stats);
  return out;
}

bool write_prometheus(const MetricsRegistry& registry,
                      const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string text = to_prometheus(registry);
  std::fputs(text.c_str(), file);
  std::fclose(file);
  return true;
}

}  // namespace memlp::obs
