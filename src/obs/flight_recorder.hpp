// memlp::obs — always-on in-memory flight recorder.
//
// `--trace` reconstructs a solve only if it was armed in advance; the flight
// recorder closes that gap for post-mortems. Every thread appends compact
// fixed-size records (phase transitions, iteration digests, retry decisions,
// settle-cache refreshes, anomalies) into its own bounded ring buffer, and
// the merged tail is dumped as JSONL when something goes wrong — a solver
// ends in failure, a MEMLP_EXPECT contract trips (via the
// common/contracts.hpp failure hook), or a caller asks explicitly.
//
// Cost discipline (memlint R9): `record()` allocates only on a thread's
// first record (its ring is reserved in full, once); afterwards it is a copy
// into pre-reserved storage under an uncontended per-slot mutex. Records are
// plain structs — no strings are built unless a dump actually happens.
// Rings are per par::thread_slot(), merged timestamp-sorted at dump time
// (ties resolved by slot index — the deterministic merge order of the par
// contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"

namespace memlp::obs {

/// What one flight record describes. Values are stable dump identifiers —
/// append new kinds at the end.
enum class FlightEventKind : std::uint8_t {
  kPhaseEnter = 0,    ///< tag = phase name.
  kPhaseExit = 1,     ///< tag = phase name; a = wall_seconds.
  kIteration = 2,     ///< tag = solver; a = iteration, b = mu, c = merit/gap.
  kRetry = 3,         ///< tag = solver; a = attempt, b = variation/reason code.
  kCacheRefresh = 4,  ///< tag = backend; a = full factorizations so far.
  kAnomaly = 5,       ///< tag = anomaly name; a = magnitude, b = iteration.
  kSolveEnd = 6,      ///< tag = solver; a = iterations, b = 1 when optimal.
  kMark = 7,          ///< tag = free-form label (dump reasons, tests).
};

/// Dump name of `kind` ("phase_enter", "iteration", ...).
const char* flight_kind_name(FlightEventKind kind) noexcept;

/// One compact flight record. `tag` is a truncated copy (no ownership, no
/// allocation); `a`/`b`/`c` are kind-specific values per FlightEventKind.
struct FlightRecord {
  double ts_s = 0.0;  ///< seconds since the recorder was created.
  std::uint64_t trace_id = 0;  ///< active SolveContext (0 = none).
  std::uint64_t solve_id = 0;
  FlightEventKind kind = FlightEventKind::kMark;
  char tag[23] = {};  ///< NUL-terminated, truncated to fit.
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
};

/// Bounded per-thread ring recorder. One process-wide instance
/// (`FlightRecorder::global()`) backs the `flight_record()` free function
/// that instrumentation sites call; separate instances exist for tests.
class FlightRecorder {
 public:
  /// Records kept per thread slot before the ring wraps (oldest first out).
  static constexpr std::size_t kDefaultCapacityPerThread = 2048;

  explicit FlightRecorder(
      std::size_t capacity_per_thread = kDefaultCapacityPerThread);
  ~FlightRecorder();  // out of line: Slot is header-incomplete.
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends a record to the calling thread's ring, stamping the current
  /// timestamp and solve context. Never throws, never allocates after the
  /// thread's first record.
  void record(FlightEventKind kind, const char* tag, double a = 0.0,
              double b = 0.0, double c = 0.0) noexcept;

  /// Every retained record, merged across threads and sorted by timestamp
  /// (stable — ties keep slot order). At most capacity × active-threads.
  [[nodiscard]] std::vector<FlightRecord> snapshot() const;

  /// Total records ever recorded (including ones the rings have since
  /// overwritten).
  [[nodiscard]] std::uint64_t recorded() const;

  [[nodiscard]] std::size_t capacity_per_thread() const noexcept {
    return capacity_;
  }

  /// Drops all retained records (counts reset too).
  void reset();

  /// Writes the snapshot as JSONL (one record per line, kind-specific value
  /// names). Returns false when the file cannot be opened.
  bool dump_to(const std::string& path) const;

  /// The process-wide recorder backing flight_record().
  static FlightRecorder& global();

 private:
  struct Slot;

  std::size_t capacity_;
  Stopwatch clock_;
  std::vector<std::unique_ptr<Slot>> slots_;  ///< par::thread_slot_limit().
};

/// Records into the global recorder: the one-liner for instrumentation
/// sites.
void flight_record(FlightEventKind kind, const char* tag, double a = 0.0,
                   double b = 0.0, double c = 0.0) noexcept;

/// Resolves the flight-dump destination from MEMLP_FLIGHT_DUMP: unset/empty
/// → "memlp_flight.jsonl"; a falsey token ("0", "off", ...) → "" (disabled);
/// anything else is the path.
std::string flight_dump_path();

/// Dumps the global recorder on a failure, at most once per process (the
/// first failure is the root cause; later ones must not overwrite its
/// evidence). A kMark record naming `reason` is appended first. Returns the
/// path written, or "" when disabled/already dumped/nothing recorded.
std::string flight_dump_on_failure(const char* reason) noexcept;

}  // namespace memlp::obs
