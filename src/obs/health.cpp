#include "obs/health.hpp"

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace memlp::obs {

const char* anomaly_name(Anomaly anomaly) noexcept {
  switch (anomaly) {
    case Anomaly::kStall:
      return "stall";
    case Anomaly::kDivergence:
      return "divergence";
    case Anomaly::kWildJump:
      return "wild_jump";
    case Anomaly::kMuOscillation:
      return "mu_oscillation";
    case Anomaly::kSettleCacheThrash:
      return "settle_cache_thrash";
    case Anomaly::kRetryStorm:
      return "retry_storm";
  }
  return "unknown";
}

void HealthMonitor::report(Anomaly anomaly, const char* solver,
                           TraceSink* sink, double value, double iteration) {
  const char* name = anomaly_name(anomaly);
  const std::string solver_name =
      solver != nullptr && *solver != 0 ? solver : "unknown";
  MetricsRegistry::global()
      .counter("health." + solver_name + "." + name)
      .add(1);
  flight_record(FlightEventKind::kAnomaly, name, value, iteration);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counts_[solver_name][name];
  }
  if (sink != nullptr) {
    Event event("anomaly");
    event.with("solver", solver_name).with("anomaly", name);
    if (value != 0.0) event.with("value", value);
    if (iteration != 0.0) event.with("iteration", iteration);
    sink->emit(event);
  }
}

std::map<std::string, std::map<std::string, std::uint64_t>>
HealthMonitor::rollup() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

std::uint64_t HealthMonitor::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t sum = 0;
  for (const auto& [solver, kinds] : counts_)
    for (const auto& [name, count] : kinds) sum += count;
  return sum;
}

void HealthMonitor::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counts_.clear();
}

HealthMonitor& HealthMonitor::global() {
  static HealthMonitor monitor;
  return monitor;
}

}  // namespace memlp::obs
