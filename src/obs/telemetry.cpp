#include "obs/telemetry.hpp"

#include <cstdlib>

#include "common/contracts.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace memlp::obs {
namespace {

void on_contract_failure() noexcept {
  flight_dump_on_failure("contract_violation");
}

}  // namespace

Telemetry::Telemetry() {
  detail::set_contract_failure_hook(&on_contract_failure);
  if (const char* raw = std::getenv("MEMLP_METRICS_OUT");
      raw != nullptr && *raw != 0)
    metrics_out_ = raw;
}

FlightRecorder& Telemetry::recorder() const {
  return FlightRecorder::global();
}

HealthMonitor& Telemetry::health() const { return HealthMonitor::global(); }

bool Telemetry::write_metrics(const std::string& path) const {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.gauge("process.uptime_seconds").set(uptime_s());
  return write_prometheus(registry, path);
}

std::string Telemetry::write_metrics_if_configured() const {
  if (metrics_out_.empty()) return "";
  if (!write_metrics(metrics_out_)) return "";
  return metrics_out_;
}

Telemetry& Telemetry::global() {
  static Telemetry telemetry;
  return telemetry;
}

}  // namespace memlp::obs
