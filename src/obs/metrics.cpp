#include "obs/metrics.hpp"

#include "common/json.hpp"
#include "obs/trace.hpp"

namespace memlp::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> MetricsRegistry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::string MetricsRegistry::snapshot_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counter_values()) {
    if (!first) out += ",";
    first = false;
    out += json_string(name) + ":" +
           json_number(static_cast<std::int64_t>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauge_values()) {
    if (!first) out += ",";
    first = false;
    out += json_string(name) + ":" + json_number(value);
  }
  out += "}}";
  return out;
}

Event MetricsRegistry::snapshot_event() const {
  Event event("metrics");
  for (const auto& [name, value] : counter_values()) event.with(name, value);
  for (const auto& [name, value] : gauge_values()) event.with(name, value);
  return event;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace memlp::obs
