#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/json.hpp"
#include "obs/trace.hpp"

namespace memlp::obs {

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  count_ += 1;
  total_ += value;
  max_ = std::max(max_, value);
  if (samples_.size() < kMaxSamples) samples_.push_back(value);
}

HistogramStats Histogram::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramStats out;
  out.count = count_;
  out.total = total_;
  out.max = max_;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto nearest_rank = [&](double q) {
    if (sorted.empty()) return 0.0;
    const auto n = static_cast<double>(sorted.size());
    const auto rank = static_cast<std::size_t>(std::ceil(q * n));
    return sorted[rank == 0 ? 0 : rank - 1];
  };
  out.p50 = nearest_rank(0.50);
  out.p95 = nearest_rank(0.95);
  out.p99 = nearest_rank(0.99);
  return out;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  count_ = 0;
  total_ = 0.0;
  max_ = 0.0;
  samples_.clear();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> MetricsRegistry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::map<std::string, HistogramStats> MetricsRegistry::histogram_values()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, HistogramStats> out;
  for (const auto& [name, histogram] : histograms_)
    out[name] = histogram->stats();
  return out;
}

std::string MetricsRegistry::snapshot_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counter_values()) {
    if (!first) out += ",";
    first = false;
    out += json_string(name) + ":" +
           json_number(static_cast<std::int64_t>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauge_values()) {
    if (!first) out += ",";
    first = false;
    out += json_string(name) + ":" + json_number(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, stats] : histogram_values()) {
    if (!first) out += ",";
    first = false;
    out += json_string(name) + ":{\"count\":" +
           json_number(static_cast<std::int64_t>(stats.count)) +
           ",\"total\":" + json_number(stats.total) +
           ",\"p50\":" + json_number(stats.p50) +
           ",\"p95\":" + json_number(stats.p95) +
           ",\"p99\":" + json_number(stats.p99) +
           ",\"max\":" + json_number(stats.max) + "}";
  }
  out += "}}";
  return out;
}

Event MetricsRegistry::snapshot_event() const {
  Event event("metrics");
  for (const auto& [name, value] : counter_values()) event.with(name, value);
  for (const auto& [name, value] : gauge_values()) event.with(name, value);
  for (const auto& [name, stats] : histogram_values()) {
    event.with(name + ".count", stats.count);
    event.with(name + ".p50", stats.p50);
    event.with(name + ".p95", stats.p95);
    event.with(name + ".p99", stats.p99);
    event.with(name + ".max", stats.max);
  }
  return event;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace memlp::obs
