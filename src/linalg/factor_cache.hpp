// Factorization reuse across small-perturbation re-solves.
//
// The crossbar PDIP loop re-solves M·∆s = r every iteration, but between
// settles only the 2(n+m) X/Y/Z/W diagonal cells of M change (§3.5's O(N)
// update) — the A/Aᵀ/−I structural blocks are written once per attempt.
// Re-factoring the full N×N effective matrix per settle (O(N³)) therefore
// throws away almost all of the previous factor. This cache keeps the LU of
// a *reference* matrix A₀ and, when told which rows may have changed,
// patches solves with a Sherman–Morrison–Woodbury rank-k correction:
//
//   A = A₀ + U·Vᵀ,  U = [e_{r₁} … e_{r_k}],  Vᵀ = the changed-row deltas,
//   A⁻¹b = y − Z·C⁻¹·(Vᵀy),  y = A₀⁻¹b,  Z = A₀⁻¹U,  C = I_k + Vᵀ·Z.
//
// Z depends only on the dirty-row *positions*, which are fixed across PDIP
// iterations, so it is built once (multi-RHS triangular solves) and reused;
// each prepare() refreshes the deltas and factors only the k×k capacitance
// C — O(k³ + kN) per iteration instead of O(N³), with k ≈ N/3 for the
// augmented KKT system. A full refactor happens whenever the dirty set is
// unknown (note_all), too large a fraction of the matrix, the correction is
// singular, or `refresh_interval` incremental updates have accumulated
// (bounds delta growth and round-off). One step of iterative refinement
// against the true current matrix (2 extra O(N²) passes) keeps the
// correction path's accuracy at direct-solve levels.
//
// In non-incremental mode the cache degenerates to "factor when dirty":
// prepare() re-factors only when a change was noted since the last factor,
// which is bit-identical to always-refactor because an unchanged matrix
// factors to the identical LU.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace memlp {

/// Tuning knobs of a FactorizationCache.
struct FactorCacheOptions {
  /// Patch the cached factor with the SMW rank-k correction (true) or fully
  /// re-factor on any change (false, the bit-exact legacy behavior).
  bool incremental = false;
  /// Full refactor when tracked dirty rows exceed this fraction of the
  /// dimension (the correction stops being cheaper than a fresh LU).
  double max_dirty_fraction = 0.5;
  /// Full refactor after this many consecutive incremental updates, bounding
  /// delta magnitude and correction round-off growth.
  std::size_t refresh_interval = 16;
  /// One iterative-refinement step per correction-path solve (residual
  /// against the true current matrix), keeping accuracy at LU levels.
  bool iterative_refinement = true;
};

/// Observability counters of a FactorizationCache (simulator bookkeeping,
/// not hardware ops — the cost ledger carries the priced flops).
struct FactorCacheStats {
  std::uint64_t full_factorizations = 0;  ///< fresh LU of the full matrix.
  std::uint64_t incremental_updates = 0;  ///< SMW correction rebuilds.
  std::uint64_t prepare_hits = 0;         ///< prepare() with nothing dirty.
  std::uint64_t fallbacks = 0;  ///< incremental attempts that fell back.
  std::uint64_t solves = 0;

  FactorCacheStats& operator+=(const FactorCacheStats& other) noexcept {
    full_factorizations += other.full_factorizations;
    incremental_updates += other.incremental_updates;
    prepare_hits += other.prepare_hits;
    fallbacks += other.fallbacks;
    solves += other.solves;
    return *this;
  }

  /// Counter-wise difference (for phase snapshots).
  [[nodiscard]] FactorCacheStats since(
      const FactorCacheStats& earlier) const noexcept {
    FactorCacheStats d;
    d.full_factorizations = full_factorizations - earlier.full_factorizations;
    d.incremental_updates = incremental_updates - earlier.incremental_updates;
    d.prepare_hits = prepare_hits - earlier.prepare_hits;
    d.fallbacks = fallbacks - earlier.fallbacks;
    d.solves = solves - earlier.solves;
    return d;
  }
};

/// A solve cache over a slowly-mutating square matrix. Callers report
/// changes via note_row()/note_all()/invalidate() and call prepare() before
/// each batch of solve() calls.
class FactorizationCache {
 public:
  FactorizationCache() = default;
  explicit FactorizationCache(FactorCacheOptions options)
      : options_(options) {}

  void set_incremental(bool on) noexcept { options_.incremental = on; }
  [[nodiscard]] bool incremental() const noexcept {
    return options_.incremental;
  }

  /// Drops the factorization entirely (matrix replaced wholesale).
  void invalidate();

  /// Declares that row `r` of the matrix may have changed since the last
  /// prepare(). Duplicate and spurious notes are cheap and harmless.
  void note_row(std::size_t r);

  /// Declares an unknown change set (e.g. write disturb smeared across the
  /// array): the next prepare() fully re-factors.
  void note_all();

  /// Ensures a factorization of `a` is available, re-using as much of the
  /// cached one as the noted dirty set allows. Caller contract: since the
  /// last successful prepare(), `a` changed only in rows passed to
  /// note_row() (or note_all()/invalidate() was called). Returns false when
  /// `a` is singular.
  bool prepare(const Matrix& a);

  /// True when prepare() succeeded and no solve-blocking state remains.
  [[nodiscard]] bool ready() const noexcept {
    return base_.has_value() && !base_->singular();
  }

  /// Solves A x = b against the matrix of the last successful prepare().
  [[nodiscard]] Vec solve(std::span<const double> b);

  [[nodiscard]] const FactorCacheStats& stats() const noexcept {
    return stats_;
  }

 private:
  /// Fresh LU of `a`; resets all incremental state. Returns !singular.
  bool full_refactor(const Matrix& a);

  /// SMW apply: y = A₀⁻¹b, then y -= Z·C⁻¹·(Vᵀy) when a correction is
  /// active.
  [[nodiscard]] Vec corrected_solve(std::span<const double> b) const;

  FactorCacheOptions options_;
  FactorCacheStats stats_;

  std::optional<LuFactorization> base_;  ///< LU of reference_.
  Matrix reference_;  ///< matrix base_ factors (incremental mode only).
  Matrix current_;    ///< matrix of the last prepare (refinement residuals).

  std::vector<std::size_t> tracked_rows_;  ///< rows with a Z column.
  Matrix z_;  ///< N×k: column j = A₀⁻¹ e_{tracked_rows_[j]}.
  /// Sparse per-tracked-row deltas (column, value) of current vs reference.
  std::vector<std::vector<std::pair<std::size_t, double>>> deltas_;
  std::optional<LuFactorization> correction_;  ///< LU of C = I + VᵀZ.
  bool correction_active_ = false;

  std::vector<std::size_t> dirty_rows_;  ///< noted since last prepare.
  bool dirty_all_ = true;
  std::size_t updates_since_full_ = 0;
};

}  // namespace memlp
