// LDLᵀ factorization for symmetric positive-definite systems.
//
// Backs the normal-equations variant of the software PDIP baseline: instead
// of the full 2(n+m) KKT system of Eq. (12), eliminate ∆x, ∆w, ∆z to get
//   (A·Θ·Aᵀ + Y⁻¹W)·∆y = rhs,   Θ = Z⁻¹X,
// an m×m SPD system — the textbook IPM implementation and a fairer software
// baseline than dense LU on the full system.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace memlp {

/// LDLᵀ factorization (no pivoting — intended for SPD/quasi-definite input).
class LdltFactorization {
 public:
  /// Factors symmetric `a` (only the lower triangle is read).
  /// Throws DimensionError if not square.
  explicit LdltFactorization(const Matrix& a);

  /// True when a pivot collapsed (matrix not positive definite enough).
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// Solves A·x = b. Requires !failed().
  [[nodiscard]] Vec solve(std::span<const double> b) const;

  /// Crude conditioning proxy: max|d_i| / min|d_i| over the D diagonal (the
  /// exact condition number of D, a lower-bound flavor for A). +inf when the
  /// factorization failed. Cheap — used by solver tracing.
  [[nodiscard]] double condition_proxy() const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return l_.rows(); }

 private:
  Matrix l_;  ///< unit lower triangle.
  Vec d_;    ///< diagonal of D.
  bool failed_ = false;
};

}  // namespace memlp
