#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/par.hpp"
#include "linalg/ops.hpp"
#include "obs/cost_ledger.hpp"

namespace memlp {
namespace {

/// Charges one triangular solve pair (forward + back substitution,
/// ~2·n² flops over the factor's n² stored entries).
void charge_triangular_solve(std::size_t n) {
  const auto dim = static_cast<std::uint64_t>(n);
  obs::CostLedger::charge_active(
      {.flops = 2 * dim * dim, .bytes = 8 * (dim * dim + 2 * dim)});
}

// A pivot below this (relative to the matrix scale) is treated as zero.
constexpr double kPivotTolerance = 1e-13;

// Trailing-block update goes parallel only when at least this many rows lie
// below the panel; smaller trailing blocks are not worth the region setup.
constexpr std::size_t kParallelEliminationCutoff = 96;

// Pivot columns factored per panel before the deferred trailing update.
constexpr std::size_t kLuPanelWidth = 32;

}  // namespace

// memlint:hot — blocked LU factorization kernel.
LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  if (!lu_.square()) throw DimensionError("LU requires a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);  // memlint:allow(R9): pivot storage sized once per factorization
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  // Elimination flops (1 division + 2 flops per trailing element per row),
  // accumulated closed-form per pivot and charged once — outside the
  // parallel elimination region, so the attribution is deterministic.
  std::uint64_t flops = 0;
  const auto dim = static_cast<std::uint64_t>(n);
  const auto charge_factorization = [&] {
    obs::CostLedger::charge_active({.flops = flops, .bytes = 8 * dim * dim});
  };

  const double scale = std::max(lu_.max_abs(), 1.0);
  // Panel-blocked right-looking elimination. Each element receives its
  // rank-1 updates in increasing pivot order, pivot columns are searched on
  // fully-updated values, and swaps exchange whole rows — exactly the
  // unblocked algorithm's arithmetic, so the factor is bitwise identical to
  // it; only the trailing updates are deferred and batched per panel (one
  // streaming pass over the trailing block instead of one per pivot).
  for (std::size_t p0 = 0; p0 < n; p0 += kLuPanelWidth) {
    const std::size_t p1 = std::min(p0 + kLuPanelWidth, n);
    // Panel factorization: pivots [p0, p1), eagerly updating only the panel
    // columns (so pivot searches and multipliers see final values).
    for (std::size_t k = p0; k < p1; ++k) {
      // Partial pivoting: largest |value| in column k at/below row k.
      std::size_t pivot_row = k;
      double pivot_mag = std::abs(lu_(k, k));
      for (std::size_t i = k + 1; i < n; ++i) {
        const double mag = std::abs(lu_(i, k));
        if (mag > pivot_mag) {
          pivot_mag = mag;
          pivot_row = i;
        }
      }
      if (pivot_mag <= kPivotTolerance * scale) {
        singular_ = true;
        charge_factorization();
        return;
      }
      if (pivot_row != k) {
        std::swap_ranges(lu_.row(k).begin(), lu_.row(k).end(),
                         lu_.row(pivot_row).begin());
        std::swap(perm_[k], perm_[pivot_row]);
        perm_sign_ = -perm_sign_;
      }
      const double inv_pivot = 1.0 / lu_(k, k);
      const std::size_t remaining = n - (k + 1);
      const auto rem = static_cast<std::uint64_t>(remaining);
      flops += rem * (1 + 2 * rem);
      const auto krow = lu_.row(k);
      for (std::size_t i = k + 1; i < n; ++i) {
        const double lik = lu_(i, k) * inv_pivot;
        lu_(i, k) = lik;
        if (lik == 0.0) continue;
        auto irow = lu_.row(i);
        for (std::size_t j = k + 1; j < p1; ++j) irow[j] -= lik * krow[j];
      }
    }
    if (p1 == n) break;
    // Complete the panel's U rows right of the panel: row k needs the
    // updates of pivots [p0, k), applied in increasing pivot order — by the
    // time row k serves as the pivot row below, its trailing part is final.
    for (std::size_t k = p0; k < p1; ++k) {
      const auto krow = lu_.row(k);
      for (std::size_t i = k + 1; i < p1; ++i) {
        const double lik = lu_(i, k);
        if (lik == 0.0) continue;
        auto irow = lu_.row(i);
        for (std::size_t j = p1; j < n; ++j) irow[j] -= lik * krow[j];
      }
    }
    // Deferred trailing update: each row below the panel absorbs all panel
    // pivots in order. Rows update independently (each task touches only its
    // own rows), and the per-row arithmetic is identical at any thread count.
    const std::size_t trailing = n - p1;
    const auto update_row = [&](std::size_t i) {
      auto irow = lu_.row(i);
      for (std::size_t k = p0; k < p1; ++k) {
        const double lik = irow[k];
        if (lik == 0.0) continue;
        const auto krow = lu_.row(k);
        for (std::size_t j = p1; j < n; ++j) irow[j] -= lik * krow[j];
      }
    };
    if (trailing >= kParallelEliminationCutoff) {
      par::parallel_for_ranges(
          trailing, std::max<std::size_t>(std::size_t{8}, trailing / 32),
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t r = begin; r < end; ++r) update_row(p1 + r);
          });
    } else {
      for (std::size_t i = p1; i < n; ++i) update_row(i);
    }
  }
  charge_factorization();
}

// memlint:hot — triangular-solve kernel.
Vec LuFactorization::solve(std::span<const double> b) const {
  MEMLP_EXPECT_MSG(!singular_, "solve() on a singular factorization");
  MEMLP_EXPECT(b.size() == lu_.rows());
  const std::size_t n = lu_.rows();
  charge_triangular_solve(n);
  Vec x(n);  // memlint:allow(R9): result buffer; the caller owns the returned vector
  // Forward substitution with permuted b: L y = P b.
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[perm_[i]];
    const auto row = lu_.row(i);
    for (std::size_t j = 0; j < i; ++j) sum -= row[j] * x[j];
    x[i] = sum;
  }
  // Back substitution: U x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    const auto row = lu_.row(ii);
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= row[j] * x[j];
    x[ii] = sum / row[ii];
  }
  return x;
}

// memlint:hot — multi-RHS triangular-solve kernel.
Matrix LuFactorization::solve_many(const Matrix& b) const {
  MEMLP_EXPECT_MSG(!singular_, "solve_many() on a singular factorization");
  MEMLP_EXPECT(b.rows() == lu_.rows());
  const std::size_t n = lu_.rows();
  const std::size_t nrhs = b.cols();
  {
    const auto dim = static_cast<std::uint64_t>(n);
    const auto r = static_cast<std::uint64_t>(nrhs);
    // The factor's n² entries stream through once for all right-hand sides.
    obs::CostLedger::charge_active(
        {.flops = 2 * dim * dim * r, .bytes = 8 * (dim * dim + 2 * dim * r)});
  }
  Matrix x(n, nrhs);  // memlint:allow(R9): result buffer; the caller owns the returned matrix
  // Row-permuted copy of b: row i of x starts as row perm_[i] of b, then the
  // substitutions below run the solve() recurrences with the right-hand-side
  // index as the contiguous inner dimension.
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = b.row(perm_[i]);
    std::copy(src.begin(), src.end(), x.row(i).begin());
  }
  // Forward substitution: L y = P b.
  for (std::size_t i = 0; i < n; ++i) {
    const auto lrow = lu_.row(i);
    auto xi = x.row(i);
    for (std::size_t j = 0; j < i; ++j) {
      const double lij = lrow[j];
      const auto xj = x.row(j);
      for (std::size_t t = 0; t < nrhs; ++t) xi[t] -= lij * xj[t];
    }
  }
  // Back substitution: U x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    const auto urow = lu_.row(ii);
    auto xi = x.row(ii);
    for (std::size_t j = ii + 1; j < n; ++j) {
      const double uij = urow[j];
      const auto xj = x.row(j);
      for (std::size_t t = 0; t < nrhs; ++t) xi[t] -= uij * xj[t];
    }
    const double uii = urow[ii];
    for (std::size_t t = 0; t < nrhs; ++t) xi[t] /= uii;
  }
  return x;
}

// memlint:hot — transposed triangular-solve kernel.
Vec LuFactorization::solve_transposed(std::span<const double> b) const {
  MEMLP_EXPECT_MSG(!singular_, "solve_transposed() on singular factorization");
  MEMLP_EXPECT(b.size() == lu_.rows());
  const std::size_t n = lu_.rows();
  charge_triangular_solve(n);
  // Solve U^T y = b (forward), then L^T z = y (backward), then x = P^T z.
  Vec y(n);  // memlint:allow(R9): stage buffer; reuse is ROADMAP scale-up work
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= lu_(k, i) * y[k];
    y[i] = sum / lu_(i, i);
  }
  Vec z(n);  // memlint:allow(R9): stage buffer; reuse is ROADMAP scale-up work
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= lu_(k, ii) * z[k];
    z[ii] = sum;
  }
  Vec x(n);  // memlint:allow(R9): result buffer; the caller owns the returned vector
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = z[i];
  return x;
}

double LuFactorization::determinant() const noexcept {
  if (singular_) return 0.0;
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

double LuFactorization::log_abs_determinant() const noexcept {
  if (singular_) return -std::numeric_limits<double>::infinity();
  double log_det = 0.0;
  for (std::size_t i = 0; i < lu_.rows(); ++i)
    log_det += std::log(std::abs(lu_(i, i)));
  return log_det;
}

std::optional<double> LuFactorization::inverse_norm_estimate() const {
  if (singular_) return std::nullopt;
  const std::size_t n = lu_.rows();
  if (n == 0) return 1.0;
  // Hager / Higham 1-norm estimator for ||A^{-1}||_1 using a few solves.
  Vec v(n, 1.0 / static_cast<double>(n));
  double estimate = 0.0;
  for (int iteration = 0; iteration < 5; ++iteration) {
    const Vec y = solve(v);
    double norm1 = 0.0;
    for (double value : y) norm1 += std::abs(value);
    estimate = std::max(estimate, norm1);
    Vec sign(n);
    for (std::size_t i = 0; i < n; ++i) sign[i] = y[i] >= 0.0 ? 1.0 : -1.0;
    const Vec z = solve_transposed(sign);
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i)
      if (std::abs(z[i]) > std::abs(z[best])) best = i;
    if (std::abs(z[best]) <= dot(z, v)) break;
    std::fill(v.begin(), v.end(), 0.0);
    v[best] = 1.0;
  }
  // ||A||_1 is the max column sum = inf-norm of the transpose; recompute from
  // the stored LU is not possible, so callers wanting a true kappa should
  // multiply by their own ||A||_1. We fold in nothing and document this as an
  // *inverse-norm* based scale: kappa_est = ||A||_1 * ||A^{-1}||_1.
  return estimate;
}

Vec lu_solve(const Matrix& a, std::span<const double> b) {
  const LuFactorization lu(a);
  if (lu.singular()) throw NumericalError("lu_solve: singular matrix");
  return lu.solve(b);
}

}  // namespace memlp
