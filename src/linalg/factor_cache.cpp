#include "linalg/factor_cache.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/ops.hpp"
#include "obs/cost_ledger.hpp"
#include "obs/flight_recorder.hpp"

namespace memlp {

void FactorizationCache::invalidate() {
  base_.reset();
  reference_ = Matrix();
  current_ = Matrix();
  tracked_rows_.clear();
  z_ = Matrix();
  deltas_.clear();
  correction_.reset();
  correction_active_ = false;
  dirty_rows_.clear();
  dirty_all_ = true;
  updates_since_full_ = 0;
}

void FactorizationCache::note_row(std::size_t r) {
  if (dirty_all_) return;
  dirty_rows_.push_back(r);
}

void FactorizationCache::note_all() {
  dirty_all_ = true;
  dirty_rows_.clear();
}

bool FactorizationCache::full_refactor(const Matrix& a) {
  base_.emplace(a);  // charges its own closed-form flops  // memlint:allow(R9): full refactor is the amortized slow path the cache exists to avoid
  tracked_rows_.clear();
  z_ = Matrix();
  deltas_.clear();
  correction_.reset();
  correction_active_ = false;
  dirty_rows_.clear();
  dirty_all_ = false;
  updates_since_full_ = 0;
  // The reference copy exists only to diff future dirty rows against; the
  // bit-exact non-incremental path never reads it.
  if (options_.incremental) {
    reference_ = a;
    // current_ only feeds refinement residuals; skip the O(N²) copy per
    // prepare when refinement is off.
    if (options_.iterative_refinement) current_ = a;
  }
  ++stats_.full_factorizations;
  obs::flight_record(obs::FlightEventKind::kCacheRefresh, "settle_cache",
                     static_cast<double>(stats_.full_factorizations));
  return !base_->singular();
}

// memlint:hot — per-iteration KKT (re)factorization entry.
bool FactorizationCache::prepare(const Matrix& a) {
  MEMLP_EXPECT_MSG(a.square(), "FactorizationCache: matrix must be square");
  const std::size_t n = a.rows();
  if (base_ && base_->size() != n) invalidate();
  if (base_ && !dirty_all_ && dirty_rows_.empty()) {
    ++stats_.prepare_hits;
    return !base_->singular();
  }
  if (!options_.incremental || dirty_all_ || !base_ || base_->singular() ||
      updates_since_full_ >= options_.refresh_interval)
    return full_refactor(a);

  // Merge the noted rows into the tracked set. Positions are typically
  // stable across iterations (the PDIP state diagonals), so Z columns built
  // for earlier prepares stay valid and only genuinely new rows solve.
  std::sort(dirty_rows_.begin(), dirty_rows_.end());
  dirty_rows_.erase(std::unique(dirty_rows_.begin(), dirty_rows_.end()),
                    dirty_rows_.end());
  std::vector<std::size_t> fresh;
  for (const std::size_t r : dirty_rows_) {
    MEMLP_EXPECT(r < n);
    if (std::find(tracked_rows_.begin(), tracked_rows_.end(), r) ==
        tracked_rows_.end())
      fresh.push_back(r);  // memlint:allow(R9): refresh-only bookkeeping, amortized across iterations
  }
  const std::size_t k = tracked_rows_.size() + fresh.size();
  if (static_cast<double>(k) >
      options_.max_dirty_fraction * static_cast<double>(n)) {
    ++stats_.fallbacks;
    return full_refactor(a);
  }
  if (!fresh.empty()) {
    // Z gains one column per new dirty row: Z_j = A₀⁻¹ e_r, solved for all
    // new rows in one multi-RHS substitution pass.
    Matrix rhs(n, fresh.size());  // memlint:allow(R9): multi-RHS buffer built only when new dirty rows appear
    for (std::size_t j = 0; j < fresh.size(); ++j) rhs(fresh[j], j) = 1.0;
    const Matrix z_new = base_->solve_many(rhs);
    Matrix z(n, k);  // memlint:allow(R9): Z grows on refresh only, never per solve
    for (std::size_t i = 0; i < n; ++i) {
      const auto old_row = z_.empty() ? std::span<const double>{} : z_.row(i);
      auto row = z.row(i);
      std::copy(old_row.begin(), old_row.end(), row.begin());
      const auto new_row = z_new.row(i);
      std::copy(new_row.begin(), new_row.end(),
                row.begin() + static_cast<std::ptrdiff_t>(old_row.size()));
    }
    z_ = std::move(z);
    tracked_rows_.insert(tracked_rows_.end(), fresh.begin(), fresh.end());  // memlint:allow(R9): refresh-only bookkeeping
    deltas_.resize(k);  // memlint:allow(R9): refresh-only bookkeeping
  }

  // Rescan deltas only for the rows noted dirty since the last prepare —
  // by the caller contract every other tracked row is unchanged, so its
  // stored delta against the reference is still exact. (An empty delta is
  // fine — its Z column just multiplies a zero capacitance contribution.)
  for (const std::size_t r : dirty_rows_) {
    const auto i = static_cast<std::size_t>(
        std::find(tracked_rows_.begin(), tracked_rows_.end(), r) -
        tracked_rows_.begin());
    auto& delta = deltas_[i];
    delta.clear();
    const auto now = a.row(r);
    const auto ref = reference_.row(r);
    for (std::size_t c = 0; c < n; ++c) {
      const double d = now[c] - ref[c];
      if (d != 0.0) delta.emplace_back(c, d);  // memlint:allow(R9): delta list rebuilt only for rows noted dirty
    }
  }
  std::uint64_t nnz = 0;
  for (const auto& delta : deltas_) nnz += delta.size();

  // Capacitance C = I_k + Vᵀ·Z, assembled from the sparse deltas.
  Matrix c = Matrix::identity(k);
  for (std::size_t i = 0; i < k; ++i) {
    auto crow = c.row(i);
    for (const auto& [col, d] : deltas_[i]) {
      const auto zrow = z_.row(col);
      for (std::size_t j = 0; j < k; ++j) crow[j] += d * zrow[j];
    }
  }
  obs::CostLedger::charge_active(
      {.flops = static_cast<std::uint64_t>(dirty_rows_.size()) * n +
                2 * nnz * k,
       .bytes = 8 * (static_cast<std::uint64_t>(dirty_rows_.size()) * n * 2 +
                     static_cast<std::uint64_t>(k) * k)});
  correction_.emplace(std::move(c));  // memlint:allow(R9): k x k correction rebuilt only on refresh
  if (correction_->singular()) {
    // Ill-conditioned update (the deltas cancel against the reference in a
    // way the rank-k form cannot represent stably): fall back to a fresh LU.
    ++stats_.fallbacks;
    return full_refactor(a);
  }
  correction_active_ = true;
  if (options_.iterative_refinement) current_ = a;
  dirty_rows_.clear();
  ++stats_.incremental_updates;
  ++updates_since_full_;
  return true;
}

Vec FactorizationCache::corrected_solve(std::span<const double> b) const {
  Vec y = base_->solve(b);
  if (!correction_active_) return y;
  const std::size_t k = tracked_rows_.size();
  const std::size_t n = y.size();
  Vec t(k, 0.0);  // memlint:allow(R9): k-sized scratch, bounded by max_dirty_fraction
  std::uint64_t nnz = 0;
  for (std::size_t i = 0; i < k; ++i) {
    double sum = 0.0;
    for (const auto& [col, d] : deltas_[i]) sum += d * y[col];
    nnz += deltas_[i].size();
    t[i] = sum;
  }
  const Vec s = correction_->solve(t);
  for (std::size_t i = 0; i < n; ++i) {
    const auto zrow = z_.row(i);
    double sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) sum += zrow[j] * s[j];
    y[i] -= sum;
  }
  obs::CostLedger::charge_active(
      {.flops = 2 * (nnz + static_cast<std::uint64_t>(n) * k),
       .bytes = 8 * (static_cast<std::uint64_t>(n) * k + 2 * n + 2 * k)});
  return y;
}

// memlint:hot — per-iteration Newton back-substitution entry.
Vec FactorizationCache::solve(std::span<const double> b) {
  MEMLP_EXPECT_MSG(ready(), "FactorizationCache::solve before prepare()");
  MEMLP_EXPECT(b.size() == base_->size());
  ++stats_.solves;
  if (!correction_active_) return base_->solve(b);
  Vec x = corrected_solve(b);
  if (options_.iterative_refinement) {
    // One refinement step against the true current matrix contracts the
    // correction's round-off to direct-solve levels: r = b − A·x, x += A⁻¹r.
    Vec residual = gemv(current_, x);  // gemv charges its own flops
    for (std::size_t i = 0; i < residual.size(); ++i)
      residual[i] = b[i] - residual[i];
    const Vec dx = corrected_solve(residual);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += dx[i];
  }
  return x;
}

}  // namespace memlp
