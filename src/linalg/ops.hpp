// Free-function BLAS-like operations on memlp::Matrix and memlp::Vec.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace memlp {

/// y = A * x.
Vec gemv(const Matrix& a, std::span<const double> x);

/// y = A^T * x (without materializing the transpose).
Vec gemv_transposed(const Matrix& a, std::span<const double> x);

/// C = A * B.
Matrix gemm(const Matrix& a, const Matrix& b);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, Vec& y);

/// Dot product.
double dot(std::span<const double> x, std::span<const double> y);

/// Element-wise sum / difference.
Vec add(std::span<const double> x, std::span<const double> y);
Vec sub(std::span<const double> x, std::span<const double> y);

/// Element-wise scale.
Vec scaled(std::span<const double> x, double alpha);

/// Euclidean norm.
double norm2(std::span<const double> x);

/// Infinity norm (max |x_i|); 0 for empty input.
double norm_inf(std::span<const double> x);

/// Largest element value (not absolute); requires non-empty input.
double max_element(std::span<const double> x);

/// Element-wise product z_i = x_i * y_i — the XZe / YWe terms of Eq. (6c).
Vec hadamard(std::span<const double> x, std::span<const double> y);

/// Concatenates vectors in order.
Vec concat(std::initializer_list<std::span<const double>> parts);

/// Returns x[offset .. offset+len) as a fresh vector.
Vec slice(std::span<const double> x, std::size_t offset, std::size_t len);

}  // namespace memlp
