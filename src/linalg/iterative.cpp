#include "linalg/iterative.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/ops.hpp"

namespace memlp {
namespace {

double residual_inf_norm(const Matrix& a, std::span<const double> x,
                         std::span<const double> b) {
  const Vec ax = gemv(a, x);
  double best = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i)
    best = std::max(best, std::abs(ax[i] - b[i]));
  return best;
}

}  // namespace

IterativeResult gauss_seidel(const Matrix& a, std::span<const double> b,
                             const IterativeOptions& options) {
  MEMLP_EXPECT(a.square() && a.rows() == b.size());
  const std::size_t n = a.rows();
  const double threshold =
      options.tolerance * std::max(1.0, norm_inf(b));
  IterativeResult result;
  result.x.assign(n, 0.0);
  for (std::size_t sweep = 1; sweep <= options.max_sweeps; ++sweep) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = a.row(i);
      double sum = b[i];
      for (std::size_t j = 0; j < n; ++j)
        if (j != i) sum -= row[j] * result.x[j];
      MEMLP_EXPECT_MSG(row[i] != 0.0, "gauss_seidel: zero diagonal at " << i);
      result.x[i] = sum / row[i];
    }
    result.sweeps = sweep;
    result.residual_inf = residual_inf_norm(a, result.x, b);
    if (result.residual_inf <= threshold) {
      result.converged = true;
      break;
    }
    if (!std::isfinite(result.residual_inf)) break;  // diverged
  }
  return result;
}

IterativeResult jacobi(const Matrix& a, std::span<const double> b,
                       const IterativeOptions& options) {
  MEMLP_EXPECT(a.square() && a.rows() == b.size());
  const std::size_t n = a.rows();
  const double threshold =
      options.tolerance * std::max(1.0, norm_inf(b));
  IterativeResult result;
  result.x.assign(n, 0.0);
  Vec next(n, 0.0);
  for (std::size_t sweep = 1; sweep <= options.max_sweeps; ++sweep) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = a.row(i);
      double sum = b[i];
      for (std::size_t j = 0; j < n; ++j)
        if (j != i) sum -= row[j] * result.x[j];
      MEMLP_EXPECT_MSG(row[i] != 0.0, "jacobi: zero diagonal at " << i);
      next[i] = sum / row[i];
    }
    result.x.swap(next);
    result.sweeps = sweep;
    result.residual_inf = residual_inf_norm(a, result.x, b);
    if (result.residual_inf <= threshold) {
      result.converged = true;
      break;
    }
    if (!std::isfinite(result.residual_inf)) break;  // diverged
  }
  return result;
}

bool strictly_diagonally_dominant(const Matrix& a) {  // memlint:allow(R10): feasibility predicate used at setup, not a costed kernel
  if (!a.square()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double off_diagonal = 0.0;
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (j != i) off_diagonal += std::abs(row[j]);
    if (std::abs(row[i]) <= off_diagonal) return false;
  }
  return true;
}

}  // namespace memlp
