// Dense row-major matrix type used throughout memlp.
//
// The simulator works with dense matrices because the paper's crossbar maps a
// dense conductance array; the KKT systems it builds (Eq. 12 / 14a / 16c) are
// block-structured but are materialized densely exactly as the hardware
// would hold them.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace memlp {

/// Vector alias: memlp passes vectors as std::vector<double> and views them
/// as std::span where only read access is needed.
using Vec = std::vector<double>;

/// Dense row-major matrix of doubles with value semantics.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix with every element equal to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill);

  /// Construction from nested initializer lists (row by row); rows must have
  /// equal lengths. Intended for tests and small examples.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  /// Square matrix with `d` on the diagonal.
  static Matrix diagonal(std::span<const double> d);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  /// Bounds-checked element access (throws ContractViolation).
  double& at(std::size_t i, std::size_t j);
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;

  /// View of row i.
  [[nodiscard]] std::span<const double> row(std::size_t i) const noexcept {
    return {data_.data() + i * cols_, cols_};
  }
  std::span<double> row(std::size_t i) noexcept {
    return {data_.data() + i * cols_, cols_};
  }

  /// Raw contiguous storage (row-major).
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
  std::span<double> data() noexcept { return data_; }

  /// Copies `block` into this matrix with its (0,0) at (r0,c0).
  /// The block must fit inside this matrix.
  void set_block(std::size_t r0, std::size_t c0, const Matrix& block);

  /// Extracts the sub-matrix of size (nr x nc) starting at (r0, c0).
  [[nodiscard]] Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
                             std::size_t nc) const;

  /// Returns the transpose.
  [[nodiscard]] Matrix transposed() const;

  /// Largest absolute element value (0 for an empty matrix).
  [[nodiscard]] double max_abs() const noexcept;

  /// Maximum-absolute-row-sum norm (infinity norm).
  [[nodiscard]] double inf_norm() const noexcept;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const noexcept;

  /// True when every element is >= 0 (what a crossbar can represent).
  [[nodiscard]] bool nonnegative() const noexcept;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scale) noexcept;

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  bool operator==(const Matrix& other) const = default;

  /// Element-wise (Hadamard) product — used by the process-variation model,
  /// Eq. 18: M' = M + M ∘ (var · Rd).
  [[nodiscard]] Matrix hadamard(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace memlp
