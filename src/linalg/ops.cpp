#include "linalg/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "obs/cost_ledger.hpp"

namespace memlp {
namespace {

/// Charges one dense MVM (flops = 2·rows·cols, bytes = the matrix plus
/// both vectors) to the active cost ledger. Closed-form and charged once
/// per call, so the attribution is thread-count-invariant.
void charge_mvm(std::size_t rows, std::size_t cols) {
  const std::uint64_t cells =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
  obs::CostLedger::charge_active(
      {.flops = 2 * cells, .bytes = 8 * (cells + rows + cols)});
}

}  // namespace

// memlint:hot — digital-baseline MVM kernel.
Vec gemv(const Matrix& a, std::span<const double> x) {
  MEMLP_EXPECT_MSG(a.cols() == x.size(), "gemv: " << a.rows() << "x"
                                                  << a.cols() << " * "
                                                  << x.size());
  charge_mvm(a.rows(), a.cols());
  Vec y(a.rows(), 0.0);  // memlint:allow(R9): result vector sized once per call; reuse is ROADMAP scale-up work
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    double sum = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) sum += row[j] * x[j];
    y[i] = sum;
  }
  return y;
}

// memlint:hot — digital-baseline transposed MVM kernel.
Vec gemv_transposed(const Matrix& a, std::span<const double> x) {
  MEMLP_EXPECT_MSG(a.rows() == x.size(), "gemv_transposed: "
                                             << a.rows() << "x" << a.cols()
                                             << "^T * " << x.size());
  charge_mvm(a.rows(), a.cols());
  Vec y(a.cols(), 0.0);  // memlint:allow(R9): result vector sized once per call; reuse is ROADMAP scale-up work
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < row.size(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  MEMLP_EXPECT_MSG(a.cols() == b.rows(), "gemm: " << a.rows() << "x"
                                                  << a.cols() << " * "
                                                  << b.rows() << "x"
                                                  << b.cols());
  {
    const auto ra = static_cast<std::uint64_t>(a.rows());
    const auto ca = static_cast<std::uint64_t>(a.cols());
    const auto cb = static_cast<std::uint64_t>(b.cols());
    obs::CostLedger::charge_active(
        {.flops = 2 * ra * ca * cb,
         .bytes = 8 * (ra * ca + ca * cb + ra * cb)});
  }
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous in both B and C.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto arow = a.row(i);
    auto crow = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const auto brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

void axpy(double alpha, std::span<const double> x, Vec& y) {
  MEMLP_EXPECT(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double dot(std::span<const double> x, std::span<const double> y) {
  MEMLP_EXPECT(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

Vec add(std::span<const double> x, std::span<const double> y) {
  MEMLP_EXPECT(x.size() == y.size());
  Vec z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + y[i];
  return z;
}

Vec sub(std::span<const double> x, std::span<const double> y) {
  MEMLP_EXPECT(x.size() == y.size());
  Vec z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] - y[i];
  return z;
}

Vec scaled(std::span<const double> x, double alpha) {
  Vec z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = alpha * x[i];
  return z;
}

double norm2(std::span<const double> x) {
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return std::sqrt(sum);
}

double norm_inf(std::span<const double> x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::abs(v));
  return best;
}

double max_element(std::span<const double> x) {
  MEMLP_EXPECT(!x.empty());
  return *std::max_element(x.begin(), x.end());
}

Vec hadamard(std::span<const double> x, std::span<const double> y) {
  MEMLP_EXPECT(x.size() == y.size());
  Vec z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] * y[i];
  return z;
}

Vec concat(std::initializer_list<std::span<const double>> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Vec out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

Vec slice(std::span<const double> x, std::size_t offset, std::size_t len) {
  MEMLP_EXPECT(offset + len <= x.size());
  return Vec(x.begin() + static_cast<std::ptrdiff_t>(offset),
             x.begin() + static_cast<std::ptrdiff_t>(offset + len));
}

}  // namespace memlp
