#include "linalg/sparse.hpp"

// memlint:allow-file(R10): CSR utilities back the sparse-LDLT study only;
// nothing here sits on the costed solve path the ledger attributes.

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace memlp {

CsrMatrix CsrMatrix::from_dense(const Matrix& dense, double threshold) {
  CsrMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  out.row_offsets_.assign(1, 0);
  out.row_offsets_.reserve(dense.rows() + 1);
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      const double value = dense(i, j);
      if (std::abs(value) > threshold) {
        out.column_indices_.push_back(j);
        out.values_.push_back(value);
      }
    }
    out.row_offsets_.push_back(out.values_.size());
  }
  return out;
}

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets) {
  for (const auto& t : triplets)
    if (t.row >= rows || t.col >= cols)
      throw DimensionError("csr: triplet out of range");
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row_offsets_.assign(1, 0);
  std::size_t current_row = 0;
  for (std::size_t k = 0; k < triplets.size();) {
    // Sum duplicates.
    const std::size_t row = triplets[k].row;
    const std::size_t col = triplets[k].col;
    double sum = 0.0;
    while (k < triplets.size() && triplets[k].row == row &&
           triplets[k].col == col)
      sum += triplets[k++].value;
    while (current_row < row) {
      out.row_offsets_.push_back(out.values_.size());
      ++current_row;
    }
    if (sum != 0.0) {
      out.column_indices_.push_back(col);
      out.values_.push_back(sum);
    }
  }
  while (current_row < rows) {
    out.row_offsets_.push_back(out.values_.size());
    ++current_row;
  }
  return out;
}

double CsrMatrix::density() const noexcept {
  const std::size_t total = rows_ * cols_;
  return total == 0 ? 0.0
                    : static_cast<double>(nnz()) / static_cast<double>(total);
}

Vec CsrMatrix::multiply(std::span<const double> x) const {
  MEMLP_EXPECT_MSG(x.size() == cols_, "csr multiply: size mismatch");
  Vec y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t k = row_offsets_[i]; k < row_offsets_[i + 1]; ++k)
      sum += values_[k] * x[column_indices_[k]];
    y[i] = sum;
  }
  return y;
}

Vec CsrMatrix::multiply_transposed(std::span<const double> x) const {
  MEMLP_EXPECT_MSG(x.size() == rows_, "csr multiply_transposed: mismatch");
  Vec y(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t k = row_offsets_[i]; k < row_offsets_[i + 1]; ++k)
      y[column_indices_[k]] += values_[k] * xi;
  }
  return y;
}

Matrix CsrMatrix::to_dense() const {
  Matrix dense(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = row_offsets_[i]; k < row_offsets_[i + 1]; ++k)
      dense(i, column_indices_[k]) = values_[k];
  return dense;
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  MEMLP_EXPECT(row < rows_ && col < cols_);
  const auto begin = column_indices_.begin() +
                     static_cast<std::ptrdiff_t>(row_offsets_[row]);
  const auto end = column_indices_.begin() +
                   static_cast<std::ptrdiff_t>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - column_indices_.begin())];
}

}  // namespace memlp
