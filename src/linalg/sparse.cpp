#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/par.hpp"
#include "obs/cost_ledger.hpp"

namespace memlp {
namespace {

/// Sparse Schur assembly goes parallel from this many output rows (matches
/// the dense cutoff in core/newton_software.cpp).
constexpr std::size_t kParallelSchurCutoff = 64;

/// Charges one sparse MVM: 2 flops per stored entry, bytes for the value +
/// index streams and both vectors. Closed-form, charged once per call, so
/// the attribution is thread-count-invariant.
void charge_spmv(std::size_t nnz, std::size_t rows, std::size_t cols) {
  obs::CostLedger::charge_active(
      {.flops = 2 * static_cast<std::uint64_t>(nnz),
       .bytes = 16 * static_cast<std::uint64_t>(nnz) +
                8 * static_cast<std::uint64_t>(rows + cols)});
}

}  // namespace

// Format conversion, not arithmetic — nothing to charge.
CsrMatrix CsrMatrix::from_dense(const Matrix& dense,  // memlint:allow(R10)
                                double threshold) {
  CsrMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  out.row_offsets_.assign(1, 0);
  out.row_offsets_.reserve(dense.rows() + 1);
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      const double value = dense(i, j);
      if (std::abs(value) > threshold) {
        out.column_indices_.push_back(j);
        out.values_.push_back(value);
      }
    }
    out.row_offsets_.push_back(out.values_.size());
  }
  return out;
}

// Index canonicalization, not arithmetic — nothing to charge.
CsrMatrix CsrMatrix::from_triplets(std::size_t rows,  // memlint:allow(R10)
                                   std::size_t cols,
                                   std::vector<Triplet> triplets) {
  for (const auto& t : triplets)
    if (t.row >= rows || t.col >= cols)
      throw DimensionError("csr: triplet out of range");
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row_offsets_.assign(1, 0);
  std::size_t current_row = 0;
  for (std::size_t k = 0; k < triplets.size();) {
    // Sum duplicates.
    const std::size_t row = triplets[k].row;
    const std::size_t col = triplets[k].col;
    double sum = 0.0;
    while (k < triplets.size() && triplets[k].row == row &&
           triplets[k].col == col)
      sum += triplets[k++].value;
    while (current_row < row) {
      out.row_offsets_.push_back(out.values_.size());
      ++current_row;
    }
    if (sum != 0.0) {
      out.column_indices_.push_back(col);
      out.values_.push_back(sum);
    }
  }
  while (current_row < rows) {
    out.row_offsets_.push_back(out.values_.size());
    ++current_row;
  }
  return out;
}

double CsrMatrix::density() const noexcept {
  const std::size_t total = rows_ * cols_;
  return total == 0 ? 0.0
                    : static_cast<double>(nnz()) / static_cast<double>(total);
}

// memlint:hot — sparse-baseline MVM kernel.
Vec CsrMatrix::multiply(std::span<const double> x) const {
  MEMLP_EXPECT_MSG(x.size() == cols_, "csr multiply: size mismatch");
  charge_spmv(nnz(), rows_, cols_);
  Vec y(rows_, 0.0);  // memlint:allow(R9): result vector sized once per call; reuse is ROADMAP scale-up work
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t k = row_offsets_[i]; k < row_offsets_[i + 1]; ++k)
      sum += values_[k] * x[column_indices_[k]];
    y[i] = sum;
  }
  return y;
}

// memlint:hot — sparse-baseline transposed MVM kernel.
Vec CsrMatrix::multiply_transposed(std::span<const double> x) const {
  MEMLP_EXPECT_MSG(x.size() == rows_, "csr multiply_transposed: mismatch");
  charge_spmv(nnz(), rows_, cols_);
  Vec y(cols_, 0.0);  // memlint:allow(R9): result vector sized once per call; reuse is ROADMAP scale-up work
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t k = row_offsets_[i]; k < row_offsets_[i + 1]; ++k)
      y[column_indices_[k]] += values_[k] * xi;
  }
  return y;
}

// Index permutation only — nothing to charge.
CsrMatrix CsrMatrix::transposed() const {  // memlint:allow(R10)
  CsrMatrix out;
  out.rows_ = cols_;
  out.cols_ = rows_;
  // Counting sort by column: count per-column entries, prefix-sum into the
  // transposed row offsets, then place. Row-major placement preserves
  // ascending order within each output row, keeping canonical form.
  out.row_offsets_.assign(cols_ + 1, 0);
  for (std::size_t c : column_indices_) ++out.row_offsets_[c + 1];
  for (std::size_t c = 0; c < cols_; ++c)
    out.row_offsets_[c + 1] += out.row_offsets_[c];
  out.column_indices_.resize(nnz());
  out.values_.resize(nnz());
  std::vector<std::size_t> cursor(out.row_offsets_.begin(),
                                  out.row_offsets_.end() - 1);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = row_offsets_[i]; k < row_offsets_[i + 1]; ++k) {
      const std::size_t slot = cursor[column_indices_[k]]++;
      out.column_indices_[slot] = i;
      out.values_[slot] = values_[k];
    }
  return out;
}

CsrMatrix CsrMatrix::scaled(double factor) const {
  CsrMatrix out = *this;
  if (factor == 0.0) {
    // Keep the canonical no-stored-zeros invariant.
    out.row_offsets_.assign(rows_ + 1, 0);
    out.column_indices_.clear();
    out.values_.clear();
    return out;
  }
  for (double& v : out.values_) v *= factor;
  obs::CostLedger::charge_active(
      {.flops = static_cast<std::uint64_t>(nnz()),
       .bytes = 16 * static_cast<std::uint64_t>(nnz())});
  return out;
}

double CsrMatrix::max_abs() const noexcept {
  double best = 0.0;
  for (double v : values_) best = std::max(best, std::abs(v));
  return best;
}

// Format conversion, not arithmetic — nothing to charge.
Matrix CsrMatrix::to_dense() const {  // memlint:allow(R10)
  Matrix dense(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = row_offsets_[i]; k < row_offsets_[i + 1]; ++k)
      dense(i, column_indices_[k]) = values_[k];
  return dense;
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  MEMLP_EXPECT(row < rows_ && col < cols_);
  const auto begin = column_indices_.begin() +
                     static_cast<std::ptrdiff_t>(row_offsets_[row]);
  const auto end = column_indices_.begin() +
                   static_cast<std::ptrdiff_t>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - column_indices_.begin())];
}

// memlint:hot — sparse Schur-assembly kernel on the normal-equations path.
Matrix csr_schur_dense(const CsrMatrix& a, std::span<const double> theta,
                       std::span<const double> shift) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  MEMLP_EXPECT_MSG(theta.size() == n && shift.size() == m,
                   "csr_schur_dense: operand size mismatch");
  const CsrMatrix at = a.transposed();
  {
    // Closed-form charge outside the parallel region: 1 flop per stored
    // entry for the a_ij·θ_j products, 2 per scatter addend (one addend per
    // (row-i entry j, column-j entry) pair = Σ_j nnz_col(j)²), m diagonal
    // adds. Bytes: both CSR streams plus the dense output.
    const auto at_offsets = at.row_offsets();
    std::uint64_t scatter_pairs = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const auto col_nnz =
          static_cast<std::uint64_t>(at_offsets[j + 1] - at_offsets[j]);
      scatter_pairs += col_nnz * col_nnz;
    }
    obs::CostLedger::charge_active(
        {.flops = static_cast<std::uint64_t>(a.nnz()) + 2 * scatter_pairs +
                  static_cast<std::uint64_t>(m),
         .bytes = 32 * static_cast<std::uint64_t>(a.nnz()) +
                  8 * static_cast<std::uint64_t>(m) * m});
  }
  // The dense output IS the product; it is sized exactly once per call.
  Matrix s(m, m);  // memlint:allow(R9)
  const auto a_offsets = a.row_offsets();
  const auto a_cols = a.column_indices();
  const auto a_values = a.values();
  const auto at_offsets = at.row_offsets();
  const auto at_cols = at.column_indices();
  const auto at_values = at.values();
  // Row task i writes only s.row(i); the scatter order within the row is
  // fixed by the CSR structure, so the result is bit-identical at any
  // thread count.
  const auto assemble_row = [&](std::size_t i) {
    const auto out = s.row(i);
    for (std::size_t k = a_offsets[i]; k < a_offsets[i + 1]; ++k) {
      const std::size_t j = a_cols[k];
      const double coef = a_values[k] * theta[j];
      for (std::size_t l = at_offsets[j]; l < at_offsets[j + 1]; ++l)
        out[at_cols[l]] += coef * at_values[l];
    }
    out[i] += shift[i];
  };
  if (m >= kParallelSchurCutoff) {
    par::parallel_for(m, assemble_row);
  } else {
    for (std::size_t i = 0; i < m; ++i) assemble_row(i);
  }
  return s;
}

}  // namespace memlp
