#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace memlp {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);  // memlint:allow(R9): the owning-container ctor is the allocation R9 charges at call sites
  for (const auto& r : rows) {
    MEMLP_EXPECT_MSG(r.size() == cols_, "ragged initializer rows");
    data_.insert(data_.end(), r.begin(), r.end());  // memlint:allow(R9): the owning-container ctor is the allocation R9 charges at call sites
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);  // memlint:allow(R9): identity builder allocates its own result
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(std::span<const double> d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::at(std::size_t i, std::size_t j) {
  MEMLP_EXPECT_MSG(i < rows_ && j < cols_,
                   "index (" << i << "," << j << ") out of " << rows_ << "x"
                             << cols_);
  return (*this)(i, j);
}

double Matrix::at(std::size_t i, std::size_t j) const {
  MEMLP_EXPECT_MSG(i < rows_ && j < cols_,
                   "index (" << i << "," << j << ") out of " << rows_ << "x"
                             << cols_);
  return (*this)(i, j);
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& block) {
  MEMLP_EXPECT_MSG(r0 + block.rows() <= rows_ && c0 + block.cols() <= cols_,
                   "block does not fit");
  for (std::size_t i = 0; i < block.rows(); ++i) {
    const auto src = block.row(i);
    std::copy(src.begin(), src.end(), row(r0 + i).begin() + c0);
  }
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  MEMLP_EXPECT_MSG(r0 + nr <= rows_ && c0 + nc <= cols_,
                   "block out of range");
  Matrix out(nr, nc);
  for (std::size_t i = 0; i < nr; ++i) {
    const auto src = row(r0 + i).subspan(c0, nc);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

Matrix Matrix::transposed() const {  // memlint:allow(R10): layout shuffle, no arithmetic flops to charge
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

double Matrix::max_abs() const noexcept {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

double Matrix::inf_norm() const noexcept {  // memlint:allow(R10): diagnostic norm outside the costed solve path
  double best = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (double v : row(i)) sum += std::abs(v);
    best = std::max(best, sum);
  }
  return best;
}

double Matrix::frobenius_norm() const noexcept {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

bool Matrix::nonnegative() const noexcept {
  return std::all_of(data_.begin(), data_.end(),
                     [](double v) { return v >= 0.0; });
}

Matrix& Matrix::operator+=(const Matrix& other) {
  MEMLP_EXPECT(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += other.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  MEMLP_EXPECT(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= other.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double scale) noexcept {
  for (double& v : data_) v *= scale;
  return *this;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  MEMLP_EXPECT(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t k = 0; k < data_.size(); ++k)
    out.data_[k] = data_[k] * other.data_[k];
  return out;
}

}  // namespace memlp
