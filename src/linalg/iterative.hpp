// Iterative linear-system solvers.
//
// §3.5 of the paper compares against "iterative method such as Gauss-Seidel"
// with O(N^2) per-sweep cost; these implementations back that software
// baseline in bench/complexity_scaling and serve as a general substrate.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace memlp {

/// Options shared by the stationary iterative solvers.
struct IterativeOptions {
  std::size_t max_sweeps = 10'000;
  /// Stop when ||Ax - b||_inf <= tolerance * max(1, ||b||_inf).
  double tolerance = 1e-10;
};

/// Result of an iterative solve.
struct IterativeResult {
  Vec x;
  std::size_t sweeps = 0;
  double residual_inf = 0.0;
  bool converged = false;
};

/// Gauss–Seidel iteration. Convergence is guaranteed for strictly diagonally
/// dominant or SPD matrices; for other inputs the result's `converged` flag
/// must be checked.
IterativeResult gauss_seidel(const Matrix& a, std::span<const double> b,
                             const IterativeOptions& options = {});

/// Jacobi iteration (same contract as gauss_seidel).
IterativeResult jacobi(const Matrix& a, std::span<const double> b,
                       const IterativeOptions& options = {});

/// True when `a` is strictly diagonally dominant by rows.
bool strictly_diagonally_dominant(const Matrix& a);

}  // namespace memlp
