// LU factorization with partial pivoting.
//
// This is the O(N^3) direct solver the paper cites for the software PDIP
// baseline ("Gaussian Elimination method or LU-Decomposition", §3.5), and it
// is also how the simulator evaluates the crossbar's analog linear-system
// solve: the crossbar physically settles to the solution of C·VI = VO in
// O(1); the simulator obtains the identical vector by factoring the varied
// conductance matrix.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace memlp {

/// LU factorization (PA = LU) of a square matrix.
class LuFactorization {
 public:
  /// Factors `a` with a panel-blocked right-looking elimination. Blocking
  /// only reorders *when* rank-1 updates are applied (deferred per panel,
  /// cache-friendly and parallel over trailing rows); every element still
  /// receives its updates in increasing pivot order, so the factor is
  /// bit-identical to the textbook unblocked loop at any thread count.
  /// Throws DimensionError if not square. Singularity is not an exception —
  /// check singular() before calling solve().
  explicit LuFactorization(Matrix a);

  /// True when a zero (or numerically negligible) pivot was met.
  [[nodiscard]] bool singular() const noexcept { return singular_; }

  /// Solves A x = b. Requires !singular().
  [[nodiscard]] Vec solve(std::span<const double> b) const;

  /// Solves A X = B for `b.cols()` right-hand sides in one substitution
  /// pass (column j of the result solves column j of `b`). Per column the
  /// arithmetic — and therefore the result — is bit-identical to solve();
  /// the factor is streamed through the cache once instead of once per
  /// right-hand side. Requires !singular() and b.rows() == size().
  [[nodiscard]] Matrix solve_many(const Matrix& b) const;

  /// Solves A^T x = b (U^T L^T P x = b). Requires !singular().
  [[nodiscard]] Vec solve_transposed(std::span<const double> b) const;

  /// Determinant of A (may overflow to +-inf for large matrices; use
  /// log_abs_determinant for scale analysis).
  [[nodiscard]] double determinant() const noexcept;

  /// log(|det A|); -inf when singular.
  [[nodiscard]] double log_abs_determinant() const noexcept;

  /// Hager-style estimate of ||A^{-1}||_1 (multiply by ||A||_1 for a
  /// condition-number estimate). Returns nullopt when singular.
  [[nodiscard]] std::optional<double> inverse_norm_estimate() const;

  [[nodiscard]] std::size_t size() const noexcept { return lu_.rows(); }

 private:
  Matrix lu_;                      // L (unit diag, below) and U (on/above).
  std::vector<std::size_t> perm_;  // row permutation: row i of PA is perm_[i].
  int perm_sign_ = 1;
  bool singular_ = false;
};

/// One-shot convenience: solves A x = b via LU. Throws NumericalError when A
/// is singular.
Vec lu_solve(const Matrix& a, std::span<const double> b);

}  // namespace memlp
