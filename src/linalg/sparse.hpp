// Compressed sparse row (CSR) matrix.
//
// §3.5 notes that LP constraint matrices are typically sparse; the software
// baselines use CSR for their residual MVMs on sparse workloads, and the
// sparsity-aware crossbar programming (structural zeros are free) mirrors
// the same observation on the hardware side.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace memlp {

/// Immutable CSR matrix of doubles.
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// Compresses a dense matrix; entries with |value| <= threshold drop out.
  static CsrMatrix from_dense(const Matrix& dense, double threshold = 0.0);

  /// Builds from coordinate triplets (row, col, value); duplicates are
  /// summed. Throws DimensionError on out-of-range coordinates.
  struct Triplet {
    std::size_t row = 0;
    std::size_t col = 0;
    double value = 0.0;
  };
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::vector<Triplet> triplets);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  /// Fill fraction (nnz / rows·cols); 0 for an empty matrix.
  [[nodiscard]] double density() const noexcept;

  /// y = A·x.
  [[nodiscard]] Vec multiply(std::span<const double> x) const;

  /// y = Aᵀ·x.
  [[nodiscard]] Vec multiply_transposed(std::span<const double> x) const;

  /// Reconstructs the dense form.
  [[nodiscard]] Matrix to_dense() const;

  /// Element lookup (O(log nnz-in-row)); 0 for structural zeros.
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_{0};
  std::vector<std::size_t> column_indices_;
  std::vector<double> values_;
};

}  // namespace memlp
