// Compressed sparse row (CSR) matrix.
//
// §3.5 notes that LP constraint matrices are typically sparse; since the
// sparse-first pipeline refactor the CSR form is the source of truth for
// lp::LinearProgram constraint matrices: the software baselines run their
// residual MVMs and Schur assembly over CSR, and the sparsity-aware crossbar
// programming (structural zeros are free) mirrors the same observation on
// the hardware side.
//
// Canonical form invariant: within every row the column indices are strictly
// increasing, duplicates are summed at construction, and exact zeros are
// dropped. Both factories and every derived matrix (transposed, scaled)
// preserve it, so structural equality is plain container equality.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace memlp {

/// Immutable CSR matrix of doubles.
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// Compresses a dense matrix; entries with |value| <= threshold drop out.
  static CsrMatrix from_dense(const Matrix& dense, double threshold = 0.0);

  /// Builds from coordinate triplets (row, col, value); duplicates are
  /// summed. Throws DimensionError on out-of-range coordinates.
  struct Triplet {
    std::size_t row = 0;
    std::size_t col = 0;
    double value = 0.0;
  };
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::vector<Triplet> triplets);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  /// Fill fraction (nnz / rows·cols); 0 for an empty matrix.
  [[nodiscard]] double density() const noexcept;

  /// y = A·x.
  [[nodiscard]] Vec multiply(std::span<const double> x) const;

  /// y = Aᵀ·x.
  [[nodiscard]] Vec multiply_transposed(std::span<const double> x) const;

  /// Aᵀ in canonical CSR form (O(nnz)).
  [[nodiscard]] CsrMatrix transposed() const;

  /// factor·A; an exact-zero factor collapses to an empty pattern so the
  /// canonical no-stored-zeros invariant holds.
  [[nodiscard]] CsrMatrix scaled(double factor) const;

  /// Largest absolute stored value (0 when empty) — equals the dense
  /// max-abs because structural zeros cannot exceed any |value|.
  [[nodiscard]] double max_abs() const noexcept;

  /// Reconstructs the dense form.
  [[nodiscard]] Matrix to_dense() const;

  /// Element lookup (O(log nnz-in-row)); 0 for structural zeros.
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  /// Raw CSR views for kernels that walk the structure directly.
  [[nodiscard]] std::span<const std::size_t> row_offsets() const noexcept {
    return row_offsets_;
  }
  [[nodiscard]] std::span<const std::size_t> column_indices() const noexcept {
    return column_indices_;
  }
  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }

  /// Structural equality. Canonical form makes this exact: same shape and
  /// same nonzero entries ⇔ identical containers.
  bool operator==(const CsrMatrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_{0};
  std::vector<std::size_t> column_indices_;
  std::vector<double> values_;
};

/// Sparse normal-equations assembly: S = A·diag(theta)·Aᵀ + diag(shift),
/// returned dense (the LDLᵀ factorization consumes a dense S). Row i of S is
/// accumulated by scattering A's row-i entries against the matching columns
/// of A (via Aᵀ rows), so the cost is nnz + 2·Σ_j nnz_col(j)² instead of the
/// dense 3·n·m(m+1)/2. Parallel over output rows under the memlp::par
/// bit-identical contract: each task owns exactly its own row and the addend
/// order within a row is fixed by the CSR structure, not the thread count.
Matrix csr_schur_dense(const CsrMatrix& a, std::span<const double> theta,
                       std::span<const double> shift);

}  // namespace memlp
