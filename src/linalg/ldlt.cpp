#include "linalg/ldlt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "obs/cost_ledger.hpp"

namespace memlp {

LdltFactorization::LdltFactorization(const Matrix& a) {
  if (!a.square()) throw DimensionError("LDLT requires a square matrix");
  const std::size_t n = a.rows();
  l_ = Matrix::identity(n);
  d_.assign(n, 0.0);
  const double scale = std::max(a.max_abs(), 1.0);

  // Column flops (3 per dot-product term, one divide per subdiagonal
  // entry), accumulated closed-form per column, charged once (~n³/3 total).
  std::uint64_t flops = 0;
  const auto dim = static_cast<std::uint64_t>(n);
  const auto charge_factorization = [&] {
    obs::CostLedger::charge_active({.flops = flops, .bytes = 8 * dim * dim});
  };

  for (std::size_t j = 0; j < n; ++j) {
    const auto col = static_cast<std::uint64_t>(j);
    flops += 3 * col + (dim - 1 - col) * (3 * col + 1);
    double dj = a(j, j);
    for (std::size_t k = 0; k < j; ++k) dj -= l_(j, k) * l_(j, k) * d_[k];
    if (std::abs(dj) <= 1e-13 * scale) {
      failed_ = true;
      charge_factorization();
      return;
    }
    d_[j] = dj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double lij = a(i, j);
      for (std::size_t k = 0; k < j; ++k) lij -= l_(i, k) * l_(j, k) * d_[k];
      l_(i, j) = lij / dj;
    }
  }
  charge_factorization();
}

double LdltFactorization::condition_proxy() const noexcept {
  if (failed_ || d_.empty())
    return std::numeric_limits<double>::infinity();
  double lo = std::abs(d_[0]);
  double hi = lo;
  for (double d : d_) {
    const double a = std::abs(d);
    lo = std::min(lo, a);
    hi = std::max(hi, a);
  }
  if (lo <= 0.0) return std::numeric_limits<double>::infinity();
  return hi / lo;
}

Vec LdltFactorization::solve(std::span<const double> b) const {
  MEMLP_EXPECT_MSG(!failed_, "solve() on a failed LDLT factorization");
  MEMLP_EXPECT(b.size() == l_.rows());
  const std::size_t n = l_.rows();
  const auto dim = static_cast<std::uint64_t>(n);
  obs::CostLedger::charge_active(
      {.flops = 2 * dim * dim + dim, .bytes = 8 * (dim * dim + 2 * dim)});
  // L·y = b (forward), D·z = y, Lᵀ·x = z (backward).
  Vec x(b.begin(), b.end());
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < i; ++k) x[i] -= l_(i, k) * x[k];
  for (std::size_t i = 0; i < n; ++i) x[i] /= d_[i];
  for (std::size_t ii = n; ii-- > 0;)
    for (std::size_t k = ii + 1; k < n; ++k) x[ii] -= l_(k, ii) * x[k];
  return x;
}

}  // namespace memlp
