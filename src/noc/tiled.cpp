#include "noc/tiled.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "linalg/ops.hpp"

namespace memlp::noc {

TiledCrossbarMatrix::TiledCrossbarMatrix(TiledConfig config, Rng rng)
    : config_(config), rng_(rng) {
  if (config_.tile_dim == 0)
    throw ConfigError("tiled crossbar: tile_dim must be > 0");
  config_.xbar.max_dim = config_.tile_dim;
  config_.xbar.validate();
}

std::vector<TiledCrossbarMatrix::BlockRange> TiledCrossbarMatrix::cut(
    std::size_t extent, std::size_t tile_dim) {
  std::vector<BlockRange> ranges;
  for (std::size_t begin = 0; begin < extent; begin += tile_dim)
    ranges.push_back({begin, std::min(tile_dim, extent - begin)});
  return ranges;
}

void TiledCrossbarMatrix::program(const Matrix& a, double full_scale_hint) {
  MEMLP_EXPECT_MSG(a.nonnegative(),
                   "tiled crossbar only represents non-negative matrices");
  MEMLP_EXPECT(a.rows() > 0 && a.cols() > 0);
  rows_ = a.rows();
  cols_ = a.cols();
  row_blocks_ = cut(rows_, config_.tile_dim);
  col_blocks_ = cut(cols_, config_.tile_dim);

  tiles_.clear();
  tiles_.reserve(row_blocks_.size() * col_blocks_.size());
  for (std::size_t bi = 0; bi < row_blocks_.size(); ++bi)
    for (std::size_t bj = 0; bj < col_blocks_.size(); ++bj) {
      tiles_.emplace_back(config_.xbar, rng_.split());
      tiles_.back().program(
          a.block(row_blocks_[bi].begin, col_blocks_[bj].begin,
                  row_blocks_[bi].length, col_blocks_[bj].length),
          full_scale_hint);
    }
  topology_ = make_topology(config_.topology, tiles_.size());
  solve_cache_.reset();
}

void TiledCrossbarMatrix::update_block(std::size_t r0, std::size_t c0,
                                       const Matrix& block) {
  MEMLP_EXPECT(programmed());
  MEMLP_EXPECT(r0 + block.rows() <= rows_ && c0 + block.cols() <= cols_);
  for (std::size_t bi = 0; bi < row_blocks_.size(); ++bi) {
    const auto& rb = row_blocks_[bi];
    const std::size_t r_lo = std::max(r0, rb.begin);
    const std::size_t r_hi = std::min(r0 + block.rows(), rb.begin + rb.length);
    if (r_lo >= r_hi) continue;
    for (std::size_t bj = 0; bj < col_blocks_.size(); ++bj) {
      const auto& cb = col_blocks_[bj];
      const std::size_t c_lo = std::max(c0, cb.begin);
      const std::size_t c_hi =
          std::min(c0 + block.cols(), cb.begin + cb.length);
      if (c_lo >= c_hi) continue;
      const Matrix sub =
          block.block(r_lo - r0, c_lo - c0, r_hi - r_lo, c_hi - c_lo);
      tile(bi, bj).update_block(r_lo - rb.begin, c_lo - cb.begin, sub);
      // New coefficients travel from the controller to the tile's write
      // circuits over the NoC.
      charge_transfer(sub.rows() * sub.cols(),
                      topology_->hops_to_root(tile_index(bi, bj)));
    }
  }
  solve_cache_.reset();
}

Vec TiledCrossbarMatrix::multiply(std::span<const double> x,
                                  xbar::Crossbar::IoBoundary io) {
  MEMLP_EXPECT(programmed());
  MEMLP_EXPECT_MSG(x.size() == cols_, "tiled multiply: size mismatch");
  using IoBoundary = xbar::Crossbar::IoBoundary;
  // Tiles convert at the input when the structure does; partial outputs stay
  // analog into the accumulating arbiters, and the combined output crosses
  // one ADC when requested.
  const IoBoundary tile_io =
      (io == IoBoundary::kBoth || io == IoBoundary::kInputOnly)
          ? IoBoundary::kInputOnly
          : IoBoundary::kNone;
  Vec out(rows_, 0.0);
  for (std::size_t bi = 0; bi < row_blocks_.size(); ++bi) {
    const auto& rb = row_blocks_[bi];
    Vec accumulator(rb.length, 0.0);
    for (std::size_t bj = 0; bj < col_blocks_.size(); ++bj) {
      const auto& cb = col_blocks_[bj];
      const std::size_t t = tile_index(bi, bj);
      // Input segment broadcast root -> tile.
      charge_transfer(cb.length, topology_->hops_to_root(t));
      const Vec partial =
          tile(bi, bj).multiply(x.subspan(cb.begin, cb.length), tile_io);
      ++stats_.tile_settles;
      // Partial result tile -> aggregating arbiter.
      charge_transfer(rb.length, topology_->hops_to_root(t));
      accumulator = amps_.add(accumulator, partial);
    }
    std::copy(accumulator.begin(), accumulator.end(),
              out.begin() + static_cast<std::ptrdiff_t>(rb.begin));
  }
  if (io == IoBoundary::kBoth || io == IoBoundary::kOutputOnly) {
    const xbar::Quantizer adc(config_.xbar.io_bits);
    adc.quantize(out);
  }
  return out;
}

Vec TiledCrossbarMatrix::multiply_transposed(std::span<const double> x,
                                             xbar::Crossbar::IoBoundary io) {
  MEMLP_EXPECT(programmed());
  MEMLP_EXPECT_MSG(x.size() == rows_, "tiled multiply_transposed: mismatch");
  using IoBoundary = xbar::Crossbar::IoBoundary;
  const IoBoundary tile_io =
      (io == IoBoundary::kBoth || io == IoBoundary::kInputOnly)
          ? IoBoundary::kInputOnly
          : IoBoundary::kNone;
  Vec out(cols_, 0.0);
  for (std::size_t bj = 0; bj < col_blocks_.size(); ++bj) {
    const auto& cb = col_blocks_[bj];
    Vec accumulator(cb.length, 0.0);
    for (std::size_t bi = 0; bi < row_blocks_.size(); ++bi) {
      const auto& rb = row_blocks_[bi];
      const std::size_t t = tile_index(bi, bj);
      charge_transfer(rb.length, topology_->hops_to_root(t));
      const Vec partial = tile(bi, bj).multiply_transposed(
          x.subspan(rb.begin, rb.length), tile_io);
      ++stats_.tile_settles;
      charge_transfer(cb.length, topology_->hops_to_root(t));
      accumulator = amps_.add(accumulator, partial);
    }
    std::copy(accumulator.begin(), accumulator.end(),
              out.begin() + static_cast<std::ptrdiff_t>(cb.begin));
  }
  if (io == IoBoundary::kBoth || io == IoBoundary::kOutputOnly) {
    const xbar::Quantizer adc(config_.xbar.io_bits);
    adc.quantize(out);
  }
  return out;
}

Matrix TiledCrossbarMatrix::assemble_effective() const {
  MEMLP_EXPECT(programmed());
  Matrix full(rows_, cols_);
  for (std::size_t bi = 0; bi < row_blocks_.size(); ++bi)
    for (std::size_t bj = 0; bj < col_blocks_.size(); ++bj)
      full.set_block(row_blocks_[bi].begin, col_blocks_[bj].begin,
                     tile(bi, bj).effective());
  return full;
}

std::optional<Vec> TiledCrossbarMatrix::solve(std::span<const double> b,
                                              xbar::Crossbar::IoBoundary io) {
  using IoBoundary = xbar::Crossbar::IoBoundary;
  MEMLP_EXPECT(programmed());
  MEMLP_EXPECT_MSG(rows_ == cols_, "tiled solve requires a square matrix");
  MEMLP_EXPECT(b.size() == rows_);
  // The arbiters connect the tiles into one composite network; boundary
  // voltages cross the NoC once per settle in each direction.
  for (std::size_t t = 0; t < tiles_.size(); ++t)
    charge_transfer(tiles_[t].rows() + tiles_[t].cols(),
                    topology_->hops_to_root(t));
  ++stats_.global_settles;
  if (!solve_cache_) solve_cache_.emplace(assemble_effective());
  if (solve_cache_->singular()) return std::nullopt;
  // Voltage I/O crosses the structure boundary with the tiles' precision.
  const xbar::Quantizer converter(config_.xbar.io_bits);
  const bool dac = io == IoBoundary::kBoth || io == IoBoundary::kInputOnly;
  const bool adc = io == IoBoundary::kBoth || io == IoBoundary::kOutputOnly;
  Vec x = solve_cache_->solve(dac ? converter.quantized(b)
                                  : Vec(b.begin(), b.end()));
  if (!std::all_of(x.begin(), x.end(),
                   [](double v) { return std::isfinite(v); }))
    return std::nullopt;
  if (adc) converter.quantize(x);
  return x;
}

BlockSolveResult TiledCrossbarMatrix::solve_block_jacobi(
    std::span<const double> b, const BlockSolveOptions& options) {
  MEMLP_EXPECT(programmed());
  MEMLP_EXPECT_MSG(rows_ == cols_, "block-Jacobi requires a square matrix");
  MEMLP_EXPECT(b.size() == rows_);
  MEMLP_EXPECT_MSG(row_blocks_.size() == col_blocks_.size(),
                   "block-Jacobi requires a square tile grid");
  for (std::size_t k = 0; k < row_blocks_.size(); ++k)
    MEMLP_EXPECT_MSG(row_blocks_[k].length == col_blocks_[k].length,
                     "block-Jacobi requires square diagonal tiles");

  BlockSolveResult result;
  result.x.assign(rows_, 0.0);
  const double threshold = options.tolerance * std::max(1.0, norm_inf(b));
  const std::size_t nb = row_blocks_.size();
  for (std::size_t sweep = 1; sweep <= options.max_sweeps; ++sweep) {
    Vec next(rows_, 0.0);
    for (std::size_t bi = 0; bi < nb; ++bi) {
      const auto& rb = row_blocks_[bi];
      Vec rhs = slice(b, rb.begin, rb.length);
      for (std::size_t bj = 0; bj < nb; ++bj) {
        if (bj == bi) continue;
        const auto& cb = col_blocks_[bj];
        const std::size_t t = tile_index(bi, bj);
        charge_transfer(cb.length, topology_->hops(tile_index(bj, bj), t));
        const Vec contribution = tile(bi, bj).multiply(
            std::span<const double>(result.x).subspan(cb.begin, cb.length));
        ++stats_.tile_settles;
        charge_transfer(rb.length, topology_->hops(t, tile_index(bi, bi)));
        rhs = amps_.sub(rhs, contribution);
      }
      auto local = tile(bi, bi).solve(rhs);
      ++stats_.tile_settles;
      if (!local) return result;  // diagonal tile singular: no convergence
      std::copy(local->begin(), local->end(),
                next.begin() + static_cast<std::ptrdiff_t>(rb.begin));
    }
    result.x.swap(next);
    result.sweeps = sweep;
    const Vec residual = sub(multiply(result.x), b);
    result.residual_inf = norm_inf(residual);
    if (result.residual_inf <= threshold) {
      result.converged = true;
      break;
    }
    if (!std::isfinite(result.residual_inf)) break;
  }
  return result;
}

xbar::CrossbarStats TiledCrossbarMatrix::crossbar_stats() const noexcept {
  xbar::CrossbarStats total;
  for (const auto& t : tiles_) total += t.stats();
  return total;
}

void TiledCrossbarMatrix::reset_stats() noexcept {
  stats_ = {};
  amps_.reset_stats();
  for (auto& t : tiles_) t.reset_stats();
}

void TiledCrossbarMatrix::charge_transfer(std::size_t values,
                                          std::size_t hops) noexcept {
  ++stats_.transfers;
  stats_.value_hops += values * hops;
}

}  // namespace memlp::noc
