#include "noc/tiled.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/par.hpp"
#include "linalg/ops.hpp"
#include "obs/cost_ledger.hpp"

namespace memlp::noc {
namespace {

/// Per-thread counterpart of TiledCrossbarMatrix::charge_transfer: tasks in
/// a parallel region charge a local NocStats, merged in tile order after.
/// The cost ledger is charged directly — its per-thread slots and call-path
/// inheritance keep the attribution thread-count-invariant.
void charge(NocStats& stats, std::size_t values, std::size_t hops) noexcept {
  ++stats.transfers;
  stats.value_hops += values * hops;
  obs::CostLedger::charge_active({.noc_value_hops = values * hops});
}

}  // namespace

TiledCrossbarMatrix::TiledCrossbarMatrix(TiledConfig config, Rng rng)
    : config_(config), rng_(rng) {
  if (config_.tile_dim == 0)
    throw ConfigError("tiled crossbar: tile_dim must be > 0");
  config_.xbar.max_dim = config_.tile_dim;
  config_.xbar.validate();
  settle_cache_ =
      FactorizationCache(xbar::settle_cache_options(config_.xbar.settle_mode));
}

std::vector<TiledCrossbarMatrix::BlockRange> TiledCrossbarMatrix::cut(
    std::size_t extent, std::size_t tile_dim) {
  std::vector<BlockRange> ranges;
  for (std::size_t begin = 0; begin < extent; begin += tile_dim)
    ranges.push_back({begin, std::min(tile_dim, extent - begin)});
  return ranges;
}

void TiledCrossbarMatrix::program(const Matrix& a, double full_scale_hint) {
  MEMLP_EXPECT_MSG(a.nonnegative(),
                   "tiled crossbar only represents non-negative matrices");
  MEMLP_EXPECT(a.rows() > 0 && a.cols() > 0);
  rows_ = a.rows();
  cols_ = a.cols();
  row_blocks_ = cut(rows_, config_.tile_dim);
  col_blocks_ = cut(cols_, config_.tile_dim);

  tiles_.clear();
  tiles_.reserve(row_blocks_.size() * col_blocks_.size());
  tile_zero_.assign(row_blocks_.size() * col_blocks_.size(), 0);
  full_scale_hint_ = full_scale_hint;
  // Split the RNG serially in tile order so every tile owns the same stream
  // regardless of thread count, then program the tiles in parallel — each
  // write sequence draws only from the tile's own stream. Tiles whose block
  // is all-zero are skipped entirely (structural zeros cost nothing to
  // represent); they still own their RNG stream so the other tiles' draws
  // are unaffected, and are lazily materialized if a write lands on them.
  for (std::size_t bi = 0; bi < row_blocks_.size(); ++bi)
    for (std::size_t bj = 0; bj < col_blocks_.size(); ++bj)
      tiles_.emplace_back(config_.xbar, rng_.split());
  par::parallel_for(
      tiles_.size(),
      [&](std::size_t t) {
        const std::size_t bi = t / col_blocks_.size();
        const std::size_t bj = t % col_blocks_.size();
        const Matrix block =
            a.block(row_blocks_[bi].begin, col_blocks_[bj].begin,
                    row_blocks_[bi].length, col_blocks_[bj].length);
        if (block.max_abs() == 0.0) {
          tile_zero_[t] = 1;  // each task owns its own slot
          return;
        }
        tiles_[t].program(block, full_scale_hint);
      },
      config_.threads);
  topology_ = make_topology(config_.topology, tiles_.size());
  // Every tile re-drew its cells: drop the assembly and the factorization.
  composite_ = Matrix();
  settle_cache_.invalidate();
}

void TiledCrossbarMatrix::materialize_tile(std::size_t bi, std::size_t bj) {
  const std::size_t t = tile_index(bi, bj);
  if (tile_zero_[t] == 0) return;
  // The tile was skipped at program time; give it its deferred all-zero
  // program (drawing only from its own stream) so the write below can land.
  tiles_[t].program(Matrix(row_blocks_[bi].length, col_blocks_[bj].length),
                    full_scale_hint_);
  tile_zero_[t] = 0;
}

void TiledCrossbarMatrix::update_block(std::size_t r0, std::size_t c0,
                                       const Matrix& block) {
  MEMLP_EXPECT(programmed());
  MEMLP_EXPECT(r0 + block.rows() <= rows_ && c0 + block.cols() <= cols_);
  // Collect the affected tiles serially, then dispatch the sub-block writes
  // in parallel: each task touches one tile (its own RNG stream) and charges
  // a local NocStats, merged in task order below.
  struct UpdateTask {
    std::size_t bi, bj;
    std::size_t r_lo, c_lo;
    Matrix sub;
  };
  std::vector<UpdateTask> tasks;
  for (std::size_t bi = 0; bi < row_blocks_.size(); ++bi) {
    const auto& rb = row_blocks_[bi];
    const std::size_t r_lo = std::max(r0, rb.begin);
    const std::size_t r_hi = std::min(r0 + block.rows(), rb.begin + rb.length);
    if (r_lo >= r_hi) continue;
    for (std::size_t bj = 0; bj < col_blocks_.size(); ++bj) {
      const auto& cb = col_blocks_[bj];
      const std::size_t c_lo = std::max(c0, cb.begin);
      const std::size_t c_hi =
          std::min(c0 + block.cols(), cb.begin + cb.length);
      if (c_lo >= c_hi) continue;
      materialize_tile(bi, bj);  // serial: before the parallel dispatch
      tasks.push_back({bi, bj, r_lo, c_lo,
                       block.block(r_lo - r0, c_lo - c0, r_hi - r_lo,
                                   c_hi - c_lo)});
    }
  }
  std::vector<NocStats> local(tasks.size());
  std::vector<unsigned char> changed(tasks.size(), 0);
  par::parallel_for(
      tasks.size(),
      [&](std::size_t k) {
        const UpdateTask& task = tasks[k];
        const auto& rb = row_blocks_[task.bi];
        const auto& cb = col_blocks_[task.bj];
        xbar::Crossbar& t = tile(task.bi, task.bj);
        const std::size_t cells_before = t.stats().cells_written;
        const std::size_t programs_before = t.stats().full_programs;
        t.update_block(task.r_lo - rb.begin, task.c_lo - cb.begin, task.sub);
        // A full re-program (full-scale overflow) re-draws the whole tile
        // even when no incremental cell changed.
        changed[k] = t.stats().cells_written != cells_before ||
                     t.stats().full_programs != programs_before;
        // New coefficients travel from the controller to the tile's write
        // circuits over the NoC.
        charge(local[k], task.sub.rows() * task.sub.cols(),
               topology_->hops_to_root(tile_index(task.bi, task.bj)));
      },
      config_.threads);
  for (const NocStats& s : local) stats_ += s;
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    if (!changed[k]) continue;
    note_tile_dirty(tasks[k].bi, tasks[k].bj, tasks[k].r_lo,
                    tasks[k].r_lo + tasks[k].sub.rows());
  }
}

void TiledCrossbarMatrix::note_tile_dirty(std::size_t bi, std::size_t bj,
                                          std::size_t r_lo, std::size_t r_hi) {
  const auto& rb = row_blocks_[bi];
  // Half-select disturb (and a full tile re-program) can move any row of the
  // tile, not just the written ones; widen the dirty range accordingly.
  if (config_.xbar.write_scheme.half_select_disturb > 0.0) {
    r_lo = rb.begin;
    r_hi = rb.begin + rb.length;
  }
  for (std::size_t r = r_lo; r < r_hi; ++r) settle_cache_.note_row(r);
  // Keep the cached assembly in sync (cheap: one tile block).
  if (!composite_.empty())
    composite_.set_block(rb.begin, col_blocks_[bj].begin,
                         tile(bi, bj).effective());
}

std::size_t TiledCrossbarMatrix::update_cells(
    std::span<const xbar::CellUpdate> updates) {
  MEMLP_EXPECT(programmed());
  // Group the scattered cells by owning tile, preserving order within each
  // tile (tiles own independent RNG streams, so per-tile order is all that
  // matters for determinism).
  struct TileBatch {
    std::size_t bi = 0, bj = 0;
    std::vector<xbar::CellUpdate> cells;  // tile-local coordinates
    std::size_t row_lo = 0, row_hi = 0;   // global dirty row span
  };
  std::vector<TileBatch> batches;
  std::vector<std::size_t> batch_of(tiles_.size(), tiles_.size());
  for (const xbar::CellUpdate& u : updates) {
    MEMLP_EXPECT(u.row < rows_ && u.col < cols_);
    const std::size_t bi = u.row / config_.tile_dim;
    const std::size_t bj = u.col / config_.tile_dim;
    const std::size_t t = tile_index(bi, bj);
    if (batch_of[t] == tiles_.size()) {
      materialize_tile(bi, bj);  // serial: before the parallel dispatch
      batch_of[t] = batches.size();
      batches.push_back({bi, bj, {}, u.row, u.row + 1});
    }
    TileBatch& batch = batches[batch_of[t]];
    batch.cells.push_back({u.row - row_blocks_[bi].begin,
                           u.col - col_blocks_[bj].begin, u.value});
    batch.row_lo = std::min(batch.row_lo, u.row);
    batch.row_hi = std::max(batch.row_hi, u.row + 1);
  }
  std::vector<NocStats> local(batches.size());
  std::vector<std::size_t> changed(batches.size(), 0);
  std::vector<unsigned char> reprogrammed(batches.size(), 0);
  par::parallel_for(
      batches.size(),
      [&](std::size_t k) {
        const TileBatch& batch = batches[k];
        xbar::Crossbar& t = tile(batch.bi, batch.bj);
        const std::size_t programs_before = t.stats().full_programs;
        changed[k] = t.update_cells(batch.cells);
        reprogrammed[k] = t.stats().full_programs != programs_before;
        charge(local[k], batch.cells.size(),
               topology_->hops_to_root(tile_index(batch.bi, batch.bj)));
      },
      config_.threads);
  std::size_t total_changed = 0;
  for (std::size_t k = 0; k < batches.size(); ++k) {
    stats_ += local[k];
    total_changed += changed[k];
    if (changed[k] == 0 && !reprogrammed[k]) continue;
    const auto& rb = row_blocks_[batches[k].bi];
    // A full-scale overflow re-programs (re-draws) the whole tile; otherwise
    // only the touched rows can have moved.
    if (reprogrammed[k])
      note_tile_dirty(batches[k].bi, batches[k].bj, rb.begin,
                      rb.begin + rb.length);
    else
      note_tile_dirty(batches[k].bi, batches[k].bj, batches[k].row_lo,
                      batches[k].row_hi);
  }
  return total_changed;
}

Vec TiledCrossbarMatrix::multiply(std::span<const double> x,
                                  xbar::Crossbar::IoBoundary io) {
  MEMLP_EXPECT(programmed());
  MEMLP_EXPECT_MSG(x.size() == cols_, "tiled multiply: size mismatch");
  using IoBoundary = xbar::Crossbar::IoBoundary;
  // Tiles convert at the input when the structure does; partial outputs stay
  // analog into the accumulating arbiters, and the combined output crosses
  // one ADC when requested.
  const IoBoundary tile_io =
      (io == IoBoundary::kBoth || io == IoBoundary::kInputOnly)
          ? IoBoundary::kInputOnly
          : IoBoundary::kNone;
  Vec out(rows_, 0.0);
  // Block rows are independent: each task owns every tile of its row (their
  // RNG streams included), accumulates partials in bj order — the exact
  // serial summation chain — and writes a disjoint slice of `out`. NoC and
  // amplifier counters land in per-task locals, merged in row order below.
  std::vector<NocStats> local(row_blocks_.size());
  std::vector<xbar::AmplifierBank> banks(row_blocks_.size());
  par::parallel_for(
      row_blocks_.size(),
      [&](std::size_t bi) {
        const auto& rb = row_blocks_[bi];
        Vec accumulator(rb.length, 0.0);
        for (std::size_t bj = 0; bj < col_blocks_.size(); ++bj) {
          const auto& cb = col_blocks_[bj];
          const std::size_t t = tile_index(bi, bj);
          // A zero shard contributes nothing: no broadcast, no settle.
          if (tile_zero_[t] != 0) continue;
          // Input segment broadcast root -> tile.
          charge(local[bi], cb.length, topology_->hops_to_root(t));
          const Vec partial =
              tile(bi, bj).multiply(x.subspan(cb.begin, cb.length), tile_io);
          ++local[bi].tile_settles;
          // Partial result tile -> aggregating arbiter.
          charge(local[bi], rb.length, topology_->hops_to_root(t));
          accumulator = banks[bi].add(accumulator, partial);
        }
        std::copy(accumulator.begin(), accumulator.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(rb.begin));
      },
      config_.threads);
  for (std::size_t bi = 0; bi < row_blocks_.size(); ++bi) {
    stats_ += local[bi];
    amps_.absorb(banks[bi].stats());
  }
  if (io == IoBoundary::kBoth || io == IoBoundary::kOutputOnly) {
    const xbar::Quantizer adc(config_.xbar.io_bits);
    adc.quantize(out);
  }
  return out;
}

Vec TiledCrossbarMatrix::multiply_transposed(std::span<const double> x,
                                             xbar::Crossbar::IoBoundary io) {
  MEMLP_EXPECT(programmed());
  MEMLP_EXPECT_MSG(x.size() == rows_, "tiled multiply_transposed: mismatch");
  using IoBoundary = xbar::Crossbar::IoBoundary;
  const IoBoundary tile_io =
      (io == IoBoundary::kBoth || io == IoBoundary::kInputOnly)
          ? IoBoundary::kInputOnly
          : IoBoundary::kNone;
  Vec out(cols_, 0.0);
  // Mirror of multiply(): block columns are independent, each task owns the
  // tiles of its column and accumulates in bi order.
  std::vector<NocStats> local(col_blocks_.size());
  std::vector<xbar::AmplifierBank> banks(col_blocks_.size());
  par::parallel_for(
      col_blocks_.size(),
      [&](std::size_t bj) {
        const auto& cb = col_blocks_[bj];
        Vec accumulator(cb.length, 0.0);
        for (std::size_t bi = 0; bi < row_blocks_.size(); ++bi) {
          const auto& rb = row_blocks_[bi];
          const std::size_t t = tile_index(bi, bj);
          // A zero shard contributes nothing: no broadcast, no settle.
          if (tile_zero_[t] != 0) continue;
          charge(local[bj], rb.length, topology_->hops_to_root(t));
          const Vec partial = tile(bi, bj).multiply_transposed(
              x.subspan(rb.begin, rb.length), tile_io);
          ++local[bj].tile_settles;
          charge(local[bj], cb.length, topology_->hops_to_root(t));
          accumulator = banks[bj].add(accumulator, partial);
        }
        std::copy(accumulator.begin(), accumulator.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(cb.begin));
      },
      config_.threads);
  for (std::size_t bj = 0; bj < col_blocks_.size(); ++bj) {
    stats_ += local[bj];
    amps_.absorb(banks[bj].stats());
  }
  if (io == IoBoundary::kBoth || io == IoBoundary::kOutputOnly) {
    const xbar::Quantizer adc(config_.xbar.io_bits);
    adc.quantize(out);
  }
  return out;
}

Matrix TiledCrossbarMatrix::assemble_effective() const {
  MEMLP_EXPECT(programmed());
  Matrix full(rows_, cols_);
  // Zero shards hold no cells; their block of `full` stays zero-initialized.
  for (std::size_t bi = 0; bi < row_blocks_.size(); ++bi)
    for (std::size_t bj = 0; bj < col_blocks_.size(); ++bj)
      if (!tile_is_zero(bi, bj))
        full.set_block(row_blocks_[bi].begin, col_blocks_[bj].begin,
                       tile(bi, bj).effective());
  return full;
}

std::optional<Vec> TiledCrossbarMatrix::solve(std::span<const double> b,
                                              xbar::Crossbar::IoBoundary io) {
  using IoBoundary = xbar::Crossbar::IoBoundary;
  MEMLP_EXPECT(programmed());
  MEMLP_EXPECT_MSG(rows_ == cols_, "tiled solve requires a square matrix");
  MEMLP_EXPECT(b.size() == rows_);
  if (composite_.empty()) composite_ = assemble_effective();
  if (!settle_cache_.prepare(composite_)) {
    // A singular composite network never settles: no boundary voltages move
    // and nothing is charged — only the failure is recorded.
    ++stats_.failed_global_settles;
    return std::nullopt;
  }
  // The arbiters connect the tiles into one composite network; boundary
  // voltages cross the NoC once per settle in each direction. Zero shards
  // are not wired in — they carry no cells and move no boundary voltages.
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    if (tile_zero_[t] != 0) continue;
    charge_transfer(tiles_[t].rows() + tiles_[t].cols(),
                    topology_->hops_to_root(t));
  }
  ++stats_.global_settles;
  obs::CostLedger::charge_active({.settles = 1});
  // Voltage I/O crosses the structure boundary with the tiles' precision.
  const xbar::Quantizer converter(config_.xbar.io_bits);
  const bool dac = io == IoBoundary::kBoth || io == IoBoundary::kInputOnly;
  const bool adc = io == IoBoundary::kBoth || io == IoBoundary::kOutputOnly;
  Vec x = settle_cache_.solve(dac ? converter.quantized(b)
                                  : Vec(b.begin(), b.end()));
  if (!std::all_of(x.begin(), x.end(),
                   [](double v) { return std::isfinite(v); })) {
    // The settle ran (and was charged) but read out garbage.
    ++stats_.failed_global_settles;
    return std::nullopt;
  }
  if (adc) converter.quantize(x);
  return x;
}

BlockSolveResult TiledCrossbarMatrix::solve_block_jacobi(
    std::span<const double> b, const BlockSolveOptions& options) {
  MEMLP_EXPECT(programmed());
  MEMLP_EXPECT_MSG(rows_ == cols_, "block-Jacobi requires a square matrix");
  MEMLP_EXPECT(b.size() == rows_);
  MEMLP_EXPECT_MSG(row_blocks_.size() == col_blocks_.size(),
                   "block-Jacobi requires a square tile grid");
  for (std::size_t k = 0; k < row_blocks_.size(); ++k)
    MEMLP_EXPECT_MSG(row_blocks_[k].length == col_blocks_[k].length,
                     "block-Jacobi requires square diagonal tiles");

  BlockSolveResult result;
  result.x.assign(rows_, 0.0);
  const double threshold = options.tolerance * std::max(1.0, norm_inf(b));
  const std::size_t nb = row_blocks_.size();
  // Convergence is judged against the effective matrix the tiles actually
  // realize, read controller-side: routing the residual check through
  // multiply() would push it across the ADC and read-noise path, which can
  // stall convergence near tolerance and inflates tile_settles/NoC counters
  // by a full MVM per sweep. Assembling once up front is valid because the
  // tiles are not rewritten during the sweeps.
  const Matrix effective = assemble_effective();
  for (std::size_t sweep = 1; sweep <= options.max_sweeps; ++sweep) {
    Vec next(rows_, 0.0);
    // Block rows relax independently within a sweep (Jacobi, not
    // Gauss-Seidel): each task reads only the previous iterate, owns every
    // tile of its row, and writes a disjoint slice of `next`.
    std::vector<NocStats> local(nb);
    std::vector<xbar::AmplifierBank> banks(nb);
    std::vector<unsigned char> singular(nb, 0);
    par::parallel_for(
        nb,
        [&](std::size_t bi) {
          const auto& rb = row_blocks_[bi];
          // An all-zero diagonal block can never settle to a solution.
          if (tile_is_zero(bi, bi)) {
            singular[bi] = 1;
            return;
          }
          Vec rhs = slice(b, rb.begin, rb.length);
          for (std::size_t bj = 0; bj < nb; ++bj) {
            if (bj == bi) continue;
            if (tile_is_zero(bi, bj)) continue;  // zero shard: no coupling
            const auto& cb = col_blocks_[bj];
            const std::size_t t = tile_index(bi, bj);
            charge(local[bi], cb.length,
                   topology_->hops(tile_index(bj, bj), t));
            const Vec contribution = tile(bi, bj).multiply(
                std::span<const double>(result.x)
                    .subspan(cb.begin, cb.length));
            ++local[bi].tile_settles;
            charge(local[bi], rb.length,
                   topology_->hops(t, tile_index(bi, bi)));
            rhs = banks[bi].sub(rhs, contribution);
          }
          auto block_x = tile(bi, bi).solve(rhs);
          ++local[bi].tile_settles;
          if (!block_x) {
            singular[bi] = 1;
            return;
          }
          std::copy(block_x->begin(), block_x->end(),
                    next.begin() + static_cast<std::ptrdiff_t>(rb.begin));
        },
        config_.threads);
    for (std::size_t bi = 0; bi < nb; ++bi) {
      stats_ += local[bi];
      amps_.absorb(banks[bi].stats());
    }
    // A singular diagonal tile means no convergence. (All block rows of the
    // sweep still run — required for thread-count-invariant stats.)
    if (std::find(singular.begin(), singular.end(), 1) != singular.end())
      return result;
    result.x.swap(next);
    result.sweeps = sweep;
    const Vec residual = sub(gemv(effective, result.x), b);
    result.residual_inf = norm_inf(residual);
    if (result.residual_inf <= threshold) {
      result.converged = true;
      break;
    }
    if (!std::isfinite(result.residual_inf)) break;
  }
  return result;
}

xbar::CrossbarStats TiledCrossbarMatrix::crossbar_stats() const noexcept {
  xbar::CrossbarStats total;
  for (const auto& t : tiles_) total += t.stats();
  return total;
}

void TiledCrossbarMatrix::reset_stats() noexcept {
  stats_ = {};
  amps_.reset_stats();
  for (auto& t : tiles_) t.reset_stats();
}

void TiledCrossbarMatrix::charge_transfer(std::size_t values,
                                          std::size_t hops) noexcept {
  ++stats_.transfers;
  stats_.value_hops += values * hops;
  obs::CostLedger::charge_active({.noc_value_hops = values * hops});
}

}  // namespace memlp::noc
