#include "noc/topology.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace memlp::noc {

HierarchicalTopology::HierarchicalTopology(std::size_t num_tiles)
    : num_tiles_(num_tiles) {
  MEMLP_EXPECT(num_tiles >= 1);
  // Depth = ceil(log4(num_tiles)); arbiters = sum of internal levels.
  std::size_t capacity = 1;
  while (capacity < num_tiles_) {
    capacity *= 4;
    ++depth_;
  }
  std::size_t level_nodes = 1;
  for (std::size_t level = 0; level < depth_; ++level) {
    num_arbiters_ += level_nodes;
    level_nodes *= 4;
  }
  if (depth_ == 0) num_arbiters_ = 1;  // single tile still has its arbiter
}

std::size_t HierarchicalTopology::hops_to_root(std::size_t tile) const {
  MEMLP_EXPECT(tile < num_tiles_);
  return depth_;
}

std::size_t HierarchicalTopology::hops(std::size_t from,
                                       std::size_t to) const {
  MEMLP_EXPECT(from < num_tiles_ && to < num_tiles_);
  if (from == to) return 0;
  // Walk both leaves up the 4-ary tree to their lowest common ancestor.
  std::size_t a = from;
  std::size_t b = to;
  std::size_t distance = 0;
  while (a != b) {
    a /= 4;
    b /= 4;
    distance += 2;
  }
  return distance;
}

MeshTopology::MeshTopology(std::size_t num_tiles) : num_tiles_(num_tiles) {
  MEMLP_EXPECT(num_tiles >= 1);
  side_ = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_tiles))));
}

std::size_t MeshTopology::hops_to_root(std::size_t tile) const {
  return hops(tile, 0);
}

std::size_t MeshTopology::hops(std::size_t from, std::size_t to) const {
  MEMLP_EXPECT(from < num_tiles_ && to < num_tiles_);
  const auto xy = [this](std::size_t t) {
    return std::pair{t % side_, t / side_};
  };
  const auto [fx, fy] = xy(from);
  const auto [tx, ty] = xy(to);
  const std::size_t dx = fx > tx ? fx - tx : tx - fx;
  const std::size_t dy = fy > ty ? fy - ty : ty - fy;
  return dx + dy;
}

std::unique_ptr<Topology> make_topology(TopologyKind kind,
                                        std::size_t num_tiles) {
  switch (kind) {
    case TopologyKind::kHierarchical:
      return std::make_unique<HierarchicalTopology>(num_tiles);
    case TopologyKind::kMesh:
      return std::make_unique<MeshTopology>(num_tiles);
  }
  return nullptr;  // unreachable
}

}  // namespace memlp::noc
