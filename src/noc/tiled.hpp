// A large logical matrix spread across multiple crossbar tiles behind an
// analog NoC (§3.4, Fig. 3).
//
// The matrix is cut into a grid of blocks of at most `tile_dim` per side;
// each block lives on its own crossbar tile. The arbiters:
//   * broadcast input-voltage segments to the tiles of a block column,
//   * accumulate partial bit-line outputs of a block row with summing
//     amplifiers,
//   * for solve mode, wire the tiles into one composite Kirchhoff network
//     ("data transfers maintain analog form") so the whole structure settles
//     to the solution of the assembled system — one *global settle*.
//
// A block-Jacobi iterative solve is also provided (`solve_block_jacobi`) as
// the distributed-control alternative where a single composite settle is not
// available; bench/ablation_noc compares the two.
//
// All data movement is counted in NocStats (values × hops) and priced by
// perf::HardwareModel.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "crossbar/amplifier.hpp"
#include "crossbar/crossbar.hpp"
#include "noc/topology.hpp"

namespace memlp::noc {

/// Aggregated operation counters for the tiled structure.
struct NocStats {
  std::size_t transfers = 0;        ///< vector segments moved over the NoC.
  std::size_t value_hops = 0;       ///< Σ (segment length × hop count).
  std::size_t global_settles = 0;   ///< composite solve settles.
  std::size_t tile_settles = 0;     ///< per-tile MVM/solve settles.
  /// Composite solve attempts that produced no usable solution (singular
  /// composite network — nothing settles, nothing is charged — or a
  /// non-finite readout).
  std::size_t failed_global_settles = 0;

  NocStats& operator+=(const NocStats& other) noexcept {
    transfers += other.transfers;
    value_hops += other.value_hops;
    global_settles += other.global_settles;
    tile_settles += other.tile_settles;
    failed_global_settles += other.failed_global_settles;
    return *this;
  }

  /// Counter-wise difference (for phase snapshots).
  [[nodiscard]] NocStats since(const NocStats& earlier) const noexcept {
    return {transfers - earlier.transfers, value_hops - earlier.value_hops,
            global_settles - earlier.global_settles,
            tile_settles - earlier.tile_settles,
            failed_global_settles - earlier.failed_global_settles};
  }
};

/// Configuration of the tiled structure.
struct TiledConfig {
  /// Maximum crossbar side length (manufacturing limit, §3.4).
  std::size_t tile_dim = 128;
  TopologyKind topology = TopologyKind::kHierarchical;
  /// Per-tile crossbar configuration (its max_dim is overridden by
  /// tile_dim).
  xbar::CrossbarConfig xbar{};
  /// Threads for per-tile operations (program/update/MVM/block-Jacobi);
  /// 0 = par::default_threads(). Results are bit-identical at any value:
  /// every tile owns a split RNG stream and stat counters are accumulated
  /// per thread, then merged in tile order (see docs/parallelism.md).
  std::size_t threads = 0;
};

/// Options/result for the block-Jacobi distributed solve.
struct BlockSolveOptions {
  std::size_t max_sweeps = 200;
  double tolerance = 1e-9;
};

struct BlockSolveResult {
  Vec x;
  std::size_t sweeps = 0;
  double residual_inf = 0.0;
  bool converged = false;
};

/// A non-negative logical matrix held across a grid of crossbar tiles.
class TiledCrossbarMatrix {
 public:
  TiledCrossbarMatrix(TiledConfig config, Rng rng);

  /// Programs the tile grid to represent `a` (non-negative). The optional
  /// full-scale hint is forwarded to every tile (see Crossbar::program).
  void program(const Matrix& a, double full_scale_hint = 0.0);

  [[nodiscard]] bool programmed() const noexcept { return rows_ != 0; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t num_tiles() const noexcept {
    return tiles_.size();
  }
  /// Tiles whose block was all-zero at program time and that have not been
  /// written since. Such shards hold no cells: programming, settles, and NoC
  /// traffic are all skipped for them (structural zeros are free).
  [[nodiscard]] std::size_t num_zero_tiles() const noexcept {
    std::size_t zeros = 0;
    for (const unsigned char z : tile_zero_) zeros += z;
    return zeros;
  }
  [[nodiscard]] const Topology& topology() const { return *topology_; }

  /// Rewrites the rectangular region with origin (r0, c0), dispatching
  /// sub-blocks to the affected tiles.
  void update_block(std::size_t r0, std::size_t c0, const Matrix& block);

  /// Rewrites a batch of scattered cells (global coordinates), grouping them
  /// by tile and dispatching one batched write per affected tile — the
  /// per-PDIP-iteration diagonal refresh path. Returns the number of cells
  /// whose programmed level actually changed.
  std::size_t update_cells(std::span<const xbar::CellUpdate> updates);

  /// Distributed analog MVM: ≈ A·x. The IoBoundary selects which DAC/ADC
  /// conversions the operation crosses (see xbar::Crossbar::IoBoundary).
  [[nodiscard]] Vec multiply(
      std::span<const double> x,
      xbar::Crossbar::IoBoundary io = xbar::Crossbar::IoBoundary::kBoth);

  /// Distributed analog MVM from the other side: ≈ Aᵀ·x.
  [[nodiscard]] Vec multiply_transposed(
      std::span<const double> x,
      xbar::Crossbar::IoBoundary io = xbar::Crossbar::IoBoundary::kBoth);

  /// Composite-network solve of A·x = b (square matrices): the arbiters wire
  /// all tiles into one Kirchhoff network and the structure settles once.
  /// Returns nullopt when the effective composite matrix is singular.
  [[nodiscard]] std::optional<Vec> solve(
      std::span<const double> b,
      xbar::Crossbar::IoBoundary io = xbar::Crossbar::IoBoundary::kBoth);

  /// Distributed block-Jacobi solve using only per-tile settles (diagonal
  /// tiles in solve mode, off-diagonal tiles in MVM mode). Requires the
  /// diagonal tiles to be square. Convergence is not guaranteed for general
  /// systems — check `converged`.
  [[nodiscard]] BlockSolveResult solve_block_jacobi(
      std::span<const double> b, const BlockSolveOptions& options = {});

  /// The logical matrix realized by the imperfect tiles, assembled.
  [[nodiscard]] Matrix assemble_effective() const;

  [[nodiscard]] const NocStats& noc_stats() const noexcept { return stats_; }
  /// Sum of all tiles' crossbar counters.
  [[nodiscard]] xbar::CrossbarStats crossbar_stats() const noexcept;
  [[nodiscard]] const xbar::AmplifierStats& amplifier_stats() const noexcept {
    return amps_.stats();
  }
  /// Composite settle-cache counters (full refactors vs incremental patches).
  [[nodiscard]] const FactorCacheStats& settle_cache_stats() const noexcept {
    return settle_cache_.stats();
  }
  void reset_stats() noexcept;

  [[nodiscard]] const TiledConfig& config() const noexcept { return config_; }

 private:
  struct BlockRange {
    std::size_t begin = 0;
    std::size_t length = 0;
  };

  [[nodiscard]] std::size_t tile_index(std::size_t bi,
                                       std::size_t bj) const noexcept {
    return bi * col_blocks_.size() + bj;
  }
  xbar::Crossbar& tile(std::size_t bi, std::size_t bj) {
    return tiles_[tile_index(bi, bj)];
  }
  const xbar::Crossbar& tile(std::size_t bi, std::size_t bj) const {
    return tiles_[tile_index(bi, bj)];
  }

  /// Charges a transfer of `values` elements across `hops` hops.
  void charge_transfer(std::size_t values, std::size_t hops) noexcept;

  /// Records that tile (bi, bj) changed within global rows [r_lo, r_hi):
  /// notifies the settle cache (widened to the whole tile row span when
  /// half-select disturb is active) and patches the cached assembly.
  void note_tile_dirty(std::size_t bi, std::size_t bj, std::size_t r_lo,
                       std::size_t r_hi);

  [[nodiscard]] bool tile_is_zero(std::size_t bi, std::size_t bj) const {
    return tile_zero_[tile_index(bi, bj)] != 0;
  }
  /// Programs a skipped all-zero tile (as zeros, from its own RNG stream)
  /// so a write can land on it; no-op for materialized tiles.
  void materialize_tile(std::size_t bi, std::size_t bj);

  static std::vector<BlockRange> cut(std::size_t extent, std::size_t tile_dim);

  TiledConfig config_;
  Rng rng_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<BlockRange> row_blocks_;
  std::vector<BlockRange> col_blocks_;
  std::vector<xbar::Crossbar> tiles_;
  /// Per-tile flag: 1 = the tile's block was all-zero at program time and
  /// the tile was left unprogrammed (no cells, no settles, no traffic).
  std::vector<unsigned char> tile_zero_;
  /// Full-scale hint of the last program(), reused when a zero tile is
  /// lazily materialized so its mapping matches its siblings'.
  double full_scale_hint_ = 0.0;
  std::unique_ptr<Topology> topology_;
  xbar::AmplifierBank amps_;
  NocStats stats_;
  /// Cached assembly of the tiles' effective blocks, patched per dirty tile
  /// after writes; empty until the first composite solve (or after a full
  /// program). Lets repeated settles skip the O(N²) reassembly.
  Matrix composite_;
  /// Caches the composite factorization across settles (precise
  /// invalidation; rank-k reuse in SettleMode::kReuse).
  FactorizationCache settle_cache_;
};

}  // namespace memlp::noc
