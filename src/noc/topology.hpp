// Analog NoC topologies for coordinating multiple memristor crossbars.
//
// §3.4 / Fig. 3 of the paper sketches two structures:
//   (a) hierarchical: groups of four crossbars under one arbiter, four groups
//       under a higher-level arbiter, and so on (4-ary tree, centralized
//       controller at the root);
//   (b) mesh: crossbars at mesh nodes with XY routing and distributed
//       control, like multi-core NoCs [20].
//
// The topology object answers routing-distance queries; per-hop latency and
// energy live in perf::HardwareModel. Analog buffers/switches [21] at the
// arbiters are what the per-hop constants price in.
#pragma once

#include <cstddef>
#include <memory>

namespace memlp::noc {

/// Which Fig. 3 structure to simulate.
enum class TopologyKind { kHierarchical, kMesh };

/// Routing-distance oracle for a set of crossbar tiles.
class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual TopologyKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::size_t num_tiles() const noexcept = 0;

  /// Hops from a tile to the aggregation point (root arbiter for the
  /// hierarchy; node 0 for the mesh with its distributed controller).
  [[nodiscard]] virtual std::size_t hops_to_root(std::size_t tile) const = 0;

  /// Hops between two tiles along the structure's routing.
  [[nodiscard]] virtual std::size_t hops(std::size_t from,
                                         std::size_t to) const = 0;

  /// Number of arbiters/switches in the structure (for area/energy reports).
  [[nodiscard]] virtual std::size_t num_arbiters() const noexcept = 0;
};

/// 4-ary tree of arbiters (Fig. 3a). Tiles are leaves; each internal arbiter
/// groups up to four children.
class HierarchicalTopology final : public Topology {
 public:
  explicit HierarchicalTopology(std::size_t num_tiles);

  [[nodiscard]] TopologyKind kind() const noexcept override {
    return TopologyKind::kHierarchical;
  }
  [[nodiscard]] std::size_t num_tiles() const noexcept override {
    return num_tiles_;
  }
  [[nodiscard]] std::size_t hops_to_root(std::size_t tile) const override;
  [[nodiscard]] std::size_t hops(std::size_t from,
                                 std::size_t to) const override;
  [[nodiscard]] std::size_t num_arbiters() const noexcept override {
    return num_arbiters_;
  }

  /// Tree depth (root at depth 0; leaves at depth `depth()`).
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

 private:
  std::size_t num_tiles_;
  std::size_t depth_ = 0;
  std::size_t num_arbiters_ = 0;
};

/// 2-D mesh with XY (dimension-ordered) routing (Fig. 3b).
class MeshTopology final : public Topology {
 public:
  explicit MeshTopology(std::size_t num_tiles);

  [[nodiscard]] TopologyKind kind() const noexcept override {
    return TopologyKind::kMesh;
  }
  [[nodiscard]] std::size_t num_tiles() const noexcept override {
    return num_tiles_;
  }
  [[nodiscard]] std::size_t hops_to_root(std::size_t tile) const override;
  [[nodiscard]] std::size_t hops(std::size_t from,
                                 std::size_t to) const override;
  [[nodiscard]] std::size_t num_arbiters() const noexcept override {
    return num_tiles_;  // one router per node
  }

  [[nodiscard]] std::size_t side() const noexcept { return side_; }

 private:
  std::size_t num_tiles_;
  std::size_t side_;
};

/// Factory for the requested kind.
std::unique_ptr<Topology> make_topology(TopologyKind kind,
                                        std::size_t num_tiles);

}  // namespace memlp::noc
