// Memristor crossbar array simulator.
//
// The crossbar holds a logical non-negative matrix A (rows x cols) at its
// crosspoints. Physically (Fig. 1) the device between word-line i and
// bit-line j carries conductance g(i,j) and the array computes, in one analog
// settle:
//
//   * MVM mode:   voltages VI on the WLs  ->  bit-line currents
//                 I_o,j = Σ_i VI_i · g(i,j), sensed across R_s, so that
//                 b = g_s · VO  realizes  b = Aᵀ_phys · VI  (Eq. 5 is the
//                 exact divider form C = D·Gᵀ).
//   * Solve mode: voltages VO applied at the R_s terminals -> the WL voltages
//                 settle to the solution of the mapped system (§2.3), giving
//                 x = g_s/g_max · VI for A x = b ([8]).
//
// We store A in its logical orientation (the physical array holds the
// transpose; all imperfections are element-wise so the orientation does not
// change the math) and simulate the *functional* result of the imperfect
// programmed array:
//
//   g_ideal = g_min + (a / a_max) · (g_max − g_min)      (fast mapping of [8])
//   g_prog  = level-quantized g_ideal                     (write precision)
//   g_eff   = variation(g_prog)                           (Eq. 18, per write)
//
// Reads under ideal conditions are exact by Kirchhoff's law (§4.3), so the
// simulator returns the exact math on the *effective* matrix, optionally
// degraded by 8-bit I/O quantization and, if sense-divider compensation is
// disabled, by the per-column attenuation g_s/(g_s + Σg) of Eq. (5).
//
// Latency/energy are not simulated here; every operation increments
// CrossbarStats, which perf::HardwareModel converts to time and energy.
#pragma once

#include <array>
#include <cstddef>
#include <optional>

#include "common/rng.hpp"
#include "crossbar/quantizer.hpp"
#include "crossbar/write_scheme.hpp"
#include "linalg/factor_cache.hpp"
#include "linalg/matrix.hpp"
#include "memristor/device.hpp"
#include "memristor/programming.hpp"
#include "memristor/variation.hpp"

namespace memlp::xbar {

/// How the simulator models the analog solve settle.
enum class SettleMode {
  /// Re-factor the effective matrix whenever any cell changed — the legacy
  /// bit-exact behavior (golden traces are pinned to it).
  kExact,
  /// Reuse the cached factorization across settles: per-iteration diagonal
  /// rewrites become a rank-k Sherman–Morrison correction, with a full
  /// refactor fallback (see linalg/factor_cache.hpp). Results differ from
  /// kExact only by factorization round-off.
  kReuse,
};

/// Settle-cache tuning for an analog array in the given mode. The readout
/// of a settle is bounded by read noise and ADC quantization — far above
/// the rank-k correction's round-off — so the per-solve iterative
/// refinement step (two extra O(N²) passes per settle) buys precision the
/// physics cannot observe and is disabled; a generous refresh interval
/// bounds correction drift instead.
[[nodiscard]] FactorCacheOptions settle_cache_options(SettleMode mode);

/// One cell rewrite of a batched update (see Crossbar::update_cells).
struct CellUpdate {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Static configuration of a crossbar array.
struct CrossbarConfig {
  mem::DeviceParameters device{};
  mem::VariationModel variation = mem::VariationModel::none();
  /// Discrete programmable conductance states (256 = 8-bit writes, §3.3).
  std::size_t conductance_levels = 256;
  /// Voltage I/O precision in bits (§4.1); 0 = ideal.
  std::size_t io_bits = 8;
  /// Sense resistor conductance g_s (siemens). Large vs g_max keeps the
  /// bit-line near virtual ground (small divider error).
  double sense_conductance = 0.1;
  /// When true (default, the paper's assumption of exact analog ops) the
  /// readout compensates the g_s/(g_s+Σg) divider of Eq. (5) exactly; when
  /// false the attenuation is left in the result (ablation).
  bool compensate_sense_divider = true;
  /// When true (default) a dummy-column reference subtracts the g_min offset
  /// that zero entries contribute; when false the offset remains (ablation).
  bool subtract_gmin_offset = true;
  /// Word/bit-line wire resistance per cell segment (IR drop, cf. [15]).
  /// A cell at row r, column c sees its conductance degraded by the series
  /// resistance of the (r + c + 2) segments between it and the drivers:
  /// g' = g / (1 + g·r_wire·(r + c + 2)). 0 (default) = ideal wires.
  /// Ignored by gain-ranged arrays (compensated periphery).
  double line_resistance_ohm = 0.0;
  /// Maximum rows/cols this array supports; 0 = unlimited. The NoC tiles
  /// enforce finite sizes (§3.4); standalone arrays default to unlimited.
  std::size_t max_dim = 0;
  /// V/2 write-bias scheme (§3.3): per-half-select multiplicative state
  /// disturb. 0 = the paper's ideal assumption (see crossbar/write_scheme.hpp).
  WriteSchemeParameters write_scheme{};
  /// Additive Gaussian read noise, as a fraction of each read's full scale
  /// (thermal/sense-amp noise). 0 = noiseless reads (the paper's model).
  double read_noise_sigma = 0.0;
  /// Per-cell gain-ranged writes: each crosspoint has its own gain stage, so
  /// a cell stores its value with *relative* precision (a mantissa quantized
  /// to `conductance_levels` steps) instead of sharing one array-wide
  /// full-scale. Needed for system matrices with huge entry dynamic range —
  /// the reduced-KKT M1 of the large-scale solver, whose X⁻¹Z / Y⁻¹W
  /// diagonals span many decades while the A blocks stay O(1). Costs extra
  /// periphery per cell; the default (false) is the paper's plain
  /// globally-mapped array. Requires compensate_sense_divider.
  bool per_cell_gain_ranging = false;
  /// Settle-simulation policy for solve(): kExact (default) re-factors the
  /// effective array whenever it changed; kReuse patches the cached
  /// factorization with the dirty rows (Sherman–Morrison rank-k) and falls
  /// back to a full LU when the update is large or ill-conditioned.
  SettleMode settle_mode = SettleMode::kExact;

  void validate() const;
};

/// Write/read operation counters (inputs to the hardware cost model).
struct CrossbarStats {
  /// Pulse-count histogram buckets: bucket 0 counts 0-pulse writes (a forced
  /// rewrite landing on the cell's current level), bucket k ≥ 1 counts
  /// writes needing [2^(k-1), 2^k) pulses; the last bucket is open-ended.
  static constexpr std::size_t kPulseHistogramBuckets = 12;

  std::size_t full_programs = 0;   ///< program() calls.
  std::size_t cells_written = 0;   ///< crosspoints whose level changed.
  std::size_t write_pulses = 0;    ///< total pulses across those cells.
  std::size_t mvm_ops = 0;         ///< analog multiply settles.
  std::size_t solve_ops = 0;       ///< analog solve settles.
  /// Solve attempts that produced no usable solution: a singular effective
  /// array fails to settle (no settle happens, so nothing is charged to the
  /// energy ledger) and a non-finite readout is discarded.
  std::size_t failed_settles = 0;
  /// Per-cell-write pulse distribution across the write scheme (§3.3): the
  /// shape separates cheap level-neighbor updates (the O(N) per-iteration
  /// diagonal rewrites) from expensive full-range programming writes.
  std::array<std::size_t, kPulseHistogramBuckets> pulse_histogram{};

  /// Histogram bucket index for one write of `pulses` pulses.
  [[nodiscard]] static std::size_t pulse_bucket(std::size_t pulses) noexcept;

  /// Accounts one cell write of `pulses` pulses (counters + histogram).
  void record_write(std::size_t pulses) noexcept;

  CrossbarStats& operator+=(const CrossbarStats& other) noexcept;

  /// Counter-wise difference (for phase snapshots); requires *this >= other.
  [[nodiscard]] CrossbarStats since(const CrossbarStats& earlier) const noexcept;
};

/// A programmable crossbar array holding one non-negative logical matrix.
class Crossbar {
 public:
  /// The RNG drives write-time variation draws; pass a deterministic seed
  /// stream for reproducible experiments.
  Crossbar(CrossbarConfig config, Rng rng);

  /// Programs the full array to represent the non-negative matrix `a`.
  /// Re-programming with a different shape is allowed (a new array).
  /// `full_scale_hint` reserves mapping headroom: the conductance full-scale
  /// covers max(a.max_abs(), full_scale_hint), so later update_block calls
  /// with values up to the hint do not force a whole-array re-map.
  void program(const Matrix& a, double full_scale_hint = 0.0);

  /// True when an array has been programmed.
  [[nodiscard]] bool programmed() const noexcept { return !ideal_.empty(); }

  [[nodiscard]] std::size_t rows() const noexcept { return ideal_.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return ideal_.cols(); }

  /// Rewrites the rectangular block with origin (r0, c0). Only cells whose
  /// programmed level changes are counted as written. If the block raises
  /// the array's maximum value above the mapping full-scale, the whole array
  /// is transparently re-programmed (a full-scale change re-maps every cell).
  void update_block(std::size_t r0, std::size_t c0, const Matrix& block);

  /// Rewrites a single cell (same contract as update_block).
  void update_cell(std::size_t r, std::size_t c, double value);

  /// Rewrites a batch of scattered cells in one pass — the per-PDIP-iteration
  /// diagonal refresh path. Semantically each entry behaves like
  /// update_cell(), but pulse/cell accounting is aggregated into a single
  /// ledger charge and the settle cache is notified once per actually-changed
  /// cell. Returns the number of cells whose programmed level changed.
  std::size_t update_cells(std::span<const CellUpdate> updates);

  /// Settle-cache behavior counters (full refactors vs incremental patches).
  [[nodiscard]] const FactorCacheStats& settle_cache_stats() const noexcept {
    return settle_cache_.stats();
  }

  /// Which I/O conversion boundaries an operation crosses. Voltages are
  /// quantized (io_bits) only where they pass a DAC/ADC; chained analog
  /// stages (MVM output feeding summing amps feeding a solve input) stay at
  /// full analog precision (§4.1 quantizes stored inputs/outputs, not
  /// intermediate nets).
  enum class IoBoundary {
    kBoth,        ///< digital in, digital out (standalone op).
    kInputOnly,   ///< digital in, analog out (feeds an analog chain).
    kOutputOnly,  ///< analog in, digital out (ends an analog chain).
    kNone,        ///< fully inside an analog chain.
  };

  /// Analog MVM: returns ≈ A·x (one settle).
  [[nodiscard]] Vec multiply(std::span<const double> x,
                             IoBoundary io = IoBoundary::kBoth);

  /// Analog MVM from the bit-line side: returns ≈ Aᵀ·x (one settle).
  [[nodiscard]] Vec multiply_transposed(std::span<const double> x,
                                        IoBoundary io = IoBoundary::kBoth);

  /// Analog solve of A·x = b (square arrays only). Returns nullopt when the
  /// effective array is singular — physically, the array fails to settle.
  [[nodiscard]] std::optional<Vec> solve(std::span<const double> b,
                                         IoBoundary io = IoBoundary::kBoth);

  /// The matrix the caller asked for (pre-imperfection).
  [[nodiscard]] const Matrix& ideal() const noexcept { return ideal_; }

  /// The logical matrix the imperfect array actually realizes.
  [[nodiscard]] const Matrix& effective() const noexcept { return effective_; }

  [[nodiscard]] const CrossbarStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  [[nodiscard]] const CrossbarConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Maps one logical value through quantized write + variation; updates
  /// level/effective storage and pulse counters. `force` rewrites (and
  /// redraws variation for) the cell even when its level is unchanged — a
  /// full program erases the array first, so every cell is a fresh write.
  /// Returns true when the cell was actually rewritten (its effective value
  /// may have changed); a no-op write leaves the settle cache untouched.
  bool write_cell(std::size_t r, std::size_t c, double value, bool force);

  /// Shared core of update_block/update_cells: applies the updates (bounds
  /// already checked, full-scale already covers them), notifies the settle
  /// cache per changed cell, and charges the aggregated write cost once.
  /// Returns the number of cells whose programmed level changed.
  std::size_t apply_updates(std::span<const CellUpdate> updates);

  /// Recomputes `effective_` entry from the varied conductance, including
  /// the position-dependent IR-drop degradation.
  [[nodiscard]] double logical_from_conductance(double g_eff, std::size_t r,
                                                std::size_t c) const noexcept;

  /// Applies the Eq. (5) divider attenuation to an output vector when
  /// compensation is disabled. `row_oriented` selects which dimension the
  /// outputs correspond to.
  void apply_sense_divider(Vec& out, bool transposed) const;

  /// Adds per-read Gaussian noise (read_noise_sigma of the vector's scale).
  void apply_read_noise(Vec& out);

  /// Half-select disturb on the row/column sharing a written cell (§3.3).
  void apply_half_select_disturb(std::size_t r, std::size_t c);

  CrossbarConfig config_;
  Rng rng_;
  mem::ProgrammingModel programming_;
  Quantizer io_;

  Matrix ideal_;        // requested logical matrix
  Matrix level_g_;      // programmed (quantized, pre-variation) conductances
  Matrix effective_g_;  // post-variation conductances
  Matrix effective_;    // logical matrix realized by effective_g_
  double full_scale_ = 0.0;  // a_max used by the mapping
  double slope_ = 0.0;       // (g_max-g_min)/a_max

  CrossbarStats stats_;
  /// Caches the effective-matrix factorization across settles. Exact mode
  /// re-factors only when a write really changed a cell; reuse mode patches
  /// the cached factor with the dirty rows (see linalg/factor_cache.hpp).
  FactorizationCache settle_cache_;
};

}  // namespace memlp::xbar
