// The V/2 write-bias scheme of §3.3.
//
// "the voltage difference Vdd is applied on the corresponding WL and BL …
// whereas other WLs and BLs are biased by Vdd/2, which will have negligible
// effect on other memristor devices since |Vdd/2| < |Vth|."
//
// Writing cell (r, c) of an R×C array therefore half-selects the other
// (C − 1) cells of row r and (R − 1) cells of column c. This module models
// the two consequences the ideal abstraction hides:
//   * energy — every half-selected device burns (Vdd/2)²·g for the pulse
//     duration, which for large arrays dominates the selected cell's energy;
//   * disturb — real devices drift slightly even below threshold; after
//     enough half-select events a cell's state has moved by a full level.
//     The per-event drift fraction is configurable (0 = the paper's ideal
//     assumption).
#pragma once

#include <cstddef>

#include "memristor/device.hpp"

namespace memlp::xbar {

/// Parameters of the V/2 biasing scheme.
struct WriteSchemeParameters {
  /// Per-half-select multiplicative state drift (fraction of the cell's
  /// value, signed towards the write polarity). 0 = ideal (|Vdd/2| < Vth
  /// strictly, §3.3); real arrays see 1e-6…1e-4 per event.
  double half_select_disturb = 0.0;
};

/// Accounting for one selective write into an R×C array.
struct WriteEvent {
  std::size_t half_selected_cells = 0;  ///< cells seeing Vdd/2.
  double selected_energy_j = 0.0;       ///< the programmed cell.
  double half_select_energy_j = 0.0;    ///< all half-selected cells.
};

/// Computes the §3.3 write-event accounting for one cell write.
/// `row_conductance_sum` / `column_conductance_sum` are the total device
/// conductances on the selected word/bit line (excluding the target cell).
WriteEvent selective_write_event(const mem::DeviceParameters& device,
                                 std::size_t rows, std::size_t cols,
                                 double row_conductance_sum,
                                 double column_conductance_sum);

}  // namespace memlp::xbar
