// Analog I/O precision model.
//
// §4.1: "All voltage inputs and outputs are stored with 8-bit precision."
// The Quantizer snaps a voltage vector to 2^bits uniformly spaced codes over
// the vector's own symmetric dynamic range [−max|v|, +max|v|], modelling a
// sample-and-hold + programmable-gain stage at the crossbar boundary.
// bits == 0 disables quantization (ideal analog storage).
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace memlp::xbar {

/// Uniform symmetric mid-tread quantizer.
class Quantizer {
 public:
  /// `bits` in [0, 24]; 0 means pass-through.
  explicit Quantizer(std::size_t bits);

  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }
  [[nodiscard]] bool enabled() const noexcept { return bits_ != 0; }

  /// Quantizes a single value over the given full-scale range (> 0).
  [[nodiscard]] double quantize(double value, double full_scale) const;

  /// Quantizes the vector in place over its own max-abs full scale.
  void quantize(Vec& v) const;

  /// Returns a quantized copy.
  [[nodiscard]] Vec quantized(std::span<const double> v) const;

 private:
  std::size_t bits_;
  double max_code_ = 0.0;  // 2^(bits-1) - 1
};

}  // namespace memlp::xbar
