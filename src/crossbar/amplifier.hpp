// Summing-amplifier bank.
//
// The solver's vector updates happen in the analog domain with summing
// amplifiers (§3.2): computing r as the difference of two vectors
// (Eq. 15a), the divide-by-2 correction of Eq. (15b), and the state update
// s = s + θ·∆s (Eq. 10). Each element processed is one amplifier operation;
// the counters feed perf::HardwareModel. The arithmetic itself is exact —
// voltage-precision effects are modelled at the crossbar I/O boundary.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace memlp::xbar {

/// Counts analog vector operations performed by summing amplifiers.
struct AmplifierStats {
  std::size_t element_ops = 0;  ///< scalar add/scale operations performed.
  std::size_t vector_ops = 0;   ///< vector-level operations (parallel banks).

  AmplifierStats& operator+=(const AmplifierStats& other) noexcept {
    element_ops += other.element_ops;
    vector_ops += other.vector_ops;
    return *this;
  }

  /// Counter-wise difference (for phase snapshots).
  [[nodiscard]] AmplifierStats since(const AmplifierStats& earlier) const noexcept {
    return {element_ops - earlier.element_ops,
            vector_ops - earlier.vector_ops};
  }
};

/// Analog vector ALU backed by summing amplifiers.
class AmplifierBank {
 public:
  /// out = a + b.
  Vec add(std::span<const double> a, std::span<const double> b);

  /// out = a − b.
  Vec sub(std::span<const double> a, std::span<const double> b);

  /// out = k·a (amplifier gain k).
  Vec scale(std::span<const double> a, double k);

  /// out = a + k·b (one pass: summing amp with weighted input).
  Vec add_scaled(std::span<const double> a, double k,
                 std::span<const double> b);

  /// out = a / 2 — the Eq. (15b) correction for the 2·XZe / 2·YWe rows.
  Vec halve(std::span<const double> a);

  /// out_i = a_i · b_i — four-quadrant analog multiplier bank (used for the
  /// Z∘∆x / W∘∆y cross terms of the large-scale solver's recovery step).
  Vec multiply_elementwise(std::span<const double> a,
                           std::span<const double> b);

  /// out_i = k / a_i — analog divider bank (the µ./x, µ./y terms).
  /// Requires every a_i != 0.
  Vec reciprocal_scale(double k, std::span<const double> a);

  /// out_i = a_i / b_i — analog divider bank. Requires every b_i != 0.
  Vec divide_elementwise(std::span<const double> a,
                         std::span<const double> b);

  [[nodiscard]] const AmplifierStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Folds another bank's counters into this one — used to merge per-thread
  /// banks after a parallel region (integer sums, so merge order is moot).
  void absorb(const AmplifierStats& other) noexcept { stats_ += other; }

 private:
  /// Counts one bank operation over `elements` lanes and charges the
  /// active cost ledger (defined in amplifier.cpp to keep the obs
  /// dependency out of this header).
  void count(std::size_t elements) noexcept;

  AmplifierStats stats_;
};

}  // namespace memlp::xbar
