#include "crossbar/amplifier.hpp"

#include "common/contracts.hpp"
#include "obs/cost_ledger.hpp"

namespace memlp::xbar {

void AmplifierBank::count(std::size_t elements) noexcept {
  stats_.element_ops += elements;
  ++stats_.vector_ops;
  obs::CostLedger::charge_active(
      {.amp_vector_ops = 1, .amp_element_ops = elements});
}

Vec AmplifierBank::add(std::span<const double> a, std::span<const double> b) {
  MEMLP_EXPECT(a.size() == b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  count(a.size());
  return out;
}

Vec AmplifierBank::sub(std::span<const double> a, std::span<const double> b) {
  MEMLP_EXPECT(a.size() == b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  count(a.size());
  return out;
}

Vec AmplifierBank::scale(std::span<const double> a, double k) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = k * a[i];
  count(a.size());
  return out;
}

Vec AmplifierBank::add_scaled(std::span<const double> a, double k,
                              std::span<const double> b) {
  MEMLP_EXPECT(a.size() == b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + k * b[i];
  count(a.size());
  return out;
}

Vec AmplifierBank::halve(std::span<const double> a) { return scale(a, 0.5); }

Vec AmplifierBank::multiply_elementwise(std::span<const double> a,
                                        std::span<const double> b) {
  MEMLP_EXPECT(a.size() == b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  count(a.size());
  return out;
}

Vec AmplifierBank::reciprocal_scale(double k, std::span<const double> a) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    MEMLP_EXPECT_MSG(a[i] != 0.0, "reciprocal_scale: zero input");
    out[i] = k / a[i];
  }
  count(a.size());
  return out;
}

Vec AmplifierBank::divide_elementwise(std::span<const double> a,
                                      std::span<const double> b) {
  MEMLP_EXPECT(a.size() == b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    MEMLP_EXPECT_MSG(b[i] != 0.0, "divide_elementwise: zero divisor");
    out[i] = a[i] / b[i];
  }
  count(a.size());
  return out;
}

}  // namespace memlp::xbar
