#include "crossbar/write_scheme.hpp"

#include "common/contracts.hpp"

namespace memlp::xbar {

WriteEvent selective_write_event(const mem::DeviceParameters& device,
                                 std::size_t rows, std::size_t cols,
                                 double row_conductance_sum,
                                 double column_conductance_sum) {
  MEMLP_EXPECT(rows >= 1 && cols >= 1);
  MEMLP_EXPECT(row_conductance_sum >= 0.0 && column_conductance_sum >= 0.0);
  device.validate();
  WriteEvent event;
  event.half_selected_cells = (cols - 1) + (rows - 1);
  // Selected cell: full Vdd across a mid-window device for one pulse.
  const double g_mid = 0.5 * (device.g_min() + device.g_max());
  event.selected_energy_j =
      device.v_write * device.v_write * g_mid * device.pulse_width_s;
  // Half-selected cells: (Vdd/2)² across their actual conductances.
  const double v_half = 0.5 * device.v_write;
  event.half_select_energy_j =
      v_half * v_half * (row_conductance_sum + column_conductance_sum) *
      device.pulse_width_s;
  return event;
}

}  // namespace memlp::xbar
