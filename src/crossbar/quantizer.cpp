#include "crossbar/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/ops.hpp"

namespace memlp::xbar {

Quantizer::Quantizer(std::size_t bits) : bits_(bits) {
  if (bits > 24) throw ConfigError("quantizer: bits must be <= 24");
  if (bits_ > 0)
    max_code_ = static_cast<double>((1ULL << (bits_ - 1)) - 1);
}

double Quantizer::quantize(double value, double full_scale) const {
  if (!enabled() || full_scale <= 0.0) return value;
  const double step = full_scale / max_code_;
  const double code =
      std::clamp(std::round(value / step), -max_code_, max_code_);
  return code * step;
}

void Quantizer::quantize(Vec& v) const {
  if (!enabled() || v.empty()) return;
  const double full_scale = norm_inf(v);
  if (full_scale <= 0.0) return;
  for (double& value : v) value = quantize(value, full_scale);
}

Vec Quantizer::quantized(std::span<const double> v) const {
  Vec out(v.begin(), v.end());
  quantize(out);
  return out;
}

}  // namespace memlp::xbar
