#include "crossbar/crossbar.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "linalg/ops.hpp"
#include "obs/cost_ledger.hpp"

namespace memlp::xbar {

void CrossbarConfig::validate() const {
  device.validate();
  if (conductance_levels < 2)
    throw ConfigError("crossbar: need >= 2 conductance levels");
  if (sense_conductance <= 0.0)
    throw ConfigError("crossbar: sense conductance must be > 0");
  if (io_bits > 24) throw ConfigError("crossbar: io_bits must be <= 24");
  if (read_noise_sigma < 0.0 || read_noise_sigma > 0.5)
    throw ConfigError("crossbar: read_noise_sigma must be in [0, 0.5]");
  if (write_scheme.half_select_disturb < 0.0 ||
      write_scheme.half_select_disturb > 1e-2)
    throw ConfigError(
        "crossbar: half_select_disturb must be in [0, 1e-2]");
  if (per_cell_gain_ranging && !compensate_sense_divider)
    throw ConfigError(
        "crossbar: per-cell gain ranging assumes a compensated readout");
}

std::size_t CrossbarStats::pulse_bucket(std::size_t pulses) noexcept {
  // 0 → 0; otherwise bit_width gives k for pulses in [2^(k-1), 2^k).
  return std::min<std::size_t>(std::bit_width(pulses),
                               kPulseHistogramBuckets - 1);
}

void CrossbarStats::record_write(std::size_t pulses) noexcept {
  ++cells_written;
  write_pulses += pulses;
  ++pulse_histogram[pulse_bucket(pulses)];
}

CrossbarStats& CrossbarStats::operator+=(const CrossbarStats& other) noexcept {
  full_programs += other.full_programs;
  cells_written += other.cells_written;
  write_pulses += other.write_pulses;
  mvm_ops += other.mvm_ops;
  solve_ops += other.solve_ops;
  failed_settles += other.failed_settles;
  for (std::size_t k = 0; k < kPulseHistogramBuckets; ++k)
    pulse_histogram[k] += other.pulse_histogram[k];
  return *this;
}

CrossbarStats CrossbarStats::since(const CrossbarStats& earlier) const noexcept {
  CrossbarStats d;
  d.full_programs = full_programs - earlier.full_programs;
  d.cells_written = cells_written - earlier.cells_written;
  d.write_pulses = write_pulses - earlier.write_pulses;
  d.mvm_ops = mvm_ops - earlier.mvm_ops;
  d.solve_ops = solve_ops - earlier.solve_ops;
  d.failed_settles = failed_settles - earlier.failed_settles;
  for (std::size_t k = 0; k < kPulseHistogramBuckets; ++k)
    d.pulse_histogram[k] = pulse_histogram[k] - earlier.pulse_histogram[k];
  return d;
}

FactorCacheOptions settle_cache_options(SettleMode mode) {
  FactorCacheOptions options;
  options.incremental = mode == SettleMode::kReuse;
  options.iterative_refinement = false;
  options.refresh_interval = 64;
  return options;
}

Crossbar::Crossbar(CrossbarConfig config, Rng rng)
    : config_(config),
      rng_(rng),
      programming_(config.device, config.conductance_levels),
      io_(config.io_bits),
      settle_cache_(settle_cache_options(config.settle_mode)) {
  config_.validate();
}

void Crossbar::program(const Matrix& a, double full_scale_hint) {
  MEMLP_EXPECT_MSG(a.nonnegative(),
                   "crossbar can only represent non-negative matrices");
  MEMLP_EXPECT(a.rows() > 0 && a.cols() > 0);
  if (config_.max_dim != 0) {
    MEMLP_EXPECT_MSG(a.rows() <= config_.max_dim && a.cols() <= config_.max_dim,
                     "matrix " << a.rows() << "x" << a.cols()
                               << " exceeds crossbar max_dim "
                               << config_.max_dim);
  }

  const bool same_shape =
      programmed() && a.rows() == ideal_.rows() && a.cols() == ideal_.cols();
  if (!same_shape) {
    level_g_ = Matrix(a.rows(), a.cols(), programming_.g_min());
    effective_g_ = Matrix(a.rows(), a.cols(), programming_.g_min());
    effective_ = Matrix(a.rows(), a.cols());
  }
  ideal_ = a;
  full_scale_ = std::max({a.max_abs(), full_scale_hint, 1e-300});
  slope_ =
      (programming_.g_max() - programming_.g_min()) / full_scale_;

  ++stats_.full_programs;
  const std::size_t cells_before = stats_.cells_written;
  const std::size_t pulses_before = stats_.write_pulses;
  // A full program erases and rewrites every occupied cell, so each one gets
  // a fresh variation draw — the basis of the paper's re-solve scheme
  // (§4.3). Cells that are zero both before and after stay at the erased
  // level for free, which is what makes initialization cheaper for the
  // sparse matrices "common in linear programs" (§3.5).
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const bool structurally_zero =
          a(i, j) == 0.0 && level_g_(i, j) <= programming_.g_min();
      write_cell(i, j, a(i, j), /*force=*/!structurally_zero);
    }
  obs::CostLedger::charge_active(
      {.cells_written = stats_.cells_written - cells_before,
       .write_pulses = stats_.write_pulses - pulses_before});
  // Every cell was re-drawn: the cached factorization is of a different
  // matrix (and possibly a different shape) — drop it wholesale.
  settle_cache_.invalidate();
}

void Crossbar::update_block(std::size_t r0, std::size_t c0,
                            const Matrix& block) {
  MEMLP_EXPECT(programmed());
  MEMLP_EXPECT_MSG(block.nonnegative(), "crossbar cells are non-negative");
  MEMLP_EXPECT(r0 + block.rows() <= rows() && c0 + block.cols() <= cols());

  if (!config_.per_cell_gain_ranging && block.max_abs() > full_scale_) {
    // The mapping full-scale no longer covers the data: every cell must be
    // re-mapped. This mirrors real deployments, where the full-scale is
    // chosen with headroom up front; the solvers pass a headroom hint to
    // make this path rare. Doubling the new maximum damps re-map thrashing.
    //
    // Deliberately NO half-select disturb on this path, unlike the
    // incremental writes below. A full program() is an erase-all followed by
    // a force-write of every occupied cell (V/2 scheme, §3.3): whatever
    // disturb the write sequence inflicts on a neighbour is overwritten
    // moments later when that neighbour's own target is force-written, so
    // the post-program array carries no residual disturb by construction.
    // The incremental path rewrites only the block and leaves neighbours
    // holding their charge — those are the cells half-select stress acts on.
    // test_crossbar's UpdateBlock disturb tests pin both behaviours.
    Matrix updated = ideal_;
    updated.set_block(r0, c0, block);
    program(updated, 2.0 * block.max_abs());
    return;
  }
  std::vector<CellUpdate> updates;
  updates.reserve(block.rows() * block.cols());
  for (std::size_t i = 0; i < block.rows(); ++i)
    for (std::size_t j = 0; j < block.cols(); ++j)
      updates.push_back({r0 + i, c0 + j, block(i, j)});
  apply_updates(updates);
}

void Crossbar::update_cell(std::size_t r, std::size_t c, double value) {
  const CellUpdate update{r, c, value};
  update_cells({&update, 1});
}

std::size_t Crossbar::update_cells(std::span<const CellUpdate> updates) {
  MEMLP_EXPECT(programmed());
  for (const CellUpdate& u : updates) {
    MEMLP_EXPECT_MSG(u.value >= 0.0, "crossbar cells are non-negative");
    MEMLP_EXPECT(u.row < rows() && u.col < cols());
  }
  const std::size_t cells_before = stats_.cells_written;
  std::size_t start = 0;
  if (!config_.per_cell_gain_ranging) {
    for (std::size_t i = 0; i < updates.size(); ++i) {
      if (updates[i].value <= full_scale_) continue;
      // The mapping full-scale no longer covers this cell: flush the cells
      // before it, then transparently re-map the whole array — at exactly
      // the point a sequential per-cell writer would have, so the write
      // (and variation-draw) sequence is identical to update_cell in a
      // loop. program() invalidates the cached factorization.
      apply_updates(updates.subspan(start, i - start));
      Matrix updated = ideal_;
      updated(updates[i].row, updates[i].col) = updates[i].value;
      program(updated, 2.0 * updates[i].value);
      start = i + 1;
    }
  }
  apply_updates(updates.subspan(start));
  return stats_.cells_written - cells_before;
}

std::size_t Crossbar::apply_updates(std::span<const CellUpdate> updates) {
  const std::size_t cells_before = stats_.cells_written;
  const std::size_t pulses_before = stats_.write_pulses;
  std::size_t changed = 0;
  for (const CellUpdate& u : updates) {
    ideal_(u.row, u.col) = u.value;
    if (write_cell(u.row, u.col, u.value, /*force=*/false)) {
      ++changed;
      // Precise invalidation: only a cell whose programmed level actually
      // changed can move the effective matrix, so only then does the settle
      // cache hear about its row. A no-op rewrite (same quantized level, the
      // common case for slowly-moving PDIP diagonals) keeps the cached
      // factorization fully valid.
      settle_cache_.note_row(u.row);
      apply_half_select_disturb(u.row, u.col);
    }
  }
  obs::CostLedger::charge_active(
      {.cells_written = stats_.cells_written - cells_before,
       .write_pulses = stats_.write_pulses - pulses_before});
  return changed;
}

bool Crossbar::write_cell(std::size_t r, std::size_t c, double value,
                          bool force) {
  MEMLP_ASSERT(value >= 0.0);
  if (config_.per_cell_gain_ranging) {
    // Gain-ranged cell: the value is stored with relative precision — its
    // mantissa is quantized to the array's level count, the exponent lives
    // in the per-cell gain stage.
    double quantized = 0.0;
    if (value > 0.0) {
      int exponent = 0;
      const double mantissa = std::frexp(value, &exponent);
      const auto steps = static_cast<double>(config_.conductance_levels);
      quantized = std::ldexp(std::round(mantissa * steps) / steps, exponent);
    }
    if (!force && quantized == level_g_(r, c)) return false;  // keeps its draw
    // One pulse per mantissa bit of the gain-ranged write.
    stats_.record_write(static_cast<std::size_t>(
        std::max(1.0, std::log2(static_cast<double>(
                          config_.conductance_levels)))));
    level_g_(r, c) = quantized;
    const double value_eff = config_.variation.perturb(quantized, rng_);
    effective_(r, c) = value_eff;
    // Keep a consistent conductance view for stats/divider bookkeeping.
    effective_g_(r, c) = std::max(
        programming_.g_min() + value_eff * slope_, 1e-300);
    return true;
  }
  const double g_ideal = programming_.g_min() + value * slope_;
  const double g_prog = programming_.quantize(g_ideal);
  const double g_old = level_g_(r, c);
  if (!force &&
      programming_.level_for(g_old) == programming_.level_for(g_prog)) {
    // Same programmed level: the cell is not re-written, so it keeps its
    // previous variation draw (no write, no new draw) and the effective
    // matrix is untouched.
    effective_(r, c) = logical_from_conductance(effective_g_(r, c), r, c);
    return false;
  }
  stats_.record_write(programming_.pulses_for(g_old, g_prog));
  level_g_(r, c) = g_prog;
  const double g_eff =
      std::max(config_.variation.perturb(g_prog, rng_), 1e-300);
  effective_g_(r, c) = g_eff;
  effective_(r, c) = logical_from_conductance(g_eff, r, c);
  return true;
}

double Crossbar::logical_from_conductance(double g_eff, std::size_t r,
                                          std::size_t c) const noexcept {
  if (config_.line_resistance_ohm > 0.0) {
    // First-order IR drop: the (r + c + 2) wire segments between the cell
    // and its drivers act as a series resistance.
    const double segments = static_cast<double>(r + c + 2);
    g_eff = g_eff /
            (1.0 + g_eff * config_.line_resistance_ohm * segments);
  }
  if (config_.subtract_gmin_offset)
    return (g_eff - programming_.g_min()) / slope_;
  return g_eff / slope_;
}

void Crossbar::apply_read_noise(Vec& out) {
  if (config_.read_noise_sigma <= 0.0 || out.empty()) return;
  const double scale = norm_inf(out);
  if (scale <= 0.0) return;
  for (double& v : out)
    v += config_.read_noise_sigma * scale * rng_.normal();
}

void Crossbar::apply_half_select_disturb(std::size_t r, std::size_t c) {
  const double disturb = config_.write_scheme.half_select_disturb;
  if (disturb <= 0.0) return;
  // Every other device on word line r and bit line c sees Vdd/2 for the
  // pulse and drifts by a random fraction of its value (§3.3's "negligible
  // effect" made explicit and accountable).
  const auto nudge = [&](std::size_t i, std::size_t j) {
    const double factor = 1.0 + disturb * rng_.signed_unit();
    effective_g_(i, j) = std::max(effective_g_(i, j) * factor, 1e-300);
    effective_(i, j) = logical_from_conductance(effective_g_(i, j), i, j);
  };
  for (std::size_t j = 0; j < cols(); ++j)
    if (j != c) nudge(r, j);
  for (std::size_t i = 0; i < rows(); ++i)
    if (i != r) nudge(i, c);
  // Disturb smears across a whole row and column — too wide a dirty set for
  // a rank-k patch, so the next settle fully re-factors.
  settle_cache_.note_all();
}

void Crossbar::apply_sense_divider(Vec& out, bool transposed) const {
  if (config_.compensate_sense_divider) return;
  const double gs = config_.sense_conductance;
  for (std::size_t k = 0; k < out.size(); ++k) {
    double sum = 0.0;
    if (transposed) {
      for (std::size_t i = 0; i < effective_g_.rows(); ++i)
        sum += effective_g_(i, k);
    } else {
      for (double g : effective_g_.row(k)) sum += g;
    }
    out[k] *= gs / (gs + sum);
  }
}

namespace {

bool quantize_input(Crossbar::IoBoundary io) {
  return io == Crossbar::IoBoundary::kBoth ||
         io == Crossbar::IoBoundary::kInputOnly;
}

bool quantize_output(Crossbar::IoBoundary io) {
  return io == Crossbar::IoBoundary::kBoth ||
         io == Crossbar::IoBoundary::kOutputOnly;
}

}  // namespace

// memlint:hot — analog MVM readout; runs once per settle step.
Vec Crossbar::multiply(std::span<const double> x, IoBoundary io) {
  MEMLP_EXPECT(programmed());
  MEMLP_EXPECT_MSG(x.size() == cols(), "multiply: size mismatch");
  Vec input = quantize_input(io) ? io_.quantized(x) : Vec(x.begin(), x.end());  // memlint:allow(R9): input staging copy; buffer reuse is ROADMAP scale-up work
  Vec out = gemv(effective_, input);
  apply_sense_divider(out, /*transposed=*/false);
  apply_read_noise(out);
  if (quantize_output(io)) io_.quantize(out);
  ++stats_.mvm_ops;
  obs::CostLedger::charge_active({.settles = 1});
  return out;
}

// memlint:hot — transposed analog MVM readout on the settle path.
Vec Crossbar::multiply_transposed(std::span<const double> x, IoBoundary io) {
  MEMLP_EXPECT(programmed());
  MEMLP_EXPECT_MSG(x.size() == rows(), "multiply_transposed: size mismatch");
  Vec input = quantize_input(io) ? io_.quantized(x) : Vec(x.begin(), x.end());  // memlint:allow(R9): input staging copy; buffer reuse is ROADMAP scale-up work
  Vec out = gemv_transposed(effective_, input);
  apply_sense_divider(out, /*transposed=*/true);
  apply_read_noise(out);
  if (quantize_output(io)) io_.quantize(out);
  ++stats_.mvm_ops;
  obs::CostLedger::charge_active({.settles = 1});
  return out;
}

// memlint:hot — the iterative settle loop; the paper's O(1) analog solve.
std::optional<Vec> Crossbar::solve(std::span<const double> b, IoBoundary io) {
  MEMLP_EXPECT(programmed());
  MEMLP_EXPECT_MSG(effective_.square(), "solve requires a square array");
  MEMLP_EXPECT_MSG(b.size() == rows(), "solve: size mismatch");
  if (!settle_cache_.prepare(effective_)) {
    // A singular effective array never settles: no solve happened, so
    // nothing is charged to the energy ledger and solve_ops stays put.
    ++stats_.failed_settles;
    return std::nullopt;
  }
  ++stats_.solve_ops;
  obs::CostLedger::charge_active({.settles = 1});
  Vec rhs = quantize_input(io) ? io_.quantized(b) : Vec(b.begin(), b.end());  // memlint:allow(R9): RHS staging copy; buffer reuse is ROADMAP scale-up work
  Vec x = settle_cache_.solve(rhs);
  if (!std::all_of(x.begin(), x.end(),
                   [](double v) { return std::isfinite(v); })) {
    // The settle physically ran (and was charged) but read out garbage.
    ++stats_.failed_settles;
    return std::nullopt;
  }
  apply_read_noise(x);
  if (quantize_output(io)) io_.quantize(x);
  return x;
}

}  // namespace memlp::xbar
