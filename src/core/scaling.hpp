// Problem normalization for analog execution.
//
// A crossbar maps matrix entries onto a fixed conductance window and a fixed
// voltage range; data spanning several decades (say b ~ 100 while A ~ 1)
// would waste the whole write resolution on the large entries. Like any
// analog front-end, the solver therefore normalizes the problem first:
//
//   Ā = A/‖A‖,  b̄ = b/‖b‖,  c̄ = c/‖c‖,  x = σx·x̄ with σx = ‖b‖/‖A‖,
//
// which makes Ā, b̄, c̄ — and hence the interior iterates — O(1). The
// solution and certificates are rescaled back before the result is
// returned; statuses and operation counts are unaffected.
#pragma once

#include "lp/problem.hpp"
#include "lp/result.hpp"

namespace memlp::core {

/// A normalized copy of an LP plus the factors to undo the normalization.
class ProblemScaling {
 public:
  /// Builds the normalized problem (throws via validate() on bad shapes).
  explicit ProblemScaling(const lp::LinearProgram& problem);

  /// The normalized problem the hardware actually solves.
  [[nodiscard]] const lp::LinearProgram& scaled() const noexcept {
    return scaled_;
  }

  /// Rescales a result of the *scaled* problem back to original units
  /// (x, y, w, z, and the objective).
  void unscale(lp::SolveResult& result) const;

 private:
  lp::LinearProgram scaled_;
  double x_scale_ = 1.0;    ///< x = x_scale · x̄
  double w_scale_ = 1.0;    ///< w = w_scale · w̄
  double y_scale_ = 1.0;    ///< y = y_scale · ȳ
  double z_scale_ = 1.0;    ///< z = z_scale · z̄
  double obj_scale_ = 1.0;  ///< cᵀx = obj_scale · c̄ᵀx̄
};

}  // namespace memlp::core
