// Memristor crossbar-based LP solver for large-scale operations
// (§3.4, Algorithm 2).
//
// Instead of the monolithic Eq. (14a) system over all step directions, each
// iteration solves two much smaller systems. Following Algorithm 2's "update
// coefficient matrix M1 … based on A, x, y", we read Eq. (16c)'s balancing
// blocks as the diagonal Schur-complement terms obtained by eliminating ∆w
// and ∆z from the Newton system (Eq. 9):
//
//   M1 = [ A     RU ]   with  RU = −Y⁻¹W  (m×m diagonal),
//        [ RL    Aᵀ ]         RL =  X⁻¹Z  (n×n diagonal),
//
//   M1·[∆x; ∆y] = [ b − Ax − µ./y ;  c − Aᵀy + µ./x ]
//
// — exactly Eq. (16a/16c) with corner blocks whose off-diagonal entries are
// zero and whose diagonal values become "very small" for the binding
// components as the iterate converges. M2 = diag([x; y]) (Eq. 16b) then
// recovers the slack directions:
//
//   X·∆z = µe − XZe − Z∘∆x,    Y·∆w = µe − YWe − W∘∆y,
//
// (the Z∘∆x / W∘∆y cross terms are computed by analog multipliers; dropping
// them — the literal reading of Eq. 16b — is available as an ablation but
// does not converge). θ is a constant (§3.4); positivity is maintained by a
// small floor.
//
// Hardware notes (full discussion in DESIGN.md):
//  * The A / Aᵀ blocks of M1 are programmed once per attempt; only the
//    2(n+m) corner-diagonal and M2-diagonal cells are rewritten per
//    iteration — O(N), which is why this solver's latency is nearly flat in
//    the variation level (§4.4).
//  * The corner diagonals span many decades (w_i/y_i → ∞ for inactive
//    constraints), so M1's array uses per-cell gain-ranged writes
//    (CrossbarConfig::per_cell_gain_ranging) and the ratios are capped at
//    `ratio_cap`; the cap only touches components whose step is ~0.
//  * A failed attempt (stall, failed α-check, singular effective array) is
//    retried with a freshly programmed crossbar — the paper's
//    double-checking scheme (§4.3/§4.5).
#pragma once

#include "core/kkt.hpp"
#include "core/xbar_pdip.hpp"

namespace memlp::core {

/// How to realize Eq. (16c)'s RU/RL balancing blocks.
enum class M1Mode {
  /// Diagonal Schur terms −Y⁻¹W / X⁻¹Z (default; converges).
  kSchurDiagonal,
  /// The literal "very small random values" reading — kept as an ablation;
  /// its 1/ε step amplification keeps it from converging.
  kLiteralBalanced,
};

/// Which balancing blocks the literal mode fills (§3.4).
enum class BalancingFill {
  kAuto,  ///< the paper's rule: RU when m >= n, RL when n >= m.
  kBoth,  ///< fill both blocks.
};

/// How the slack directions ∆z, ∆w are recovered after system 1.
enum class RecoveryMode {
  /// Division-free, via the primal/dual equations (9a)/(9b) and two extra
  /// M1 settles: ∆w = (b − Ax − w) − A∆x, ∆z = Aᵀ∆y − (c − Aᵀy + z).
  /// Robust under analog noise (default).
  kStable,
  /// The paper's Eq. (16b) diagonal solve on M2 = diag([x; y]). Exact in
  /// ideal math, but the 1/x̂, 1/ŷ divisions amplify analog noise by up to
  /// `ratio_cap` on the near-zero diagonal entries (ablation).
  kM2Diagonal,
};

/// Options of the large-scale crossbar solver.
struct LsPdipOptions {
  /// Algorithmic parameters; eps/divergence/max_iterations reused.
  PdipOptions pdip{};
  /// Hardware selection for the M1 system (M2 is diagonal and small).
  BackendOptions hardware{};
  /// Constant step length θ (§3.4).
  double theta = 0.5;
  M1Mode m1_mode = M1Mode::kSchurDiagonal;
  RecoveryMode recovery = RecoveryMode::kStable;
  /// Cap on the w_i/y_i and z_j/x_j corner-diagonal ratios.
  double ratio_cap = 1e3;
  /// Magnitude (relative to mean |A|) of the small random values filled into
  /// the OFF-diagonal corner entries in Schur mode — the paper's "very
  /// small" RU/RL values, acting as a one-off regularization. Off by
  /// default: it couples the primal/dual blocks, which blurs the
  /// directional-divergence signature infeasibility detection relies on
  /// (see bench/ablation_balancing).
  double corner_fill_scale = 0.0;
  /// Include the Z∘∆x / W∘∆y cross terms in the M2 right-hand side
  /// (kM2Diagonal only). false = the paper's literal Eq. (16b).
  bool exact_recovery = true;
  /// Magnitude of RU/RL in kLiteralBalanced mode, relative to mean |A|.
  double balancing_scale = 0.02;
  BalancingFill balancing_fill = BalancingFill::kAuto;
  /// α of the final constraint check.
  double alpha = 1.05;
  double full_scale_headroom = 4.0;
  std::size_t max_retries = 3;
  double acceptance_merit = 0.1;
  std::size_t stall_window = 30;
  double state_floor = 1e-10;
  std::uint64_t seed = 0x5eed;
};

/// Solves the LP with the large-scale two-system scheme (Algorithm 2).
/// `stats.system_dim` reports the augmented M1 dimension.
XbarSolveOutcome solve_ls_pdip(const lp::LinearProgram& problem,
                               const LsPdipOptions& options = {});

/// Builds the literal-mode M1 base matrix [[A, RU],[RL, Aᵀ]] with small
/// random balancing values (exposed for tests and the balancing ablation).
Matrix build_balanced_m1(const lp::LinearProgram& problem,
                         double balancing_scale, BalancingFill fill,
                         Rng& rng);

/// Builds the Schur-diagonal M1 base matrix for the given state (exposed for
/// tests). `corner_fill_scale` > 0 adds the paper's small random values to
/// the off-diagonal corner entries (regularization; needs `rng`).
Matrix build_schur_m1(const lp::LinearProgram& problem,
                      const PdipState& state, double ratio_cap,
                      double corner_fill_scale = 0.0, Rng* rng = nullptr);

}  // namespace memlp::core
