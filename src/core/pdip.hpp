// Software primal-dual interior-point solver (§3.1).
//
// This is the paper's software baseline ("PDIP implemented in Matlab"): each
// iteration assembles the full Newton system of Eq. (12) — 2(n+m) equations —
// and solves it with LU decomposition, the O(N³) step that the crossbar
// replaces with an O(1) analog settle. Termination and infeasibility
// detection follow §3.1: stop when primal infeasibility, dual infeasibility,
// and the duality gap are all small; declare infeasibility when an iterate
// diverges beyond a large bound (unbounded dual ⇒ infeasible primal and vice
// versa).
#pragma once

#include "lp/problem.hpp"
#include "lp/result.hpp"

namespace memlp::obs {
class TraceSink;
}

namespace memlp::core {

/// How the software baseline solves the per-iteration Newton system.
enum class NewtonFactorization {
  /// The full 2(n+m) Eq. (12) system via dense LU — the paper's O(N³)
  /// software reference.
  kFullKkt,
  /// The m×m normal equations (A·Θ·Aᵀ + Y⁻¹W)·∆y = rhs via LDLᵀ — the
  /// textbook IPM implementation, a stronger software baseline.
  kNormalEquations,
};

/// Tuning of the software PDIP method (defaults follow the text).
struct PdipOptions {
  NewtonFactorization newton = NewtonFactorization::kFullKkt;
  /// Mehrotra predictor–corrector (extension): an affine predictor step
  /// chooses the centering weight adaptively and a corrector reuses the
  /// iteration's factorization; typically halves the iteration count.
  /// Off by default — the paper's plain µ rule (Eq. 8).
  bool predictor_corrector = false;
  /// δ of Eq. (8), in (0, 1).
  double delta = 0.1;
  /// r of Eq. (11) — step-length safety ratio, slightly below 1.
  double step_ratio = 0.9;
  /// ε_b: primal-infeasibility tolerance (relative to 1 + ‖b‖_inf).
  double eps_primal = 1e-8;
  /// ε_c: dual-infeasibility tolerance (relative to 1 + ‖c‖_inf).
  double eps_dual = 1e-8;
  /// ε_g: duality-gap tolerance (relative to 1 + |cᵀx|).
  double eps_gap = 1e-8;
  std::size_t max_iterations = 200;
  /// Divergence bound for the infeasibility test (max |x_i|, |y_j|).
  double divergence_bound = 1e8;
  /// Structured trace destination (see obs/trace.hpp): one `iteration`
  /// event per PDIP iteration plus a final `solve_summary`. nullptr (the
  /// default) falls back to the process-wide MEMLP_TRACE sink; with neither
  /// set, instrumentation is skipped entirely. The crossbar solvers
  /// (XbarPdipOptions / LsPdipOptions) inherit this field through their
  /// embedded PdipOptions.
  obs::TraceSink* trace = nullptr;
};

/// Solves the LP with the software PDIP method. `wall_seconds` is measured.
lp::SolveResult solve_pdip(const lp::LinearProgram& problem,
                           const PdipOptions& options = {});

}  // namespace memlp::core
