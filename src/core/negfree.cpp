#include "core/negfree.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace memlp::core {

NegativeFreeSystem::NegativeFreeSystem(const Matrix& b) {
  if (!b.square()) throw DimensionError("negfree: matrix must be square");
  base_dim_ = b.rows();

  // Pass 1: find the negative-containing columns.
  std::vector<bool> has_negative(base_dim_, false);
  for (std::size_t i = 0; i < base_dim_; ++i)
    for (std::size_t j = 0; j < base_dim_; ++j)
      if (b(i, j) < 0.0) has_negative[j] = true;
  comp_of_column_.assign(base_dim_, kNoComp);
  for (std::size_t j = 0; j < base_dim_; ++j)
    if (has_negative[j]) {
      comp_of_column_[j] = comp_columns_.size();
      comp_columns_.push_back(j);
    }

  // Pass 2: assemble the augmented matrix.
  const std::size_t d = dim();
  augmented_ = Matrix(d, d);
  for (std::size_t i = 0; i < base_dim_; ++i)
    for (std::size_t j = 0; j < base_dim_; ++j)
      augmented_(i, j) = b(i, j) > 0.0 ? b(i, j) : 0.0;
  for (std::size_t l = 0; l < comp_columns_.size(); ++l) {
    const std::size_t j = comp_columns_[l];
    for (std::size_t i = 0; i < base_dim_; ++i)
      if (b(i, j) < 0.0) augmented_(i, base_dim_ + l) = -b(i, j);
    // Consistency row: s_j + p_l = 0.
    augmented_(base_dim_ + l, j) = 1.0;
    augmented_(base_dim_ + l, base_dim_ + l) = 1.0;
  }
  MEMLP_ENSURE(augmented_.nonnegative());
}

Vec NegativeFreeSystem::extend(std::span<const double> s) const {
  MEMLP_EXPECT(s.size() == base_dim_);
  Vec out(s.begin(), s.end());
  out.reserve(dim());
  for (std::size_t j : comp_columns_) out.push_back(-s[j]);
  return out;
}

Vec NegativeFreeSystem::extend_rhs(std::span<const double> r) const {
  MEMLP_EXPECT(r.size() == base_dim_);
  Vec out(r.begin(), r.end());
  out.resize(dim(), 0.0);
  return out;
}

Vec NegativeFreeSystem::restrict(std::span<const double> augmented) const {
  MEMLP_EXPECT(augmented.size() == dim());
  return Vec(augmented.begin(),
             augmented.begin() + static_cast<std::ptrdiff_t>(base_dim_));
}

void NegativeFreeSystem::update_base_cell(std::size_t i, std::size_t j,
                                          double value) {
  MEMLP_EXPECT(i < base_dim_ && j < base_dim_);
  MEMLP_EXPECT_MSG(value >= 0.0,
                   "update_base_cell only supports non-negative values; the "
                   "sign pattern was fixed at construction");
  augmented_(i, j) = value;
}

std::vector<NegativeFreeSystem::CellWrite>
NegativeFreeSystem::update_base_cell_signed(std::size_t i, std::size_t j,
                                            double value) {
  MEMLP_EXPECT(i < base_dim_ && j < base_dim_);
  const std::size_t comp = comp_of_column_[j];
  std::vector<CellWrite> writes;
  if (value >= 0.0) {
    writes.push_back({i, j, value});
    augmented_(i, j) = value;
    if (comp != kNoComp) {
      writes.push_back({i, base_dim_ + comp, 0.0});
      augmented_(i, base_dim_ + comp) = 0.0;
    }
  } else {
    MEMLP_EXPECT_MSG(comp != kNoComp,
                     "negative write into column " << j
                         << " which has no compensation column");
    writes.push_back({i, j, 0.0});
    augmented_(i, j) = 0.0;
    writes.push_back({i, base_dim_ + comp, -value});
    augmented_(i, base_dim_ + comp) = -value;
  }
  return writes;
}

}  // namespace memlp::core
