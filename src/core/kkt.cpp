#include "core/kkt.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/ops.hpp"

namespace memlp::core {

PdipState PdipState::ones(std::size_t n, std::size_t m) {
  PdipState state;
  state.x.assign(n, 1.0);
  state.y.assign(m, 1.0);
  state.w.assign(m, 1.0);
  state.z.assign(n, 1.0);
  return state;
}

double PdipState::gap() const { return dot(z, x) + dot(y, w); }

double PdipState::mu(double delta) const {
  return delta * gap() / static_cast<double>(x.size() + y.size());
}

void PdipState::clamp_floor(double floor) {
  const auto clamp = [floor](Vec& v) {
    for (double& value : v) value = std::max(value, floor);
  };
  clamp(x);
  clamp(y);
  clamp(w);
  clamp(z);
}

Matrix assemble_kkt(const lp::LinearProgram& problem,
                    const PdipState& state) {
  const KktLayout layout{problem.num_variables(), problem.num_constraints()};
  const std::size_t n = layout.n;
  const std::size_t m = layout.m;
  Matrix kkt(layout.dim(), layout.dim());

  // CSR iteration: only stored entries are written, structural zeros stay
  // zero — identical to the old dense fill, O(nnz) instead of O(m·n).
  const CsrMatrix& a = problem.a.csr();
  const auto offsets = a.row_offsets();
  const auto cols = a.column_indices();
  const auto values = a.values();
  // Row block 1: A·∆x + I·∆w.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k)
      kkt(layout.row_primal() + i, layout.col_x() + cols[k]) = values[k];
    kkt(layout.row_primal() + i, layout.col_w() + i) = 1.0;
  }
  // Row block 2: Aᵀ·∆y − I·∆z.
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k)
      kkt(layout.row_dual() + cols[k], layout.col_y() + i) = values[k];
  for (std::size_t j = 0; j < n; ++j)
    kkt(layout.row_dual() + j, layout.col_z() + j) = -1.0;
  update_kkt_diagonals(kkt, problem, state);
  return kkt;
}

void update_kkt_diagonals(Matrix& kkt, const lp::LinearProgram& problem,
                          const PdipState& state) {
  const KktLayout layout{problem.num_variables(), problem.num_constraints()};
  MEMLP_EXPECT(kkt.rows() == layout.dim() && kkt.cols() == layout.dim());
  const std::size_t n = layout.n;
  const std::size_t m = layout.m;
  // Row block 3: Z·∆x + X·∆z.
  for (std::size_t j = 0; j < n; ++j) {
    kkt(layout.row_xz() + j, layout.col_x() + j) = state.z[j];
    kkt(layout.row_xz() + j, layout.col_z() + j) = state.x[j];
  }
  // Row block 4: W·∆y + Y·∆w.
  for (std::size_t i = 0; i < m; ++i) {
    kkt(layout.row_yw() + i, layout.col_y() + i) = state.w[i];
    kkt(layout.row_yw() + i, layout.col_w() + i) = state.y[i];
  }
}

Vec kkt_rhs(const lp::LinearProgram& problem, const PdipState& state,
            double mu) {
  const KktLayout layout{problem.num_variables(), problem.num_constraints()};
  Vec rhs(layout.dim(), 0.0);
  const Vec ax = problem.a.multiply(state.x);
  const Vec aty = problem.a.multiply_transposed(state.y);
  for (std::size_t i = 0; i < layout.m; ++i)
    rhs[layout.row_primal() + i] = problem.b[i] - ax[i] - state.w[i];
  for (std::size_t j = 0; j < layout.n; ++j)
    rhs[layout.row_dual() + j] = problem.c[j] - aty[j] + state.z[j];
  for (std::size_t j = 0; j < layout.n; ++j)
    rhs[layout.row_xz() + j] = mu - state.x[j] * state.z[j];
  for (std::size_t i = 0; i < layout.m; ++i)
    rhs[layout.row_yw() + i] = mu - state.y[i] * state.w[i];
  return rhs;
}

StepDirection split_step(const KktLayout& layout,
                         std::span<const double> delta) {
  MEMLP_EXPECT(delta.size() == layout.dim());
  StepDirection step;
  step.dx = slice(delta, layout.col_x(), layout.n);
  step.dy = slice(delta, layout.col_y(), layout.m);
  step.dw = slice(delta, layout.col_w(), layout.m);
  step.dz = slice(delta, layout.col_z(), layout.n);
  return step;
}

double step_length(const PdipState& state, const StepDirection& step,
                   double r, double dead_floor) {
  MEMLP_EXPECT(r > 0.0 && r < 1.0);
  double blocking = 0.0;  // max_i (−∆v_i / v_i)
  const auto scan = [&blocking, dead_floor](const Vec& v, const Vec& dv) {
    for (std::size_t i = 0; i < v.size(); ++i)
      if (v[i] > dead_floor)
        blocking = std::max(blocking, -dv[i] / v[i]);
  };
  scan(state.x, step.dx);
  scan(state.y, step.dy);
  scan(state.w, step.dw);
  scan(state.z, step.dz);
  if (blocking <= 0.0) return r;
  return r * std::min(1.0 / blocking, 1.0);
}

StepLengths step_lengths(const PdipState& state, const StepDirection& step,
                         double r, double dead_floor) {
  MEMLP_EXPECT(r > 0.0 && r < 1.0);
  const auto side = [dead_floor, r](const Vec& a, const Vec& da, const Vec& b,
                                    const Vec& db) {
    double blocking = 0.0;  // max_i (−∆v_i / v_i) over the pair
    const auto scan = [&blocking, dead_floor](const Vec& v, const Vec& dv) {
      for (std::size_t i = 0; i < v.size(); ++i)
        if (v[i] > dead_floor)
          blocking = std::max(blocking, -dv[i] / v[i]);
    };
    scan(a, da);
    scan(b, db);
    if (blocking <= 0.0) return r;
    return r * std::min(1.0 / blocking, 1.0);
  };
  StepLengths alphas;
  alphas.alpha_p = side(state.x, step.dx, state.w, step.dw);
  alphas.alpha_d = side(state.y, step.dy, state.z, step.dz);
  return alphas;
}

void apply_step(PdipState& state, const StepDirection& step, double theta) {
  axpy(theta, step.dx, state.x);
  axpy(theta, step.dy, state.y);
  axpy(theta, step.dw, state.w);
  axpy(theta, step.dz, state.z);
}

std::optional<lp::SolveStatus> classify_divergence(const PdipState& state,
                                                   double x_bound,
                                                   double y_bound) {
  if (norm_inf(state.y) > y_bound) return lp::SolveStatus::kInfeasible;
  if (norm_inf(state.x) > x_bound) return lp::SolveStatus::kUnbounded;
  return std::nullopt;
}

std::optional<lp::SolveStatus> classify_relative_divergence(
    const PdipState& state, double b_scale, double c_scale) {
  const double x_norm = norm_inf(state.x);
  const double y_norm = norm_inf(state.y);
  if (y_norm > 100.0 * (1.0 + x_norm) && y_norm > 10.0 * c_scale)
    return lp::SolveStatus::kInfeasible;
  if (x_norm > 100.0 * (1.0 + y_norm) && x_norm > 10.0 * b_scale)
    return lp::SolveStatus::kUnbounded;
  return std::nullopt;
}

}  // namespace memlp::core
