#include "core/xbar_pdip.hpp"

#include <optional>

#include "common/contracts.hpp"
#include "core/engine.hpp"
#include "core/kkt.hpp"
#include "core/negfree.hpp"
#include "core/newton_xbar.hpp"
#include "core/scaling.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace memlp::core {
namespace {

/// Reusable solve machinery shared by solve_xbar_pdip (one-shot) and
/// XbarPdipSession (persistent array).
struct SolveContext {
  std::optional<NegativeFreeSystem> negfree;
  std::unique_ptr<AnalogBackend> backend;
  xbar::AmplifierBank amps;
  lp::ConstraintMatrix a_scaled;  ///< the constraint matrix the array holds.
  bool array_programmed = false;
};

XbarSolveOutcome solve_with_context(const lp::LinearProgram& original,
                                    const XbarPdipOptions& options,
                                    SolveContext& context) {
  // Normalize the data to the analog range first (see core/scaling.hpp);
  // the algorithm below runs entirely on the scaled problem.
  const ProblemScaling scaling(original);
  const lp::LinearProgram& problem = scaling.scaled();
  MEMLP_EXPECT(options.alpha >= 1.0);
  const KktLayout layout{problem.num_variables(), problem.num_constraints()};
  obs::TraceSink* sink = options.pdip.trace != nullptr
                             ? options.pdip.trace
                             : obs::default_trace_sink();
  obs::ProfileSpan profile_root("xbar");

  // Context reuse: the array's structural blocks depend only on (scaled) A.
  const bool same_a = context.negfree.has_value() &&
                      context.a_scaled.rows() == problem.a.rows() &&
                      context.a_scaled.cols() == problem.a.cols() &&
                      context.a_scaled == problem.a;
  if (!same_a) {
    // The augmented system's sign pattern is fixed by A, Aᵀ, and −I; the
    // all-ones state gives the structural matrix.
    context.negfree.emplace(
        assemble_kkt(problem, PdipState::ones(layout.n, layout.m)));
    Rng rng(options.seed);
    // options.settle_mode is authoritative over whatever the caller left in
    // the nested crossbar config.
    BackendOptions hardware = options.hardware;
    hardware.crossbar.settle_mode = options.settle_mode;
    context.backend =
        make_backend(hardware, context.negfree->dim(), rng.split());
    context.a_scaled = problem.a;
    context.array_programmed = false;
    context.amps.reset_stats();
  }
  context.backend->reset_stats();
  context.amps.reset_stats();

  // The iteration loop itself lives in core/engine.hpp; this entry point
  // configures the crossbar policy (corrector-refine Mehrotra, damped affine
  // step, frozen/stall heuristics) and the retry/acceptance driver.
  EngineConfig config;
  config.solver_name = "xbar";
  config.mehrotra = MehrotraMode::kCorrectorRefine;
  config.affine_exact = false;
  config.mu_mean_floor = 1e-300;
  config.step_dead_floor = 100.0 * options.state_floor;
  config.state_floor = options.state_floor;
  config.frozen_limit = 5;
  config.attempt_mode = true;
  config.acceptance_merit = options.acceptance_merit;
  config.stall_window = options.stall_window;

  AnalogSolveSpec spec;
  spec.solver_name = "xbar";
  spec.max_retries = options.max_retries;
  spec.acceptance_merit = options.acceptance_merit;
  spec.alpha = options.alpha;
  spec.variation_magnitude = options.hardware.crossbar.variation.magnitude();
  spec.array_programmed = &context.array_programmed;

  XbarNewton newton(problem, options, layout, *context.negfree,
                    *context.backend, context.amps);
  return solve_analog_pdip(problem, scaling, options.pdip, config, spec,
                           newton, sink);
}

}  // namespace

XbarSolveOutcome solve_xbar_pdip(const lp::LinearProgram& original,
                                 const XbarPdipOptions& options) {
  SolveContext context;
  return solve_with_context(original, options, context);
}

struct XbarPdipSession::Impl {
  XbarPdipOptions options;
  SolveContext context;
};

XbarPdipSession::XbarPdipSession(XbarPdipOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
}

XbarPdipSession::~XbarPdipSession() = default;
XbarPdipSession::XbarPdipSession(XbarPdipSession&&) noexcept = default;
XbarPdipSession& XbarPdipSession::operator=(XbarPdipSession&&) noexcept =
    default;

XbarSolveOutcome XbarPdipSession::solve(const lp::LinearProgram& problem) {
  return solve_with_context(problem, impl_->options, impl_->context);
}

}  // namespace memlp::core
