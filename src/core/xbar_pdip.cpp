#include "core/xbar_pdip.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "core/kkt.hpp"
#include "core/negfree.hpp"
#include "core/scaling.hpp"
#include "linalg/ops.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace memlp::core {
namespace {

/// Internal outcome of one solve attempt (one crossbar programming).
enum class AttemptOutcome {
  kConverged,        ///< residuals below tolerance.
  kStalled,          ///< analog noise floor reached (no recent improvement).
  kInfeasible,       ///< dual iterate diverged.
  kUnbounded,        ///< primal iterate diverged.
  kHardwareFailure,  ///< crossbar failed to settle (singular effective M).
  kIterationLimit,
};

struct AttemptResult {
  AttemptOutcome outcome = AttemptOutcome::kIterationLimit;
  PdipState best_state;
  double best_merit = std::numeric_limits<double>::infinity();
  std::size_t iterations = 0;
};

/// Writes the current X, Y, Z, W diagonal blocks into both the bookkeeping
/// structure and the analog backend. Cell count: 2(n+m) — the O(N) update
/// of §3.5 (the crossbar itself skips cells whose level is unchanged).
/// `write_floor` keeps every diagonal cell at one representable conductance
/// level or above: near convergence both x_j and z_j shrink like √µ, and if
/// both quantized to level zero their complementarity row would go all-zero
/// and the array could no longer settle.
void write_diagonal_blocks(const KktLayout& layout, const PdipState& state,
                           NegativeFreeSystem& negfree,
                           AnalogBackend& backend, bool also_backend,
                           double write_floor) {
  const auto put = [&](std::size_t i, std::size_t j, double value) {
    value = std::max(value, write_floor);
    negfree.update_base_cell(i, j, value);
    if (also_backend) backend.update_cell(i, j, value);
  };
  for (std::size_t j = 0; j < layout.n; ++j) {
    put(layout.row_xz() + j, layout.col_x() + j, state.z[j]);
    put(layout.row_xz() + j, layout.col_z() + j, state.x[j]);
  }
  for (std::size_t i = 0; i < layout.m; ++i) {
    put(layout.row_yw() + i, layout.col_y() + i, state.w[i]);
    put(layout.row_yw() + i, layout.col_w() + i, state.y[i]);
  }
}

AttemptResult run_attempt(const lp::LinearProgram& problem,
                          const XbarPdipOptions& options,
                          const KktLayout& layout,
                          NegativeFreeSystem& negfree, AnalogBackend& backend,
                          xbar::AmplifierBank& amps, bool array_holds_m,
                          BackendStats& programming, obs::TraceSink* sink,
                          std::size_t attempt_index) {
  AttemptResult attempt;
  PdipState state = PdipState::ones(layout.n, layout.m);
  const double full_scale =
      options.full_scale_headroom * negfree.matrix().max_abs();
  // 0.75 of one level step: just enough that the cell rounds to level 1
  // rather than level 0, with minimal extra distortion.
  const double write_floor =
      0.75 * full_scale /
      static_cast<double>(options.hardware.crossbar.conductance_levels - 1);
  if (array_holds_m) {
    // Session reuse: the array already holds M's structural blocks; only the
    // O(N) state diagonals need (re)writing.
    obs::ProfileSpan write_span("write_state");
    write_diagonal_blocks(layout, state, negfree, backend,
                          /*also_backend=*/true, write_floor);
  } else {
    {
      obs::ProfileSpan write_span("write_state");
      write_diagonal_blocks(layout, state, negfree, backend,
                            /*also_backend=*/false, write_floor);
    }
    obs::PhaseSpan span(sink, "xbar", "programming");
    span.note("attempt", attempt_index);
    const BackendStats before_program = backend.stats();
    backend.program(negfree.matrix(), full_scale);
    const BackendStats programmed = backend.stats().since(before_program);
    programming += programmed;
    annotate_backend_stats(span, programmed);
  }

  // The per-attempt iteration phase closes on every exit path below (RAII),
  // annotated with the backend traffic it generated — against `programming`
  // this is the paper's O(N)-per-iteration vs O(N²)-per-program split.
  obs::PhaseSpan iteration_span(sink, "xbar", "iterations");
  if (iteration_span.active()) {
    iteration_span.note("attempt", attempt_index);
    const BackendStats before_iterations = backend.stats();
    const xbar::AmplifierStats amps_before = amps.stats();
    iteration_span.on_close([&backend, &amps, &attempt, before_iterations,
                             amps_before](obs::PhaseSpan& span) {
      span.note("iterations", attempt.iterations);
      // The amplifier bank sits outside the backend on single-crossbar
      // runs; merge its delta so the phase covers all analog traffic.
      BackendStats delta = backend.stats().since(before_iterations);
      delta.amps += amps.stats().since(amps_before);
      annotate_backend_stats(span, delta);
    });
  }

  const double b_scale = 1.0 + norm_inf(problem.b);
  const double c_scale = 1.0 + norm_inf(problem.c);
  const std::size_t n = layout.n;
  const std::size_t m = layout.m;
  std::size_t best_iteration = 0;
  // Classifies a non-converged exit. A clearly failing attempt (merit far
  // above any acceptable level) whose dual iterate dwarfs the primal one is
  // the paper's infeasibility signature (§3.1) — and vice versa for an
  // unbounded objective. Analog noise freezes diverging iterates (θ → 0
  // against floored state components) long before any absolute bound, so
  // dominance is the reliable signal.
  const auto classify_exit = [&](AttemptOutcome fallback) {
    if (attempt.best_merit > options.acceptance_merit) {
      // The problem is pre-normalized (core/scaling.hpp), so legitimate
      // optima have x, y of order 1; an iterate an order of magnitude past
      // that AND dominating the other group is the §3.1 divergence
      // signature. Only consulted after the attempt failed to solve.
      const double x_norm = norm_inf(state.x);
      const double y_norm = norm_inf(state.y);
      if (y_norm > 8.0 && y_norm > 4.0 * (1.0 + x_norm))
        return AttemptOutcome::kInfeasible;
      if (x_norm > 8.0 && x_norm > 4.0 * (1.0 + y_norm))
        return AttemptOutcome::kUnbounded;
    }
    if (const auto diverged =
            classify_relative_divergence(state, b_scale, c_scale))
      return *diverged == lp::SolveStatus::kInfeasible
                 ? AttemptOutcome::kInfeasible
                 : AttemptOutcome::kUnbounded;
    return fallback;
  };
  std::size_t frozen_steps = 0;

  double previous_x_norm = 1.0;
  double previous_y_norm = 1.0;
  double best_x_norm = 1.0;
  double best_y_norm = 1.0;
  for (std::size_t iteration = 1; iteration <= options.pdip.max_iterations;
       ++iteration) {
    attempt.iterations = iteration;
    if (iteration > 1) {
      obs::ProfileSpan write_span("write_state");
      write_diagonal_blocks(layout, state, negfree, backend,
                            /*also_backend=*/true, write_floor);
    }

    // --- r = [b; c; µe; µe; 0] − M·s with rows 3/4 halved (Eq. 15a/15b).
    const double mu = state.mu(options.pdip.delta);
    const Vec s = concat({state.x, state.y, state.w, state.z});
    // DAC at the state input; the MVM output stays analog into the amps.
    obs::ProfileSpan mvm_span("mvm");
    Vec ms = backend.multiply(negfree.extend(s),
                              AnalogBackend::IoBoundary::kInputOnly);
    mvm_span.close();
    {
      const Vec halved = amps.halve(
          std::span<const double>(ms).subspan(layout.row_xz(), n + m));
      std::copy(halved.begin(), halved.end(),
                ms.begin() + static_cast<std::ptrdiff_t>(layout.row_xz()));
    }
    // r at a given centering weight: the µ rows of the constant vector are
    // retargeted by the amps without another settle.
    const auto rhs_at = [&](double mu_target) {
      Vec fixed(negfree.dim(), 0.0);
      std::copy(
          problem.b.begin(), problem.b.end(),
          fixed.begin() + static_cast<std::ptrdiff_t>(layout.row_primal()));
      std::copy(problem.c.begin(), problem.c.end(),
                fixed.begin() + static_cast<std::ptrdiff_t>(layout.row_dual()));
      std::fill_n(
          fixed.begin() + static_cast<std::ptrdiff_t>(layout.row_xz()),
          n + m, mu_target);
      Vec rhs = amps.sub(fixed, ms);
      // The augmentation rows are exact zeros by construction (Eq. 15a);
      // the controller does not measure them.
      std::fill(rhs.begin() + static_cast<std::ptrdiff_t>(layout.dim()),
                rhs.end(), 0.0);
      return rhs;
    };
    Vec r = rhs_at(mu);

    // --- Convergence / divergence bookkeeping on the analog residuals.
    const double primal_inf =
        norm_inf(std::span<const double>(r).subspan(layout.row_primal(), m));
    const double dual_inf =
        norm_inf(std::span<const double>(r).subspan(layout.row_dual(), n));
    const double gap = state.gap();
    const double objective = problem.objective(state.x);
    const double merit =
        std::max({primal_inf / b_scale, dual_inf / c_scale,
                  gap / (1.0 + std::abs(objective))});
    if (merit < attempt.best_merit) {
      attempt.best_merit = merit;
      attempt.best_state = state;
      best_iteration = iteration;
      best_x_norm = std::max(norm_inf(state.x), 1e-3);
      best_y_norm = std::max(norm_inf(state.y), 1e-3);
    }
    // One `iteration` record per loop entry, emitted at whichever exit the
    // iteration takes (step lengths are only known on the stepping path).
    obs::IterationRecord rec;
    if (sink != nullptr) {
      rec.solver = "xbar";
      rec.iteration = iteration;
      rec.attempt = attempt_index;
      rec.mu = mu;
      rec.primal_inf = primal_inf;
      rec.dual_inf = dual_inf;
      rec.gap = gap;
      rec.objective = objective;
      rec.merit = merit;
    }
    const auto emit_iteration = [&] {
      if (sink != nullptr) sink->emit(rec.to_event());
    };
    if (primal_inf <= options.pdip.eps_primal * b_scale &&
        dual_inf <= options.pdip.eps_dual * c_scale &&
        gap <= options.pdip.eps_gap * (1.0 + std::abs(objective))) {
      attempt.outcome = AttemptOutcome::kConverged;
      emit_iteration();
      return attempt;
    }
    const double x_norm_now = norm_inf(state.x);
    const double y_norm_now = norm_inf(state.y);
    if (const auto diverged =
            classify_divergence(state, options.pdip.divergence_bound,
                                options.pdip.divergence_bound)) {
      // Genuine divergence is directional: one group blows up while the
      // other stays bounded (§3.1). Both groups having jumped orders of
      // magnitude — whether in one step or since the best iterate — is a
      // wild solve off a near-singular effective array: retry, don't
      // misclassify.
      if ((x_norm_now > 100.0 * previous_x_norm &&
           y_norm_now > 100.0 * previous_y_norm) ||
          (x_norm_now > 100.0 * best_x_norm &&
           y_norm_now > 100.0 * best_y_norm)) {
        attempt.outcome = AttemptOutcome::kHardwareFailure;
        emit_iteration();
        return attempt;
      }
      attempt.outcome = *diverged == lp::SolveStatus::kInfeasible
                            ? AttemptOutcome::kInfeasible
                            : AttemptOutcome::kUnbounded;
      emit_iteration();
      return attempt;
    }
    previous_x_norm = std::max(x_norm_now, 1.0);
    previous_y_norm = std::max(y_norm_now, 1.0);
    if (iteration - best_iteration > options.stall_window) {
      attempt.outcome = classify_exit(AttemptOutcome::kStalled);
      emit_iteration();
      return attempt;
    }

    // --- Solve M·∆s = r on the crossbar and step. r arrives in analog
    // from the amps; ADC only on the solution read-out. With the Mehrotra
    // extension an affine settle (µ = 0) picks the centering weight and a
    // second-order correction; the corrector settles on the same
    // programmed array.
    obs::ProfileSpan settle_span("settle");
    auto delta_aug =
        backend.solve(r, AnalogBackend::IoBoundary::kOutputOnly);
    settle_span.close();
    if (!delta_aug) {
      // A diverging iterate drives the (varied) system singular well before
      // the hard bound — classify before falling back to a hardware retry.
      attempt.outcome = classify_exit(AttemptOutcome::kHardwareFailure);
      emit_iteration();
      return attempt;
    }
    if (options.pdip.predictor_corrector) {
      obs::ProfileSpan affine_span("settle");
      const auto affine_aug = backend.solve(
          rhs_at(0.0), AnalogBackend::IoBoundary::kOutputOnly);
      affine_span.close();
      if (affine_aug) {
        const StepDirection affine =
            split_step(layout, negfree.restrict(*affine_aug));
        const double theta_affine =
            step_length(state, affine, options.pdip.step_ratio,
                        100.0 * options.state_floor);
        double mu_affine = 0.0;
        for (std::size_t j = 0; j < n; ++j)
          mu_affine += (state.x[j] + theta_affine * affine.dx[j]) *
                       (state.z[j] + theta_affine * affine.dz[j]);
        for (std::size_t i = 0; i < m; ++i)
          mu_affine += (state.y[i] + theta_affine * affine.dy[i]) *
                       (state.w[i] + theta_affine * affine.dw[i]);
        mu_affine /= static_cast<double>(n + m);
        const double mu_mean = gap / static_cast<double>(n + m);
        const double ratio =
            std::clamp(mu_affine / std::max(mu_mean, 1e-300), 0.0, 1.0);
        const double sigma = ratio * ratio * ratio;
        // Corrector rhs: retarget µ and subtract ∆X_aff∆Z_aff e (amps).
        Vec r_corrector = rhs_at(sigma * mu_mean);
        const Vec corr1 = amps.multiply_elementwise(affine.dx, affine.dz);
        const Vec corr2 = amps.multiply_elementwise(affine.dy, affine.dw);
        for (std::size_t j = 0; j < n; ++j)
          r_corrector[layout.row_xz() + j] -= corr1[j];
        for (std::size_t i = 0; i < m; ++i)
          r_corrector[layout.row_yw() + i] -= corr2[i];
        obs::ProfileSpan corrector_span("settle");
        auto corrected = backend.solve(
            r_corrector, AnalogBackend::IoBoundary::kOutputOnly);
        corrector_span.close();
        if (corrected) {
          delta_aug = std::move(corrected);
          // The step taken came from the corrector settle: trace the µ it
          // solved with (σ·µ_mean, not the Eq. (8) default) and the affine
          // diagnostics. When the corrector fails we keep the plain-Newton
          // settle at µ = δ·gap/size, so rec.mu stays as initialized.
          rec.mu = sigma * mu_mean;
          rec.mu_affine = mu_affine;
          rec.sigma = sigma;
        }
      }
    }
    const StepDirection step =
        split_step(layout, negfree.restrict(*delta_aug));
    const double theta = step_length(state, step, options.pdip.step_ratio,
                                     100.0 * options.state_floor);
    // θ collapsing for several iterations means a floored state component is
    // blocking every step — the frozen signature of a diverged iterate under
    // analog noise.
    frozen_steps = theta < 1e-7 ? frozen_steps + 1 : 0;
    rec.alpha_p = rec.alpha_d = theta;
    if (frozen_steps >= 5) {
      attempt.outcome = classify_exit(AttemptOutcome::kStalled);
      emit_iteration();
      return attempt;
    }
    apply_step(state, step, theta);
    state.clamp_floor(options.state_floor);
    emit_iteration();
  }
  attempt.outcome = classify_exit(AttemptOutcome::kIterationLimit);
  return attempt;
}

/// Reusable solve machinery shared by solve_xbar_pdip (one-shot) and
/// XbarPdipSession (persistent array).
struct SolveContext {
  std::optional<NegativeFreeSystem> negfree;
  std::unique_ptr<AnalogBackend> backend;
  xbar::AmplifierBank amps;
  Matrix a_scaled;             ///< the constraint matrix the array holds.
  bool array_programmed = false;
};

XbarSolveOutcome solve_with_context(const lp::LinearProgram& original,
                                    const XbarPdipOptions& options,
                                    SolveContext& context) {
  // Normalize the data to the analog range first (see core/scaling.hpp);
  // the algorithm below runs entirely on the scaled problem.
  const ProblemScaling scaling(original);
  const lp::LinearProgram& problem = scaling.scaled();
  MEMLP_EXPECT(options.alpha >= 1.0);
  const KktLayout layout{problem.num_variables(), problem.num_constraints()};
  obs::TraceSink* sink = options.pdip.trace != nullptr
                             ? options.pdip.trace
                             : obs::default_trace_sink();
  obs::ProfileSpan profile_root("xbar");

  // Context reuse: the array's structural blocks depend only on (scaled) A.
  const bool same_a = context.negfree.has_value() &&
                      context.a_scaled.rows() == problem.a.rows() &&
                      context.a_scaled.cols() == problem.a.cols() &&
                      context.a_scaled == problem.a;
  if (!same_a) {
    // The augmented system's sign pattern is fixed by A, Aᵀ, and −I; the
    // all-ones state gives the structural matrix.
    context.negfree.emplace(
        assemble_kkt(problem, PdipState::ones(layout.n, layout.m)));
    Rng rng(options.seed);
    context.backend =
        make_backend(options.hardware, context.negfree->dim(), rng.split());
    context.a_scaled = problem.a;
    context.array_programmed = false;
    context.amps.reset_stats();
  }
  NegativeFreeSystem& negfree = *context.negfree;
  AnalogBackend& backend = *context.backend;
  xbar::AmplifierBank& amps = context.amps;
  backend.reset_stats();
  amps.reset_stats();

  XbarSolveOutcome out;
  out.stats.system_dim = negfree.dim();
  out.stats.compensations = negfree.num_compensations();
  out.result.status = lp::SolveStatus::kNumericalFailure;

  // The solution lives on the *programmed* (varied) constraint matrix, so
  // the final check against the true A must tolerate the representational
  // error: α grows with the process-variation magnitude (§3.2's "close to
  // but greater than 1" presumes ideal devices).
  const double alpha_effective =
      std::max(options.alpha,
               1.0 + 1.5 * options.hardware.crossbar.variation.magnitude());

  for (std::size_t attempt_index = 0;
       attempt_index <= options.max_retries; ++attempt_index) {
    out.stats.attempts = attempt_index + 1;
    const bool reuse_array = attempt_index == 0 && context.array_programmed;
    const AttemptResult attempt =
        run_attempt(problem, options, layout, negfree, backend, amps,
                    reuse_array, out.stats.programming, sink,
                    attempt_index + 1);
    context.array_programmed = true;
    out.stats.iterations += attempt.iterations;

    // A divergence verdict is only credible when the attempt never came
    // close to solving; a late blow-up after a near-converged iterate (a
    // wild step off a near-singular quantized array) falls through to the
    // acceptance path below.
    const bool diverged_credibly =
        attempt.best_merit > options.acceptance_merit;
    if (attempt.outcome == AttemptOutcome::kInfeasible && diverged_credibly) {
      out.result.status = lp::SolveStatus::kInfeasible;
      out.result.iterations = out.stats.iterations;
      break;
    }
    if (attempt.outcome == AttemptOutcome::kUnbounded && diverged_credibly) {
      out.result.status = lp::SolveStatus::kUnbounded;
      out.result.iterations = out.stats.iterations;
      break;
    }
    const bool accepted =
        (attempt.outcome == AttemptOutcome::kConverged ||
         attempt.best_merit <= options.acceptance_merit) &&
        !attempt.best_state.x.empty() &&
        // The check tolerates the solver's own achieved accuracy (the merit
        // bounds the scaled residuals): its job is to reject *wrong*
        // solutions, not to demand precision beyond the analog noise floor.
        problem.satisfies_constraints(
            attempt.best_state.x, alpha_effective,
            2.0 * attempt.best_merit * (1.0 + norm_inf(problem.b)) + 1e-9);
    if (accepted) {
      out.result.status = lp::SolveStatus::kOptimal;
      out.result.x = attempt.best_state.x;
      out.result.y = attempt.best_state.y;
      out.result.w = attempt.best_state.w;
      out.result.z = attempt.best_state.z;
      out.result.objective = problem.objective(attempt.best_state.x);
      out.result.iterations = out.stats.iterations;
      break;
    }
    // Otherwise: retry with a freshly programmed crossbar — process
    // variation differs on every write (§4.3), so the next attempt sees a
    // different effective matrix.
    out.result.status = attempt.outcome == AttemptOutcome::kIterationLimit
                            ? lp::SolveStatus::kIterationLimit
                            : lp::SolveStatus::kNumericalFailure;
    out.result.iterations = out.stats.iterations;
  }

  out.stats.backend = backend.stats();
  out.stats.amps = amps.stats();
  scaling.unscale(out.result);

  if (sink != nullptr) {
    obs::SolveSummary summary;
    summary.solver = "xbar";
    summary.status = lp::to_string(out.result.status);
    summary.iterations = out.stats.iterations;
    summary.objective = out.result.objective;
    obs::Event event = summary.to_event();
    event.with("attempts", out.stats.attempts)
        .with("system_dim", out.stats.system_dim)
        .with("compensations", out.stats.compensations)
        .with("programming.full_programs", out.stats.programming.xbar.full_programs)
        .with("programming.cells_written", out.stats.programming.xbar.cells_written)
        .with("programming.write_pulses", out.stats.programming.xbar.write_pulses)
        .with("backend.cells_written", out.stats.backend.xbar.cells_written)
        .with("backend.mvm_ops", out.stats.backend.xbar.mvm_ops)
        .with("backend.solve_ops", out.stats.backend.xbar.solve_ops)
        .with("backend.num_tiles", out.stats.backend.num_tiles);
    sink->emit(event);
    sink->flush();
  }
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("xbar.solves").add();
  registry.counter("xbar.iterations").add(out.stats.iterations);
  registry.counter("xbar.attempts").add(out.stats.attempts);
  if (out.result.optimal()) registry.counter("xbar.optimal").add();
  return out;
}

}  // namespace

XbarSolveOutcome solve_xbar_pdip(const lp::LinearProgram& original,
                                 const XbarPdipOptions& options) {
  SolveContext context;
  return solve_with_context(original, options, context);
}

struct XbarPdipSession::Impl {
  XbarPdipOptions options;
  SolveContext context;
};

XbarPdipSession::XbarPdipSession(XbarPdipOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
}

XbarPdipSession::~XbarPdipSession() = default;
XbarPdipSession::XbarPdipSession(XbarPdipSession&&) noexcept = default;
XbarPdipSession& XbarPdipSession::operator=(XbarPdipSession&&) noexcept =
    default;

XbarSolveOutcome XbarPdipSession::solve(const lp::LinearProgram& problem) {
  return solve_with_context(problem, impl_->options, impl_->context);
}

}  // namespace memlp::core
