#include "core/batch.hpp"

#include "common/contracts.hpp"
#include "common/par.hpp"
#include "obs/metrics.hpp"

namespace memlp::core {

std::vector<XbarSolveOutcome> solve_batch(std::span<const BatchJob> jobs,
                                          std::size_t threads) {
  for (const BatchJob& job : jobs)
    MEMLP_EXPECT_MSG(job.problem != nullptr, "solve_batch: null problem");
  std::vector<XbarSolveOutcome> outcomes(jobs.size());
  par::parallel_for(
      jobs.size(),
      [&](std::size_t i) {
        outcomes[i] = solve_xbar_pdip(*jobs[i].problem, jobs[i].options);
      },
      threads);
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("batch.calls").add();
  registry.counter("batch.problems").add(jobs.size());
  return outcomes;
}

std::vector<XbarSolveOutcome> solve_batch(
    std::span<const lp::LinearProgram> problems, const BatchOptions& options) {
  std::vector<BatchJob> jobs(problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    jobs[i].problem = &problems[i];
    jobs[i].options = options.base;
    jobs[i].options.seed =
        options.base.seed + static_cast<std::uint64_t>(i) * options.seed_stride;
  }
  return solve_batch(std::span<const BatchJob>(jobs), options.threads);
}

}  // namespace memlp::core
