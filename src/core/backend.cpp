#include "core/backend.hpp"

#include <sstream>
#include <string>

#include "common/contracts.hpp"
#include "obs/trace.hpp"

namespace memlp::core {
namespace {

class SingleCrossbarBackend final : public AnalogBackend {
 public:
  SingleCrossbarBackend(const xbar::CrossbarConfig& config, Rng rng)
      : crossbar_(config, rng) {}

  void program(const Matrix& a, double full_scale_hint) override {
    crossbar_.program(a, full_scale_hint);
  }
  void update_cells(std::span<const xbar::CellUpdate> updates) override {
    crossbar_.update_cells(updates);
  }
  Vec multiply(std::span<const double> x, IoBoundary io) override {
    return crossbar_.multiply(x, io);
  }
  std::optional<Vec> solve(std::span<const double> b,
                           IoBoundary io) override {
    return crossbar_.solve(b, io);
  }
  BackendStats stats() const override {
    BackendStats s;
    s.xbar = crossbar_.stats();
    s.settle_cache = crossbar_.settle_cache_stats();
    s.num_tiles = 1;
    return s;
  }
  void reset_stats() override { crossbar_.reset_stats(); }
  std::string describe() const override {
    std::ostringstream os;
    os << "single crossbar " << crossbar_.rows() << "x" << crossbar_.cols();
    return os.str();
  }

 private:
  xbar::Crossbar crossbar_;
};

class TiledNocBackend final : public AnalogBackend {
 public:
  TiledNocBackend(const BackendOptions& options, Rng rng)
      : tiled_(noc::TiledConfig{options.tile_dim, options.topology,
                                options.crossbar},
               rng) {}

  void program(const Matrix& a, double full_scale_hint) override {
    tiled_.program(a, full_scale_hint);
  }
  void update_cells(std::span<const xbar::CellUpdate> updates) override {
    tiled_.update_cells(updates);
  }
  Vec multiply(std::span<const double> x, IoBoundary io) override {
    return tiled_.multiply(x, io);
  }
  std::optional<Vec> solve(std::span<const double> b,
                           IoBoundary io) override {
    return tiled_.solve(b, io);
  }
  BackendStats stats() const override {
    BackendStats s;
    s.xbar = tiled_.crossbar_stats();
    s.amps = tiled_.amplifier_stats();
    s.noc = tiled_.noc_stats();
    s.settle_cache = tiled_.settle_cache_stats();
    s.num_tiles = tiled_.num_tiles();
    s.zero_tiles = tiled_.num_zero_tiles();
    return s;
  }
  void reset_stats() override { tiled_.reset_stats(); }
  std::string describe() const override {
    std::ostringstream os;
    os << (tiled_.config().topology == noc::TopologyKind::kHierarchical
               ? "hierarchical"
               : "mesh")
       << " NoC, " << tiled_.num_tiles() << " tiles of "
       << tiled_.config().tile_dim;
    if (tiled_.programmed() && tiled_.num_zero_tiles() > 0)
      os << " (" << tiled_.num_zero_tiles() << " zero shards skipped)";
    return os.str();
  }

 private:
  noc::TiledCrossbarMatrix tiled_;
};

}  // namespace

void annotate_backend_stats(obs::PhaseSpan& span, const BackendStats& delta) {
  if (!span.active()) return;
  span.note("xbar.full_programs", delta.xbar.full_programs);
  span.note("xbar.cells_written", delta.xbar.cells_written);
  span.note("xbar.write_pulses", delta.xbar.write_pulses);
  span.note("xbar.mvm_ops", delta.xbar.mvm_ops);
  span.note("xbar.solve_ops", delta.xbar.solve_ops);
  // Failure counters appear only when something failed, keeping healthy
  // traces (and the pinned golden ones) unchanged.
  if (delta.xbar.failed_settles != 0)
    span.note("xbar.failed_settles", delta.xbar.failed_settles);
  for (std::size_t k = 0; k < xbar::CrossbarStats::kPulseHistogramBuckets; ++k)
    if (delta.xbar.pulse_histogram[k] != 0)
      span.note("xbar.pulse_hist.b" + std::to_string(k),
                delta.xbar.pulse_histogram[k]);
  span.note("amps.element_ops", delta.amps.element_ops);
  span.note("amps.vector_ops", delta.amps.vector_ops);
  span.note("num_tiles", delta.num_tiles);
  // Emitted only when a shard was actually skipped: healthy single-crossbar
  // traces (and the pinned golden ones) are unchanged.
  if (delta.zero_tiles != 0) span.note("zero_tiles", delta.zero_tiles);
  if (delta.num_tiles > 1) {
    span.note("noc.transfers", delta.noc.transfers);
    span.note("noc.value_hops", delta.noc.value_hops);
    span.note("noc.global_settles", delta.noc.global_settles);
    span.note("noc.tile_settles", delta.noc.tile_settles);
    if (delta.noc.failed_global_settles != 0)
      span.note("noc.failed_global_settles", delta.noc.failed_global_settles);
  }
}

std::unique_ptr<AnalogBackend> make_backend(const BackendOptions& options,
                                            std::size_t dim, Rng rng) {
  MEMLP_EXPECT(dim > 0);
  const std::size_t crossbar_limit =
      options.crossbar.max_dim == 0 ? dim : options.crossbar.max_dim;
  const bool needs_noc = options.force_noc || dim > crossbar_limit ||
                         (options.crossbar.max_dim != 0 &&
                          dim > options.crossbar.max_dim);
  if (needs_noc) {
    BackendOptions tiled_options = options;
    tiled_options.crossbar.max_dim = 0;  // tile enforces its own bound
    return std::make_unique<TiledNocBackend>(tiled_options, rng);
  }
  return std::make_unique<SingleCrossbarBackend>(options.crossbar, rng);
}

}  // namespace memlp::core
