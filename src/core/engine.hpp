// memlp::core::PdipEngine — the single PDIP iteration loop (Algorithm 1).
//
// The paper's algorithm is one loop whose only hardware-dependent step is
// "solve the Newton system": residual measurement, the Eq. (8) µ schedule,
// the Mehrotra predictor-corrector, the Eq. (11) step length, convergence /
// divergence / stall classification, and the obs instrumentation are shared
// by every solver. This header owns that loop; the per-realization math —
// full-KKT LU, normal-equations LDLᵀ, crossbar settle, two-system
// least-squares scheme — plugs in through the NewtonSystem policy interface.
// The public entry points (core/pdip.hpp, core/xbar_pdip.hpp,
// core/ls_pdip.hpp) are thin wrappers that build a policy plus an
// EngineConfig and contain no per-iteration math.
//
// ENGINE-INTERNAL: include this (and core/newton_*.hpp) only from src/core/
// — everything else goes through the wrappers or the memlp::engine registry
// (enforced by memlint rule R7, docs/static-analysis.md).
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <span>
#include <string>

#include "core/kkt.hpp"
#include "core/pdip.hpp"
#include "core/scaling.hpp"
#include "core/xbar_pdip.hpp"
#include "linalg/matrix.hpp"
#include "lp/problem.hpp"
#include "obs/trace.hpp"

namespace memlp::core {

/// Residual measurement of one iteration (∞-norms of the primal and dual
/// infeasibilities, as the realization measures them — exact for software,
/// from the analog read-out for the crossbar policies).
struct Residuals {
  double primal_inf = 0.0;
  double dual_inf = 0.0;
};

/// Result of one Newton solve. `classify_on_failure` tells the engine
/// whether a missing step should run the divergence classifier before being
/// reported as a numerical/hardware failure (the least-squares recovery
/// solve opts out: its M2 system is diagonal, so a failed settle means a
/// broken array, never a diverged iterate).
struct NewtonStep {
  std::optional<StepDirection> step;
  bool classify_on_failure = true;
};

/// Policy interface: how one PDIP iteration realizes the Newton system.
/// The engine drives exactly this sequence per iteration:
///   begin_iteration → measure → prepare → condition → solve (1–3 times,
///   depending on the Mehrotra mode) — so policies may cache intermediates
///   (factorizations, analog read-outs) across the calls of one iteration.
class NewtonSystem {
 public:
  virtual ~NewtonSystem();

  /// Start-of-iteration hook, before any measurement: the analog policies
  /// rewrite the O(N) state diagonals of the programmed array here.
  virtual void begin_iteration(const PdipState& state, std::size_t iteration);

  /// Measures the primal/dual infeasibilities at centering weight `mu`
  /// (analog policies also cache the right-hand side they read out here).
  virtual Residuals measure(const PdipState& state, double mu) = 0;

  /// Once-per-iteration factorization (software policies; analog settles
  /// need no preparation).
  virtual void prepare(const PdipState& state);

  /// Newton-system condition estimate for tracing. Only called when a trace
  /// sink is attached — implementations may do O(N²) work here.
  virtual std::optional<double> condition();

  /// Solves the Newton system at centering weight `mu` with Mehrotra's
  /// second-order corrections subtracted from the complementarity rows
  /// (empty spans = plain Newton). `reuse_measured_rhs` is true when `mu`
  /// equals the weight passed to measure() — analog policies then reuse the
  /// right-hand side they already assembled instead of re-deriving it.
  virtual NewtonStep solve(const PdipState& state, double mu,
                           std::span<const double> corr1,
                           std::span<const double> corr2,
                           bool reuse_measured_rhs) = 0;

  /// Elementwise product for the Mehrotra corrections (∆X_aff·∆Z_aff·e).
  /// Default: exact software hadamard; the crossbar policy routes it
  /// through the analog multiplier bank so op counters stay faithful.
  virtual Vec elementwise(std::span<const double> a, std::span<const double> b);
};

/// How the Mehrotra predictor-corrector composes with the plain step.
enum class MehrotraMode {
  /// Software scheme: affine predictor first; the corrector solve IS the
  /// step (an affine failure fails the iteration — the factorization is
  /// shared, so a second solve cannot succeed where the first failed).
  kAffineFirst,
  /// Analog scheme: plain settle first (always a usable fallback), then
  /// affine + corrector settles; the corrector replaces the plain step only
  /// when its settle succeeds.
  kCorrectorRefine,
};

/// Per-solver shape of the shared loop. The wrappers translate their public
/// options structs into one of these; see pdip.cpp / xbar_pdip.cpp /
/// ls_pdip.cpp for the three canonical configurations.
struct EngineConfig {
  /// Tag stamped on every IterationRecord (and the phase events).
  const char* solver_name = "pdip";
  /// Honor PdipOptions::predictor_corrector (the least-squares scheme has a
  /// constant step length and no corrector, so it opts out).
  bool supports_mehrotra = true;
  MehrotraMode mehrotra = MehrotraMode::kAffineFirst;
  /// Affine predictor step length: true = the exact boundary step
  /// (max_feasible_theta, software); false = the damped Eq. (11) step with
  /// the dead-component exclusion (analog).
  bool affine_exact = true;
  /// Guard on µ_mean in Mehrotra's σ ratio (analog read-outs can drive the
  /// measured gap to zero; software keeps the exact 0.0).
  double mu_mean_floor = 0.0;
  /// Constant step length θ (§3.4, least-squares scheme). Unset = the
  /// Eq. (11) ratio test with split alpha_p/alpha_d.
  std::optional<double> constant_theta;
  /// Components at or below this are excluded from the Eq. (11) ratio test
  /// (analog: 100·state_floor; see core/kkt.hpp step_lengths).
  double step_dead_floor = 0.0;
  /// Positivity floor clamped after every step (analog only; 0 = off).
  double state_floor = 0.0;
  /// Consecutive θ≈0 steps before the attempt is declared stalled (xbar
  /// frozen-step heuristic; 0 = off).
  std::size_t frozen_limit = 0;

  /// Attempt mode (analog): merit/best-state tracking, the wild-jump retry
  /// guard, the stall window, and divergence-dominance exit classification.
  bool attempt_mode = false;
  /// Merit at or below which a non-converged attempt is still acceptable.
  double acceptance_merit = 0.1;
  /// Iterations without a new best iterate before the attempt stalls.
  std::size_t stall_window = 0;
  /// 1-based attempt tag stamped on IterationRecords (0 = untagged).
  std::size_t attempt_index = 0;
};

/// Outcome of one engine run (software solve, or one analog attempt).
enum class AttemptOutcome {
  kConverged,        ///< residuals below tolerance.
  kStalled,          ///< analog noise floor reached (no recent improvement).
  kInfeasible,       ///< dual iterate diverged.
  kUnbounded,        ///< primal iterate diverged.
  kHardwareFailure,  ///< Newton system unsolvable (singular / failed settle).
  kIterationLimit,
};

/// The shared iteration loop. One instance drives one run over a state; the
/// analog retry driver (solve_analog_pdip below) constructs one per attempt.
class PdipEngine {
 public:
  struct Outcome {
    AttemptOutcome outcome = AttemptOutcome::kIterationLimit;
    /// Lowest-merit iterate seen (attempt mode only).
    PdipState best_state;
    double best_merit = std::numeric_limits<double>::infinity();
    std::size_t iterations = 0;
  };

  PdipEngine(const lp::LinearProgram& problem, const PdipOptions& options,
             const EngineConfig& config, obs::TraceSink* sink);

  /// Runs the loop from `state` (mutated in place; on exit it holds the
  /// final iterate). Emits one `iteration` event per loop entry.
  Outcome run(NewtonSystem& newton, PdipState& state);

 private:
  const lp::LinearProgram& problem_;
  const PdipOptions& options_;
  EngineConfig config_;
  obs::TraceSink* sink_;
  double b_scale_;
  double c_scale_;
  double size_;
};

/// Analog policy extension: per-attempt array lifecycle and hardware
/// counters, driven by solve_analog_pdip's retry loop.
class AnalogNewtonSystem : public NewtonSystem {
 public:
  /// Prepares the array(s) for a fresh attempt from `state` (all-ones):
  /// resets the state diagonals and programs the array unless `reuse_array`
  /// (session reuse) — programming counters accumulate into `programming`.
  virtual void begin_attempt(const PdipState& state, std::size_t attempt_index,
                             bool reuse_array, BackendStats& programming,
                             obs::TraceSink* sink) = 0;

  /// Snapshots the backend/amplifier counters (start of the per-attempt
  /// iteration phase span).
  virtual void snapshot_counters() = 0;

  /// Annotates `span` with the counter delta since snapshot_counters().
  virtual void annotate_counters(obs::PhaseSpan& span) = 0;

  /// Reports the augmented system dimension and compensation-column count.
  virtual void describe(XbarSolveStats& stats) const = 0;

  /// Fills the end-of-solve backend/amplifier totals.
  virtual void collect_stats(XbarSolveStats& stats) const = 0;
};

/// Shared shape of the analog retry/acceptance driver (the paper's
/// double-checking scheme, §4.3/§4.5) on top of the engine.
struct AnalogSolveSpec {
  const char* solver_name = "xbar";  ///< phase/summary/metrics tag.
  std::size_t max_retries = 0;
  double acceptance_merit = 0.1;
  /// α of the final constraint check (§3.2).
  double alpha = 1.05;
  /// Process-variation magnitude (widens the final-check α).
  double variation_magnitude = 0.0;
  /// Session flag: when non-null, *array_programmed selects first-attempt
  /// array reuse and is set once the array has been programmed.
  bool* array_programmed = nullptr;
};

/// Runs the full analog solve: retry loop over engine attempts, best-state
/// acceptance against the α-check, unscaling, the extended solve_summary
/// event, and the per-solver metrics counters. `problem` must already be
/// the scaled problem of `scaling`.
XbarSolveOutcome solve_analog_pdip(const lp::LinearProgram& problem,
                                   const ProblemScaling& scaling,
                                   const PdipOptions& options,
                                   const EngineConfig& config,
                                   const AnalogSolveSpec& spec,
                                   AnalogNewtonSystem& newton,
                                   obs::TraceSink* sink);

}  // namespace memlp::core
