// Shared pieces of the PDIP method: the interior state, the Newton/KKT
// system of Eq. (12), the µ rule of Eq. (8), and the step length of Eq. (11).
//
// System layout (dimensions m constraints, n variables; N = 2(n+m)):
//
//   rows:    r1 = [0, m)        A·∆x + ∆w           = b − A·x − w
//            r2 = [m, m+n)      Aᵀ·∆y − ∆z          = c − Aᵀ·y + z
//            r3 = [m+n, m+2n)   Z·∆x + X·∆z         = µ·e − X·Z·e
//            r4 = [m+2n, N)     W·∆y + Y·∆w         = µ·e − Y·W·e
//   columns: ∆x = [0, n), ∆y = [n, n+m), ∆w = [n+m, n+2m), ∆z = [n+2m, N)
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>

#include "linalg/matrix.hpp"
#include "lp/problem.hpp"

namespace memlp::core {

/// Interior-point iterate (all components kept strictly positive).
struct PdipState {
  Vec x;  ///< primal variables (n).
  Vec y;  ///< dual variables (m).
  Vec w;  ///< primal slacks (m).
  Vec z;  ///< dual slacks (n).

  /// The paper initializes with "an arbitrary guess"; the conventional
  /// all-ones point is used.
  static PdipState ones(std::size_t n, std::size_t m);

  /// zᵀx + yᵀw — duality gap.
  [[nodiscard]] double gap() const;

  /// Eq. (8): µ = δ · (zᵀx + yᵀw) / (n + m).
  [[nodiscard]] double mu(double delta) const;

  /// Clamps every component to at least `floor` (keeps the state strictly
  /// interior and crossbar-writable under analog noise).
  void clamp_floor(double floor);
};

/// Column offsets of the Eq. (12) layout.
struct KktLayout {
  std::size_t n = 0;
  std::size_t m = 0;
  [[nodiscard]] std::size_t dim() const noexcept { return 2 * (n + m); }
  [[nodiscard]] std::size_t col_x() const noexcept { return 0; }
  [[nodiscard]] std::size_t col_y() const noexcept { return n; }
  [[nodiscard]] std::size_t col_w() const noexcept { return n + m; }
  [[nodiscard]] std::size_t col_z() const noexcept { return n + 2 * m; }
  [[nodiscard]] std::size_t row_primal() const noexcept { return 0; }
  [[nodiscard]] std::size_t row_dual() const noexcept { return m; }
  [[nodiscard]] std::size_t row_xz() const noexcept { return m + n; }
  [[nodiscard]] std::size_t row_yw() const noexcept { return m + 2 * n; }
};

/// Assembles the full Eq. (12) matrix for the given state.
Matrix assemble_kkt(const lp::LinearProgram& problem, const PdipState& state);

/// Overwrites only the X, Y, Z, W diagonal blocks of an assembled KKT
/// matrix (the per-iteration O(N) update of §3.5).
void update_kkt_diagonals(Matrix& kkt, const lp::LinearProgram& problem,
                          const PdipState& state);

/// Eq. (9) right-hand side [b−Ax−w; c−Aᵀy+z; µe−XZe; µe−YWe].
Vec kkt_rhs(const lp::LinearProgram& problem, const PdipState& state,
            double mu);

/// Step directions split out of a KKT solution vector.
struct StepDirection {
  Vec dx, dy, dw, dz;
};

/// Splits the Eq. (12) solution vector by the layout.
StepDirection split_step(const KktLayout& layout,
                         std::span<const double> delta);

/// Eq. (11): θ = r · min( (max_i −∆v_i/v_i)⁻¹ , 1 ) over all four component
/// groups; returns r when no component blocks the step. Components at or
/// below `dead_floor` are excluded from the ratio test — under analog noise
/// a component pinned at the state floor would otherwise freeze the whole
/// step (θ → 0); the post-step clamp keeps such components positive instead.
double step_length(const PdipState& state, const StepDirection& step,
                   double r, double dead_floor = 0.0);

/// The Eq. (11) ratio test split by problem side: `alpha_p` is blocked only
/// by the primal pair (x, w), `alpha_d` only by the dual pair (y, z). The
/// solvers apply the conservative min(alpha_p, alpha_d) — bitwise equal to
/// step_length() over all four groups — but trace the pair separately, so
/// convergence tables show which side limits progress.
struct StepLengths {
  double alpha_p = 0.0;
  double alpha_d = 0.0;
  [[nodiscard]] double applied() const noexcept {
    return std::min(alpha_p, alpha_d);
  }
};

/// Computes the split Eq. (11) step lengths (same r / dead_floor semantics
/// as step_length).
StepLengths step_lengths(const PdipState& state, const StepDirection& step,
                         double r, double dead_floor = 0.0);

/// Applies s ← s + θ·∆s to every component group.
void apply_step(PdipState& state, const StepDirection& step, double theta);

/// §3.1 divergence test: an unbounded dual iterate (|y| past `y_bound`)
/// signals primal infeasibility; an unbounded primal iterate signals an
/// unbounded objective. Returns nullopt when neither bound is exceeded.
/// Used both with a hard bound each iteration and with a soft bound when the
/// Newton system turns singular — on an infeasible/unbounded problem the
/// central path ceases to exist and the iterates blow the system up before
/// the hard bound is reached.
std::optional<lp::SolveStatus> classify_divergence(const PdipState& state,
                                                   double x_bound,
                                                   double y_bound);

/// Relative variant for the moment the Newton system turns singular: by then
/// the diverging group dwarfs the other one, long before any absolute bound
/// trips. `b_scale`/`c_scale` guard against misfires on small problems.
std::optional<lp::SolveStatus> classify_relative_divergence(
    const PdipState& state, double b_scale, double c_scale);

}  // namespace memlp::core
