#include "core/scaling.hpp"

#include <algorithm>

#include "linalg/ops.hpp"

namespace memlp::core {

ProblemScaling::ProblemScaling(const lp::LinearProgram& problem) {
  problem.validate();
  const double a_norm = std::max(problem.a.max_abs(), 1e-300);
  const double b_norm = std::max(norm_inf(problem.b), 1e-300);
  const double c_norm = std::max(norm_inf(problem.c), 1e-300);

  // x = σx·x̄ with σx = ‖b‖/‖A‖:  A·x ≤ b  ⇔  (A/‖A‖)·x̄ ≤ b/‖b‖.
  x_scale_ = b_norm / a_norm;
  w_scale_ = b_norm;
  // Dual: Aᵀ·y ≥ c ⇔ (A/‖A‖)ᵀ·ȳ ≥ c/‖c‖ with y = (‖c‖/‖A‖)·ȳ.
  y_scale_ = c_norm / a_norm;
  z_scale_ = c_norm;
  obj_scale_ = c_norm * x_scale_;

  scaled_.a = problem.a.scaled(1.0 / a_norm);
  scaled_.b = memlp::scaled(problem.b, 1.0 / b_norm);
  scaled_.c = memlp::scaled(problem.c, 1.0 / c_norm);
}

void ProblemScaling::unscale(lp::SolveResult& result) const {
  for (double& v : result.x) v *= x_scale_;
  for (double& v : result.w) v *= w_scale_;
  for (double& v : result.y) v *= y_scale_;
  for (double& v : result.z) v *= z_scale_;
  result.objective *= obj_scale_;
}

}  // namespace memlp::core
