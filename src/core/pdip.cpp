#include "core/pdip.hpp"

#include "common/stopwatch.hpp"
#include "core/engine.hpp"
#include "core/kkt.hpp"
#include "core/newton_software.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace memlp::core {

lp::SolveResult solve_pdip(const lp::LinearProgram& problem,
                           const PdipOptions& options) {
  problem.validate();
  obs::ProfileSpan profile_root("pdip");
  Stopwatch timer;
  PdipState state =
      PdipState::ones(problem.num_variables(), problem.num_constraints());
  obs::TraceSink* sink =
      options.trace != nullptr ? options.trace : obs::default_trace_sink();

  // The whole iteration loop lives in core/engine.hpp; this entry point only
  // picks the software Newton policy and translates the outcome.
  EngineConfig config;
  config.solver_name = "pdip";
  SoftwareNewton newton(problem, options);
  PdipEngine engine(problem, options, config, sink);
  const PdipEngine::Outcome outcome = engine.run(newton, state);

  lp::SolveResult result;
  switch (outcome.outcome) {
    case AttemptOutcome::kConverged:
      result.status = lp::SolveStatus::kOptimal;
      break;
    case AttemptOutcome::kInfeasible:
      result.status = lp::SolveStatus::kInfeasible;
      break;
    case AttemptOutcome::kUnbounded:
      result.status = lp::SolveStatus::kUnbounded;
      break;
    case AttemptOutcome::kHardwareFailure:
      result.status = lp::SolveStatus::kNumericalFailure;
      break;
    default:
      result.status = lp::SolveStatus::kIterationLimit;
      break;
  }
  result.iterations = outcome.iterations;
  result.x = state.x;
  result.y = state.y;
  result.w = state.w;
  result.z = state.z;
  result.objective = problem.objective(state.x);
  result.wall_seconds = timer.seconds();

  if (sink != nullptr) {
    obs::SolveSummary summary;
    summary.solver = "pdip";
    summary.status = lp::to_string(result.status);
    summary.iterations = result.iterations;
    summary.objective = result.objective;
    summary.wall_seconds = result.wall_seconds;
    sink->emit(summary.to_event());
    sink->flush();
  }
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("pdip.solves").add();
  registry.counter("pdip.iterations").add(result.iterations);
  if (result.optimal()) registry.counter("pdip.optimal").add();
  return result;
}

}  // namespace memlp::core
