#include "core/pdip.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/par.hpp"
#include "common/stopwatch.hpp"
#include "core/kkt.hpp"
#include "linalg/ldlt.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace memlp::core {
namespace {

/// Schur assembly (A·Θ·Aᵀ, O(m²n)) goes parallel from this many constraints.
constexpr std::size_t kParallelSchurCutoff = 64;

/// One iteration's Newton machinery via the m×m normal equations
/// (see PdipOptions::newton):
///   (A·Θ·Aᵀ + Y⁻¹W)·∆y = A·(Θ∘(rd + rµ1./x)) + rµ2./y − rp,  Θ = Z⁻¹X,
///   ∆x = Θ∘(rd + rµ1./x − Aᵀ∆y),
///   ∆z = (rµ1 − z∘∆x)./x,   ∆w = (rµ2 − w∘∆y)./y,
/// with rµ1 = µe − XZe − corr1 and rµ2 = µe − YWe − corr2 (the corrections
/// carry Mehrotra's second-order term; empty = plain Newton).
/// The Schur factorization is built once and reused for every right-hand
/// side of the iteration.
class NormalEquationsSolver {
 public:
  NormalEquationsSolver(const lp::LinearProgram& problem,
                        const PdipState& state)
      : problem_(problem), state_(state) {
    const std::size_t n = problem.num_variables();
    const std::size_t m = problem.num_constraints();
    const Vec ax = gemv(problem.a, state.x);
    const Vec aty = gemv_transposed(problem.a, state.y);
    rp_.resize(m);
    for (std::size_t i = 0; i < m; ++i)
      rp_[i] = problem.b[i] - ax[i] - state.w[i];
    rd_.resize(n);
    for (std::size_t j = 0; j < n; ++j)
      rd_[j] = problem.c[j] - aty[j] + state.z[j];
    theta_.resize(n);
    for (std::size_t j = 0; j < n; ++j)
      theta_[j] = state.x[j] / state.z[j];

    Matrix s(m, m);  // S = A·Θ·Aᵀ + diag(w/y)
    // Assembled in parallel above a size cutoff. Row task i writes exactly
    // the cells {(i, k), (k, i) : k ≤ i}; any off-diagonal cell (r, c) is
    // owned by task max(r, c) and the diagonal by task i, so tasks never
    // collide and every cell's arithmetic is independent of thread count.
    const auto assemble_row = [&](std::size_t i) {
      for (std::size_t k = 0; k <= i; ++k) {
        double sum = 0.0;
        for (std::size_t j = 0; j < n; ++j)
          sum += problem.a(i, j) * theta_[j] * problem.a(k, j);
        s(i, k) = sum;
        s(k, i) = sum;
      }
      s(i, i) += state.w[i] / state.y[i];
    };
    if (m >= kParallelSchurCutoff) {
      par::parallel_for(m, assemble_row);
    } else {
      for (std::size_t i = 0; i < m; ++i) assemble_row(i);
    }
    ldlt_.emplace(s);
  }

  [[nodiscard]] bool usable() const { return !ldlt_->failed(); }

  /// Conditioning proxy of the factored Schur complement (tracing).
  [[nodiscard]] double condition_estimate() const {
    return ldlt_->condition_proxy();
  }

  [[nodiscard]] std::optional<StepDirection> step(
      double mu, std::span<const double> corr1,
      std::span<const double> corr2) const {
    if (!usable()) return std::nullopt;
    const std::size_t n = problem_.num_variables();
    const std::size_t m = problem_.num_constraints();
    const auto c1 = [&](std::size_t j) {
      return corr1.empty() ? 0.0 : corr1[j];
    };
    const auto c2 = [&](std::size_t i) {
      return corr2.empty() ? 0.0 : corr2[i];
    };
    Vec u(n);  // Θ∘(rd + rµ1./x)
    for (std::size_t j = 0; j < n; ++j) {
      const double rmu1_over_x =
          (mu - state_.x[j] * state_.z[j] - c1(j)) / state_.x[j];
      u[j] = theta_[j] * (rd_[j] + rmu1_over_x);
    }
    Vec rhs = gemv(problem_.a, u);
    for (std::size_t i = 0; i < m; ++i) {
      const double rmu2_over_y =
          (mu - state_.y[i] * state_.w[i] - c2(i)) / state_.y[i];
      rhs[i] += rmu2_over_y - rp_[i];
    }
    StepDirection step;
    step.dy = ldlt_->solve(rhs);
    const Vec atdy = gemv_transposed(problem_.a, step.dy);
    step.dx.resize(n);
    step.dz.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      const double rmu1 = mu - state_.x[j] * state_.z[j] - c1(j);
      step.dx[j] = u[j] - theta_[j] * atdy[j];
      step.dz[j] = (rmu1 - state_.z[j] * step.dx[j]) / state_.x[j];
    }
    step.dw.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      const double rmu2 = mu - state_.y[i] * state_.w[i] - c2(i);
      step.dw[i] = (rmu2 - state_.w[i] * step.dy[i]) / state_.y[i];
    }
    return step;
  }

 private:
  const lp::LinearProgram& problem_;
  const PdipState& state_;
  Vec rp_;
  Vec rd_;
  Vec theta_;
  std::optional<LdltFactorization> ldlt_;
};

/// Subtracts Mehrotra's second-order corrections from the complementarity
/// rows of an Eq. (9) right-hand side.
void apply_corrections(const KktLayout& layout, std::span<const double> corr1,
                       std::span<const double> corr2, Vec& rhs) {
  for (std::size_t j = 0; j < corr1.size(); ++j)
    rhs[layout.row_xz() + j] -= corr1[j];
  for (std::size_t i = 0; i < corr2.size(); ++i)
    rhs[layout.row_yw() + i] -= corr2[i];
}

/// Largest θ ∈ (0, 1] keeping the state positive for this step (the exact
/// Eq. (11) bound with r = 1, used by the Mehrotra predictor).
double max_feasible_theta(const PdipState& state, const StepDirection& step) {
  double blocking = 0.0;
  const auto scan = [&blocking](const Vec& v, const Vec& dv) {
    for (std::size_t i = 0; i < v.size(); ++i)
      blocking = std::max(blocking, -dv[i] / v[i]);
  };
  scan(state.x, step.dx);
  scan(state.y, step.dy);
  scan(state.w, step.dw);
  scan(state.z, step.dz);
  return blocking <= 0.0 ? 1.0 : std::min(1.0, 1.0 / blocking);
}

/// Duality gap of the state after a θ-step (for Mehrotra's σ).
double gap_after(const PdipState& state, const StepDirection& step,
                 double theta) {
  double gap = 0.0;
  for (std::size_t j = 0; j < state.x.size(); ++j)
    gap += (state.x[j] + theta * step.dx[j]) *
           (state.z[j] + theta * step.dz[j]);
  for (std::size_t i = 0; i < state.y.size(); ++i)
    gap += (state.y[i] + theta * step.dy[i]) *
           (state.w[i] + theta * step.dw[i]);
  return gap;
}

/// ‖A‖₁ (max column absolute sum) — pairs with LuFactorization's Hager
/// ‖A⁻¹‖₁ estimate for a condition-number estimate. Traced path only.
double matrix_norm_1(const Matrix& a) {
  double best = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) sum += std::abs(a(i, j));
    best = std::max(best, sum);
  }
  return best;
}

}  // namespace

lp::SolveResult solve_pdip(const lp::LinearProgram& problem,
                           const PdipOptions& options) {
  problem.validate();
  obs::ProfileSpan profile_root("pdip");
  Stopwatch timer;
  const KktLayout layout{problem.num_variables(), problem.num_constraints()};
  PdipState state = PdipState::ones(layout.n, layout.m);
  Matrix kkt = assemble_kkt(problem, state);

  const double b_scale = 1.0 + norm_inf(problem.b);
  const double c_scale = 1.0 + norm_inf(problem.c);
  const double size =
      static_cast<double>(layout.n + layout.m);

  obs::TraceSink* sink =
      options.trace != nullptr ? options.trace : obs::default_trace_sink();

  lp::SolveResult result;
  result.status = lp::SolveStatus::kIterationLimit;
  for (std::size_t iteration = 1; iteration <= options.max_iterations;
       ++iteration) {
    result.iterations = iteration;

    // Convergence test on the true residuals.
    const double primal_inf = problem.primal_infeasibility(state.x, state.w);
    const double dual_inf = problem.dual_infeasibility(state.y, state.z);
    const double gap = state.gap();
    const double objective = problem.objective(state.x);
    // Exactly one `iteration` event per loop entry; step lengths and the
    // condition estimate are filled in once known.
    obs::IterationRecord rec;
    if (sink != nullptr) {
      rec.solver = "pdip";
      rec.iteration = iteration;
      rec.mu = options.delta * gap / size;  // Eq. (8)
      rec.primal_inf = primal_inf;
      rec.dual_inf = dual_inf;
      rec.gap = gap;
      rec.objective = objective;
    }
    const auto emit_iteration = [&] {
      if (sink != nullptr) sink->emit(rec.to_event());
    };
    if (primal_inf <= options.eps_primal * b_scale &&
        dual_inf <= options.eps_dual * c_scale &&
        gap <= options.eps_gap * (1.0 + std::abs(objective))) {
      result.status = lp::SolveStatus::kOptimal;
      emit_iteration();
      break;
    }
    // Divergence ⇒ infeasibility (§3.1): an unbounded dual iterate signals a
    // primal-infeasible problem; an unbounded primal iterate signals an
    // unbounded objective.
    if (const auto diverged = classify_divergence(
            state, options.divergence_bound, options.divergence_bound)) {
      result.status = *diverged;
      emit_iteration();
      break;
    }

    // One factorization per iteration, reused for every right-hand side.
    std::optional<NormalEquationsSolver> normal;
    std::optional<LuFactorization> lu;
    {
      obs::ProfileSpan factor_span("factorize");
      if (options.newton == NewtonSystem::kNormalEquations) {
        normal.emplace(problem, state);
        if (!normal->usable()) normal.reset();
      } else {
        update_kkt_diagonals(kkt, problem, state);
        lu.emplace(kkt);
        if (lu->singular()) lu.reset();
      }
    }
    if (sink != nullptr) {
      // Newton-system condition estimate, traced path only: Hager's ‖A⁻¹‖₁
      // estimate × ‖A‖₁ for the full KKT LU, the D-diagonal spread for the
      // normal-equations LDLᵀ.
      if (normal) {
        rec.condition = normal->condition_estimate();
      } else if (lu) {
        if (const auto inv_norm = lu->inverse_norm_estimate())
          rec.condition = *inv_norm * matrix_norm_1(kkt);
      }
    }
    const auto solve_newton =
        [&](double mu, std::span<const double> corr1,
            std::span<const double> corr2) -> std::optional<StepDirection> {
      obs::ProfileSpan newton_span("newton");
      if (normal) return normal->step(mu, corr1, corr2);
      if (!lu) return std::nullopt;
      Vec rhs = kkt_rhs(problem, state, mu);
      apply_corrections(layout, corr1, corr2, rhs);
      return split_step(layout, lu->solve(rhs));
    };

    std::optional<StepDirection> step;
    if (options.predictor_corrector) {
      // Mehrotra: affine predictor (µ = 0) picks the centering weight σ and
      // supplies the second-order correction ∆X_aff·∆Z_aff·e.
      const auto affine = solve_newton(0.0, {}, {});
      if (affine) {
        const double theta_affine = max_feasible_theta(state, *affine);
        const double mu_mean = gap / size;
        const double mu_affine = gap_after(state, *affine, theta_affine) / size;
        const double ratio = std::clamp(mu_affine / mu_mean, 0.0, 1.0);
        const double sigma = ratio * ratio * ratio;
        const Vec corr1 = hadamard(affine->dx, affine->dz);
        const Vec corr2 = hadamard(affine->dy, affine->dw);
        step = solve_newton(sigma * mu_mean, corr1, corr2);
        // Trace the µ the corrector actually solved with (σ·µ_mean), not the
        // Eq. (8) default — plus the affine diagnostics behind σ.
        rec.mu = sigma * mu_mean;
        rec.mu_affine = mu_affine;
        rec.sigma = sigma;
      }
    } else {
      step = solve_newton(state.mu(options.delta), {}, {});
    }
    if (!step) {
      // On an infeasible/unbounded problem the central path does not exist
      // and the diverging iterates drive the Newton system singular well
      // before the hard bound; classify with a soft bound first.
      result.status =
          classify_relative_divergence(state, b_scale, c_scale)
              .value_or(lp::SolveStatus::kNumericalFailure);
      emit_iteration();
      break;
    }
    const double theta = step_length(state, *step, options.step_ratio);
    rec.alpha_p = theta;
    rec.alpha_d = theta;
    emit_iteration();
    apply_step(state, *step, theta);
  }

  result.x = state.x;
  result.y = state.y;
  result.w = state.w;
  result.z = state.z;
  result.objective = problem.objective(state.x);
  result.wall_seconds = timer.seconds();

  if (sink != nullptr) {
    obs::SolveSummary summary;
    summary.solver = "pdip";
    summary.status = lp::to_string(result.status);
    summary.iterations = result.iterations;
    summary.objective = result.objective;
    summary.wall_seconds = result.wall_seconds;
    sink->emit(summary.to_event());
    sink->flush();
  }
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("pdip.solves").add();
  registry.counter("pdip.iterations").add(result.iterations);
  if (result.optimal()) registry.counter("pdip.optimal").add();
  return result;
}

}  // namespace memlp::core
