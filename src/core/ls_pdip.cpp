#include "core/ls_pdip.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "core/engine.hpp"
#include "core/negfree.hpp"
#include "core/newton_ls.hpp"
#include "core/scaling.hpp"
#include "linalg/ops.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace memlp::core {
namespace {

/// Mean |a_ij| over ALL cells (structural zeros included), computed from the
/// CSR values — matches the old dense definition exactly.
double mean_abs(const lp::ConstraintMatrix& a) {
  double sum = 0.0;
  for (double v : a.csr().values()) sum += std::abs(v);
  const std::size_t count = a.rows() * a.cols();
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace

Matrix build_balanced_m1(const lp::LinearProgram& problem,
                         double balancing_scale, BalancingFill fill,
                         Rng& rng) {
  problem.validate();
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  // M1 is dense by construction (the balancing fill populates the corners),
  // so this path reads A through the dense escape hatch.
  const Matrix& a = problem.a.dense();
  Matrix m1(m + n, n + m);
  // Row block 1: [A | RU], row block 2: [RL | Aᵀ].
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) m1(i, j) = a(i, j);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) m1(m + j, n + i) = a(i, j);

  const double epsilon =
      balancing_scale * std::max(mean_abs(problem.a), 1e-12);
  const bool fill_ru = fill == BalancingFill::kBoth || m >= n;
  const bool fill_rl = fill == BalancingFill::kBoth || n >= m;
  if (fill_ru)
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t k = 0; k < m; ++k)
        m1(i, n + k) = epsilon * rng.uniform(0.5, 1.5);
  if (fill_rl)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        m1(m + j, k) = epsilon * rng.uniform(0.5, 1.5);
  return m1;
}

Matrix build_schur_m1(const lp::LinearProgram& problem,
                      const PdipState& state, double ratio_cap,
                      double corner_fill_scale, Rng* rng) {
  problem.validate();
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  const Matrix& a = problem.a.dense();
  Matrix m1(m + n, n + m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) m1(i, j) = a(i, j);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) m1(m + j, n + i) = a(i, j);
  if (corner_fill_scale > 0.0 && rng != nullptr) {
    // The paper's "very small values" in the rest of RU/RL: a one-off random
    // fill of the off-diagonal corner entries that keeps M1 non-singular
    // when A has linearly dependent rows. Programmed once — never updated.
    const double epsilon =
        corner_fill_scale * std::max(mean_abs(problem.a), 1e-12);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t k = 0; k < m; ++k)
        if (i != k) m1(i, n + k) = epsilon * rng->uniform(0.5, 1.5);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        if (j != k) m1(m + j, k) = epsilon * rng->uniform(0.5, 1.5);
  }
  for (std::size_t i = 0; i < m; ++i)
    m1(i, n + i) = -std::min(state.w[i] / state.y[i], ratio_cap);
  for (std::size_t j = 0; j < n; ++j)
    m1(m + j, j) = std::min(state.z[j] / state.x[j], ratio_cap);
  return m1;
}

XbarSolveOutcome solve_ls_pdip(const lp::LinearProgram& original,
                               const LsPdipOptions& options) {
  // Normalize the data to the analog range first (see core/scaling.hpp);
  // the algorithm below runs entirely on the scaled problem.
  const ProblemScaling scaling(original);
  const lp::LinearProgram& problem = scaling.scaled();
  MEMLP_EXPECT(options.alpha >= 1.0);
  MEMLP_EXPECT(options.theta > 0.0 && options.theta < 1.0);
  MEMLP_EXPECT(options.ratio_cap > 1.0);
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  obs::TraceSink* sink = options.pdip.trace != nullptr
                             ? options.pdip.trace
                             : obs::default_trace_sink();
  obs::ProfileSpan profile_root("ls");

  Rng rng(options.seed);
  const bool schur = options.m1_mode == M1Mode::kSchurDiagonal;
  NegativeFreeSystem negfree1(
      schur ? build_schur_m1(problem, PdipState::ones(n, m),
                             options.ratio_cap, options.corner_fill_scale,
                             &rng)
            : build_balanced_m1(problem, options.balancing_scale,
                                options.balancing_fill, rng));

  // M1's corner diagonals span many decades, so its array uses per-cell
  // gain-ranged writes (see CrossbarConfig::per_cell_gain_ranging).
  BackendOptions m1_hardware = options.hardware;
  if (schur) m1_hardware.crossbar.per_cell_gain_ranging = true;
  auto backend1 = make_backend(m1_hardware, negfree1.dim(), rng.split());
  // M2 is (n+m) diagonal; it uses the paper's plain globally-mapped array.
  auto backend2 = make_backend(options.hardware, n + m, rng.split());
  xbar::AmplifierBank amps;

  // The iteration loop itself lives in core/engine.hpp; this entry point
  // configures the least-squares policy (constant θ of §3.4, no Mehrotra
  // corrector) and the retry/acceptance driver.
  EngineConfig config;
  config.solver_name = "ls";
  config.supports_mehrotra = false;
  config.constant_theta = options.theta;
  config.state_floor = options.state_floor;
  config.attempt_mode = true;
  config.acceptance_merit = options.acceptance_merit;
  config.stall_window = options.stall_window;

  AnalogSolveSpec spec;
  spec.solver_name = "ls";
  spec.max_retries = options.max_retries;
  spec.acceptance_merit = options.acceptance_merit;
  spec.alpha = options.alpha;
  spec.variation_magnitude = options.hardware.crossbar.variation.magnitude();

  LsNewton newton(problem, options, negfree1, *backend1, *backend2, amps);
  return solve_analog_pdip(problem, scaling, options.pdip, config, spec,
                           newton, sink);
}

}  // namespace memlp::core
