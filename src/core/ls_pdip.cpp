#include "core/ls_pdip.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "core/negfree.hpp"
#include "core/scaling.hpp"
#include "linalg/ops.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace memlp::core {
namespace {

enum class AttemptOutcome {
  kConverged,
  kStalled,
  kInfeasible,
  kUnbounded,
  kHardwareFailure,
  kIterationLimit,
};

struct AttemptResult {
  AttemptOutcome outcome = AttemptOutcome::kIterationLimit;
  PdipState best_state;
  double best_merit = std::numeric_limits<double>::infinity();
  std::size_t iterations = 0;
};

double mean_abs(const Matrix& a) {
  double sum = 0.0;
  for (double v : a.data()) sum += std::abs(v);
  const std::size_t count = a.rows() * a.cols();
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

/// Capped denominators: ŷ_i = max(y_i, w_i/cap) bounds the corner ratio
/// w_i/ŷ_i at `cap` — and the SAME ŷ must be used in the µ./ŷ right-hand
/// side terms, otherwise a capped matrix row faces an uncapped rhs and the
/// step direction is garbage.
Vec capped_y(const PdipState& state, double ratio_cap) {
  Vec y_hat(state.y.size());
  for (std::size_t i = 0; i < y_hat.size(); ++i)
    y_hat[i] = std::max(state.y[i], state.w[i] / ratio_cap);
  return y_hat;
}

Vec capped_x(const PdipState& state, double ratio_cap) {
  Vec x_hat(state.x.size());
  for (std::size_t j = 0; j < x_hat.size(); ++j)
    x_hat[j] = std::max(state.x[j], state.z[j] / ratio_cap);
  return x_hat;
}

/// Writes the current corner diagonals (−w/ŷ and +z/x̂) into the bookkeeping
/// structure and, when `also_backend`, into the analog array — 2(n+m)
/// physical cells, the O(N) per-iteration update of §3.5.
void write_corner_diagonals(const lp::LinearProgram& problem,
                            const PdipState& state,
                            std::span<const double> x_hat,
                            std::span<const double> y_hat,
                            NegativeFreeSystem& negfree1,
                            AnalogBackend& backend1, bool also_backend) {
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  const auto put = [&](std::size_t i, std::size_t j, double value) {
    for (const auto& write : negfree1.update_base_cell_signed(i, j, value))
      if (also_backend)
        backend1.update_cell(write.row, write.col, write.value);
  };
  for (std::size_t i = 0; i < m; ++i) put(i, n + i, -state.w[i] / y_hat[i]);
  for (std::size_t j = 0; j < n; ++j) put(m + j, j, state.z[j] / x_hat[j]);
}

AttemptResult run_attempt(const lp::LinearProgram& problem,
                          const LsPdipOptions& options,
                          NegativeFreeSystem& negfree1,
                          AnalogBackend& backend1, AnalogBackend& backend2,
                          xbar::AmplifierBank& amps,
                          BackendStats& programming, obs::TraceSink* sink,
                          std::size_t attempt_index) {
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  const bool schur = options.m1_mode == M1Mode::kSchurDiagonal;
  AttemptResult attempt;
  PdipState state = PdipState::ones(n, m);

  // Reset the corner diagonals to the fresh-state values, then program the
  // whole M1 array once for this attempt (fresh variation draws).
  if (schur)
    write_corner_diagonals(problem, state, capped_x(state, options.ratio_cap),
                           capped_y(state, options.ratio_cap), negfree1,
                           backend1, /*also_backend=*/false);
  {
    obs::PhaseSpan span(sink, "ls", "programming");
    span.note("attempt", attempt_index);
    const BackendStats before1 = backend1.stats();
    backend1.program(negfree1.matrix(),
                     options.full_scale_headroom * negfree1.matrix().max_abs());
    BackendStats programmed = backend1.stats().since(before1);
    // M2 = diag([x; y]) changes every iteration; program with headroom so
    // the per-iteration writes stay cell-local.
    const BackendStats before2 = backend2.stats();
    const Matrix m2 = Matrix::diagonal(concat({state.x, state.y}));
    backend2.program(m2, options.full_scale_headroom * m2.max_abs());
    programmed += backend2.stats().since(before2);
    programming += programmed;
    annotate_backend_stats(span, programmed);
  }

  // Covers the whole attempt loop via RAII (annotated on every exit path);
  // both arrays plus the amplifier bank contribute to the counter delta.
  obs::PhaseSpan iteration_span(sink, "ls", "iterations");
  if (iteration_span.active()) {
    iteration_span.note("attempt", attempt_index);
    const BackendStats before_it1 = backend1.stats();
    const BackendStats before_it2 = backend2.stats();
    const xbar::AmplifierStats amps_before = amps.stats();
    iteration_span.on_close([&backend1, &backend2, &amps, &attempt, before_it1,
                             before_it2, amps_before](obs::PhaseSpan& span) {
      span.note("iterations", attempt.iterations);
      BackendStats delta = backend1.stats().since(before_it1);
      delta += backend2.stats().since(before_it2);
      delta.amps += amps.stats().since(amps_before);
      annotate_backend_stats(span, delta);
    });
  }

  const double b_scale = 1.0 + norm_inf(problem.b);
  const double c_scale = 1.0 + norm_inf(problem.c);
  std::size_t best_iteration = 0;
  // See xbar_pdip.cpp: a clearly failing attempt whose dual (primal) iterate
  // dwarfs the other signals infeasibility (unboundedness).
  const auto classify_exit = [&](AttemptOutcome fallback) {
    if (attempt.best_merit > options.acceptance_merit) {
      // The problem is pre-normalized (core/scaling.hpp), so legitimate
      // optima have x, y of order 1; an iterate an order of magnitude past
      // that AND dominating the other group is the §3.1 divergence
      // signature. Only consulted after the attempt failed to solve.
      const double x_norm = norm_inf(state.x);
      const double y_norm = norm_inf(state.y);
      if (y_norm > 8.0 && y_norm > 4.0 * (1.0 + x_norm))
        return AttemptOutcome::kInfeasible;
      if (x_norm > 8.0 && x_norm > 4.0 * (1.0 + y_norm))
        return AttemptOutcome::kUnbounded;
    }
    if (const auto diverged =
            classify_relative_divergence(state, b_scale, c_scale))
      return *diverged == lp::SolveStatus::kInfeasible
                 ? AttemptOutcome::kInfeasible
                 : AttemptOutcome::kUnbounded;
    return fallback;
  };

  double previous_x_norm = 1.0;
  double previous_y_norm = 1.0;
  double best_x_norm = 1.0;
  double best_y_norm = 1.0;
  for (std::size_t iteration = 1; iteration <= options.pdip.max_iterations;
       ++iteration) {
    attempt.iterations = iteration;
    const double mu = state.mu(options.pdip.delta);
    const Vec x_hat = capped_x(state, options.ratio_cap);
    const Vec y_hat = capped_y(state, options.ratio_cap);
    if (schur && iteration > 1)
      write_corner_diagonals(problem, state, x_hat, y_hat, negfree1,
                             backend1, /*also_backend=*/true);

    // --- System 1 right-hand side (Eq. 17a).
    // Schur mode: fixed1 = [b − w − µ./y; c + z + µ./x]; with RU·y ≈ −w and
    // RL·x ≈ z this yields r1 ≈ [b − Ax − µ./y; c − Aᵀy + µ./x].
    // Literal mode: fixed1 = [b − w; c + z] as printed in the paper.
    const Vec s1 = concat({state.x, state.y});
    // DAC at the state input; output stays analog into the amps.
    Vec ms1 = backend1.multiply(negfree1.extend(s1),
                                AnalogBackend::IoBoundary::kInputOnly);
    Vec fixed1(negfree1.dim(), 0.0);
    {
      Vec bw;
      Vec cz;
      if (schur) {
        // On a capped row the array holds −w/ŷ (not −w/y), so the constant
        // vector must pair it with w·(y/ŷ): the capped linearization's rhs
        // is then exact and the measured r1 still vanishes at convergence.
        const Vec w_tilde = amps.divide_elementwise(
            amps.multiply_elementwise(state.w, state.y), y_hat);
        const Vec z_tilde = amps.divide_elementwise(
            amps.multiply_elementwise(state.z, state.x), x_hat);
        bw = amps.sub(amps.sub(problem.b, w_tilde),
                      amps.reciprocal_scale(mu, y_hat));
        cz = amps.add(amps.add(problem.c, z_tilde),
                      amps.reciprocal_scale(mu, x_hat));
      } else {
        bw = amps.sub(problem.b, state.w);
        cz = amps.add(problem.c, state.z);
      }
      std::copy(bw.begin(), bw.end(), fixed1.begin());
      std::copy(cz.begin(), cz.end(),
                fixed1.begin() + static_cast<std::ptrdiff_t>(m));
    }
    Vec r1 = amps.sub(fixed1, ms1);
    std::fill(r1.begin() + static_cast<std::ptrdiff_t>(n + m), r1.end(), 0.0);

    // --- Convergence bookkeeping. The r1 blocks carry the µ-centring terms
    // and, on capped rows, a w·(1 − y/ŷ) bias — so the controller measures
    // the true infeasibilities with one extra MVM: M1·[x; 0] isolates A·x on
    // the top block (and, by subtraction from M1·[x; y], Aᵀ·y on the
    // bottom).
    double primal_inf = 0.0;
    double dual_inf = 0.0;
    Vec primal_resid;  // b − Ax − w (schur mode; reused by kStable recovery)
    Vec dual_resid;    // c − Aᵀy + z
    if (schur) {
      Vec sx = s1;
      std::fill(sx.begin() + static_cast<std::ptrdiff_t>(n), sx.end(), 0.0);
      const Vec msx = backend1.multiply(negfree1.extend(sx));
      const Vec ax = slice(msx, 0, m);
      const Vec aty = amps.sub(slice(ms1, m, n), slice(msx, m, n));
      primal_resid = amps.sub(amps.sub(problem.b, ax), state.w);
      dual_resid = amps.add(amps.sub(problem.c, aty), state.z);
      primal_inf = norm_inf(primal_resid);
      dual_inf = norm_inf(dual_resid);
    } else {
      primal_inf = norm_inf(std::span<const double>(r1).subspan(0, m));
      dual_inf = norm_inf(std::span<const double>(r1).subspan(m, n));
    }
    const double gap = state.gap();
    const double objective = problem.objective(state.x);
    const double merit =
        std::max({primal_inf / b_scale, dual_inf / c_scale,
                  gap / (1.0 + std::abs(objective))});
    if (merit < attempt.best_merit) {
      attempt.best_merit = merit;
      attempt.best_state = state;
      best_iteration = iteration;
      best_x_norm = std::max(norm_inf(state.x), 1e-3);
      best_y_norm = std::max(norm_inf(state.y), 1e-3);
    }
    // One `iteration` record per loop entry, emitted at whichever exit the
    // iteration takes; the step length is the constant θ of §3.4.
    obs::IterationRecord rec;
    if (sink != nullptr) {
      rec.solver = "ls";
      rec.iteration = iteration;
      rec.attempt = attempt_index;
      rec.mu = mu;
      rec.primal_inf = primal_inf;
      rec.dual_inf = dual_inf;
      rec.gap = gap;
      rec.objective = objective;
      rec.merit = merit;
      rec.alpha_p = rec.alpha_d = options.theta;
    }
    const auto emit_iteration = [&] {
      if (sink != nullptr) sink->emit(rec.to_event());
    };
    if (primal_inf <= options.pdip.eps_primal * b_scale &&
        dual_inf <= options.pdip.eps_dual * c_scale &&
        gap <= options.pdip.eps_gap * (1.0 + std::abs(objective))) {
      attempt.outcome = AttemptOutcome::kConverged;
      emit_iteration();
      return attempt;
    }
    const double x_norm_now = norm_inf(state.x);
    const double y_norm_now = norm_inf(state.y);
    if (const auto diverged =
            classify_divergence(state, options.pdip.divergence_bound,
                                options.pdip.divergence_bound)) {
      // Genuine divergence is directional: one group blows up while the
      // other stays bounded (§3.1). Both groups having jumped orders of
      // magnitude — whether in one step or since the best iterate — is a
      // wild solve off a near-singular effective array: retry, don't
      // misclassify.
      if ((x_norm_now > 100.0 * previous_x_norm &&
           y_norm_now > 100.0 * previous_y_norm) ||
          (x_norm_now > 100.0 * best_x_norm &&
           y_norm_now > 100.0 * best_y_norm)) {
        attempt.outcome = AttemptOutcome::kHardwareFailure;
        emit_iteration();
        return attempt;
      }
      attempt.outcome = *diverged == lp::SolveStatus::kInfeasible
                            ? AttemptOutcome::kInfeasible
                            : AttemptOutcome::kUnbounded;
      emit_iteration();
      return attempt;
    }
    previous_x_norm = std::max(x_norm_now, 1.0);
    previous_y_norm = std::max(y_norm_now, 1.0);
    if (iteration - best_iteration > options.stall_window) {
      attempt.outcome = classify_exit(AttemptOutcome::kStalled);
      emit_iteration();
      return attempt;
    }

    // --- Solve system 1 for [∆x; ∆y].
    const auto ds1_aug =
        backend1.solve(r1, AnalogBackend::IoBoundary::kOutputOnly);
    if (!ds1_aug) {
      attempt.outcome = classify_exit(AttemptOutcome::kHardwareFailure);
      emit_iteration();
      return attempt;
    }
    const Vec ds1 = negfree1.restrict(*ds1_aug);
    const std::span<const double> dx(ds1.data(), n);
    const std::span<const double> dy(ds1.data() + n, m);

    // --- Recovery of the slack directions ∆z, ∆w.
    Vec dz;
    Vec dw;
    if (schur && options.recovery == RecoveryMode::kStable) {
      // Division-free recovery via Eq. (9a)/(9b) with two more M1 settles:
      //   ∆w = (b − Ax − w) − A∆x,   ∆z = Aᵀ∆y − (c − Aᵀy + z).
      // The Eq. (16b) diagonal solve divides by x̂, ŷ, which amplifies
      // analog noise by up to ratio_cap on near-zero entries.
      Vec sdx(n + m, 0.0);
      std::copy(dx.begin(), dx.end(), sdx.begin());
      const Vec ms_dx = backend1.multiply(negfree1.extend(sdx));
      Vec sdy(n + m, 0.0);
      std::copy(dy.begin(), dy.end(),
                sdy.begin() + static_cast<std::ptrdiff_t>(n));
      const Vec ms_dy = backend1.multiply(negfree1.extend(sdy));
      dw = amps.sub(primal_resid, slice(ms_dx, 0, m));
      dz = amps.sub(slice(ms_dy, m, n), dual_resid);
    } else {
      // --- System 2 (Eq. 16b): M2 = diag([x̂; ŷ]) solves for [∆z; ∆w].
      // Complementarity drives some x_j towards 0; a diagonal cell below
      // one conductance level would quantize to exactly zero and leave the
      // array singular, so the write driver floors each cell at the
      // representable resolution.
      const double m2_scale =
          std::max({1.0, norm_inf(state.x), norm_inf(state.y)});
      const double representable =
          options.full_scale_headroom * m2_scale * 1.5 /
          static_cast<double>(options.hardware.crossbar.conductance_levels -
                              1);
      for (std::size_t j = 0; j < n; ++j)
        backend2.update_cell(
            j, j, std::max(schur ? x_hat[j] : state.x[j], representable));
      for (std::size_t i = 0; i < m; ++i)
        backend2.update_cell(
            n + i, n + i,
            std::max(schur ? y_hat[i] : state.y[i], representable));

      // r2 = [µe; µe] − M2·[z; w] (the XZe / YWe products come from the M2
      // array itself), minus the Z∘∆x / W∘∆y cross terms from the analog
      // multipliers when exact recovery is on.
      const Vec s2 = concat({state.z, state.w});
      const Vec ms2 =
          backend2.multiply(s2, AnalogBackend::IoBoundary::kInputOnly);
      Vec r2 = amps.sub(Vec(n + m, mu), ms2);
      if (options.exact_recovery) {
        const Vec zdx = amps.multiply_elementwise(state.z, dx);
        const Vec wdy = amps.multiply_elementwise(state.w, dy);
        const Vec cross = concat({zdx, wdy});
        r2 = amps.sub(r2, cross);
      }
      const auto ds2 =
          backend2.solve(r2, AnalogBackend::IoBoundary::kOutputOnly);
      if (!ds2) {
        attempt.outcome = AttemptOutcome::kHardwareFailure;
        emit_iteration();
        return attempt;
      }
      dz = slice(*ds2, 0, n);
      dw = slice(*ds2, n, m);
    }

    // --- Constant-θ update of every component group (§3.4).
    axpy(options.theta, dx, state.x);
    axpy(options.theta, dy, state.y);
    axpy(options.theta, dz, state.z);
    axpy(options.theta, dw, state.w);
    state.clamp_floor(options.state_floor);
    emit_iteration();
  }
  attempt.outcome = classify_exit(AttemptOutcome::kIterationLimit);
  return attempt;
}

}  // namespace

Matrix build_balanced_m1(const lp::LinearProgram& problem,
                         double balancing_scale, BalancingFill fill,
                         Rng& rng) {
  problem.validate();
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  Matrix m1(m + n, n + m);
  // Row block 1: [A | RU], row block 2: [RL | Aᵀ].
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) m1(i, j) = problem.a(i, j);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) m1(m + j, n + i) = problem.a(i, j);

  const double epsilon =
      balancing_scale * std::max(mean_abs(problem.a), 1e-12);
  const bool fill_ru = fill == BalancingFill::kBoth || m >= n;
  const bool fill_rl = fill == BalancingFill::kBoth || n >= m;
  if (fill_ru)
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t k = 0; k < m; ++k)
        m1(i, n + k) = epsilon * rng.uniform(0.5, 1.5);
  if (fill_rl)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        m1(m + j, k) = epsilon * rng.uniform(0.5, 1.5);
  return m1;
}

Matrix build_schur_m1(const lp::LinearProgram& problem,
                      const PdipState& state, double ratio_cap,
                      double corner_fill_scale, Rng* rng) {
  problem.validate();
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  Matrix m1(m + n, n + m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) m1(i, j) = problem.a(i, j);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) m1(m + j, n + i) = problem.a(i, j);
  if (corner_fill_scale > 0.0 && rng != nullptr) {
    // The paper's "very small values" in the rest of RU/RL: a one-off random
    // fill of the off-diagonal corner entries that keeps M1 non-singular
    // when A has linearly dependent rows. Programmed once — never updated.
    const double epsilon =
        corner_fill_scale * std::max(mean_abs(problem.a), 1e-12);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t k = 0; k < m; ++k)
        if (i != k) m1(i, n + k) = epsilon * rng->uniform(0.5, 1.5);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        if (j != k) m1(m + j, k) = epsilon * rng->uniform(0.5, 1.5);
  }
  for (std::size_t i = 0; i < m; ++i)
    m1(i, n + i) = -std::min(state.w[i] / state.y[i], ratio_cap);
  for (std::size_t j = 0; j < n; ++j)
    m1(m + j, j) = std::min(state.z[j] / state.x[j], ratio_cap);
  return m1;
}

XbarSolveOutcome solve_ls_pdip(const lp::LinearProgram& original,
                               const LsPdipOptions& options) {
  // Normalize the data to the analog range first (see core/scaling.hpp);
  // the algorithm below runs entirely on the scaled problem.
  const ProblemScaling scaling(original);
  const lp::LinearProgram& problem = scaling.scaled();
  MEMLP_EXPECT(options.alpha >= 1.0);
  MEMLP_EXPECT(options.theta > 0.0 && options.theta < 1.0);
  MEMLP_EXPECT(options.ratio_cap > 1.0);
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  obs::TraceSink* sink = options.pdip.trace != nullptr
                             ? options.pdip.trace
                             : obs::default_trace_sink();
  obs::ProfileSpan profile_root("ls");

  Rng rng(options.seed);
  const bool schur = options.m1_mode == M1Mode::kSchurDiagonal;
  NegativeFreeSystem negfree1(
      schur ? build_schur_m1(problem, PdipState::ones(n, m),
                             options.ratio_cap, options.corner_fill_scale,
                             &rng)
            : build_balanced_m1(problem, options.balancing_scale,
                                options.balancing_fill, rng));

  // M1's corner diagonals span many decades, so its array uses per-cell
  // gain-ranged writes (see CrossbarConfig::per_cell_gain_ranging).
  BackendOptions m1_hardware = options.hardware;
  if (schur) m1_hardware.crossbar.per_cell_gain_ranging = true;
  auto backend1 = make_backend(m1_hardware, negfree1.dim(), rng.split());
  // M2 is (n+m) diagonal; it uses the paper's plain globally-mapped array.
  auto backend2 = make_backend(options.hardware, n + m, rng.split());
  xbar::AmplifierBank amps;

  XbarSolveOutcome out;
  out.stats.system_dim = negfree1.dim();
  out.stats.compensations = negfree1.num_compensations();
  out.result.status = lp::SolveStatus::kNumericalFailure;

  // The solution lives on the *programmed* (varied) constraint matrix, so
  // the final check against the true A must tolerate the representational
  // error: α grows with the process-variation magnitude (§3.2's "close to
  // but greater than 1" presumes ideal devices).
  const double alpha_effective =
      std::max(options.alpha,
               1.0 + 1.5 * options.hardware.crossbar.variation.magnitude());

  for (std::size_t attempt_index = 0; attempt_index <= options.max_retries;
       ++attempt_index) {
    out.stats.attempts = attempt_index + 1;
    const AttemptResult attempt =
        run_attempt(problem, options, negfree1, *backend1, *backend2, amps,
                    out.stats.programming, sink, attempt_index + 1);
    out.stats.iterations += attempt.iterations;

    // A divergence verdict is only credible when the attempt never came
    // close to solving; a late blow-up after a near-converged iterate (a
    // wild step off a near-singular quantized array) falls through to the
    // acceptance path below.
    const bool diverged_credibly =
        attempt.best_merit > options.acceptance_merit;
    if (attempt.outcome == AttemptOutcome::kInfeasible && diverged_credibly) {
      out.result.status = lp::SolveStatus::kInfeasible;
      out.result.iterations = out.stats.iterations;
      break;
    }
    if (attempt.outcome == AttemptOutcome::kUnbounded && diverged_credibly) {
      out.result.status = lp::SolveStatus::kUnbounded;
      out.result.iterations = out.stats.iterations;
      break;
    }
    const bool accepted =
        (attempt.outcome == AttemptOutcome::kConverged ||
         attempt.best_merit <= options.acceptance_merit) &&
        !attempt.best_state.x.empty() &&
        // The check tolerates the solver's own achieved accuracy (the merit
        // bounds the scaled residuals): its job is to reject *wrong*
        // solutions, not to demand precision beyond the analog noise floor.
        problem.satisfies_constraints(
            attempt.best_state.x, alpha_effective,
            2.0 * attempt.best_merit * (1.0 + norm_inf(problem.b)) + 1e-9);
    if (accepted) {
      out.result.status = lp::SolveStatus::kOptimal;
      out.result.x = attempt.best_state.x;
      out.result.y = attempt.best_state.y;
      out.result.w = attempt.best_state.w;
      out.result.z = attempt.best_state.z;
      out.result.objective = problem.objective(attempt.best_state.x);
      out.result.iterations = out.stats.iterations;
      break;
    }
    out.result.status = attempt.outcome == AttemptOutcome::kIterationLimit
                            ? lp::SolveStatus::kIterationLimit
                            : lp::SolveStatus::kNumericalFailure;
    out.result.iterations = out.stats.iterations;
  }

  BackendStats merged = backend1->stats();
  merged += backend2->stats();
  out.stats.backend = merged;
  out.stats.amps = amps.stats();
  scaling.unscale(out.result);

  if (sink != nullptr) {
    obs::SolveSummary summary;
    summary.solver = "ls";
    summary.status = lp::to_string(out.result.status);
    summary.iterations = out.stats.iterations;
    summary.objective = out.result.objective;
    obs::Event event = summary.to_event();
    event.with("attempts", out.stats.attempts)
        .with("system_dim", out.stats.system_dim)
        .with("compensations", out.stats.compensations)
        .with("programming.full_programs", out.stats.programming.xbar.full_programs)
        .with("programming.cells_written", out.stats.programming.xbar.cells_written)
        .with("programming.write_pulses", out.stats.programming.xbar.write_pulses)
        .with("backend.cells_written", out.stats.backend.xbar.cells_written)
        .with("backend.mvm_ops", out.stats.backend.xbar.mvm_ops)
        .with("backend.solve_ops", out.stats.backend.xbar.solve_ops)
        .with("backend.num_tiles", out.stats.backend.num_tiles);
    sink->emit(event);
    sink->flush();
  }
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("ls.solves").add();
  registry.counter("ls.iterations").add(out.stats.iterations);
  registry.counter("ls.attempts").add(out.stats.attempts);
  if (out.result.optimal()) registry.counter("ls.optimal").add();
  return out;
}

}  // namespace memlp::core
