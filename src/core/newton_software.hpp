// Software NewtonSystem policies (core/pdip.hpp's solver): exact residuals
// plus either a full-KKT LU or an m×m normal-equations LDLᵀ per iteration,
// selected by PdipOptions::newton.
//
// ENGINE-INTERNAL: include only from src/core/ (memlint rule R7); everything
// else goes through core/pdip.hpp or the memlp::engine registry.
#pragma once

#include <optional>
#include <span>

#include "core/engine.hpp"
#include "core/kkt.hpp"
#include "core/pdip.hpp"
#include "linalg/ldlt.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "lp/problem.hpp"

namespace memlp::core {

/// One iteration's Newton machinery via the m×m normal equations
/// (see PdipOptions::newton):
///   (A·Θ·Aᵀ + Y⁻¹W)·∆y = A·(Θ∘(rd + rµ1./x)) + rµ2./y − rp,  Θ = Z⁻¹X,
///   ∆x = Θ∘(rd + rµ1./x − Aᵀ∆y),
///   ∆z = (rµ1 − z∘∆x)./x,   ∆w = (rµ2 − w∘∆y)./y,
/// with rµ1 = µe − XZe − corr1 and rµ2 = µe − YWe − corr2 (the corrections
/// carry Mehrotra's second-order term; empty = plain Newton).
/// The Schur factorization is built once and reused for every right-hand
/// side of the iteration.
class NormalEquationsSolver {
 public:
  NormalEquationsSolver(const lp::LinearProgram& problem,
                        const PdipState& state);

  [[nodiscard]] bool usable() const { return !ldlt_->failed(); }

  /// Conditioning proxy of the factored Schur complement (tracing).
  [[nodiscard]] double condition_estimate() const {
    return ldlt_->condition_proxy();
  }

  [[nodiscard]] std::optional<StepDirection> step(
      double mu, std::span<const double> corr1,
      std::span<const double> corr2) const;

 private:
  const lp::LinearProgram& problem_;
  const PdipState& state_;
  Vec rp_;
  Vec rd_;
  Vec theta_;
  std::optional<LdltFactorization> ldlt_;
};

/// NewtonSystem over exact software arithmetic: measure() evaluates the true
/// infeasibilities, prepare() runs the per-iteration factorization
/// ("factorize" profiler phase), solve() one back-substitution ("newton").
class SoftwareNewton final : public NewtonSystem {
 public:
  SoftwareNewton(const lp::LinearProgram& problem, const PdipOptions& options);

  Residuals measure(const PdipState& state, double mu) override;
  void prepare(const PdipState& state) override;
  std::optional<double> condition() override;
  NewtonStep solve(const PdipState& state, double mu,
                   std::span<const double> corr1,
                   std::span<const double> corr2,
                   bool reuse_measured_rhs) override;

 private:
  const lp::LinearProgram& problem_;
  const PdipOptions& options_;
  KktLayout layout_;
  Matrix kkt_;  ///< assembled once; diagonals updated per iteration.
  std::optional<NormalEquationsSolver> normal_;
  std::optional<LuFactorization> lu_;
};

}  // namespace memlp::core
