#include "core/newton_software.hpp"

#include <algorithm>
#include <cmath>

#include "common/par.hpp"
#include "linalg/ops.hpp"
#include "linalg/sparse.hpp"
#include "obs/cost_ledger.hpp"
#include "obs/profiler.hpp"

namespace memlp::core {
namespace {

/// Schur assembly (A·Θ·Aᵀ, O(m²n)) goes parallel from this many constraints.
constexpr std::size_t kParallelSchurCutoff = 64;

/// Subtracts Mehrotra's second-order corrections from the complementarity
/// rows of an Eq. (9) right-hand side.
void apply_corrections(const KktLayout& layout, std::span<const double> corr1,
                       std::span<const double> corr2, Vec& rhs) {
  for (std::size_t j = 0; j < corr1.size(); ++j)
    rhs[layout.row_xz() + j] -= corr1[j];
  for (std::size_t i = 0; i < corr2.size(); ++i)
    rhs[layout.row_yw() + i] -= corr2[i];
}

/// ‖A‖₁ (max column absolute sum) — pairs with LuFactorization's Hager
/// ‖A⁻¹‖₁ estimate for a condition-number estimate. Traced path only.
double matrix_norm_1(const Matrix& a) {
  double best = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) sum += std::abs(a(i, j));
    best = std::max(best, sum);
  }
  return best;
}

}  // namespace

NormalEquationsSolver::NormalEquationsSolver(const lp::LinearProgram& problem,
                                             const PdipState& state)
    : problem_(problem), state_(state) {
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  const Vec ax = problem.a.multiply(state.x);
  const Vec aty = problem.a.multiply_transposed(state.y);
  rp_.resize(m);
  for (std::size_t i = 0; i < m; ++i)
    rp_[i] = problem.b[i] - ax[i] - state.w[i];
  rd_.resize(n);
  for (std::size_t j = 0; j < n; ++j)
    rd_[j] = problem.c[j] - aty[j] + state.z[j];
  theta_.resize(n);
  for (std::size_t j = 0; j < n; ++j)
    theta_[j] = state.x[j] / state.z[j];

  Matrix s;  // S = A·Θ·Aᵀ + diag(w/y)
  if (problem.a.prefers_sparse()) {
    // Sparse Schur assembly from CSR row intersections: cost scales with
    // Σ_j nnz_col(j)² instead of m²·n (charges its own ledger entry).
    Vec shift(m);
    for (std::size_t i = 0; i < m; ++i) shift[i] = state.w[i] / state.y[i];
    s = csr_schur_dense(problem.a.csr(), theta_, shift);
  } else {
    const Matrix& a = problem.a.dense();
    s = Matrix(m, m);
    // Assembled in parallel above a size cutoff. Row task i writes exactly
    // the cells {(i, k), (k, i) : k ≤ i}; any off-diagonal cell (r, c) is
    // owned by task max(r, c) and the diagonal by task i, so tasks never
    // collide and every cell's arithmetic is independent of thread count.
    const auto assemble_row = [&](std::size_t i) {
      for (std::size_t k = 0; k <= i; ++k) {
        double sum = 0.0;
        for (std::size_t j = 0; j < n; ++j)
          sum += a(i, j) * theta_[j] * a(k, j);
        s(i, k) = sum;
        s(k, i) = sum;
      }
      s(i, i) += state.w[i] / state.y[i];
    };
    if (m >= kParallelSchurCutoff) {
      par::parallel_for(m, assemble_row);
    } else {
      for (std::size_t i = 0; i < m; ++i) assemble_row(i);
    }
    // Schur flops (3 per triple-product term over m(m+1)/2 dot products of
    // length n, plus the diagonal shift), charged closed-form outside the
    // parallel region so the attribution is deterministic.
    const auto rows = static_cast<std::uint64_t>(m);
    const auto cols = static_cast<std::uint64_t>(n);
    obs::CostLedger::charge_active(
        {.flops = 3 * cols * (rows * (rows + 1) / 2) + 2 * rows,
         .bytes = 8 * (rows * cols + rows * rows)});
  }
  ldlt_.emplace(s);
}

std::optional<StepDirection> NormalEquationsSolver::step(
    double mu, std::span<const double> corr1,
    std::span<const double> corr2) const {
  if (!usable()) return std::nullopt;
  const std::size_t n = problem_.num_variables();
  const std::size_t m = problem_.num_constraints();
  const auto c1 = [&](std::size_t j) { return corr1.empty() ? 0.0 : corr1[j]; };
  const auto c2 = [&](std::size_t i) { return corr2.empty() ? 0.0 : corr2[i]; };
  Vec u(n);  // Θ∘(rd + rµ1./x)
  for (std::size_t j = 0; j < n; ++j) {
    const double rmu1_over_x =
        (mu - state_.x[j] * state_.z[j] - c1(j)) / state_.x[j];
    u[j] = theta_[j] * (rd_[j] + rmu1_over_x);
  }
  Vec rhs = problem_.a.multiply(u);
  for (std::size_t i = 0; i < m; ++i) {
    const double rmu2_over_y =
        (mu - state_.y[i] * state_.w[i] - c2(i)) / state_.y[i];
    rhs[i] += rmu2_over_y - rp_[i];
  }
  StepDirection step;
  step.dy = ldlt_->solve(rhs);
  const Vec atdy = problem_.a.multiply_transposed(step.dy);
  step.dx.resize(n);
  step.dz.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double rmu1 = mu - state_.x[j] * state_.z[j] - c1(j);
    step.dx[j] = u[j] - theta_[j] * atdy[j];
    step.dz[j] = (rmu1 - state_.z[j] * step.dx[j]) / state_.x[j];
  }
  step.dw.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double rmu2 = mu - state_.y[i] * state_.w[i] - c2(i);
    step.dw[i] = (rmu2 - state_.w[i] * step.dy[i]) / state_.y[i];
  }
  return step;
}

SoftwareNewton::SoftwareNewton(const lp::LinearProgram& problem,
                               const PdipOptions& options)
    : problem_(problem),
      options_(options),
      layout_{problem.num_variables(), problem.num_constraints()},
      kkt_(assemble_kkt(problem, PdipState::ones(layout_.n, layout_.m))) {}

Residuals SoftwareNewton::measure(const PdipState& state, double /*mu*/) {
  Residuals res;
  res.primal_inf = problem_.primal_infeasibility(state.x, state.w);
  res.dual_inf = problem_.dual_infeasibility(state.y, state.z);
  return res;
}

void SoftwareNewton::prepare(const PdipState& state) {
  obs::ProfileSpan factor_span("factorize");
  if (options_.newton == NewtonFactorization::kNormalEquations) {
    normal_.emplace(problem_, state);
    if (!normal_->usable()) normal_.reset();
  } else {
    update_kkt_diagonals(kkt_, problem_, state);
    lu_.emplace(kkt_);
    if (lu_->singular()) lu_.reset();
  }
}

std::optional<double> SoftwareNewton::condition() {
  // Newton-system condition estimate, traced path only: Hager's ‖A⁻¹‖₁
  // estimate × ‖A‖₁ for the full KKT LU, the D-diagonal spread for the
  // normal-equations LDLᵀ.
  if (normal_) return normal_->condition_estimate();
  if (lu_) {
    if (const auto inv_norm = lu_->inverse_norm_estimate())
      return *inv_norm * matrix_norm_1(kkt_);
  }
  return std::nullopt;
}

NewtonStep SoftwareNewton::solve(const PdipState& state, double mu,
                                 std::span<const double> corr1,
                                 std::span<const double> corr2,
                                 bool /*reuse_measured_rhs*/) {
  obs::ProfileSpan newton_span("newton");
  if (normal_) return {normal_->step(mu, corr1, corr2), true};
  if (!lu_) return {std::nullopt, true};
  Vec rhs = kkt_rhs(problem_, state, mu);
  apply_corrections(layout_, corr1, corr2, rhs);
  return {split_step(layout_, lu_->solve(rhs)), true};
}

}  // namespace memlp::core
