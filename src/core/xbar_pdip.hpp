// Memristor crossbar-based linear program solver (§3.2, Algorithm 1).
//
// Per iteration, entirely in the analog domain:
//   1. the X, Y, Z, W diagonal blocks of the augmented system matrix M
//      (Eq. 14a, built once by NegativeFreeSystem from the Eq. 12 KKT
//      matrix) are re-written on the crossbar — O(N) cell writes;
//   2. the right-hand side r is produced as the difference of the constant
//      vector [b; c; µe; µe; 0] and the crossbar MVM M·s, with the 3rd/4th
//      row blocks halved (Eq. 15a/15b) by summing amplifiers;
//   3. the crossbar solves M·∆s = r in one settle (O(1));
//   4. s ← s + θ·∆s with θ from Eq. (11), µ from Eq. (8).
// Termination reuses the analog r: its first two blocks are exactly the
// primal and dual infeasibilities. Divergence of x or y beyond a large bound
// flags unboundedness/infeasibility (§3.1), and the final solution must pass
// the α-relaxed constraint check A·x ⪯ α·b of §3.2.
//
// Under process variation a solve can stall above tolerance or fail the
// final check; the solver then retries with a freshly programmed crossbar
// (new variation draws), the "double checking scheme" of §4.5.
#pragma once

#include <cstdint>
#include <memory>

#include "core/backend.hpp"
#include "core/pdip.hpp"
#include "lp/problem.hpp"
#include "lp/result.hpp"

namespace memlp::core {

/// Options of the crossbar PDIP solver.
struct XbarPdipOptions {
  /// Algorithmic parameters (δ, r, tolerances, iteration cap, divergence
  /// bound) shared with the software PDIP. Its `predictor_corrector` flag
  /// enables a Mehrotra step on the crossbar too (extension): the corrector
  /// solve reuses the already-programmed array, so it costs one extra
  /// analog settle per iteration and typically saves far more iterations.
  PdipOptions pdip{};
  /// Hardware selection (device, variation, precision, NoC).
  BackendOptions hardware{};
  /// Settle-simulation policy, copied over hardware.crossbar.settle_mode
  /// when the backend is built (this field is authoritative). kExact keeps
  /// the legacy bit-exact always-refactor simulation; kReuse patches the
  /// cached factorization across the per-iteration diagonal rewrites
  /// (Sherman–Morrison rank-k, see linalg/factor_cache.hpp) — same physics,
  /// results differ only by factorization round-off.
  xbar::SettleMode settle_mode = xbar::SettleMode::kExact;
  /// α of the final constraint check (close to but above 1, §3.2).
  double alpha = 1.05;
  /// Mapping headroom: crossbar full-scale = headroom × initial max |M|.
  double full_scale_headroom = 4.0;
  /// Re-solve attempts with fresh variation after a failed attempt.
  std::size_t max_retries = 2;
  /// Accept a stalled iterate as converged when its merit (worst relative
  /// residual) is below this; analog noise floors the achievable residual.
  double acceptance_merit = 0.1;
  /// Stop an attempt when the merit has not improved for this many
  /// iterations (the analog noise floor has been reached).
  std::size_t stall_window = 25;
  /// Strictly-positive floor applied to the state after each update.
  double state_floor = 1e-10;
  /// Seed for every stochastic hardware component.
  std::uint64_t seed = 0x5eed;
};

/// Hardware-operation record of one solve (feeds perf::HardwareModel).
struct XbarSolveStats {
  BackendStats backend;           ///< total crossbar/NoC counters.
  /// Counters spent in whole-array programming (the O(N²) initialization
  /// §3.5 excludes from the iterative-latency analysis). The iterative
  /// phase is backend.since(programming).
  BackendStats programming;
  xbar::AmplifierStats amps;      ///< solver-level summing-amp operations.
  std::size_t iterations = 0;     ///< PDIP iterations across all attempts.
  std::size_t attempts = 1;       ///< 1 + retries actually used.
  std::size_t system_dim = 0;     ///< dimension of the augmented matrix M.
  std::size_t compensations = 0;  ///< negative-elimination variables.
};

/// Result bundle: the LP solution plus the hardware record.
struct XbarSolveOutcome {
  lp::SolveResult result;
  XbarSolveStats stats;
};

/// Solves the LP on the crossbar per Algorithm 1.
XbarSolveOutcome solve_xbar_pdip(const lp::LinearProgram& problem,
                                 const XbarPdipOptions& options = {});

/// Persistent solver context: keeps the programmed array alive across
/// solves. The system matrix M contains only A (and the state diagonals) —
/// b and c enter through the analog right-hand side — so re-solving with
/// the same constraint matrix but new b/c (re-priced routing, changed
/// capacities, rolling-horizon scheduling) costs ZERO array programming:
/// the per-A O(N²) initialization of §3.5 is paid once, and every
/// subsequent solve is purely O(N)-per-iteration.
class XbarPdipSession {
 public:
  explicit XbarPdipSession(XbarPdipOptions options = {});
  ~XbarPdipSession();
  XbarPdipSession(XbarPdipSession&&) noexcept;
  XbarPdipSession& operator=(XbarPdipSession&&) noexcept;

  /// Solves the problem, reusing the programmed array when `problem.a`
  /// matches the previous solve's constraint matrix (values and shape);
  /// otherwise the array is re-programmed transparently.
  XbarSolveOutcome solve(const lp::LinearProgram& problem);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace memlp::core
