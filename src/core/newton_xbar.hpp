// Crossbar NewtonSystem policy (core/xbar_pdip.hpp's solver): one augmented
// negative-free array holds the whole Eq. (14a) system; measure() is one
// analog MVM and solve() one settle.
//
// ENGINE-INTERNAL: include only from src/core/ (memlint rule R7); everything
// else goes through core/xbar_pdip.hpp or the memlp::engine registry.
#pragma once

#include <span>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "core/kkt.hpp"
#include "core/negfree.hpp"
#include "core/xbar_pdip.hpp"
#include "crossbar/amplifier.hpp"
#include "lp/problem.hpp"
#include "obs/trace.hpp"

namespace memlp::core {

/// NewtonSystem over the single augmented crossbar:
///   begin_attempt  — (re)writes the state diagonals and programs the array
///                    unless it already holds M (session reuse);
///   begin_iteration — O(N) re-write of the X, Y, Z, W diagonal blocks;
///   measure        — r = [b; c; µe; µe; 0] − M·s with rows 3/4 halved
///                    (Eq. 15a/15b), cached for the plain settle;
///   solve          — one settle M·∆s = r (rhs re-targeted through the amps
///                    for the affine/corrector settles).
class XbarNewton final : public AnalogNewtonSystem {
 public:
  XbarNewton(const lp::LinearProgram& problem, const XbarPdipOptions& options,
             const KktLayout& layout, NegativeFreeSystem& negfree,
             AnalogBackend& backend, xbar::AmplifierBank& amps);

  void begin_attempt(const PdipState& state, std::size_t attempt_index,
                     bool reuse_array, BackendStats& programming,
                     obs::TraceSink* sink) override;
  void begin_iteration(const PdipState& state, std::size_t iteration) override;
  Residuals measure(const PdipState& state, double mu) override;
  NewtonStep solve(const PdipState& state, double mu,
                   std::span<const double> corr1,
                   std::span<const double> corr2,
                   bool reuse_measured_rhs) override;
  Vec elementwise(std::span<const double> a,
                  std::span<const double> b) override;

  void snapshot_counters() override;
  void annotate_counters(obs::PhaseSpan& span) override;
  void describe(XbarSolveStats& stats) const override;
  void collect_stats(XbarSolveStats& stats) const override;

 private:
  /// r at a given centering weight: the µ rows of the constant vector are
  /// retargeted by the amps without another settle.
  [[nodiscard]] Vec rhs_at(double mu_target) const;

  const lp::LinearProgram& problem_;
  const XbarPdipOptions& options_;
  const KktLayout& layout_;
  NegativeFreeSystem& negfree_;
  AnalogBackend& backend_;
  xbar::AmplifierBank& amps_;
  double write_floor_ = 0.0;
  Vec ms_;  ///< this iteration's halved MVM read-out M·s.
  Vec r_;   ///< this iteration's measured rhs (at the Eq. (8) µ).
  BackendStats before_iterations_;
  xbar::AmplifierStats amps_before_;
};

}  // namespace memlp::core
