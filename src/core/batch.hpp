// Batched front door: fan independent LP solves across the memlp::par pool.
//
// The paper's evaluation (and any Monte-Carlo use of the simulator) solves
// many independent LPs — accuracy sweeps over variation draws, tolerance
// studies over random instances. Each solve owns its crossbar state and its
// RNG stream (seeded per problem), so the fan-out is embarrassingly parallel
// and bit-identical at every thread count: problem i's outcome depends only
// on (problem i, options for problem i), never on scheduling. Solver-level
// tracing and MetricsRegistry counters are already thread-safe, so a shared
// sink sees whole, untorn records from concurrent solves.
//
// Tiled backends inside a batch run their per-tile loops inline (nested
// parallel regions serialize, see common/par.hpp) — the batch level owns the
// threads.
//
// These crossbar-only overloads are shims over the registry-backed
// engine::solve_batch (engine/batch.hpp), which additionally accepts batches
// mixing solver kinds; both are defined in the memlp_engine library.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/xbar_pdip.hpp"
#include "lp/problem.hpp"

namespace memlp::core {

/// Options of the homogeneous batch overload.
struct BatchOptions {
  /// Options applied to every problem; `base.seed` seeds problem 0.
  XbarPdipOptions base{};
  /// Worker threads (0 = par::default_threads()).
  std::size_t threads = 0;
  /// Problem i solves with seed = base.seed + i·seed_stride, giving every
  /// solve its own hardware variation/noise draws while staying reproducible
  /// (stride 0 replays identical hardware for every problem).
  std::uint64_t seed_stride = 1;
};

/// One entry of the heterogeneous overload: a problem with its own options
/// (its own seed, tiling, variation level, ...).
struct BatchJob {
  const lp::LinearProgram* problem = nullptr;
  XbarPdipOptions options{};
};

/// Solves every problem with `options.base` (seeds striding per problem).
/// Outcome i corresponds to problems[i] regardless of thread count.
std::vector<XbarSolveOutcome> solve_batch(
    std::span<const lp::LinearProgram> problems,
    const BatchOptions& options = {});

/// Heterogeneous batch: each job carries its own options verbatim.
std::vector<XbarSolveOutcome> solve_batch(std::span<const BatchJob> jobs,
                                          std::size_t threads = 0);

}  // namespace memlp::core

namespace memlp {
using core::BatchJob;
using core::BatchOptions;
using core::solve_batch;
}  // namespace memlp
