// Negative-coefficient elimination (Eq. 13 / Eq. 14a).
//
// A memristor crossbar can only hold non-negative coefficients (§2.3). The
// paper's remedy: for every column j of the system matrix that contains a
// negative element, introduce a compensation variable p_ℓ = −s_j, move the
// magnitudes of the negative entries into a new non-negative column, and add
// the consistency row  s_j + p_ℓ = 0  (Eq. 13). The transformed system
//
//     [ B⁺  B⁻ ] [ s ]   [ r ]
//     [ E   I  ] [ p ] = [ 0 ]
//
// (B⁺ = max(B,0); B⁻_{iℓ} = |B_{i,jℓ}| where B_{i,jℓ} < 0; E_{ℓ,jℓ} = 1)
// is square, non-negative, and has exactly the solutions of B·s = r extended
// with p = −s|_neg-cols. The paper's Eq. (14a) is this construction applied
// to the KKT matrix of Eq. (12); its ∆v ( = −∆z, for the −I block) and ∆p
// columns come out of the same rule. (The paper also pads with ∆u = −∆w to
// keep its hand-laid layout square; the generic construction needs no
// padding, which only makes the crossbar smaller — noted in DESIGN.md.)
//
// NegativeFreeSystem captures the sign pattern once — in the PDIP systems
// the pattern is fixed by A, Aᵀ, and −I, while the always-non-negative
// X, Y, Z, W diagonal blocks change values only — so the augmented layout is
// stable across iterations and per-iteration updates touch original cells
// in place.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace memlp::core {

/// The non-negative augmentation of a square system matrix.
class NegativeFreeSystem {
 public:
  /// Builds the augmentation of square matrix `b`.
  explicit NegativeFreeSystem(const Matrix& b);

  /// Dimension of the original system.
  [[nodiscard]] std::size_t base_dim() const noexcept { return base_dim_; }

  /// Number of compensation variables (negative-containing columns).
  [[nodiscard]] std::size_t num_compensations() const noexcept {
    return comp_columns_.size();
  }

  /// Dimension of the augmented system (base_dim + num_compensations).
  [[nodiscard]] std::size_t dim() const noexcept {
    return base_dim_ + comp_columns_.size();
  }

  /// The augmented non-negative matrix M (dim x dim).
  [[nodiscard]] const Matrix& matrix() const noexcept { return augmented_; }

  /// Original column index backing compensation variable ℓ.
  [[nodiscard]] std::size_t compensated_column(std::size_t l) const {
    return comp_columns_[l];
  }

  /// Extends an operand vector: returns [s; p] with p_ℓ = −s_{jℓ}.
  [[nodiscard]] Vec extend(std::span<const double> s) const;

  /// Extends a right-hand side: returns [r; 0_p].
  [[nodiscard]] Vec extend_rhs(std::span<const double> r) const;

  /// Truncates an augmented solution back to the base variables.
  [[nodiscard]] Vec restrict(std::span<const double> augmented) const;

  /// Writes a new (non-negative) value into base cell (i, j) of the
  /// augmented matrix. Only valid for cells that were non-negative in the
  /// original sign pattern (the PDIP diagonal blocks satisfy this).
  void update_base_cell(std::size_t i, std::size_t j, double value);

  /// One physical cell write in the augmented matrix.
  struct CellWrite {
    std::size_t row = 0;
    std::size_t col = 0;
    double value = 0.0;
  };

  /// Writes a possibly-negative value into base cell (i, j): the positive
  /// part lands on the original column, the magnitude of the negative part
  /// on the column's compensation column (which must exist when value < 0 —
  /// i.e. the cell was negative in the structural sign pattern). Returns the
  /// augmented-matrix cell writes so the caller can mirror them onto the
  /// analog backend. Used by the large-scale solver, whose −Y⁻¹W diagonal
  /// changes value every iteration but never sign.
  [[nodiscard]] std::vector<CellWrite> update_base_cell_signed(
      std::size_t i, std::size_t j, double value);

 private:
  std::size_t base_dim_ = 0;
  Matrix augmented_;
  std::vector<std::size_t> comp_columns_;   ///< base column per comp var.
  std::vector<std::size_t> comp_of_column_;  ///< comp index per base column
                                             ///< (npos when none).
  static constexpr std::size_t kNoComp = static_cast<std::size_t>(-1);
};

}  // namespace memlp::core
