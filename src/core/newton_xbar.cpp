#include "core/newton_xbar.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "linalg/ops.hpp"
#include "obs/profiler.hpp"

namespace memlp::core {
namespace {

/// Writes the current X, Y, Z, W diagonal blocks into both the bookkeeping
/// structure and the analog backend. Cell count: 2(n+m) — the O(N) update
/// of §3.5 (the crossbar itself skips cells whose level is unchanged).
/// `write_floor` keeps every diagonal cell at one representable conductance
/// level or above: near convergence both x_j and z_j shrink like √µ, and if
/// both quantized to level zero their complementarity row would go all-zero
/// and the array could no longer settle.
void write_diagonal_blocks(const KktLayout& layout, const PdipState& state,
                           NegativeFreeSystem& negfree,
                           AnalogBackend& backend, bool also_backend,
                           double write_floor) {
  // The backend writes go out as ONE batched controller transaction: a
  // single aggregated ledger charge and one settle-cache notification pass
  // instead of 2(n+m) rounds of per-cell bookkeeping.
  std::vector<xbar::CellUpdate> updates;
  if (also_backend) updates.reserve(2 * (layout.n + layout.m));
  const auto put = [&](std::size_t i, std::size_t j, double value) {
    value = std::max(value, write_floor);
    negfree.update_base_cell(i, j, value);
    if (also_backend) updates.push_back({i, j, value});
  };
  for (std::size_t j = 0; j < layout.n; ++j) {
    put(layout.row_xz() + j, layout.col_x() + j, state.z[j]);
    put(layout.row_xz() + j, layout.col_z() + j, state.x[j]);
  }
  for (std::size_t i = 0; i < layout.m; ++i) {
    put(layout.row_yw() + i, layout.col_y() + i, state.w[i]);
    put(layout.row_yw() + i, layout.col_w() + i, state.y[i]);
  }
  if (also_backend) backend.update_cells(updates);
}

}  // namespace

XbarNewton::XbarNewton(const lp::LinearProgram& problem,
                       const XbarPdipOptions& options, const KktLayout& layout,
                       NegativeFreeSystem& negfree, AnalogBackend& backend,
                       xbar::AmplifierBank& amps)
    : problem_(problem),
      options_(options),
      layout_(layout),
      negfree_(negfree),
      backend_(backend),
      amps_(amps) {}

void XbarNewton::begin_attempt(const PdipState& state,
                               std::size_t attempt_index, bool reuse_array,
                               BackendStats& programming,
                               obs::TraceSink* sink) {
  const double full_scale =
      options_.full_scale_headroom * negfree_.matrix().max_abs();
  // 0.75 of one level step: just enough that the cell rounds to level 1
  // rather than level 0, with minimal extra distortion.
  write_floor_ =
      0.75 * full_scale /
      static_cast<double>(options_.hardware.crossbar.conductance_levels - 1);
  if (reuse_array) {
    // Session reuse: the array already holds M's structural blocks; only the
    // O(N) state diagonals need (re)writing.
    obs::ProfileSpan write_span("write_state");
    write_diagonal_blocks(layout_, state, negfree_, backend_,
                          /*also_backend=*/true, write_floor_);
  } else {
    {
      obs::ProfileSpan write_span("write_state");
      write_diagonal_blocks(layout_, state, negfree_, backend_,
                            /*also_backend=*/false, write_floor_);
    }
    obs::PhaseSpan span(sink, "xbar", "programming");
    span.note("attempt", attempt_index);
    const BackendStats before_program = backend_.stats();
    backend_.program(negfree_.matrix(), full_scale);
    const BackendStats programmed = backend_.stats().since(before_program);
    programming += programmed;
    annotate_backend_stats(span, programmed);
  }
}

void XbarNewton::begin_iteration(const PdipState& state,
                                 std::size_t iteration) {
  if (iteration > 1) {
    obs::ProfileSpan write_span("write_state");
    write_diagonal_blocks(layout_, state, negfree_, backend_,
                          /*also_backend=*/true, write_floor_);
  }
}

Vec XbarNewton::rhs_at(double mu_target) const {
  const std::size_t n = layout_.n;
  const std::size_t m = layout_.m;
  Vec fixed(negfree_.dim(), 0.0);
  std::copy(problem_.b.begin(), problem_.b.end(),
            fixed.begin() + static_cast<std::ptrdiff_t>(layout_.row_primal()));
  std::copy(problem_.c.begin(), problem_.c.end(),
            fixed.begin() + static_cast<std::ptrdiff_t>(layout_.row_dual()));
  std::fill_n(fixed.begin() + static_cast<std::ptrdiff_t>(layout_.row_xz()),
              n + m, mu_target);
  Vec rhs = amps_.sub(fixed, ms_);
  // The augmentation rows are exact zeros by construction (Eq. 15a); the
  // controller does not measure them.
  std::fill(rhs.begin() + static_cast<std::ptrdiff_t>(layout_.dim()),
            rhs.end(), 0.0);
  return rhs;
}

Residuals XbarNewton::measure(const PdipState& state, double mu) {
  // r = [b; c; µe; µe; 0] − M·s with rows 3/4 halved (Eq. 15a/15b).
  const std::size_t n = layout_.n;
  const std::size_t m = layout_.m;
  const Vec s = concat({state.x, state.y, state.w, state.z});
  // DAC at the state input; the MVM output stays analog into the amps.
  obs::ProfileSpan mvm_span("mvm");
  ms_ = backend_.multiply(negfree_.extend(s),
                          AnalogBackend::IoBoundary::kInputOnly);
  mvm_span.close();
  {
    const Vec halved = amps_.halve(
        std::span<const double>(ms_).subspan(layout_.row_xz(), n + m));
    std::copy(halved.begin(), halved.end(),
              ms_.begin() + static_cast<std::ptrdiff_t>(layout_.row_xz()));
  }
  r_ = rhs_at(mu);
  Residuals res;
  res.primal_inf =
      norm_inf(std::span<const double>(r_).subspan(layout_.row_primal(), m));
  res.dual_inf =
      norm_inf(std::span<const double>(r_).subspan(layout_.row_dual(), n));
  return res;
}

NewtonStep XbarNewton::solve(const PdipState& /*state*/, double mu,
                             std::span<const double> corr1,
                             std::span<const double> corr2,
                             bool reuse_measured_rhs) {
  Vec r;
  const Vec* rhs = &r_;
  if (!reuse_measured_rhs) {
    // Corrector rhs: retarget µ and subtract ∆X_aff∆Z_aff e (amps).
    r = rhs_at(mu);
    for (std::size_t j = 0; j < corr1.size(); ++j)
      r[layout_.row_xz() + j] -= corr1[j];
    for (std::size_t i = 0; i < corr2.size(); ++i)
      r[layout_.row_yw() + i] -= corr2[i];
    rhs = &r;
  }
  obs::ProfileSpan settle_span("settle");
  const auto delta_aug =
      backend_.solve(*rhs, AnalogBackend::IoBoundary::kOutputOnly);
  settle_span.close();
  if (!delta_aug) return {std::nullopt, true};
  return {split_step(layout_, negfree_.restrict(*delta_aug)), true};
}

Vec XbarNewton::elementwise(std::span<const double> a,
                            std::span<const double> b) {
  return amps_.multiply_elementwise(a, b);
}

void XbarNewton::snapshot_counters() {
  before_iterations_ = backend_.stats();
  amps_before_ = amps_.stats();
}

void XbarNewton::annotate_counters(obs::PhaseSpan& span) {
  // The amplifier bank sits outside the backend on single-crossbar runs;
  // merge its delta so the phase covers all analog traffic.
  BackendStats delta = backend_.stats().since(before_iterations_);
  delta.amps += amps_.stats().since(amps_before_);
  annotate_backend_stats(span, delta);
}

void XbarNewton::describe(XbarSolveStats& stats) const {
  stats.system_dim = negfree_.dim();
  stats.compensations = negfree_.num_compensations();
}

void XbarNewton::collect_stats(XbarSolveStats& stats) const {
  stats.backend = backend_.stats();
  stats.amps = amps_.stats();
}

}  // namespace memlp::core
