// Analog execution backend for the crossbar solvers.
//
// Both solvers drive their system matrix through this interface so the same
// algorithm code runs on a single monolithic crossbar (Solver 1's default)
// or on a grid of crossbar tiles behind an analog NoC (§3.4) when the matrix
// exceeds the manufacturable crossbar size.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "crossbar/amplifier.hpp"
#include "crossbar/crossbar.hpp"
#include "noc/tiled.hpp"

namespace memlp::obs {
class PhaseSpan;
}

namespace memlp::core {

/// Merged operation counters from a backend (inputs to the cost model).
struct BackendStats {
  xbar::CrossbarStats xbar;
  xbar::AmplifierStats amps;
  noc::NocStats noc;
  /// Settle-cache reuse counters (full LUs vs rank-k patches vs pure hits).
  FactorCacheStats settle_cache;
  std::size_t num_tiles = 1;
  /// Shards left unprogrammed because their block was all-zero (gauge, not
  /// a counter — like num_tiles it describes the array, not an op stream).
  std::size_t zero_tiles = 0;

  BackendStats& operator+=(const BackendStats& other) noexcept {
    xbar += other.xbar;
    amps += other.amps;
    noc += other.noc;
    settle_cache += other.settle_cache;
    num_tiles = num_tiles > other.num_tiles ? num_tiles : other.num_tiles;
    zero_tiles = zero_tiles > other.zero_tiles ? zero_tiles : other.zero_tiles;
    return *this;
  }

  /// Counter-wise difference (for phase snapshots).
  [[nodiscard]] BackendStats since(const BackendStats& earlier) const noexcept {
    BackendStats d;
    d.xbar = xbar.since(earlier.xbar);
    d.amps = amps.since(earlier.amps);
    d.noc = noc.since(earlier.noc);
    d.settle_cache = settle_cache.since(earlier.settle_cache);
    d.num_tiles = num_tiles;
    d.zero_tiles = zero_tiles;
    return d;
  }
};

/// Hardware selection for a solver's system matrix.
struct BackendOptions {
  xbar::CrossbarConfig crossbar{};
  /// Force the NoC-tiled structure even for small systems.
  bool force_noc = false;
  /// Tile side used when the NoC structure is engaged.
  std::size_t tile_dim = 128;
  noc::TopologyKind topology = noc::TopologyKind::kHierarchical;
};

/// A programmable analog matrix (single crossbar or tiled NoC).
class AnalogBackend {
 public:
  virtual ~AnalogBackend() = default;

  using IoBoundary = xbar::Crossbar::IoBoundary;

  virtual void program(const Matrix& a, double full_scale_hint) = 0;
  /// Rewrites a batch of scattered cells in one controller transaction —
  /// the per-PDIP-iteration diagonal refresh. One aggregated ledger charge
  /// and one settle-cache notification pass instead of per-cell bookkeeping.
  virtual void update_cells(std::span<const xbar::CellUpdate> updates) = 0;
  /// Single-cell convenience wrapper over update_cells().
  virtual void update_cell(std::size_t r, std::size_t c, double value) {
    const xbar::CellUpdate update{r, c, value};
    update_cells({&update, 1});
  }
  [[nodiscard]] virtual Vec multiply(std::span<const double> x,
                                     IoBoundary io = IoBoundary::kBoth) = 0;
  [[nodiscard]] virtual std::optional<Vec> solve(
      std::span<const double> b, IoBoundary io = IoBoundary::kBoth) = 0;
  [[nodiscard]] virtual BackendStats stats() const = 0;
  virtual void reset_stats() = 0;
  /// Human-readable description for reports ("crossbar 128x128", "mesh NoC
  /// of 16 tiles", ...).
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Annotates a trace phase span with a BackendStats counter delta: crossbar
/// programming/read ops (plus the non-empty pulse-histogram buckets),
/// amplifier ops, and — when more than one tile is involved — NoC traffic.
/// No-op when the span has no sink attached.
void annotate_backend_stats(obs::PhaseSpan& span, const BackendStats& delta);

/// Chooses single-crossbar vs NoC-tiled execution for a `dim`-sized system:
/// the NoC engages when force_noc is set or the system exceeds either the
/// crossbar's max_dim or the tile_dim.
std::unique_ptr<AnalogBackend> make_backend(const BackendOptions& options,
                                            std::size_t dim, Rng rng);

}  // namespace memlp::core
