// Two-array least-squares NewtonSystem policy (core/ls_pdip.hpp's solver):
// M1 = [A RU; RL Aᵀ] solves for [∆x; ∆y], the slack directions come from the
// diagonal M2 = diag([x̂; ŷ]) (Eq. 16b) or the division-free kStable scheme.
//
// ENGINE-INTERNAL: include only from src/core/ (memlint rule R7); everything
// else goes through core/ls_pdip.hpp or the memlp::engine registry.
#pragma once

#include <span>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "core/ls_pdip.hpp"
#include "core/negfree.hpp"
#include "crossbar/amplifier.hpp"
#include "lp/problem.hpp"
#include "obs/trace.hpp"

namespace memlp::core {

/// NewtonSystem over the two least-squares arrays:
///   begin_attempt  — resets M1's corner diagonals (schur mode) and programs
///                    both arrays (fresh variation draws);
///   begin_iteration — caps the state denominators and re-writes M1's corner
///                    diagonals, O(N) cells;
///   measure        — r1 = fixed1 − M1·[x; y] (Eq. 17a) plus, in schur mode,
///                    one extra MVM to isolate the true infeasibilities;
///   solve          — one M1 settle for [∆x; ∆y], then slack recovery via
///                    the kStable MVMs or an M2 settle.
class LsNewton final : public AnalogNewtonSystem {
 public:
  LsNewton(const lp::LinearProgram& problem, const LsPdipOptions& options,
           NegativeFreeSystem& negfree1, AnalogBackend& backend1,
           AnalogBackend& backend2, xbar::AmplifierBank& amps);

  void begin_attempt(const PdipState& state, std::size_t attempt_index,
                     bool reuse_array, BackendStats& programming,
                     obs::TraceSink* sink) override;
  void begin_iteration(const PdipState& state, std::size_t iteration) override;
  Residuals measure(const PdipState& state, double mu) override;
  NewtonStep solve(const PdipState& state, double mu,
                   std::span<const double> corr1,
                   std::span<const double> corr2,
                   bool reuse_measured_rhs) override;

  void snapshot_counters() override;
  void annotate_counters(obs::PhaseSpan& span) override;
  void describe(XbarSolveStats& stats) const override;
  void collect_stats(XbarSolveStats& stats) const override;

 private:
  const lp::LinearProgram& problem_;
  const LsPdipOptions& options_;
  NegativeFreeSystem& negfree1_;
  AnalogBackend& backend1_;
  AnalogBackend& backend2_;
  xbar::AmplifierBank& amps_;
  bool schur_;
  Vec x_hat_;  ///< capped denominators of this iteration (see capped_x/y).
  Vec y_hat_;
  Vec ms1_;          ///< this iteration's MVM read-out M1·[x; y].
  Vec r1_;           ///< this iteration's measured system-1 rhs.
  Vec primal_resid_;  ///< b − Ax − w (schur mode; reused by kStable recovery).
  Vec dual_resid_;    ///< c − Aᵀy + z.
  BackendStats before_it1_;
  BackendStats before_it2_;
  xbar::AmplifierStats amps_before_;
};

}  // namespace memlp::core
