#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "linalg/ops.hpp"
#include "obs/cost_ledger.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace memlp::core {
namespace {

/// µ direction changes (>10% swings) in one run before the health monitor
/// calls it oscillation — a healthy central path drives µ monotonically
/// down, so repeated reversals mean the solver is bouncing around it.
constexpr std::size_t kMuFlipAlarm = 6;

/// Largest θ ∈ (0, 1] keeping the state positive for this step (the exact
/// Eq. (11) bound with r = 1, used by the software Mehrotra predictor).
double max_feasible_theta(const PdipState& state, const StepDirection& step) {
  double blocking = 0.0;
  const auto scan = [&blocking](const Vec& v, const Vec& dv) {
    for (std::size_t i = 0; i < v.size(); ++i)
      blocking = std::max(blocking, -dv[i] / v[i]);
  };
  scan(state.x, step.dx);
  scan(state.y, step.dy);
  scan(state.w, step.dw);
  scan(state.z, step.dz);
  return blocking <= 0.0 ? 1.0 : std::min(1.0, 1.0 / blocking);
}

/// Duality gap of the state after a θ-step (for Mehrotra's σ).
double gap_after(const PdipState& state, const StepDirection& step,
                 double theta) {
  double gap = 0.0;
  for (std::size_t j = 0; j < state.x.size(); ++j)
    gap += (state.x[j] + theta * step.dx[j]) *
           (state.z[j] + theta * step.dz[j]);
  for (std::size_t i = 0; i < state.y.size(); ++i)
    gap += (state.y[i] + theta * step.dy[i]) *
           (state.w[i] + theta * step.dw[i]);
  return gap;
}

}  // namespace

NewtonSystem::~NewtonSystem() = default;

void NewtonSystem::begin_iteration(const PdipState&, std::size_t) {}

void NewtonSystem::prepare(const PdipState&) {}

std::optional<double> NewtonSystem::condition() { return std::nullopt; }

Vec NewtonSystem::elementwise(std::span<const double> a,
                              std::span<const double> b) {
  return hadamard(a, b);
}

PdipEngine::PdipEngine(const lp::LinearProgram& problem,
                       const PdipOptions& options, const EngineConfig& config,
                       obs::TraceSink* sink)
    : problem_(problem),
      options_(options),
      config_(config),
      sink_(sink),
      b_scale_(1.0 + norm_inf(problem.b)),
      c_scale_(1.0 + norm_inf(problem.c)),
      size_(static_cast<double>(problem.num_variables() +
                                problem.num_constraints())) {}

// memlint:hot — the PDIP iteration body shared by every solver backend.
PdipEngine::Outcome PdipEngine::run(NewtonSystem& newton, PdipState& state) {
  Outcome attempt;
  std::size_t best_iteration = 0;
  std::size_t frozen_steps = 0;
  double previous_x_norm = 1.0;
  double previous_y_norm = 1.0;
  double best_x_norm = 1.0;
  double best_y_norm = 1.0;
  double previous_mu = 0.0;
  int mu_trend = 0;
  std::size_t mu_flips = 0;

  // Classifies a non-converged exit (attempt mode). A clearly failing
  // attempt (merit far above any acceptable level) whose dual iterate
  // dwarfs the primal one is the paper's infeasibility signature (§3.1) —
  // and vice versa for an unbounded objective. Analog noise freezes
  // diverging iterates (θ → 0 against floored state components) long before
  // any absolute bound, so dominance is the reliable signal. The problem is
  // pre-normalized (core/scaling.hpp), so legitimate optima have x, y of
  // order 1; an iterate an order of magnitude past that AND dominating the
  // other group is divergence. Only consulted after the attempt failed.
  const auto classify_exit = [&](AttemptOutcome fallback) {
    if (attempt.best_merit > config_.acceptance_merit) {
      const double x_norm = norm_inf(state.x);
      const double y_norm = norm_inf(state.y);
      if (y_norm > 8.0 && y_norm > 4.0 * (1.0 + x_norm))
        return AttemptOutcome::kInfeasible;
      if (x_norm > 8.0 && x_norm > 4.0 * (1.0 + y_norm))
        return AttemptOutcome::kUnbounded;
    }
    if (const auto diverged =
            classify_relative_divergence(state, b_scale_, c_scale_))
      return *diverged == lp::SolveStatus::kInfeasible
                 ? AttemptOutcome::kInfeasible
                 : AttemptOutcome::kUnbounded;
    return fallback;
  };

  for (std::size_t iteration = 1; iteration <= options_.max_iterations;
       ++iteration) {
    attempt.iterations = iteration;
    newton.begin_iteration(state, iteration);

    // Eq. (8) centering weight and the realization's residual measurement.
    const double gap = state.gap();
    const double mu = options_.delta * gap / size_;
    const Residuals res = newton.measure(state, mu);
    const double objective = problem_.objective(state.x);

    double merit = 0.0;
    if (config_.attempt_mode) {
      merit = std::max({res.primal_inf / b_scale_, res.dual_inf / c_scale_,
                        gap / (1.0 + std::abs(objective))});
      if (merit < attempt.best_merit) {
        attempt.best_merit = merit;
        attempt.best_state = state;
        best_iteration = iteration;
        best_x_norm = std::max(norm_inf(state.x), 1e-3);
        best_y_norm = std::max(norm_inf(state.y), 1e-3);
      }
    }

    // Compact always-on digest (flight recorder) + µ-trend bookkeeping for
    // the health monitor. Reported at most once per run, when the flip count
    // first crosses the alarm — no scope-exit plumbing on the hot loop.
    obs::flight_record(obs::FlightEventKind::kIteration, config_.solver_name,
                       static_cast<double>(iteration), mu,
                       config_.attempt_mode ? merit : gap);
    if (previous_mu > 0.0) {
      const int direction = mu > 1.1 * previous_mu   ? 1
                            : mu < 0.9 * previous_mu ? -1
                                                     : 0;
      if (direction != 0) {
        if (mu_trend != 0 && direction != mu_trend &&
            ++mu_flips == kMuFlipAlarm) {
          obs::HealthMonitor::global().report(
              obs::Anomaly::kMuOscillation, config_.solver_name, sink_,
              static_cast<double>(mu_flips), static_cast<double>(iteration));
        }
        mu_trend = direction;
      }
    }
    previous_mu = mu;

    // Exactly one `iteration` event per loop entry, emitted at whichever
    // exit the iteration takes; step lengths and the condition estimate are
    // filled in once known.
    obs::IterationRecord rec;
    if (sink_ != nullptr) {
      rec.solver = config_.solver_name;
      rec.iteration = iteration;
      rec.attempt = config_.attempt_index;
      rec.mu = mu;
      rec.primal_inf = res.primal_inf;
      rec.dual_inf = res.dual_inf;
      rec.gap = gap;
      rec.objective = objective;
      if (config_.attempt_mode) rec.merit = merit;
      if (config_.constant_theta)
        rec.alpha_p = rec.alpha_d = *config_.constant_theta;
    }
    const auto emit_iteration = [&] {
      if (sink_ != nullptr) sink_->emit(rec.to_event());
    };

    // Convergence test (§3.1) on the measured residuals.
    if (res.primal_inf <= options_.eps_primal * b_scale_ &&
        res.dual_inf <= options_.eps_dual * c_scale_ &&
        gap <= options_.eps_gap * (1.0 + std::abs(objective))) {
      attempt.outcome = AttemptOutcome::kConverged;
      emit_iteration();
      return attempt;
    }

    // Divergence ⇒ infeasibility (§3.1): an unbounded dual iterate signals
    // a primal-infeasible problem; an unbounded primal iterate an unbounded
    // objective.
    double x_norm_now = 0.0;
    double y_norm_now = 0.0;
    if (config_.attempt_mode) {
      x_norm_now = norm_inf(state.x);
      y_norm_now = norm_inf(state.y);
    }
    if (const auto diverged = classify_divergence(
            state, options_.divergence_bound, options_.divergence_bound)) {
      // Genuine divergence is directional: one group blows up while the
      // other stays bounded. Both groups having jumped orders of magnitude
      // — whether in one step or since the best iterate — is a wild solve
      // off a near-singular effective array: retry, don't misclassify.
      if (config_.attempt_mode &&
          ((x_norm_now > 100.0 * previous_x_norm &&
            y_norm_now > 100.0 * previous_y_norm) ||
           (x_norm_now > 100.0 * best_x_norm &&
            y_norm_now > 100.0 * best_y_norm))) {
        obs::HealthMonitor::global().report(
            obs::Anomaly::kWildJump, config_.solver_name, sink_,
            std::max(x_norm_now, y_norm_now),
            static_cast<double>(iteration));
        attempt.outcome = AttemptOutcome::kHardwareFailure;
        emit_iteration();
        return attempt;
      }
      obs::HealthMonitor::global().report(
          obs::Anomaly::kDivergence, config_.solver_name, sink_,
          std::max(x_norm_now, y_norm_now), static_cast<double>(iteration));
      attempt.outcome = *diverged == lp::SolveStatus::kInfeasible
                            ? AttemptOutcome::kInfeasible
                            : AttemptOutcome::kUnbounded;
      emit_iteration();
      return attempt;
    }
    if (config_.attempt_mode) {
      previous_x_norm = std::max(x_norm_now, 1.0);
      previous_y_norm = std::max(y_norm_now, 1.0);
      if (iteration - best_iteration > config_.stall_window) {
        obs::HealthMonitor::global().report(
            obs::Anomaly::kStall, config_.solver_name, sink_,
            static_cast<double>(iteration - best_iteration),
            static_cast<double>(iteration));
        attempt.outcome = classify_exit(AttemptOutcome::kStalled);
        emit_iteration();
        return attempt;
      }
    }

    // One factorization per iteration, reused for every right-hand side
    // (software policies; no-op for analog settles).
    newton.prepare(state);
    if (sink_ != nullptr) {
      if (const auto cond = newton.condition()) rec.condition = *cond;
    }

    // --- The Newton step, optionally refined by Mehrotra's
    // predictor-corrector: the affine (µ = 0) predictor picks the centering
    // weight σ = (µ_aff/µ_mean)³ and supplies the second-order correction
    // ∆X_aff·∆Z_aff·e for the corrector solve.
    std::optional<StepDirection> step;
    bool classify_on_failure = true;
    const bool use_mehrotra =
        config_.supports_mehrotra && options_.predictor_corrector;
    struct Corrector {
      double mu_target;
      double mu_affine;
      double sigma;
    };
    const auto corrector_sigma = [&](const StepDirection& affine) {
      const double theta_affine =
          config_.affine_exact
              ? max_feasible_theta(state, affine)
              : step_length(state, affine, options_.step_ratio,
                            config_.step_dead_floor);
      const double mu_mean = gap / size_;
      const double mu_affine = gap_after(state, affine, theta_affine) / size_;
      const double ratio = std::clamp(
          mu_affine / std::max(mu_mean, config_.mu_mean_floor), 0.0, 1.0);
      const double sigma = ratio * ratio * ratio;
      return Corrector{sigma * mu_mean, mu_affine, sigma};
    };
    if (!use_mehrotra) {
      NewtonStep plain = newton.solve(state, mu, {}, {},
                                      /*reuse_measured_rhs=*/true);
      step = std::move(plain.step);
      classify_on_failure = plain.classify_on_failure;
    } else if (config_.mehrotra == MehrotraMode::kAffineFirst) {
      NewtonStep affine = newton.solve(state, 0.0, {}, {},
                                       /*reuse_measured_rhs=*/false);
      if (affine.step) {
        const Corrector corr = corrector_sigma(*affine.step);
        const Vec corr1 = newton.elementwise(affine.step->dx, affine.step->dz);
        const Vec corr2 = newton.elementwise(affine.step->dy, affine.step->dw);
        NewtonStep corrected =
            newton.solve(state, corr.mu_target, corr1, corr2,
                         /*reuse_measured_rhs=*/false);
        step = std::move(corrected.step);
        classify_on_failure = corrected.classify_on_failure;
        // Trace the µ the corrector actually solved with (σ·µ_mean, not the
        // Eq. (8) default) — plus the affine diagnostics behind σ.
        rec.mu = corr.mu_target;
        rec.mu_affine = corr.mu_affine;
        rec.sigma = corr.sigma;
      }
    } else {  // MehrotraMode::kCorrectorRefine
      NewtonStep plain = newton.solve(state, mu, {}, {},
                                      /*reuse_measured_rhs=*/true);
      step = std::move(plain.step);
      classify_on_failure = plain.classify_on_failure;
      if (step) {
        NewtonStep affine = newton.solve(state, 0.0, {}, {},
                                         /*reuse_measured_rhs=*/false);
        if (affine.step) {
          const Corrector corr = corrector_sigma(*affine.step);
          const Vec corr1 =
              newton.elementwise(affine.step->dx, affine.step->dz);
          const Vec corr2 =
              newton.elementwise(affine.step->dy, affine.step->dw);
          NewtonStep corrected =
              newton.solve(state, corr.mu_target, corr1, corr2,
                           /*reuse_measured_rhs=*/false);
          if (corrected.step) {
            // The step taken came from the corrector settle; when it fails
            // we keep the plain-Newton settle at µ = δ·gap/size, so rec.mu
            // stays as initialized.
            step = std::move(corrected.step);
            rec.mu = corr.mu_target;
            rec.mu_affine = corr.mu_affine;
            rec.sigma = corr.sigma;
          }
        }
      }
    }
    if (!step) {
      // On an infeasible/unbounded problem the central path does not exist
      // and the diverging iterates drive the Newton system singular well
      // before the hard bound; classify with a soft bound first.
      if (config_.attempt_mode) {
        attempt.outcome = classify_on_failure
                              ? classify_exit(AttemptOutcome::kHardwareFailure)
                              : AttemptOutcome::kHardwareFailure;
      } else if (const auto diverged = classify_relative_divergence(
                     state, b_scale_, c_scale_)) {
        attempt.outcome = *diverged == lp::SolveStatus::kInfeasible
                              ? AttemptOutcome::kInfeasible
                              : AttemptOutcome::kUnbounded;
      } else {
        attempt.outcome = AttemptOutcome::kHardwareFailure;
      }
      emit_iteration();
      return attempt;
    }

    // Eq. (11) step lengths (or the constant θ of §3.4), then the update.
    double theta = 0.0;
    if (config_.constant_theta) {
      theta = *config_.constant_theta;
    } else {
      const StepLengths alphas = step_lengths(
          state, *step, options_.step_ratio, config_.step_dead_floor);
      theta = alphas.applied();
      rec.alpha_p = alphas.alpha_p;
      rec.alpha_d = alphas.alpha_d;
    }
    if (config_.frozen_limit > 0) {
      // θ collapsing for several iterations means a floored state component
      // is blocking every step — the frozen signature of a diverged iterate
      // under analog noise.
      frozen_steps = theta < 1e-7 ? frozen_steps + 1 : 0;
      if (frozen_steps >= config_.frozen_limit) {
        obs::HealthMonitor::global().report(
            obs::Anomaly::kStall, config_.solver_name, sink_,
            static_cast<double>(frozen_steps),
            static_cast<double>(iteration));
        attempt.outcome = classify_exit(AttemptOutcome::kStalled);
        emit_iteration();
        return attempt;
      }
    }
    apply_step(state, *step, theta);
    if (config_.state_floor > 0.0) state.clamp_floor(config_.state_floor);
    emit_iteration();
  }
  attempt.outcome = config_.attempt_mode
                        ? classify_exit(AttemptOutcome::kIterationLimit)
                        : AttemptOutcome::kIterationLimit;
  return attempt;
}

XbarSolveOutcome solve_analog_pdip(const lp::LinearProgram& problem,
                                   const ProblemScaling& scaling,
                                   const PdipOptions& options,
                                   const EngineConfig& config,
                                   const AnalogSolveSpec& spec,
                                   AnalogNewtonSystem& newton,
                                   obs::TraceSink* sink) {
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();

  XbarSolveOutcome out;
  newton.describe(out.stats);
  out.result.status = lp::SolveStatus::kNumericalFailure;

  // The solution lives on the *programmed* (varied) constraint matrix, so
  // the final check against the true A must tolerate the representational
  // error: α grows with the process-variation magnitude (§3.2's "close to
  // but greater than 1" presumes ideal devices).
  const double alpha_effective =
      std::max(spec.alpha, 1.0 + 1.5 * spec.variation_magnitude);

  for (std::size_t attempt_index = 0; attempt_index <= spec.max_retries;
       ++attempt_index) {
    out.stats.attempts = attempt_index + 1;
    if (attempt_index > 0)
      obs::flight_record(obs::FlightEventKind::kRetry, spec.solver_name,
                         static_cast<double>(attempt_index + 1),
                         static_cast<double>(out.result.status));
    const bool reuse_array = attempt_index == 0 &&
                             spec.array_programmed != nullptr &&
                             *spec.array_programmed;
    PdipEngine::Outcome attempt;
    {
      PdipState state = PdipState::ones(n, m);
      newton.begin_attempt(state, attempt_index + 1, reuse_array,
                           out.stats.programming, sink);
      if (spec.array_programmed != nullptr) *spec.array_programmed = true;

      // The per-attempt iteration phase closes on scope exit (RAII),
      // annotated with the backend traffic it generated — against
      // `programming` this is the paper's O(N)-per-iteration vs
      // O(N²)-per-program split.
      obs::PhaseSpan iteration_span(sink, spec.solver_name, "iterations");
      if (iteration_span.active()) {
        iteration_span.note("attempt", attempt_index + 1);
        newton.snapshot_counters();
        iteration_span.on_close([&newton, &attempt](obs::PhaseSpan& span) {
          span.note("iterations", attempt.iterations);
          newton.annotate_counters(span);
        });
      }
      EngineConfig attempt_config = config;
      attempt_config.attempt_index = attempt_index + 1;
      PdipEngine engine(problem, options, attempt_config, sink);
      attempt = engine.run(newton, state);
      // CMOS controller sequencing cost, charged while the iteration span
      // is still open so it lands under "<solver>/iterations".
      obs::CostLedger::charge_active(
          {.controller_iterations = attempt.iterations});
    }
    out.stats.iterations += attempt.iterations;

    // A divergence verdict is only credible when the attempt never came
    // close to solving; a late blow-up after a near-converged iterate (a
    // wild step off a near-singular quantized array) falls through to the
    // acceptance path below.
    const bool diverged_credibly =
        attempt.best_merit > spec.acceptance_merit;
    if (attempt.outcome == AttemptOutcome::kInfeasible && diverged_credibly) {
      out.result.status = lp::SolveStatus::kInfeasible;
      out.result.iterations = out.stats.iterations;
      break;
    }
    if (attempt.outcome == AttemptOutcome::kUnbounded && diverged_credibly) {
      out.result.status = lp::SolveStatus::kUnbounded;
      out.result.iterations = out.stats.iterations;
      break;
    }
    const bool accepted =
        (attempt.outcome == AttemptOutcome::kConverged ||
         attempt.best_merit <= spec.acceptance_merit) &&
        !attempt.best_state.x.empty() &&
        // The check tolerates the solver's own achieved accuracy (the merit
        // bounds the scaled residuals): its job is to reject *wrong*
        // solutions, not to demand precision beyond the analog noise floor.
        problem.satisfies_constraints(
            attempt.best_state.x, alpha_effective,
            2.0 * attempt.best_merit * (1.0 + norm_inf(problem.b)) + 1e-9);
    if (accepted) {
      out.result.status = lp::SolveStatus::kOptimal;
      out.result.x = attempt.best_state.x;
      out.result.y = attempt.best_state.y;
      out.result.w = attempt.best_state.w;
      out.result.z = attempt.best_state.z;
      out.result.objective = problem.objective(attempt.best_state.x);
      out.result.iterations = out.stats.iterations;
      break;
    }
    // Otherwise: retry with a freshly programmed crossbar — process
    // variation differs on every write (§4.3), so the next attempt sees a
    // different effective matrix.
    out.result.status = attempt.outcome == AttemptOutcome::kIterationLimit
                            ? lp::SolveStatus::kIterationLimit
                            : lp::SolveStatus::kNumericalFailure;
    out.result.iterations = out.stats.iterations;
  }

  newton.collect_stats(out.stats);
  scaling.unscale(out.result);

  obs::flight_record(obs::FlightEventKind::kSolveEnd, spec.solver_name,
                     static_cast<double>(out.stats.iterations),
                     out.result.optimal() ? 1.0 : 0.0);
  if (out.stats.attempts >= 3)
    obs::HealthMonitor::global().report(obs::Anomaly::kRetryStorm,
                                        spec.solver_name, sink,
                                        static_cast<double>(out.stats.attempts));
  // Settle-cache thrash: the cache exists to amortize factorizations across
  // iterations; a solve where full refactorizations dominate its prepares
  // paid O(N³) almost every iteration and deserves a health flag.
  const auto& cache = out.stats.backend.settle_cache;
  const std::uint64_t prepares = cache.full_factorizations +
                                 cache.incremental_updates +
                                 cache.prepare_hits;
  if (cache.full_factorizations > 8 && cache.full_factorizations * 2 > prepares)
    obs::HealthMonitor::global().report(
        obs::Anomaly::kSettleCacheThrash, spec.solver_name, sink,
        static_cast<double>(cache.full_factorizations));
  // A solve that ends in failure dumps the recorder for post-mortem even
  // when no trace was armed (infeasible/unbounded are conclusions, not
  // failures).
  if (out.result.status == lp::SolveStatus::kNumericalFailure ||
      out.result.status == lp::SolveStatus::kIterationLimit)
    obs::flight_dump_on_failure("solver_failure");

  if (sink != nullptr) {
    obs::SolveSummary summary;
    summary.solver = spec.solver_name;
    summary.status = lp::to_string(out.result.status);
    summary.iterations = out.stats.iterations;
    summary.objective = out.result.objective;
    obs::Event event = summary.to_event();
    event.with("attempts", out.stats.attempts)
        .with("system_dim", out.stats.system_dim)
        .with("compensations", out.stats.compensations)
        .with("programming.full_programs",
              out.stats.programming.xbar.full_programs)
        .with("programming.cells_written",
              out.stats.programming.xbar.cells_written)
        .with("programming.write_pulses",
              out.stats.programming.xbar.write_pulses)
        .with("backend.cells_written", out.stats.backend.xbar.cells_written)
        .with("backend.mvm_ops", out.stats.backend.xbar.mvm_ops)
        .with("backend.solve_ops", out.stats.backend.xbar.solve_ops)
        .with("backend.num_tiles", out.stats.backend.num_tiles);
    sink->emit(event);
    sink->flush();
  }
  auto& registry = obs::MetricsRegistry::global();
  const std::string prefix = spec.solver_name;
  registry.counter(prefix + ".solves").add();
  registry.counter(prefix + ".iterations").add(out.stats.iterations);
  registry.counter(prefix + ".attempts").add(out.stats.attempts);
  if (out.result.optimal()) registry.counter(prefix + ".optimal").add();
  return out;
}

}  // namespace memlp::core
