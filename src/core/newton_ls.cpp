#include "core/newton_ls.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "linalg/ops.hpp"

namespace memlp::core {
namespace {

/// Capped denominators: ŷ_i = max(y_i, w_i/cap) bounds the corner ratio
/// w_i/ŷ_i at `cap` — and the SAME ŷ must be used in the µ./ŷ right-hand
/// side terms, otherwise a capped matrix row faces an uncapped rhs and the
/// step direction is garbage.
Vec capped_y(const PdipState& state, double ratio_cap) {
  Vec y_hat(state.y.size());
  for (std::size_t i = 0; i < y_hat.size(); ++i)
    y_hat[i] = std::max(state.y[i], state.w[i] / ratio_cap);
  return y_hat;
}

Vec capped_x(const PdipState& state, double ratio_cap) {
  Vec x_hat(state.x.size());
  for (std::size_t j = 0; j < x_hat.size(); ++j)
    x_hat[j] = std::max(state.x[j], state.z[j] / ratio_cap);
  return x_hat;
}

/// Writes the current corner diagonals (−w/ŷ and +z/x̂) into the bookkeeping
/// structure and, when `also_backend`, into the analog array — 2(n+m)
/// physical cells, the O(N) per-iteration update of §3.5.
void write_corner_diagonals(const lp::LinearProgram& problem,
                            const PdipState& state,
                            std::span<const double> x_hat,
                            std::span<const double> y_hat,
                            NegativeFreeSystem& negfree1,
                            AnalogBackend& backend1, bool also_backend) {
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  // One batched controller transaction instead of 2(n+m) per-cell writes.
  std::vector<xbar::CellUpdate> updates;
  if (also_backend) updates.reserve(2 * (n + m));
  const auto put = [&](std::size_t i, std::size_t j, double value) {
    for (const auto& write : negfree1.update_base_cell_signed(i, j, value))
      if (also_backend) updates.push_back({write.row, write.col, write.value});
  };
  for (std::size_t i = 0; i < m; ++i) put(i, n + i, -state.w[i] / y_hat[i]);
  for (std::size_t j = 0; j < n; ++j) put(m + j, j, state.z[j] / x_hat[j]);
  if (also_backend) backend1.update_cells(updates);
}

}  // namespace

LsNewton::LsNewton(const lp::LinearProgram& problem,
                   const LsPdipOptions& options, NegativeFreeSystem& negfree1,
                   AnalogBackend& backend1, AnalogBackend& backend2,
                   xbar::AmplifierBank& amps)
    : problem_(problem),
      options_(options),
      negfree1_(negfree1),
      backend1_(backend1),
      backend2_(backend2),
      amps_(amps),
      schur_(options.m1_mode == M1Mode::kSchurDiagonal) {}

void LsNewton::begin_attempt(const PdipState& state, std::size_t attempt_index,
                             bool /*reuse_array*/, BackendStats& programming,
                             obs::TraceSink* sink) {
  // Reset the corner diagonals to the fresh-state values, then program the
  // whole M1 array once for this attempt (fresh variation draws).
  if (schur_)
    write_corner_diagonals(problem_, state, capped_x(state, options_.ratio_cap),
                           capped_y(state, options_.ratio_cap), negfree1_,
                           backend1_, /*also_backend=*/false);
  obs::PhaseSpan span(sink, "ls", "programming");
  span.note("attempt", attempt_index);
  const BackendStats before1 = backend1_.stats();
  backend1_.program(negfree1_.matrix(),
                    options_.full_scale_headroom * negfree1_.matrix().max_abs());
  BackendStats programmed = backend1_.stats().since(before1);
  // M2 = diag([x; y]) changes every iteration; program with headroom so the
  // per-iteration writes stay cell-local.
  const BackendStats before2 = backend2_.stats();
  const Matrix m2 = Matrix::diagonal(concat({state.x, state.y}));
  backend2_.program(m2, options_.full_scale_headroom * m2.max_abs());
  programmed += backend2_.stats().since(before2);
  programming += programmed;
  annotate_backend_stats(span, programmed);
}

void LsNewton::begin_iteration(const PdipState& state, std::size_t iteration) {
  x_hat_ = capped_x(state, options_.ratio_cap);
  y_hat_ = capped_y(state, options_.ratio_cap);
  if (schur_ && iteration > 1)
    write_corner_diagonals(problem_, state, x_hat_, y_hat_, negfree1_,
                           backend1_, /*also_backend=*/true);
}

Residuals LsNewton::measure(const PdipState& state, double mu) {
  const std::size_t n = problem_.num_variables();
  const std::size_t m = problem_.num_constraints();

  // --- System 1 right-hand side (Eq. 17a).
  // Schur mode: fixed1 = [b − w − µ./y; c + z + µ./x]; with RU·y ≈ −w and
  // RL·x ≈ z this yields r1 ≈ [b − Ax − µ./y; c − Aᵀy + µ./x].
  // Literal mode: fixed1 = [b − w; c + z] as printed in the paper.
  const Vec s1 = concat({state.x, state.y});
  // DAC at the state input; output stays analog into the amps.
  ms1_ = backend1_.multiply(negfree1_.extend(s1),
                            AnalogBackend::IoBoundary::kInputOnly);
  Vec fixed1(negfree1_.dim(), 0.0);
  {
    Vec bw;
    Vec cz;
    if (schur_) {
      // On a capped row the array holds −w/ŷ (not −w/y), so the constant
      // vector must pair it with w·(y/ŷ): the capped linearization's rhs
      // is then exact and the measured r1 still vanishes at convergence.
      const Vec w_tilde = amps_.divide_elementwise(
          amps_.multiply_elementwise(state.w, state.y), y_hat_);
      const Vec z_tilde = amps_.divide_elementwise(
          amps_.multiply_elementwise(state.z, state.x), x_hat_);
      bw = amps_.sub(amps_.sub(problem_.b, w_tilde),
                     amps_.reciprocal_scale(mu, y_hat_));
      cz = amps_.add(amps_.add(problem_.c, z_tilde),
                     amps_.reciprocal_scale(mu, x_hat_));
    } else {
      bw = amps_.sub(problem_.b, state.w);
      cz = amps_.add(problem_.c, state.z);
    }
    std::copy(bw.begin(), bw.end(), fixed1.begin());
    std::copy(cz.begin(), cz.end(),
              fixed1.begin() + static_cast<std::ptrdiff_t>(m));
  }
  r1_ = amps_.sub(fixed1, ms1_);
  std::fill(r1_.begin() + static_cast<std::ptrdiff_t>(n + m), r1_.end(), 0.0);

  // --- The r1 blocks carry the µ-centring terms and, on capped rows, a
  // w·(1 − y/ŷ) bias — so the controller measures the true infeasibilities
  // with one extra MVM: M1·[x; 0] isolates A·x on the top block (and, by
  // subtraction from M1·[x; y], Aᵀ·y on the bottom).
  Residuals res;
  if (schur_) {
    Vec sx = s1;
    std::fill(sx.begin() + static_cast<std::ptrdiff_t>(n), sx.end(), 0.0);
    const Vec msx = backend1_.multiply(negfree1_.extend(sx));
    const Vec ax = slice(msx, 0, m);
    const Vec aty = amps_.sub(slice(ms1_, m, n), slice(msx, m, n));
    primal_resid_ = amps_.sub(amps_.sub(problem_.b, ax), state.w);
    dual_resid_ = amps_.add(amps_.sub(problem_.c, aty), state.z);
    res.primal_inf = norm_inf(primal_resid_);
    res.dual_inf = norm_inf(dual_resid_);
  } else {
    res.primal_inf = norm_inf(std::span<const double>(r1_).subspan(0, m));
    res.dual_inf = norm_inf(std::span<const double>(r1_).subspan(m, n));
  }
  return res;
}

NewtonStep LsNewton::solve(const PdipState& state, double mu,
                           std::span<const double> /*corr1*/,
                           std::span<const double> /*corr2*/,
                           bool /*reuse_measured_rhs*/) {
  const std::size_t n = problem_.num_variables();
  const std::size_t m = problem_.num_constraints();

  // --- Solve system 1 for [∆x; ∆y].
  const auto ds1_aug =
      backend1_.solve(r1_, AnalogBackend::IoBoundary::kOutputOnly);
  if (!ds1_aug) return {std::nullopt, true};
  const Vec ds1 = negfree1_.restrict(*ds1_aug);
  const std::span<const double> dx(ds1.data(), n);
  const std::span<const double> dy(ds1.data() + n, m);

  // --- Recovery of the slack directions ∆z, ∆w.
  Vec dz;
  Vec dw;
  if (schur_ && options_.recovery == RecoveryMode::kStable) {
    // Division-free recovery via Eq. (9a)/(9b) with two more M1 settles:
    //   ∆w = (b − Ax − w) − A∆x,   ∆z = Aᵀ∆y − (c − Aᵀy + z).
    // The Eq. (16b) diagonal solve divides by x̂, ŷ, which amplifies analog
    // noise by up to ratio_cap on near-zero entries.
    Vec sdx(n + m, 0.0);
    std::copy(dx.begin(), dx.end(), sdx.begin());
    const Vec ms_dx = backend1_.multiply(negfree1_.extend(sdx));
    Vec sdy(n + m, 0.0);
    std::copy(dy.begin(), dy.end(),
              sdy.begin() + static_cast<std::ptrdiff_t>(n));
    const Vec ms_dy = backend1_.multiply(negfree1_.extend(sdy));
    dw = amps_.sub(primal_resid_, slice(ms_dx, 0, m));
    dz = amps_.sub(slice(ms_dy, m, n), dual_resid_);
  } else {
    // --- System 2 (Eq. 16b): M2 = diag([x̂; ŷ]) solves for [∆z; ∆w].
    // Complementarity drives some x_j towards 0; a diagonal cell below one
    // conductance level would quantize to exactly zero and leave the array
    // singular, so the write driver floors each cell at the representable
    // resolution.
    const double m2_scale =
        std::max({1.0, norm_inf(state.x), norm_inf(state.y)});
    const double representable =
        options_.full_scale_headroom * m2_scale * 1.5 /
        static_cast<double>(options_.hardware.crossbar.conductance_levels - 1);
    std::vector<xbar::CellUpdate> diagonal;
    diagonal.reserve(n + m);
    for (std::size_t j = 0; j < n; ++j)
      diagonal.push_back(
          {j, j, std::max(schur_ ? x_hat_[j] : state.x[j], representable)});
    for (std::size_t i = 0; i < m; ++i)
      diagonal.push_back(
          {n + i, n + i,
           std::max(schur_ ? y_hat_[i] : state.y[i], representable)});
    backend2_.update_cells(diagonal);

    // r2 = [µe; µe] − M2·[z; w] (the XZe / YWe products come from the M2
    // array itself), minus the Z∘∆x / W∘∆y cross terms from the analog
    // multipliers when exact recovery is on.
    const Vec s2 = concat({state.z, state.w});
    const Vec ms2 =
        backend2_.multiply(s2, AnalogBackend::IoBoundary::kInputOnly);
    Vec r2 = amps_.sub(Vec(n + m, mu), ms2);
    if (options_.exact_recovery) {
      const Vec zdx = amps_.multiply_elementwise(state.z, dx);
      const Vec wdy = amps_.multiply_elementwise(state.w, dy);
      const Vec cross = concat({zdx, wdy});
      r2 = amps_.sub(r2, cross);
    }
    const auto ds2 =
        backend2_.solve(r2, AnalogBackend::IoBoundary::kOutputOnly);
    // The M2 system is diagonal: a failed settle means a broken array, never
    // a diverged iterate — report it without the divergence classifier.
    if (!ds2) return {std::nullopt, /*classify_on_failure=*/false};
    dz = slice(*ds2, 0, n);
    dw = slice(*ds2, n, m);
  }

  StepDirection step;
  step.dx.assign(dx.begin(), dx.end());
  step.dy.assign(dy.begin(), dy.end());
  step.dw = std::move(dw);
  step.dz = std::move(dz);
  return {std::move(step), true};
}

void LsNewton::snapshot_counters() {
  before_it1_ = backend1_.stats();
  before_it2_ = backend2_.stats();
  amps_before_ = amps_.stats();
}

void LsNewton::annotate_counters(obs::PhaseSpan& span) {
  // Both arrays plus the amplifier bank contribute to the counter delta.
  BackendStats delta = backend1_.stats().since(before_it1_);
  delta += backend2_.stats().since(before_it2_);
  delta.amps += amps_.stats().since(amps_before_);
  annotate_backend_stats(span, delta);
}

void LsNewton::describe(XbarSolveStats& stats) const {
  stats.system_dim = negfree1_.dim();
  stats.compensations = negfree1_.num_compensations();
}

void LsNewton::collect_stats(XbarSolveStats& stats) const {
  BackendStats merged = backend1_.stats();
  merged += backend2_.stats();
  stats.backend = merged;
  stats.amps = amps_.stats();
}

}  // namespace memlp::core
