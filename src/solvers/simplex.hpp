// Two-phase primal simplex — the exact reference solver.
//
// Stands in for MATLAB's `linprog` in the paper's experiments: it returns
// the exact optimum of  max cᵀx, A·x ⪯ b, x ⪰ 0  (§2.1 describes Dantzig's
// method), detects infeasibility via a Phase-1 artificial objective, and
// detects unboundedness via the ratio test. Dense-tableau implementation
// with Dantzig pricing and a Bland's-rule anti-cycling fallback.
#pragma once

#include <cstddef>

#include "lp/problem.hpp"
#include "lp/result.hpp"

namespace memlp::obs {
class TraceSink;
}

namespace memlp::solvers {

/// Options for the simplex solver.
struct SimplexOptions {
  /// Reduced-cost optimality tolerance.
  double tolerance = 1e-9;
  /// Pivot cap as a multiple of (m + n); 0 = default (50).
  std::size_t max_pivot_factor = 50;
  /// Switch from Dantzig to Bland pricing after this multiple of (m + n)
  /// pivots (anti-cycling).
  std::size_t bland_after_factor = 10;
  /// Structured trace destination (see obs/trace.hpp): a `solve_summary`
  /// event with pivot/degeneracy counters. nullptr falls back to the
  /// process-wide MEMLP_TRACE sink.
  obs::TraceSink* trace = nullptr;
};

/// Solves the LP exactly. The result's `y` holds the dual solution
/// (Lagrange multipliers of the inequality rows) and `wall_seconds` the
/// measured solve time.
lp::SolveResult solve_simplex(const lp::LinearProgram& problem,
                              const SimplexOptions& options = {});

}  // namespace memlp::solvers
