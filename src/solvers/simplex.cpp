#include "solvers/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/contracts.hpp"
#include "common/stopwatch.hpp"
#include "linalg/ops.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace memlp::solvers {
namespace {

// Internal dense tableau for minimization of fᵀv subject to the equality
// system [A | S | R]·v = b with v >= 0, where S are signed slacks and R the
// Phase-1 artificials. The last tableau row holds reduced costs.
class Tableau {
 public:
  Tableau(const lp::LinearProgram& problem, const SimplexOptions& options)
      : options_(options),
        m_(problem.num_constraints()),
        n_(problem.num_variables()) {
    // Count artificials: one per row with negative b (after sign flip the
    // slack coefficient is -1, so the slack cannot seed the basis).
    for (std::size_t i = 0; i < m_; ++i)
      if (problem.b[i] < 0.0) artificial_rows_.push_back(i);
    num_artificials_ = artificial_rows_.size();
    cols_ = n_ + m_ + num_artificials_;
    body_ = Matrix(m_ + 1, cols_ + 1);
    basis_.assign(m_, 0);

    std::size_t next_artificial = n_ + m_;
    // The tableau is dense anyway; fill its A block from the CSR entries so
    // sparse problems skip the structural zeros.
    {
      const auto& a = problem.a.csr();
      const auto offsets = a.row_offsets();
      const auto cols = a.column_indices();
      const auto values = a.values();
      for (std::size_t i = 0; i < m_; ++i) {
        const double sign = problem.b[i] < 0.0 ? -1.0 : 1.0;
        for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k)
          body_(i, cols[k]) = sign * values[k];
      }
    }
    for (std::size_t i = 0; i < m_; ++i) {
      const double sign = problem.b[i] < 0.0 ? -1.0 : 1.0;
      body_(i, n_ + i) = sign;  // slack
      body_(i, cols_) = sign * problem.b[i];
      if (problem.b[i] < 0.0) {
        body_(i, next_artificial) = 1.0;
        basis_[i] = next_artificial++;
      } else {
        basis_[i] = n_ + i;
      }
    }
  }

  /// Runs both phases; returns the solver status.
  lp::SolveStatus run(const lp::LinearProgram& problem) {
    if (num_artificials_ > 0) {
      obs::ProfileSpan phase1_span("phase1");
      load_phase1_costs();
      const lp::SolveStatus phase1 = iterate();
      if (phase1 != lp::SolveStatus::kOptimal) return phase1;
      if (artificial_infeasibility() > 1e-7)
        return lp::SolveStatus::kInfeasible;
      if (!drive_out_artificials()) return lp::SolveStatus::kNumericalFailure;
    }
    obs::ProfileSpan phase2_span("phase2");
    load_phase2_costs(problem);
    return iterate();
  }

  /// Extracts the primal solution (first n variables).
  [[nodiscard]] Vec primal() const {
    Vec x(n_, 0.0);
    for (std::size_t i = 0; i < m_; ++i)
      if (basis_[i] < n_) x[basis_[i]] = body_(i, cols_);
    return x;
  }

  /// Dual solution: at a min-optimum the reduced cost of slack i equals the
  /// canonical-max dual y_i (>= 0).
  [[nodiscard]] Vec dual() const {
    Vec y(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i)
      y[i] = std::max(0.0, body_(m_, n_ + i));
    return y;
  }

  [[nodiscard]] std::size_t pivots() const noexcept { return pivots_; }

  /// Pivots whose leaving row had rhs ≈ 0 — the basis changed but the
  /// objective did not move (degeneracy/cycling pressure indicator).
  [[nodiscard]] std::size_t degenerate_pivots() const noexcept {
    return degenerate_pivots_;
  }

  /// Pivots spent in Phase 1 (feasibility search), incl. driving artificials
  /// out of the basis.
  [[nodiscard]] std::size_t phase1_pivots() const noexcept {
    return phase1_pivots_;
  }

 private:
  void load_phase1_costs() {
    // Minimize the sum of artificials: cost 1 on artificial columns. Price
    // out the basic artificials so reduced costs start consistent.
    for (std::size_t j = 0; j <= cols_; ++j) body_(m_, j) = 0.0;
    for (std::size_t j = n_ + m_; j < cols_; ++j) body_(m_, j) = 1.0;
    for (std::size_t i = 0; i < m_; ++i)
      if (basis_[i] >= n_ + m_)
        for (std::size_t j = 0; j <= cols_; ++j)
          body_(m_, j) -= body_(i, j);
    phase1_ = true;
  }

  void load_phase2_costs(const lp::LinearProgram& problem) {
    // Minimize -cᵀx; artificial columns are barred from re-entering.
    for (std::size_t j = 0; j <= cols_; ++j) body_(m_, j) = 0.0;
    for (std::size_t j = 0; j < n_; ++j) body_(m_, j) = -problem.c[j];
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t basic = basis_[i];
      const double cost = basic < n_ ? -problem.c[basic] : 0.0;
      if (cost == 0.0) continue;
      for (std::size_t j = 0; j <= cols_; ++j)
        body_(m_, j) -= cost * body_(i, j);
    }
    phase1_ = false;
  }

  [[nodiscard]] double artificial_infeasibility() const {
    double sum = 0.0;
    for (std::size_t i = 0; i < m_; ++i)
      if (basis_[i] >= n_ + m_) sum += body_(i, cols_);
    return sum;
  }

  /// After Phase 1, pivots any basic artificial (at value 0) out of the
  /// basis; rows with no eligible pivot are redundant and are zeroed.
  bool drive_out_artificials() {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_ + m_) continue;
      std::size_t entering = cols_;
      for (std::size_t j = 0; j < n_ + m_; ++j)
        if (std::abs(body_(i, j)) > 1e-9) {
          entering = j;
          break;
        }
      if (entering == cols_) {
        // Redundant constraint: the row is all-zero on structural columns.
        for (std::size_t j = 0; j <= cols_; ++j) body_(i, j) = 0.0;
        continue;
      }
      pivot(i, entering);
    }
    return true;
  }

  lp::SolveStatus iterate() {
    const std::size_t scale = m_ + n_;
    const std::size_t factor =
        options_.max_pivot_factor == 0 ? 50 : options_.max_pivot_factor;
    const std::size_t max_pivots = std::max<std::size_t>(factor * scale, 200);
    const std::size_t bland_after =
        std::max<std::size_t>(options_.bland_after_factor * scale, 100);
    for (std::size_t local = 0; local < max_pivots; ++local) {
      const bool bland = local >= bland_after;
      const std::size_t entering = choose_entering(bland);
      if (entering == cols_) return lp::SolveStatus::kOptimal;
      const std::size_t leaving = ratio_test(entering);
      if (leaving == m_)
        return phase1_ ? lp::SolveStatus::kNumericalFailure
                       : lp::SolveStatus::kUnbounded;
      pivot(leaving, entering);
    }
    return lp::SolveStatus::kIterationLimit;
  }

  [[nodiscard]] std::size_t choose_entering(bool bland) const {
    const std::size_t limit = phase1_ ? cols_ : n_ + m_;  // bar artificials
    std::size_t best = cols_;
    double best_cost = -options_.tolerance;
    for (std::size_t j = 0; j < limit; ++j) {
      const double reduced = body_(m_, j);
      if (reduced < best_cost) {
        best = j;
        best_cost = reduced;
        if (bland) break;  // first eligible index
      }
    }
    return best;
  }

  [[nodiscard]] std::size_t ratio_test(std::size_t entering) const {
    std::size_t leaving = m_;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m_; ++i) {
      const double coefficient = body_(i, entering);
      if (coefficient <= 1e-11) continue;
      const double ratio = body_(i, cols_) / coefficient;
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 &&
           (leaving == m_ || basis_[i] < basis_[leaving]))) {
        best_ratio = ratio;
        leaving = i;
      }
    }
    return leaving;
  }

  void pivot(std::size_t row, std::size_t col) {
    ++pivots_;
    if (phase1_) ++phase1_pivots_;
    if (std::abs(body_(row, cols_)) <= 1e-11) ++degenerate_pivots_;
    const double pivot_value = body_(row, col);
    MEMLP_ASSERT(std::abs(pivot_value) > 1e-12);
    const double inv = 1.0 / pivot_value;
    for (std::size_t j = 0; j <= cols_; ++j) body_(row, j) *= inv;
    for (std::size_t i = 0; i <= m_; ++i) {
      if (i == row) continue;
      const double factor = body_(i, col);
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j <= cols_; ++j)
        body_(i, j) -= factor * body_(row, j);
    }
    basis_[row] = col;
  }

  SimplexOptions options_;
  std::size_t m_;
  std::size_t n_;
  std::size_t cols_ = 0;
  std::size_t num_artificials_ = 0;
  std::vector<std::size_t> artificial_rows_;
  Matrix body_;
  std::vector<std::size_t> basis_;
  std::size_t pivots_ = 0;
  std::size_t degenerate_pivots_ = 0;
  std::size_t phase1_pivots_ = 0;
  bool phase1_ = false;
};

}  // namespace

lp::SolveResult solve_simplex(const lp::LinearProgram& problem,
                              const SimplexOptions& options) {
  problem.validate();
  obs::ProfileSpan profile_root("simplex");
  Stopwatch timer;
  Tableau tableau(problem, options);
  lp::SolveResult result;
  result.status = tableau.run(problem);
  result.iterations = tableau.pivots();
  if (result.status == lp::SolveStatus::kOptimal) {
    result.x = tableau.primal();
    result.y = tableau.dual();
    result.objective = problem.objective(result.x);
  }
  result.wall_seconds = timer.seconds();

  obs::TraceSink* sink = options.trace != nullptr ? options.trace
                                                  : obs::default_trace_sink();
  if (sink != nullptr) {
    obs::SolveSummary summary;
    summary.solver = "simplex";
    summary.status = lp::to_string(result.status);
    summary.iterations = result.iterations;
    summary.objective = result.objective;
    summary.wall_seconds = result.wall_seconds;
    obs::Event event = summary.to_event();
    event.with("pivots", tableau.pivots())
        .with("degenerate_pivots", tableau.degenerate_pivots())
        .with("phase1_pivots", tableau.phase1_pivots());
    sink->emit(event);
    sink->flush();
  }
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("simplex.solves").add();
  registry.counter("simplex.pivots").add(tableau.pivots());
  registry.counter("simplex.degenerate_pivots")
      .add(tableau.degenerate_pivots());
  if (result.optimal()) registry.counter("simplex.optimal").add();
  return result;
}

}  // namespace memlp::solvers
