#include "engine/registry.hpp"

#include <map>
#include <mutex>
#include <utility>

#include "common/contracts.hpp"
#include "common/stopwatch.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "perf/hardware_model.hpp"

namespace memlp::engine {

core::XbarPdipOptions SolveRequest::xbar_options() const {
  if (xbar.has_value()) return *xbar;
  core::XbarPdipOptions options;
  options.pdip = pdip;
  options.hardware = hardware;
  options.seed = seed;
  return options;
}

core::LsPdipOptions SolveRequest::ls_options() const {
  if (ls.has_value()) return *ls;
  core::LsPdipOptions options;
  options.pdip = pdip;
  options.hardware = hardware;
  options.seed = seed;
  return options;
}

solvers::SimplexOptions SolveRequest::simplex_options() const {
  if (simplex.has_value()) return *simplex;
  solvers::SimplexOptions options;
  options.trace = pdip.trace;
  return options;
}

struct SolverRegistry::Impl {
  /// Guards the name table only — never held across a solve, so concurrent
  /// batch workers serialize on lookup (microseconds) and solve freely.
  mutable std::mutex mutex;  // memlint:allow(R1)
  std::map<std::string, SolveFn> table;
};

SolverRegistry::SolverRegistry() : impl_(std::make_unique<Impl>()) {}
SolverRegistry::~SolverRegistry() = default;

void SolverRegistry::register_solver(const std::string& name, SolveFn fn) {
  MEMLP_EXPECT_MSG(!name.empty(), "register_solver: empty solver name");
  MEMLP_EXPECT_MSG(fn != nullptr, "register_solver: null solver function");
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->table[name] = std::move(fn);
}

bool SolverRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->table.contains(name);
}

std::vector<std::string> SolverRegistry::names() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->table.size());
  for (const auto& [name, fn] : impl_->table) out.push_back(name);
  return out;  // std::map iterates in sorted order.
}

std::optional<SolveFn> SolverRegistry::find(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->table.find(name);
  if (it == impl_->table.end()) return std::nullopt;
  return it->second;
}

SolveReport SolverRegistry::solve(const lp::LinearProgram& problem,
                                  const SolveRequest& request) const {
  const std::optional<SolveFn> fn = find(request.solver);
  MEMLP_EXPECT_MSG(fn.has_value(), "SolverRegistry: unknown solver '"
                                       << request.solver << "'");
  // Every registry solve runs under a SolveContext. A caller that already
  // installed one (solve_batch, nested solves) keeps it — minting here
  // would fork the trace identity mid-solve.
  std::optional<obs::ScopedSolveContext> scope;
  if (const obs::SolveContext* active = obs::current_solve_context();
      active == nullptr || !active->valid()) {
    obs::SolveContext context;
    context.trace_id = obs::mint_trace_ids();
    context.tenant = request.tenant;
    scope.emplace(std::move(context));
  }
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter(request.solver + ".requests").add();
  const Stopwatch clock;
  SolveReport report = (*fn)(problem, request);
  // Per-solve latency distribution (p50/p95/p99 for serving-style loads);
  // one histogram observation per solve, never per iteration.
  metrics.histogram(request.solver + ".solve_seconds")
      .observe(clock.seconds());
  if (report.has_hardware_stats) {
    // Per-solve analog energy (iterative phase + programming), priced with
    // the default constants — the same quantity the Fig. 7 benches report.
    const perf::HardwareModel model;
    perf::CostEstimate estimate = model.estimate(report.stats);
    estimate += model.estimate_programming(report.stats);
    metrics.histogram(request.solver + ".solve_energy_j")
        .observe(estimate.energy_j);
  }
  return report;
}

namespace {

SolveReport run_simplex(const lp::LinearProgram& problem,
                        const SolveRequest& request) {
  SolveReport report;
  report.solver = "simplex";
  report.result = solvers::solve_simplex(problem, request.simplex_options());
  return report;
}

SolveReport run_pdip(const lp::LinearProgram& problem,
                     const SolveRequest& request) {
  SolveReport report;
  report.solver = "pdip";
  report.result = core::solve_pdip(problem, request.pdip);
  return report;
}

SolveReport run_xbar(const lp::LinearProgram& problem,
                     const SolveRequest& request) {
  const core::XbarSolveOutcome outcome =
      core::solve_xbar_pdip(problem, request.xbar_options());
  SolveReport report;
  report.solver = "xbar";
  report.result = outcome.result;
  report.stats = outcome.stats;
  report.has_hardware_stats = true;
  return report;
}

SolveReport run_ls(const lp::LinearProgram& problem,
                   const SolveRequest& request) {
  const core::XbarSolveOutcome outcome =
      core::solve_ls_pdip(problem, request.ls_options());
  SolveReport report;
  report.solver = "ls";
  report.result = outcome.result;
  report.stats = outcome.stats;
  report.has_hardware_stats = true;
  return report;
}

void register_built_ins(SolverRegistry& registry) {
  registry.register_solver("simplex", run_simplex);
  registry.register_solver("pdip", run_pdip);
  registry.register_solver("xbar", run_xbar);
  registry.register_solver("ls", run_ls);
}

}  // namespace

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry registry;
  static const bool built_ins = [] {
    register_built_ins(registry);
    return true;
  }();
  (void)built_ins;
  return registry;
}

SolveReport solve(const lp::LinearProgram& problem,
                  const SolveRequest& request) {
  return SolverRegistry::global().solve(problem, request);
}

}  // namespace memlp::engine
