// Heterogeneous batched solves over the registry: fan independent LP solves
// — of ANY registered solver, mixed freely — across the memlp::par pool.
//
// Each item resolves its solver by name and owns its crossbar state and RNG
// stream, so the fan-out is embarrassingly parallel and bit-identical at
// every thread count: item i's report depends only on (problem i, request
// i), never on scheduling. The homogeneous crossbar-only overloads of
// core/batch.hpp are thin shims over this front door.
//
// Tiled backends inside a batch run their per-tile loops inline (nested
// parallel regions serialize, see common/par.hpp) — the batch level owns
// the threads.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "engine/registry.hpp"
#include "lp/problem.hpp"

namespace memlp::engine {

/// One entry of the batch: a problem with its own request (its own solver
/// kind, seed, hardware, tracing, ...).
struct BatchItem {
  const lp::LinearProgram* problem = nullptr;
  SolveRequest request{};
};

/// Solves every item through SolverRegistry::global() across the memlp::par
/// pool (`threads` 0 = par::default_threads()). Report i corresponds to
/// items[i] regardless of thread count. Every item's problem must be
/// non-null and every item's solver name registered (checked up front, so a
/// bad batch fails before any work starts).
std::vector<SolveReport> solve_batch(std::span<const BatchItem> items,
                                     std::size_t threads = 0);

}  // namespace memlp::engine
