// Implements both batch front doors: the heterogeneous engine::solve_batch
// and the legacy homogeneous core::solve_batch overloads (declared in
// core/batch.hpp), which are shims that route through the registry's "xbar"
// entry with their options carried verbatim.
#include "engine/batch.hpp"

#include "common/contracts.hpp"
#include "common/par.hpp"
#include "core/batch.hpp"
#include "obs/metrics.hpp"

namespace memlp::engine {

std::vector<SolveReport> solve_batch(std::span<const BatchItem> items,
                                     std::size_t threads) {
  const SolverRegistry& registry = SolverRegistry::global();
  for (const BatchItem& item : items) {
    MEMLP_EXPECT_MSG(item.problem != nullptr, "solve_batch: null problem");
    MEMLP_EXPECT_MSG(registry.contains(item.request.solver),
                     "solve_batch: unknown solver '" << item.request.solver
                                                     << "'");
  }
  std::vector<SolveReport> reports(items.size());
  par::parallel_for(
      items.size(),
      [&](std::size_t i) {
        reports[i] = registry.solve(*items[i].problem, items[i].request);
      },
      threads);
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("batch.calls").add();
  metrics.counter("batch.problems").add(items.size());
  return reports;
}

}  // namespace memlp::engine

namespace memlp::core {

std::vector<XbarSolveOutcome> solve_batch(std::span<const BatchJob> jobs,
                                          std::size_t threads) {
  std::vector<engine::BatchItem> items(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    MEMLP_EXPECT_MSG(jobs[i].problem != nullptr, "solve_batch: null problem");
    items[i].problem = jobs[i].problem;
    items[i].request.solver = "xbar";
    items[i].request.xbar = jobs[i].options;
  }
  const std::vector<engine::SolveReport> reports =
      engine::solve_batch(items, threads);
  std::vector<XbarSolveOutcome> outcomes(jobs.size());
  for (std::size_t i = 0; i < reports.size(); ++i)
    outcomes[i] = {reports[i].result, reports[i].stats};
  return outcomes;
}

std::vector<XbarSolveOutcome> solve_batch(
    std::span<const lp::LinearProgram> problems, const BatchOptions& options) {
  std::vector<BatchJob> jobs(problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    jobs[i].problem = &problems[i];
    jobs[i].options = options.base;
    jobs[i].options.seed =
        options.base.seed + static_cast<std::uint64_t>(i) * options.seed_stride;
  }
  return solve_batch(std::span<const BatchJob>(jobs), options.threads);
}

}  // namespace memlp::core
