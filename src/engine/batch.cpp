// Implements both batch front doors: the heterogeneous engine::solve_batch
// and the legacy homogeneous core::solve_batch overloads (declared in
// core/batch.hpp), which are shims that route through the registry's "xbar"
// entry with their options carried verbatim.
#include "engine/batch.hpp"

#include "common/contracts.hpp"
#include "common/par.hpp"
#include "common/stopwatch.hpp"
#include "core/batch.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace memlp::engine {

std::vector<SolveReport> solve_batch(std::span<const BatchItem> items,
                                     std::size_t threads) {
  const SolverRegistry& registry = SolverRegistry::global();
  for (const BatchItem& item : items) {
    MEMLP_EXPECT_MSG(item.problem != nullptr, "solve_batch: null problem");
    MEMLP_EXPECT_MSG(registry.contains(item.request.solver),
                     "solve_batch: unknown solver '" << item.request.solver
                                                     << "'");
  }
  // One contiguous trace-id block, minted up front on the calling thread:
  // item i is (trace_id base + i, solve_id i) at every thread count, so a
  // batch trace filters identically whether it ran serial or pooled.
  const std::uint64_t base_trace_id = obs::mint_trace_ids(items.size());
  const Stopwatch batch_clock;
  std::vector<SolveReport> reports(items.size());
  par::parallel_for(
      items.size(),
      [&](std::size_t i) {
        // Time from batch submission to this item starting = queue wait.
        const double wait_s = batch_clock.seconds();
        obs::SolveContext context;
        context.trace_id = base_trace_id + i;
        context.solve_id = i;
        context.tenant = items[i].request.tenant;
        const obs::ScopedSolveContext scope(std::move(context));
        const Stopwatch exec_clock;
        reports[i] = registry.solve(*items[i].problem, items[i].request);
        auto& metrics = obs::MetricsRegistry::global();
        metrics.histogram(items[i].request.solver + ".batch_wait_seconds")
            .observe(wait_s);
        metrics.histogram(items[i].request.solver + ".batch_exec_seconds")
            .observe(exec_clock.seconds());
      },
      threads);
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("batch.calls").add();
  metrics.counter("batch.problems").add(items.size());
  // Batch boundaries are the natural exposition cadence for serving-style
  // loads: refresh the .prom snapshot when MEMLP_METRICS_OUT is configured.
  obs::Telemetry::global().write_metrics_if_configured();
  return reports;
}

}  // namespace memlp::engine

namespace memlp::core {

std::vector<XbarSolveOutcome> solve_batch(std::span<const BatchJob> jobs,
                                          std::size_t threads) {
  std::vector<engine::BatchItem> items(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    MEMLP_EXPECT_MSG(jobs[i].problem != nullptr, "solve_batch: null problem");
    items[i].problem = jobs[i].problem;
    items[i].request.solver = "xbar";
    items[i].request.xbar = jobs[i].options;
  }
  const std::vector<engine::SolveReport> reports =
      engine::solve_batch(items, threads);
  std::vector<XbarSolveOutcome> outcomes(jobs.size());
  for (std::size_t i = 0; i < reports.size(); ++i)
    outcomes[i] = {reports[i].result, reports[i].stats};
  return outcomes;
}

std::vector<XbarSolveOutcome> solve_batch(
    std::span<const lp::LinearProgram> problems, const BatchOptions& options) {
  std::vector<BatchJob> jobs(problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    jobs[i].problem = &problems[i];
    jobs[i].options = options.base;
    jobs[i].options.seed =
        options.base.seed + static_cast<std::uint64_t>(i) * options.seed_stride;
  }
  return solve_batch(std::span<const BatchJob>(jobs), options.threads);
}

}  // namespace memlp::core
