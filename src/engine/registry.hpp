// memlp::engine — the uniform solver front door.
//
// Every solver in the tree (exact simplex, software PDIP, the Algorithm-1
// crossbar solver, the Algorithm-2 least-squares solver) is registered here
// under its CLI name and driven through one request/report pair:
//
//   lp layer          lp::LinearProgram, lp::SolveResult
//        │
//   engine layer      SolverRegistry  ←  SolveRequest / SolveReport
//        │                               solve_batch (any solver mix)
//   core wrappers     solve_pdip / solve_xbar_pdip / solve_ls_pdip
//        │
//   core engine       PdipEngine + NewtonSystem policies (core-private)
//
// Callers that need one specific solver's full option surface keep calling
// the core entry points directly; the registry is for code that treats the
// solver as data — the CLI's --solver flag, batched sweeps, benches that
// compare solvers. See docs/architecture.md for the layer map.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/ls_pdip.hpp"
#include "core/pdip.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/problem.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

namespace memlp::engine {

/// One solve, solver chosen by name. The shared fields (`pdip`, `hardware`,
/// `seed`) parameterize whichever solver runs; a set per-solver override
/// (`xbar`, `ls`, `simplex`) is used verbatim instead, ignoring the shared
/// fields for that solver. `pdip.trace` is the structured-trace destination
/// for every solver (see obs/trace.hpp).
struct SolveRequest {
  std::string solver = "xbar";
  /// Attribution tag stamped into the solve's SolveContext (multi-tenant
  /// batches, serving-style callers); empty = unattributed.
  std::string tenant;
  /// Algorithmic parameters shared by the three PDIP solvers; also carries
  /// the trace sink for all four.
  core::PdipOptions pdip{};
  /// Hardware selection for the analog solvers (ignored by simplex/pdip).
  core::BackendOptions hardware{};
  /// Seed for every stochastic hardware component (analog solvers).
  std::uint64_t seed = 0x5eed;
  /// Full per-solver option structs, used verbatim when set.
  std::optional<core::XbarPdipOptions> xbar;
  std::optional<core::LsPdipOptions> ls;
  std::optional<solvers::SimplexOptions> simplex;

  /// The effective options the "xbar" entry solves with (exposed so callers
  /// and tests can see exactly what a request resolves to).
  [[nodiscard]] core::XbarPdipOptions xbar_options() const;
  /// Likewise for "ls".
  [[nodiscard]] core::LsPdipOptions ls_options() const;
  /// Likewise for "simplex".
  [[nodiscard]] solvers::SimplexOptions simplex_options() const;
};

/// Uniform result: the LP solution plus, for the analog solvers, the
/// hardware-operation record that feeds perf::HardwareModel.
struct SolveReport {
  std::string solver;
  lp::SolveResult result;
  core::XbarSolveStats stats{};      ///< valid iff has_hardware_stats.
  bool has_hardware_stats = false;   ///< true for the crossbar solvers.
};

/// A registered solver: maps a (problem, request) pair to a report.
using SolveFn =
    std::function<SolveReport(const lp::LinearProgram&, const SolveRequest&)>;

/// Name → solver table. The four built-ins ("simplex", "pdip", "xbar",
/// "ls") are registered on first use of global(); benches and experiments
/// may register additional entries (re-registering a name replaces it).
/// Lookup is thread-safe, so batch workers can resolve names concurrently.
class SolverRegistry {
 public:
  SolverRegistry();
  ~SolverRegistry();
  SolverRegistry(const SolverRegistry&) = delete;
  SolverRegistry& operator=(const SolverRegistry&) = delete;

  /// The process-wide registry with the built-ins pre-registered.
  static SolverRegistry& global();

  /// Adds (or replaces) a solver under `name`.
  void register_solver(const std::string& name, SolveFn fn);

  /// True when `name` is registered.
  [[nodiscard]] bool contains(const std::string& name) const;

  /// All registered names, sorted — the CLI prints these on a bad --solver.
  [[nodiscard]] std::vector<std::string> names() const;

  /// The solver registered under `name`, or std::nullopt.
  [[nodiscard]] std::optional<SolveFn> find(const std::string& name) const;

  /// Resolves `request.solver` and runs it. MEMLP_EXPECTs the name exists —
  /// callers taking untrusted names should `find()` first.
  SolveReport solve(const lp::LinearProgram& problem,
                    const SolveRequest& request) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: SolverRegistry::global().solve(problem, request).
SolveReport solve(const lp::LinearProgram& problem,
                  const SolveRequest& request);

}  // namespace memlp::engine
