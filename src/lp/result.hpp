// Result type shared by every LP solver in memlp (simplex, software PDIP,
// and both crossbar solvers), so benches and tests treat them uniformly.
#pragma once

#include "lp/problem.hpp"

namespace memlp::lp {

/// Outcome of one solve.
struct SolveResult {
  SolveStatus status = SolveStatus::kNumericalFailure;
  Vec x;  ///< primal solution (empty unless kOptimal).
  Vec y;  ///< dual solution (may be empty for solvers that do not track it).
  Vec w;  ///< primal slacks (PDIP solvers).
  Vec z;  ///< dual slacks (PDIP solvers).
  double objective = 0.0;
  std::size_t iterations = 0;  ///< PDIP iterations or simplex pivots.
  /// Wall-clock of the solve, filled by *software* solvers only; hardware
  /// solvers report estimated latency through perf::HardwareModel instead.
  double wall_seconds = 0.0;

  [[nodiscard]] bool optimal() const noexcept {
    return status == SolveStatus::kOptimal;
  }
};

/// Relative objective error against a reference optimum, the paper's
/// accuracy metric (§4.3): |obj − ref| / max(1, |ref|).
[[nodiscard]] inline double relative_error(double objective,
                                           double reference) noexcept {
  const double denom = reference < 0.0 ? -reference : reference;
  return (objective > reference ? objective - reference
                                : reference - objective) /
         (denom < 1.0 ? 1.0 : denom);
}

}  // namespace memlp::lp
