// LP workload generators.
//
// random_feasible / random_infeasible reproduce the paper's experimental
// setup (§4.2): "The number of constraints varies from 256 to 1024
// exponentially while the number of variables is one third of the number of
// constraints. 100 randomly generated feasible tests and 100 randomly
// generated infeasible tests…". Construction guarantees the advertised
// property:
//   * feasible + bounded: an interior point x* > 0 is drawn first and
//     b = A·x* + margin with margin > 0, so the region has interior; every
//     column of A is nudged to a positive column sum, so y = t·1 with large
//     t is dual-feasible and the primal optimum is finite;
//   * infeasible: a hidden pair of contradictory rows (u·x ≤ β and
//     u·x ≥ 2β for a positive vector u) is embedded among random rows.
//
// The domain generators (max-flow routing, production scheduling,
// transportation) build the application LPs the paper's introduction
// motivates; they back the examples/ binaries.
//
// The structured family (multi_commodity_flow / block_diagonal / banded)
// emits realistic sparsity patterns CSR-natively — no dense intermediate —
// so problems with thousands of constraints stay cheap to generate and feed
// the sparse Schur / sharded-crossbar paths (§3.5).
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "lp/problem.hpp"

namespace memlp::lp {

/// Parameters for the random generators.
struct GeneratorOptions {
  std::size_t constraints = 32;
  /// 0 = the paper's ratio (constraints / 3, at least 1).
  std::size_t variables = 0;
  /// Magnitude scale of A's entries.
  double coefficient_scale = 1.0;
  /// Fraction of negative entries in A (exercises the negative-coefficient
  /// elimination path; 0 = all-non-negative problems).
  double negative_fraction = 0.3;
  /// Fraction of structurally zero entries (LPs are typically sparse).
  double sparsity = 0.0;

  [[nodiscard]] std::size_t effective_variables() const noexcept {
    if (variables != 0) return variables;
    return constraints / 3 == 0 ? 1 : constraints / 3;
  }
};

/// Generates a feasible, bounded LP (see construction note above).
LinearProgram random_feasible(const GeneratorOptions& options, Rng& rng);

/// Generates an infeasible LP.
LinearProgram random_infeasible(const GeneratorOptions& options, Rng& rng);

/// Max-flow routing LP on a random layered directed graph:
/// variables are edge flows, objective is total flow leaving the source,
/// constraints are edge capacities and (two-sided) node conservation.
/// Conservation rows contain ±1 entries, exercising negative coefficients.
LinearProgram max_flow_routing(std::size_t layers, std::size_t width,
                               Rng& rng);

/// Production scheduling: maximize profit over products subject to
/// non-negative resource-capacity rows (an all-non-negative LP).
LinearProgram production_scheduling(std::size_t products,
                                    std::size_t resources, Rng& rng);

/// Transportation problem (suppliers x consumers, cost minimization recast
/// as canonical max form; demand rows carry negative coefficients).
LinearProgram transportation(std::size_t suppliers, std::size_t consumers,
                             Rng& rng);

/// Diet problem (Stigler): minimize food cost subject to nutrient minimums
/// (≥ rows become negative-coefficient ≤ rows) and per-food portion caps.
LinearProgram diet(std::size_t foods, std::size_t nutrients, Rng& rng);

/// Assignment problem (LP relaxation): maximize total match value with at
/// most one task per worker and at least one worker per task
/// (workers >= tasks keeps it feasible).
LinearProgram assignment(std::size_t workers, std::size_t tasks, Rng& rng);

/// Multi-commodity flow on a random layered graph (CSR-native): one flow
/// variable per (commodity, edge), shared edge-capacity rows coupling the
/// commodities, and two-sided per-commodity conservation rows. Feasible
/// (zero flow) and bounded (capacities cap every variable); density shrinks
/// as ~1/(commodities·width).
LinearProgram multi_commodity_flow(std::size_t commodities,
                                   std::size_t layers, std::size_t width,
                                   Rng& rng);

/// Block-diagonal LP (CSR-native): `blocks` independent dense blocks of
/// block_rows x block_cols on the diagonal, coupled by nothing — density is
/// exactly 1/blocks. Feasible and bounded by the random_feasible recipe
/// (interior point + positive column sums).
LinearProgram block_diagonal(std::size_t blocks, std::size_t block_rows,
                             std::size_t block_cols, Rng& rng);

/// Banded LP (CSR-native): m rows over n = max(1, m/3) variables with
/// nonzeros confined to a band of half-width `bandwidth` around the scaled
/// diagonal. Feasible and bounded by the random_feasible recipe.
LinearProgram banded(std::size_t constraints, std::size_t bandwidth,
                     Rng& rng);

}  // namespace memlp::lp
