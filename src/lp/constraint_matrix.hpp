// Sparse-first constraint-matrix holder for lp::LinearProgram.
//
// §3.5 observes that real LP constraint matrices are overwhelmingly sparse;
// since the sparse-first pipeline refactor the CSR form (linalg::CsrMatrix)
// is the source of truth for every problem's A. A dense view is retained as
// an explicit, lazily-materialized escape hatch for consumers that genuinely
// need contiguous storage (LU/LDLᵀ factorizations, crossbar programming,
// the M1 preconditioner in ls_pdip).
//
// Dispatch contract: problems whose density is at or above the cutoff run
// the legacy dense kernels (gemv / dense Schur) byte-for-byte — including
// their CostLedger charges — so the pinned golden traces and the bench
// baseline are unaffected. Sparse problems take the CSR kernels.
#pragma once

#include <memory>
#include <span>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace memlp::lp {

/// Constraint matrix stored canonically as CSR with an optional cached dense
/// view. Copies are cheap-ish (CSR copy) and share the dense cache.
class ConstraintMatrix {
 public:
  /// Fill fraction below which the sparse kernels win and are dispatched to.
  static constexpr double kSparseDensityCutoff = 0.25;

  /// Empty 0x0 matrix.
  ConstraintMatrix() = default;

  /// From a dense matrix. The original dense storage is kept as the cached
  /// view, so `dense()` returns it byte-identically. Implicit on purpose:
  /// existing `problem.a = Matrix{{...}}` call sites keep working.
  ConstraintMatrix(Matrix dense);  // NOLINT(google-explicit-constructor)

  /// From a CSR matrix; the dense view materializes on first request.
  ConstraintMatrix(CsrMatrix csr);  // NOLINT(google-explicit-constructor)

  [[nodiscard]] std::size_t rows() const noexcept { return csr_.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return csr_.cols(); }
  [[nodiscard]] bool empty() const noexcept { return rows() == 0 || cols() == 0; }
  [[nodiscard]] std::size_t nnz() const noexcept { return csr_.nnz(); }
  [[nodiscard]] double density() const noexcept { return csr_.density(); }

  /// True when this matrix should take the sparse code paths.
  [[nodiscard]] bool prefers_sparse() const noexcept {
    return csr_.density() < kSparseDensityCutoff;
  }

  /// Element read; O(1) with a dense cache, O(log nnz-in-row) without.
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    return dense_ ? (*dense_)(i, j) : csr_.at(i, j);
  }

  /// The CSR source of truth.
  [[nodiscard]] const CsrMatrix& csr() const noexcept { return csr_; }

  /// The dense escape hatch. Materialized from CSR on first call and cached;
  /// the first call is not thread-safe (materialize before fanning out).
  [[nodiscard]] const Matrix& dense() const;

  /// True when the dense view is already materialized.
  [[nodiscard]] bool has_dense() const noexcept { return dense_ != nullptr; }

  /// y = A·x / y = Aᵀ·x, dispatched by `prefers_sparse()`. Dense problems
  /// run linalg::gemv{,_transposed} with their original ledger charges.
  [[nodiscard]] Vec multiply(std::span<const double> x) const;
  [[nodiscard]] Vec multiply_transposed(std::span<const double> x) const;

  /// Aᵀ. Dense-cached inputs transpose densely (numerically identical to the
  /// pre-refactor behaviour); CSR-only inputs stay sparse.
  [[nodiscard]] ConstraintMatrix transposed() const;

  /// factor·A, same dense/sparse routing as `transposed()`.
  [[nodiscard]] ConstraintMatrix scaled(double factor) const;

  /// Largest |a_ij| (0 when empty); identical for the CSR and dense views.
  [[nodiscard]] double max_abs() const noexcept { return csr_.max_abs(); }

  /// True when every stored entry is >= 0 (structural zeros trivially are).
  [[nodiscard]] bool nonnegative() const noexcept;

  /// Structural equality via the canonical CSR form.
  [[nodiscard]] bool operator==(const ConstraintMatrix& other) const {
    return csr_ == other.csr_;
  }

 private:
  CsrMatrix csr_;
  mutable std::shared_ptr<const Matrix> dense_;
};

}  // namespace memlp::lp
