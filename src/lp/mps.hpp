// MPS reader/writer — ingest for real (netlib-style) LP instances.
//
// Supports the classic fixed-format layout and the whitespace-separated free
// format in one tokenizing parser: section headers start in column 1
// (NAME, OBJSENSE, ROWS, COLUMNS, RHS, RANGES, BOUNDS, ENDATA), data lines
// are indented, '*' in column 1 comments a line out.
//
// Everything is converted to memlp's canonical form on the way in
// (max cᵀx, A·x ≤ b, x ≥ 0):
//   * MINIMIZE (the MPS default) negates the objective,
//   * G rows become negated L rows, E rows become an L/G pair,
//   * RANGES widen a row to an interval [lo, up] (per-type semantics below)
//     and emit one canonical row per finite side,
//   * BOUNDS become singleton rows: UP u ⇒ x_j ≤ u; LO l (l ≥ 0) ⇒
//     −x_j ≤ −l; FX v ⇒ both; PL is a no-op. FR/MI/negative bounds would
//     leave the x ⪰ 0 orthant and raise a typed kUnsupported error.
// Range semantics (row type × range value r): L: [b−|r|, b];
// G: [b, b+|r|]; E: r ≥ 0 ⇒ [b, b+r], r < 0 ⇒ [b+r, b].
//
// Errors are typed (MpsError::Kind) and carry exact file:line diagnostics.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "lp/problem.hpp"

namespace memlp::lp {

/// Malformed or unsupported MPS input, with the offending location.
class MpsError : public Error {
 public:
  enum class Kind {
    kSyntax,       ///< malformed line / token in a section
    kSection,      ///< missing or out-of-order section
    kUnknownName,  ///< reference to an undeclared row or column
    kNumber,       ///< unparsable numeric field
    kUnsupported,  ///< valid MPS that canonical form cannot express
  };

  MpsError(Kind kind, const std::string& file, std::size_t line,
           const std::string& message);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  Kind kind_;
  std::size_t line_;
};

/// A parsed MPS instance: the canonical problem plus enough metadata to
/// report results in the file's own terms.
struct MpsModel {
  LinearProgram problem;  ///< canonical max form (CSR-native)
  std::string name;       ///< NAME field ("" when absent)
  std::string objective_name;               ///< the N row's name
  bool maximize = false;                    ///< original sense (MPS default: min)
  double objective_rhs = 0.0;               ///< RHS entry of the N row, if any
  std::vector<std::string> variable_names;  ///< canonical column order

  /// Objective of a canonical solution x in the file's original sense,
  /// including the conventional constant (−RHS of the objective row).
  [[nodiscard]] double original_objective(std::span<const double> x) const;
};

/// Parses MPS from a stream; `filename` labels diagnostics.
MpsModel read_mps(std::istream& in, const std::string& filename = "<mps>");

/// Opens and parses a file; throws MpsError (kSyntax, line 0) when the file
/// cannot be opened.
MpsModel read_mps_file(const std::string& path);

/// Serializes a canonical problem as MPS (OBJSENSE MAX, all rows type L,
/// full-precision values). read_mps ∘ to_mps is an exact round trip.
std::string to_mps(const LinearProgram& problem,
                   const std::string& name = "MEMLP");

}  // namespace memlp::lp
