#include "lp/presolve.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "linalg/sparse.hpp"

namespace memlp::lp {
namespace {

constexpr double kZero = 1e-14;

/// One row of the active (kept rows x kept columns) submatrix, with
/// numerically-zero entries filtered out.
struct ActiveRow {
  std::vector<std::size_t> cols;
  std::vector<double> values;
};

ActiveRow active_row(const CsrMatrix& a, std::size_t i,
                     const std::vector<char>& keep_col) {
  ActiveRow row;
  const auto offsets = a.row_offsets();
  const auto cols = a.column_indices();
  const auto values = a.values();
  for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
    if (!keep_col[cols[k]] || std::abs(values[k]) <= kZero) continue;
    row.cols.push_back(cols[k]);
    row.values.push_back(values[k]);
  }
  return row;
}

bool rows_identical(const ActiveRow& a, const ActiveRow& b) {
  if (a.cols != b.cols) return false;
  for (std::size_t k = 0; k < a.values.size(); ++k)
    if (std::abs(a.values[k] - b.values[k]) > kZero) return false;
  return true;
}

}  // namespace

Vec PresolveResult::restore(std::span<const double> reduced_x,
                            std::size_t original_variables) const {
  MEMLP_EXPECT(reduced_x.size() == kept_columns.size());
  Vec x(original_variables, 0.0);
  for (std::size_t j = 0; j < kept_columns.size(); ++j)
    x[kept_columns[j]] = reduced_x[j];
  return x;
}

PresolveResult presolve(const LinearProgram& problem) {
  problem.validate();
  const CsrMatrix& a = problem.a.csr();
  const std::size_t m = problem.num_constraints();
  const std::size_t n = problem.num_variables();
  const auto offsets = a.row_offsets();
  const auto cols = a.column_indices();
  const auto values = a.values();

  PresolveResult result;
  std::vector<char> keep_row(m, 1);
  std::vector<char> keep_col(n, 1);

  // Fixed-point loop: each pass recounts the active pattern in O(nnz) and
  // applies the empty-row/empty-column/singleton-row reductions; any removal
  // can expose further ones (e.g. a fixed variable emptying a row).
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::size_t> row_nnz(m, 0);
    std::vector<std::size_t> col_nnz(n, 0);
    // Last active entry per row; valid where row_nnz == 1 (singleton rows).
    std::vector<std::size_t> single_entry(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      if (!keep_row[i]) continue;
      for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
        if (!keep_col[cols[k]] || std::abs(values[k]) <= kZero) continue;
        ++row_nnz[i];
        ++col_nnz[cols[k]];
        single_entry[i] = k;
      }
    }

    // --- Columns: a variable absent from every active constraint.
    for (std::size_t j = 0; j < n; ++j) {
      if (!keep_col[j] || col_nnz[j] != 0) continue;
      if (problem.c[j] > kZero) {
        // max cᵀx with a free-to-grow variable: unbounded.
        result.outcome = PresolveResult::Outcome::kUnbounded;
        return result;
      }
      keep_col[j] = 0;  // x_j = 0 at optimum (c_j <= 0).
      changed = true;
    }
    if (changed) continue;  // recount before the row passes

    // --- Rows: empty and singleton.
    for (std::size_t i = 0; i < m; ++i) {
      if (!keep_row[i]) continue;
      if (row_nnz[i] == 0) {
        if (problem.b[i] < -kZero) {
          // 0 ≤ b with b < 0: contradiction.
          result.outcome = PresolveResult::Outcome::kInfeasible;
          return result;
        }
        keep_row[i] = 0;
        changed = true;
        continue;
      }
      if (row_nnz[i] != 1) continue;
      const std::size_t j = cols[single_entry[i]];
      const double coefficient = values[single_entry[i]];
      if (coefficient > kZero) {
        if (problem.b[i] < -kZero) {
          // a·x_j ≤ b < 0 with a > 0, x_j ≥ 0: contradiction.
          result.outcome = PresolveResult::Outcome::kInfeasible;
          return result;
        }
        if (problem.b[i] <= kZero) {
          // x_j ≤ 0 and x_j ≥ 0: the variable is fixed at zero.
          keep_col[j] = 0;
          keep_row[i] = 0;
          changed = true;
        }
        // b > 0: an ordinary bound row, keep it.
      } else if (problem.b[i] >= -kZero) {
        // a·x_j ≤ b with a < 0 ≤ b holds for every x_j ≥ 0: redundant.
        keep_row[i] = 0;
        changed = true;
      }
    }
  }

  // --- Duplicate rows over the active pattern: keep the tightest bound.
  {
    std::vector<ActiveRow> active(m);
    for (std::size_t i = 0; i < m; ++i)
      if (keep_row[i]) active[i] = active_row(a, i, keep_col);
    for (std::size_t i = 0; i < m; ++i) {
      if (!keep_row[i]) continue;
      for (std::size_t k = i + 1; k < m; ++k) {
        if (!keep_row[k]) continue;
        if (!rows_identical(active[i], active[k])) continue;
        if (problem.b[k] < problem.b[i]) keep_row[i] = 0;
        else keep_row[k] = 0;
        if (!keep_row[i]) break;
      }
    }
  }

  for (std::size_t i = 0; i < m; ++i)
    if (keep_row[i]) result.kept_rows.push_back(i);
  for (std::size_t j = 0; j < n; ++j)
    if (keep_col[j]) result.kept_columns.push_back(j);

  // An LP needs at least one row and one column to stay in canonical form;
  // degenerate fully-reduced cases keep one representative.
  if (result.kept_rows.empty()) result.kept_rows.push_back(0);
  if (result.kept_columns.empty()) result.kept_columns.push_back(0);

  // Rebuild the reduced matrix through from_triplets: the result is in
  // canonical CSR form whatever the input looked like.
  std::vector<std::size_t> col_position(n, 0);
  std::vector<char> col_kept(n, 0);
  for (std::size_t j = 0; j < result.kept_columns.size(); ++j) {
    col_position[result.kept_columns[j]] = j;
    col_kept[result.kept_columns[j]] = 1;
  }
  std::vector<CsrMatrix::Triplet> triplets;
  triplets.reserve(a.nnz());
  result.reduced.b.resize(result.kept_rows.size());
  for (std::size_t i = 0; i < result.kept_rows.size(); ++i) {
    const std::size_t row = result.kept_rows[i];
    result.reduced.b[i] = problem.b[row];
    for (std::size_t k = offsets[row]; k < offsets[row + 1]; ++k)
      if (col_kept[cols[k]])
        triplets.push_back({i, col_position[cols[k]], values[k]});
  }
  result.reduced.a = CsrMatrix::from_triplets(
      result.kept_rows.size(), result.kept_columns.size(),
      std::move(triplets));
  result.reduced.c.resize(result.kept_columns.size());
  for (std::size_t j = 0; j < result.kept_columns.size(); ++j)
    result.reduced.c[j] = problem.c[result.kept_columns[j]];
  result.reduced.validate();
  return result;
}

}  // namespace memlp::lp
