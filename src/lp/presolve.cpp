#include "lp/presolve.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace memlp::lp {
namespace {

constexpr double kZero = 1e-14;

bool rows_identical(const LinearProgram& problem, std::size_t a,
                    std::size_t b) {
  for (std::size_t j = 0; j < problem.num_variables(); ++j)
    if (std::abs(problem.a(a, j) - problem.a(b, j)) > kZero) return false;
  return true;
}

}  // namespace

Vec PresolveResult::restore(std::span<const double> reduced_x,
                            std::size_t original_variables) const {
  MEMLP_EXPECT(reduced_x.size() == kept_columns.size());
  Vec x(original_variables, 0.0);
  for (std::size_t j = 0; j < kept_columns.size(); ++j)
    x[kept_columns[j]] = reduced_x[j];
  return x;
}

PresolveResult presolve(const LinearProgram& problem) {
  problem.validate();
  const std::size_t m = problem.num_constraints();
  const std::size_t n = problem.num_variables();

  PresolveResult result;

  // --- Columns: a variable absent from every constraint is unconstrained.
  std::vector<bool> keep_column(n, true);
  for (std::size_t j = 0; j < n; ++j) {
    bool empty = true;
    for (std::size_t i = 0; i < m && empty; ++i)
      if (std::abs(problem.a(i, j)) > kZero) empty = false;
    if (!empty) continue;
    if (problem.c[j] > kZero) {
      // max cᵀx with a free-to-grow variable: unbounded.
      result.outcome = PresolveResult::Outcome::kUnbounded;
      return result;
    }
    keep_column[j] = false;  // x_j = 0 at optimum (c_j <= 0).
  }

  // --- Rows: zero rows and duplicates.
  std::vector<bool> keep_row(m, true);
  for (std::size_t i = 0; i < m; ++i) {
    bool zero = true;
    for (std::size_t j = 0; j < n && zero; ++j)
      if (keep_column[j] && std::abs(problem.a(i, j)) > kZero) zero = false;
    if (!zero) continue;
    if (problem.b[i] < -kZero) {
      // 0 ≤ b with b < 0: contradiction.
      result.outcome = PresolveResult::Outcome::kInfeasible;
      return result;
    }
    keep_row[i] = false;
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (!keep_row[i]) continue;
    for (std::size_t k = i + 1; k < m; ++k) {
      if (!keep_row[k]) continue;
      if (!rows_identical(problem, i, k)) continue;
      // Keep whichever row has the tighter bound.
      if (problem.b[k] < problem.b[i]) keep_row[i] = false;
      else keep_row[k] = false;
      if (!keep_row[i]) break;
    }
  }

  for (std::size_t i = 0; i < m; ++i)
    if (keep_row[i]) result.kept_rows.push_back(i);
  for (std::size_t j = 0; j < n; ++j)
    if (keep_column[j]) result.kept_columns.push_back(j);

  // An LP needs at least one row and one column to stay in canonical form;
  // degenerate fully-reduced cases keep one representative.
  if (result.kept_rows.empty()) result.kept_rows.push_back(0);
  if (result.kept_columns.empty()) result.kept_columns.push_back(0);

  result.reduced.a =
      Matrix(result.kept_rows.size(), result.kept_columns.size());
  result.reduced.b.resize(result.kept_rows.size());
  result.reduced.c.resize(result.kept_columns.size());
  for (std::size_t i = 0; i < result.kept_rows.size(); ++i) {
    result.reduced.b[i] = problem.b[result.kept_rows[i]];
    for (std::size_t j = 0; j < result.kept_columns.size(); ++j)
      result.reduced.a(i, j) =
          problem.a(result.kept_rows[i], result.kept_columns[j]);
  }
  for (std::size_t j = 0; j < result.kept_columns.size(); ++j)
    result.reduced.c[j] = problem.c[result.kept_columns[j]];
  result.reduced.validate();
  return result;
}

}  // namespace memlp::lp
