// LP presolve: cheap reductions applied before a solve.
//
// Production LP systems shrink the instance before the expensive phase; for
// a crossbar solver the payoff is direct — fewer rows/columns mean a
// smaller array, fewer write cells, and a better-conditioned mapping. The
// reductions here are the classic safe ones, run over the CSR form to a
// fixed point (one reduction can expose another: eliminating a fixed
// variable can empty a row, dropping a row can empty a column, ...):
//   * zero rows      (0·x ≤ b: redundant when b ≥ 0, infeasible when b < 0)
//   * duplicate rows (identical coefficient rows: keep the tightest bound)
//   * zero columns   (variable absent from A: drop with x_j = 0 when
//                     c_j ≤ 0, certify unboundedness when c_j > 0)
//   * singleton rows (a_ij·x_j ≤ b_i as the row's only entry: a_ij > 0 with
//                     b_i < 0 is infeasible, with b_i ≈ 0 it fixes x_j = 0
//                     and eliminates the variable; a_ij < 0 with b_i ≥ 0 is
//                     redundant and dropped)
// The result records the kept rows/columns so a reduced solution can be
// restored to original coordinates (eliminated variables are fixed at 0).
// The reduced constraint matrix is rebuilt through CsrMatrix::from_triplets,
// so it is always in canonical CSR form (sorted, deduped, no stored zeros)
// regardless of how messy the input pattern was.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/problem.hpp"

namespace memlp::lp {

/// Outcome of presolving.
struct PresolveResult {
  enum class Outcome {
    kReduced,     ///< `reduced` is equivalent to the input.
    kInfeasible,  ///< the input was proven infeasible.
    kUnbounded,   ///< the input was proven unbounded.
  };
  Outcome outcome = Outcome::kReduced;
  LinearProgram reduced;             ///< valid when kReduced.
  std::vector<std::size_t> kept_rows;
  std::vector<std::size_t> kept_columns;

  [[nodiscard]] std::size_t removed_rows(const LinearProgram& original) const {
    return original.num_constraints() - kept_rows.size();
  }
  [[nodiscard]] std::size_t removed_columns(
      const LinearProgram& original) const {
    return original.num_variables() - kept_columns.size();
  }

  /// Lifts a solution of `reduced` back to the original variable space
  /// (dropped variables are zero at optimum).
  [[nodiscard]] Vec restore(std::span<const double> reduced_x,
                            std::size_t original_variables) const;
};

/// Applies the reductions until a fixed point.
PresolveResult presolve(const LinearProgram& problem);

}  // namespace memlp::lp
