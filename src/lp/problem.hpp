// Linear program representation.
//
// The paper's canonical form (§3.1):
//     maximize cᵀx   subject to   A·x ⪯ b  (A ∈ R^{m×n}),  x ⪰ 0,
// with the symmetric dual
//     minimize bᵀy   subject to   Aᵀ·y ⪰ c,               y ⪰ 0.
// Slack variables w (primal) and z (dual) turn the inequalities into the
// equality system of Eq. (6a)/(6b) used by the PDIP method.
#pragma once

#include <string>

#include "linalg/matrix.hpp"
#include "lp/constraint_matrix.hpp"

namespace memlp::lp {

/// A linear program in the paper's canonical (inequality) form. The
/// constraint matrix is held sparse-first (CSR source of truth with a
/// lazily-materialized dense escape hatch, see lp/constraint_matrix.hpp);
/// assigning a dense Matrix still works and keeps that dense storage cached.
struct LinearProgram {
  ConstraintMatrix a;  ///< m x n constraint matrix.
  Vec b;               ///< m right-hand sides.
  Vec c;               ///< n objective coefficients (maximization).

  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return a.rows();
  }
  [[nodiscard]] std::size_t num_variables() const noexcept {
    return a.cols();
  }

  /// Throws DimensionError when shapes disagree.
  void validate() const;

  /// cᵀx.
  [[nodiscard]] double objective(std::span<const double> x) const;

  /// The symmetric dual expressed again in canonical max form:
  ///   min bᵀy s.t. Aᵀy ⪰ c, y ⪰ 0   ≡   max (−b)ᵀy s.t. (−Aᵀ)y ⪯ −c, y ⪰ 0.
  [[nodiscard]] LinearProgram dual() const;

  /// ‖A·x + w − b‖_inf — primal infeasibility of an interior-point state.
  [[nodiscard]] double primal_infeasibility(std::span<const double> x,
                                            std::span<const double> w) const;

  /// ‖Aᵀ·y − z − c‖_inf — dual infeasibility.
  [[nodiscard]] double dual_infeasibility(std::span<const double> y,
                                          std::span<const double> z) const;

  /// zᵀx + yᵀw — the duality gap used in the stopping test.
  [[nodiscard]] static double duality_gap(std::span<const double> x,
                                          std::span<const double> z,
                                          std::span<const double> y,
                                          std::span<const double> w);

  /// §3.2 robust feasibility check: A·x ⪯ α·b with α slightly above 1, plus
  /// x ⪰ −tolerance element-wise.
  [[nodiscard]] bool satisfies_constraints(std::span<const double> x,
                                           double alpha = 1.02,
                                           double tolerance = 1e-7) const;
};

/// Outcome classification shared by every solver in memlp.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
};

[[nodiscard]] std::string to_string(SolveStatus status);

}  // namespace memlp::lp
