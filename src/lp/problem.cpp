#include "lp/problem.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "linalg/ops.hpp"

namespace memlp::lp {

void LinearProgram::validate() const {
  if (a.rows() != b.size())
    throw DimensionError("LP: rows(A) != size(b)");
  if (a.cols() != c.size())
    throw DimensionError("LP: cols(A) != size(c)");
  if (a.rows() == 0 || a.cols() == 0)
    throw DimensionError("LP: empty constraint matrix");
}

double LinearProgram::objective(std::span<const double> x) const {
  return dot(c, x);
}

LinearProgram LinearProgram::dual() const {
  validate();
  LinearProgram d;
  d.a = a.transposed().scaled(-1.0);
  d.b = memlp::scaled(c, -1.0);
  d.c = memlp::scaled(b, -1.0);
  return d;
}

double LinearProgram::primal_infeasibility(std::span<const double> x,
                                           std::span<const double> w) const {
  MEMLP_EXPECT(x.size() == num_variables() && w.size() == num_constraints());
  const Vec ax = a.multiply(x);
  double worst = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i)
    worst = std::max(worst, std::abs(ax[i] + w[i] - b[i]));
  return worst;
}

double LinearProgram::dual_infeasibility(std::span<const double> y,
                                         std::span<const double> z) const {
  MEMLP_EXPECT(y.size() == num_constraints() && z.size() == num_variables());
  const Vec aty = a.multiply_transposed(y);
  double worst = 0.0;
  for (std::size_t j = 0; j < c.size(); ++j)
    worst = std::max(worst, std::abs(aty[j] - z[j] - c[j]));
  return worst;
}

double LinearProgram::duality_gap(std::span<const double> x,
                                  std::span<const double> z,
                                  std::span<const double> y,
                                  std::span<const double> w) {
  return dot(z, x) + dot(y, w);
}

bool LinearProgram::satisfies_constraints(std::span<const double> x,
                                          double alpha,
                                          double tolerance) const {
  MEMLP_EXPECT(x.size() == num_variables());
  for (double xj : x)
    if (xj < -tolerance) return false;
  const Vec ax = a.multiply(x);
  // Per-row allowance: (α−1) of the row's own scale, floored at half the
  // problem scale so rows with b_i = 0 (e.g. flow-conservation rows) still
  // admit the hardware's representational error.
  const double b_norm = norm_inf(b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double allowance =
        (alpha - 1.0) * std::max(std::abs(b[i]), 0.5 * b_norm);
    if (ax[i] > b[i] + allowance + tolerance) return false;
  }
  return true;
}

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
    case SolveStatus::kNumericalFailure:
      return "numerical-failure";
  }
  return "unknown";
}

}  // namespace memlp::lp
