#include "lp/constraint_matrix.hpp"

#include <utility>

#include "linalg/ops.hpp"

namespace memlp::lp {

ConstraintMatrix::ConstraintMatrix(Matrix dense)
    : dense_(std::make_shared<const Matrix>(std::move(dense))) {
  csr_ = CsrMatrix::from_dense(*dense_);
}

ConstraintMatrix::ConstraintMatrix(CsrMatrix csr) : csr_(std::move(csr)) {}

const Matrix& ConstraintMatrix::dense() const {
  if (!dense_) dense_ = std::make_shared<const Matrix>(csr_.to_dense());
  return *dense_;
}

Vec ConstraintMatrix::multiply(std::span<const double> x) const {
  if (prefers_sparse()) return csr_.multiply(x);
  return gemv(dense(), x);
}

Vec ConstraintMatrix::multiply_transposed(std::span<const double> x) const {
  if (prefers_sparse()) return csr_.multiply_transposed(x);
  return gemv_transposed(dense(), x);
}

ConstraintMatrix ConstraintMatrix::transposed() const {
  if (dense_) return ConstraintMatrix(dense_->transposed());
  return ConstraintMatrix(csr_.transposed());
}

ConstraintMatrix ConstraintMatrix::scaled(double factor) const {
  if (dense_) return ConstraintMatrix(*dense_ * factor);
  return ConstraintMatrix(csr_.scaled(factor));
}

bool ConstraintMatrix::nonnegative() const noexcept {
  for (double v : csr_.values())
    if (v < 0.0) return false;
  return true;
}

}  // namespace memlp::lp
