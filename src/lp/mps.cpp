#include "lp/mps.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "linalg/ops.hpp"
#include "linalg/sparse.hpp"

namespace memlp::lp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string location(const std::string& file, std::size_t line) {
  std::ostringstream os;
  os << file << ":" << line << ": ";
  return os.str();
}

/// A declared constraint row (everything except the single N row).
struct MpsRow {
  char type = 'L';  // 'L', 'G', or 'E'
  std::string name;
  double rhs = 0.0;
  bool has_range = false;
  double range = 0.0;
};

/// A BOUNDS entry, applied after all columns are known.
struct MpsBound {
  char type = 'U';  // 'U' (UP), 'L' (LO), 'X' (FX)
  std::size_t column = 0;
  double value = 0.0;
  std::size_t line = 0;
};

enum class Section {
  kNone,
  kObjsense,
  kRows,
  kColumns,
  kRhs,
  kRanges,
  kBounds,
  kDone,
};

struct Parser {
  Parser(std::istream& stream, const std::string& filename)
      : in(stream), file(filename) {}

  std::istream& in;
  const std::string& file;
  std::size_t line_number = 0;
  std::string line;

  MpsModel model;
  std::vector<MpsRow> rows;                  // constraint rows, declared order
  std::unordered_map<std::string, std::size_t> row_index;
  std::unordered_map<std::string, std::size_t> column_index;
  Vec c;                                     // objective as written
  bool have_objective_row = false;
  // A entries as (constraint-row, column, value) in declared coordinates.
  std::vector<CsrMatrix::Triplet> entries;
  std::vector<MpsBound> bounds;

  [[noreturn]] void fail(MpsError::Kind kind, const std::string& message) {
    throw MpsError(kind, file, line_number, message);
  }

  double number(const std::string& token) {
    // Accept Fortran 'D' exponents, which old netlib files use.
    std::string cleaned = token;
    for (char& ch : cleaned)
      if (ch == 'D' || ch == 'd') ch = 'e';
    try {
      std::size_t consumed = 0;
      const double value = std::stod(cleaned, &consumed);
      if (consumed != cleaned.size())
        fail(MpsError::Kind::kNumber, "bad number '" + token + "'");
      return value;
    } catch (const MpsError&) {
      throw;
    } catch (...) {
      fail(MpsError::Kind::kNumber, "bad number '" + token + "'");
    }
  }

  std::size_t constraint_row(const std::string& name) {
    const auto it = row_index.find(name);
    if (it == row_index.end())
      fail(MpsError::Kind::kUnknownName, "unknown row '" + name + "'");
    return it->second;
  }

  std::size_t column(const std::string& name) {
    const auto it = column_index.find(name);
    if (it == column_index.end())
      fail(MpsError::Kind::kUnknownName, "unknown column '" + name + "'");
    return it->second;
  }

  void parse();
  void parse_objsense(const std::vector<std::string>& tokens);
  void parse_row(const std::vector<std::string>& tokens);
  void parse_column(const std::vector<std::string>& tokens);
  void parse_value_pairs(const std::vector<std::string>& tokens, bool ranges);
  void parse_bound(const std::vector<std::string>& tokens);
  MpsModel build(std::size_t end_line);
};

void Parser::parse_objsense(const std::vector<std::string>& tokens) {
  if (tokens.size() != 1)
    fail(MpsError::Kind::kSyntax, "OBJSENSE expects one token");
  if (tokens[0] == "MAX" || tokens[0] == "MAXIMIZE") {
    model.maximize = true;
  } else if (tokens[0] == "MIN" || tokens[0] == "MINIMIZE") {
    model.maximize = false;
  } else {
    fail(MpsError::Kind::kSyntax, "bad OBJSENSE '" + tokens[0] + "'");
  }
}

void Parser::parse_row(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2)
    fail(MpsError::Kind::kSyntax,
         "ROWS line expects 'type name', got " +
             std::to_string(tokens.size()) + " tokens");
  std::string type = tokens[0];
  std::transform(type.begin(), type.end(), type.begin(),
                 [](unsigned char ch) { return std::toupper(ch); });
  const std::string& name = tokens[1];
  if (type == "N") {
    if (have_objective_row)
      fail(MpsError::Kind::kUnsupported,
           "multiple N rows ('" + model.objective_name + "' and '" + name +
               "')");
    have_objective_row = true;
    model.objective_name = name;
    return;
  }
  if (type != "L" && type != "G" && type != "E")
    fail(MpsError::Kind::kSyntax, "bad row type '" + tokens[0] + "'");
  if (name == model.objective_name ||
      row_index.find(name) != row_index.end())
    fail(MpsError::Kind::kSyntax, "duplicate row '" + name + "'");
  row_index.emplace(name, rows.size());
  rows.push_back({type[0], name, 0.0, false, 0.0});
}

void Parser::parse_column(const std::vector<std::string>& tokens) {
  for (const std::string& token : tokens)
    if (!token.empty() && token.front() == '\'')
      fail(MpsError::Kind::kUnsupported,
           "integrality markers are not supported (LP solver)");
  if (tokens.size() < 3 || tokens.size() % 2 == 0)
    fail(MpsError::Kind::kSyntax,
         "COLUMNS line expects 'column (row value)+'");
  const std::string& col_name = tokens[0];
  std::size_t col = 0;
  if (const auto it = column_index.find(col_name);
      it != column_index.end()) {
    col = it->second;
  } else {
    col = model.variable_names.size();
    column_index.emplace(col_name, col);
    model.variable_names.push_back(col_name);
    c.push_back(0.0);
  }
  for (std::size_t k = 1; k + 1 < tokens.size(); k += 2) {
    const std::string& row_name = tokens[k];
    const double value = number(tokens[k + 1]);
    if (have_objective_row && row_name == model.objective_name) {
      c[col] += value;
      continue;
    }
    entries.push_back({constraint_row(row_name), col, value});
  }
}

void Parser::parse_value_pairs(const std::vector<std::string>& tokens,
                               bool ranges) {
  // Standard layout: 'setname (row value)+'. Some writers omit the set
  // name; detect that by an even token count whose first token names a row.
  std::size_t first = 1;
  if (tokens.size() % 2 == 0 &&
      (row_index.find(tokens[0]) != row_index.end() ||
       tokens[0] == model.objective_name))
    first = 0;
  if (tokens.size() < first + 2 || (tokens.size() - first) % 2 != 0)
    fail(MpsError::Kind::kSyntax, ranges
                                      ? "RANGES line expects 'set (row value)+'"
                                      : "RHS line expects 'set (row value)+'");
  for (std::size_t k = first; k + 1 < tokens.size(); k += 2) {
    const std::string& row_name = tokens[k];
    const double value = number(tokens[k + 1]);
    if (have_objective_row && row_name == model.objective_name) {
      if (ranges)
        fail(MpsError::Kind::kUnsupported, "RANGES on the objective row");
      model.objective_rhs = value;
      continue;
    }
    MpsRow& row = rows[constraint_row(row_name)];
    if (ranges) {
      row.has_range = true;
      row.range = value;
    } else {
      row.rhs = value;
    }
  }
}

void Parser::parse_bound(const std::vector<std::string>& tokens) {
  if (tokens.empty()) fail(MpsError::Kind::kSyntax, "empty BOUNDS line");
  std::string type = tokens[0];
  std::transform(type.begin(), type.end(), type.begin(),
                 [](unsigned char ch) { return std::toupper(ch); });
  const bool valued = type == "UP" || type == "LO" || type == "FX";
  const bool valueless = type == "FR" || type == "MI" || type == "PL" ||
                         type == "BV";
  if (!valued && !valueless && type != "UI" && type != "LI")
    fail(MpsError::Kind::kSyntax, "bad bound type '" + tokens[0] + "'");
  if (type == "FR" || type == "MI")
    fail(MpsError::Kind::kUnsupported,
         "bound " + type + " leaves the x >= 0 orthant (canonical form)");
  if (type == "BV" || type == "UI" || type == "LI")
    fail(MpsError::Kind::kUnsupported,
         "integer bound " + type + " is not supported (LP solver)");

  // Layout: 'type setname column [value]', with the set name optional.
  const std::size_t expect = valued ? 4 : 3;
  std::size_t col_at = expect - (valued ? 2 : 1);
  if (tokens.size() == expect - 1) col_at -= 1;  // set name omitted
  else if (tokens.size() != expect)
    fail(MpsError::Kind::kSyntax, "malformed " + type + " bound line");

  if (type == "PL") return;  // x_j <= +inf: the canonical default
  const std::size_t col = column(tokens[col_at]);
  const double value = number(tokens[col_at + 1]);
  if (value < 0.0)
    fail(MpsError::Kind::kUnsupported,
         "negative " + type + " bound leaves the x >= 0 orthant");
  bounds.push_back({type == "UP" ? 'U' : type == "LO" ? 'L' : 'X', col,
                    value, line_number});
}

void Parser::parse() {
  Section section = Section::kNone;
  while (section != Section::kDone && std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '*') continue;
    if (const auto end = line.find_last_not_of(" \t\r");
        end == std::string::npos)
      continue;
    std::istringstream words(line);
    std::vector<std::string> tokens;
    for (std::string token; words >> token;) tokens.push_back(token);

    const bool header = line[0] != ' ' && line[0] != '\t';
    if (header) {
      const std::string& keyword = tokens[0];
      if (keyword == "NAME") {
        if (tokens.size() > 1) model.name = tokens[1];
      } else if (keyword == "OBJSENSE") {
        if (tokens.size() > 1)
          parse_objsense({tokens.begin() + 1, tokens.end()});
        else
          section = Section::kObjsense;
        continue;
      } else if (keyword == "ROWS") {
        section = Section::kRows;
      } else if (keyword == "COLUMNS") {
        section = Section::kColumns;
      } else if (keyword == "RHS") {
        section = Section::kRhs;
      } else if (keyword == "RANGES") {
        section = Section::kRanges;
      } else if (keyword == "BOUNDS") {
        section = Section::kBounds;
      } else if (keyword == "ENDATA") {
        section = Section::kDone;
      } else {
        fail(MpsError::Kind::kSection,
             "unknown section '" + keyword + "'");
      }
      continue;
    }

    switch (section) {
      case Section::kObjsense:
        parse_objsense(tokens);
        section = Section::kNone;
        break;
      case Section::kRows:
        parse_row(tokens);
        break;
      case Section::kColumns:
        parse_column(tokens);
        break;
      case Section::kRhs:
        parse_value_pairs(tokens, /*ranges=*/false);
        break;
      case Section::kRanges:
        parse_value_pairs(tokens, /*ranges=*/true);
        break;
      case Section::kBounds:
        parse_bound(tokens);
        break;
      case Section::kNone:
      case Section::kDone:
        fail(MpsError::Kind::kSection, "data line outside any section");
    }
  }
}

MpsModel Parser::build(std::size_t end_line) {
  line_number = end_line;
  if (!have_objective_row)
    fail(MpsError::Kind::kSection, "no objective (N) row declared");
  if (rows.empty())
    fail(MpsError::Kind::kSection, "no constraint rows declared");
  if (model.variable_names.empty())
    fail(MpsError::Kind::kSection, "COLUMNS section missing or empty");

  // Interval per declared row, then one canonical (<=) row per finite side.
  const std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> upper_row(rows.size(), kNone);
  std::vector<std::size_t> lower_row(rows.size(), kNone);
  Vec b;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const MpsRow& row = rows[i];
    double lo = -kInf;
    double up = kInf;
    switch (row.type) {
      case 'L':
        up = row.rhs;
        if (row.has_range) lo = row.rhs - std::abs(row.range);
        break;
      case 'G':
        lo = row.rhs;
        if (row.has_range) up = row.rhs + std::abs(row.range);
        break;
      default:  // 'E'
        lo = up = row.rhs;
        if (row.has_range) {
          if (row.range >= 0.0) up = row.rhs + row.range;
          else lo = row.rhs + row.range;
        }
        break;
    }
    if (up < kInf) {
      upper_row[i] = b.size();
      b.push_back(up);
    }
    if (lo > -kInf) {
      lower_row[i] = b.size();
      b.push_back(-lo);
    }
  }

  std::vector<CsrMatrix::Triplet> triplets;
  triplets.reserve(2 * entries.size() + bounds.size() + 1);
  for (const auto& entry : entries) {
    if (upper_row[entry.row] != kNone)
      triplets.push_back({upper_row[entry.row], entry.col, entry.value});
    if (lower_row[entry.row] != kNone)
      triplets.push_back({lower_row[entry.row], entry.col, -entry.value});
  }
  for (const MpsBound& bound : bounds) {
    if (bound.type == 'U' || bound.type == 'X') {
      triplets.push_back({b.size(), bound.column, 1.0});
      b.push_back(bound.value);
    }
    if (bound.type == 'L' || bound.type == 'X') {
      // LO 0 is the canonical default; emitting it would add a vacuous row.
      if (bound.value > 0.0 || bound.type == 'X') {
        triplets.push_back({b.size(), bound.column, -1.0});
        b.push_back(-bound.value);
      }
    }
  }
  if (b.empty())
    fail(MpsError::Kind::kUnsupported,
         "no finite constraints after conversion");

  model.problem.a = CsrMatrix::from_triplets(
      b.size(), model.variable_names.size(), std::move(triplets));
  model.problem.b = std::move(b);
  model.problem.c = model.maximize ? c : memlp::scaled(c, -1.0);
  model.problem.validate();
  return std::move(model);
}

}  // namespace

MpsError::MpsError(Kind kind, const std::string& file, std::size_t line,
                   const std::string& message)
    : Error(location(file, line) + message), kind_(kind), line_(line) {}

double MpsModel::original_objective(std::span<const double> x) const {
  const double canonical = problem.objective(x);
  return (maximize ? canonical : -canonical) - objective_rhs;
}

MpsModel read_mps(std::istream& in, const std::string& filename) {
  Parser parser{in, filename};
  parser.parse();
  return parser.build(parser.line_number);
}

MpsModel read_mps_file(const std::string& path) {
  std::ifstream file(path);
  if (!file)
    throw MpsError(MpsError::Kind::kSyntax, path, 0, "cannot open file");
  return read_mps(file, path);
}

std::string to_mps(const LinearProgram& problem, const std::string& name) {
  problem.validate();
  std::ostringstream os;
  os.precision(17);
  const std::size_t m = problem.num_constraints();
  const std::size_t n = problem.num_variables();
  const auto row_name = [](std::size_t i) {
    return "R" + std::to_string(i + 1);
  };
  const auto col_name = [](std::size_t j) {
    return "X" + std::to_string(j + 1);
  };
  os << "NAME          " << name << "\n";
  os << "OBJSENSE MAX\n";
  os << "ROWS\n N  COST\n";
  for (std::size_t i = 0; i < m; ++i) os << " L  " << row_name(i) << "\n";
  os << "COLUMNS\n";
  // Column j's entries are row j of Aᵀ. Every column gets a COST entry
  // (even a zero one) so the reader recreates the exact column order.
  const CsrMatrix at = problem.a.csr().transposed();
  const auto offsets = at.row_offsets();
  const auto cols = at.column_indices();
  const auto values = at.values();
  for (std::size_t j = 0; j < n; ++j) {
    os << "    " << col_name(j) << "  COST  " << problem.c[j] << "\n";
    for (std::size_t k = offsets[j]; k < offsets[j + 1]; ++k)
      os << "    " << col_name(j) << "  " << row_name(cols[k]) << "  "
         << values[k] << "\n";
  }
  os << "RHS\n";
  for (std::size_t i = 0; i < m; ++i)
    if (problem.b[i] != 0.0)
      os << "    RHS  " << row_name(i) << "  " << problem.b[i] << "\n";
  os << "ENDATA\n";
  return os.str();
}

}  // namespace memlp::lp
