// A minimal human-readable text format for LP instances, so examples and
// downstream tools can move problems in and out of memlp without an MPS
// dependency.
//
//   # anything after '#' is a comment; blank lines are ignored
//   memlp-lp 1
//   variables 2
//   maximize 3 5
//   1 0 <= 4
//   0 2 <= 12
//   3 2 <= 18
//
// One constraint row per line: n coefficients, the literal token "<=", and
// the right-hand side. Only the canonical form (max cᵀx, A·x ≤ b, x ≥ 0)
// is represented — which is all the solvers accept.
#pragma once

#include <iosfwd>
#include <string>

#include "common/error.hpp"
#include "lp/problem.hpp"

namespace memlp::lp {

/// Malformed text input.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Serializes a problem (validates first).
std::string to_text(const LinearProgram& problem);

/// Parses a problem; throws ParseError with a line number on bad input.
LinearProgram from_text(const std::string& text);

/// Stream variants.
void write_text(std::ostream& out, const LinearProgram& problem);
LinearProgram read_text(std::istream& in);

}  // namespace memlp::lp
