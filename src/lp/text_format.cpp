#include "lp/text_format.hpp"

#include <sstream>
#include <utility>
#include <vector>

namespace memlp::lp {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  std::ostringstream os;
  os << "lp text format: line " << line << ": " << message;
  throw ParseError(os.str());
}

/// Strips comments and whitespace; returns false for blank lines.
bool clean_line(std::string& line) {
  if (const auto hash = line.find('#'); hash != std::string::npos)
    line.erase(hash);
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) {
    line.clear();
    return false;
  }
  const auto last = line.find_last_not_of(" \t\r");
  line = line.substr(first, last - first + 1);
  return true;
}

double parse_number(const std::string& token, std::size_t line) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(token, &consumed);
    if (consumed != token.size()) fail(line, "bad number '" + token + "'");
    return value;
  } catch (const ParseError&) {
    throw;
  } catch (...) {
    fail(line, "bad number '" + token + "'");
  }
}

}  // namespace

std::string to_text(const LinearProgram& problem) {
  problem.validate();
  std::ostringstream os;
  os.precision(17);
  os << "memlp-lp 1\n";
  os << "variables " << problem.num_variables() << "\n";
  os << "maximize";
  for (double c : problem.c) os << ' ' << c;
  os << "\n";
  for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
    for (std::size_t j = 0; j < problem.num_variables(); ++j)
      os << problem.a(i, j) << ' ';
    os << "<= " << problem.b[i] << "\n";
  }
  return os.str();
}

LinearProgram from_text(const std::string& text) {
  std::istringstream in(text);
  return read_text(in);
}

void write_text(std::ostream& out, const LinearProgram& problem) {
  out << to_text(problem);
}

LinearProgram read_text(std::istream& in) {
  std::string line;
  std::size_t line_number = 0;
  const auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_number;
      if (clean_line(line)) return true;
    }
    return false;
  };

  if (!next_line() || line != "memlp-lp 1")
    fail(line_number, "expected header 'memlp-lp 1'");

  if (!next_line()) fail(line_number, "expected 'variables N'");
  std::istringstream vars(line);
  std::string keyword;
  std::size_t n = 0;
  vars >> keyword >> n;
  if (keyword != "variables" || n == 0 || vars.fail())
    fail(line_number, "expected 'variables N' with N >= 1");

  if (!next_line()) fail(line_number, "expected 'maximize c1 ... cN'");
  std::istringstream objective(line);
  objective >> keyword;
  if (keyword != "maximize") fail(line_number, "expected 'maximize'");
  LinearProgram problem;
  problem.c.reserve(n);
  std::string token;
  while (objective >> token)
    problem.c.push_back(parse_number(token, line_number));
  if (problem.c.size() != n)
    fail(line_number, "objective has " + std::to_string(problem.c.size()) +
                          " coefficients, expected " + std::to_string(n));

  std::vector<Vec> rows;
  while (next_line()) {
    std::istringstream row(line);
    Vec coefficients;
    bool saw_relation = false;
    while (row >> token) {
      if (token == "<=") {
        saw_relation = true;
        break;
      }
      coefficients.push_back(parse_number(token, line_number));
    }
    if (!saw_relation) fail(line_number, "constraint row missing '<='");
    if (coefficients.size() != n)
      fail(line_number, "constraint has " +
                            std::to_string(coefficients.size()) +
                            " coefficients, expected " + std::to_string(n));
    if (!(row >> token)) fail(line_number, "missing right-hand side");
    problem.b.push_back(parse_number(token, line_number));
    if (row >> token) fail(line_number, "trailing token '" + token + "'");
    rows.push_back(std::move(coefficients));
  }
  if (rows.empty()) fail(line_number, "no constraint rows");

  Matrix a(rows.size(), n);
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rows[i][j];
  problem.a = std::move(a);
  problem.validate();
  return problem;
}

}  // namespace memlp::lp
