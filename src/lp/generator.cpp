#include "lp/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/ops.hpp"

namespace memlp::lp {
namespace {

/// Draws the constraint matrix with the requested sign mix and sparsity.
Matrix draw_matrix(const GeneratorOptions& options, Rng& rng) {
  const std::size_t m = options.constraints;
  const std::size_t n = options.effective_variables();
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (options.sparsity > 0.0 && rng.uniform() < options.sparsity) continue;
      const double magnitude =
          rng.uniform(0.1, 1.0) * options.coefficient_scale;
      const bool negative = rng.uniform() < options.negative_fraction;
      a(i, j) = negative ? -magnitude : magnitude;
    }
  return a;
}

/// Ensures every column sum is comfortably positive so y = t·1 is
/// dual-feasible for large t (bounded primal), and no column is all-zero.
void ensure_positive_column_sums(Matrix& a, double scale, Rng& rng) {
  const double floor = 0.2 * scale;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) sum += a(i, j);
    while (sum < floor) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(a.rows()) - 1));
      const double boost = rng.uniform(0.5, 1.0) * scale;
      sum -= a(i, j);
      a(i, j) = std::abs(a(i, j)) + boost;
      sum += a(i, j);
    }
  }
}

}  // namespace

LinearProgram random_feasible(const GeneratorOptions& options, Rng& rng) {
  MEMLP_EXPECT(options.constraints >= 1);
  LinearProgram lp;
  lp.a = draw_matrix(options, rng);
  ensure_positive_column_sums(lp.a, options.coefficient_scale, rng);

  const std::size_t n = lp.a.cols();
  // Interior point first, then right-hand sides with strictly positive slack.
  Vec interior(n);
  for (double& v : interior) v = rng.uniform(0.5, 2.0);
  lp.b = gemv(lp.a, interior);
  for (double& v : lp.b) v += rng.uniform(0.5, 2.0);

  lp.c.resize(n);
  for (double& v : lp.c)
    v = rng.uniform(0.1, 1.0) * options.coefficient_scale;
  lp.validate();
  return lp;
}

LinearProgram random_infeasible(const GeneratorOptions& options, Rng& rng) {
  MEMLP_EXPECT(options.constraints >= 2);
  LinearProgram lp = random_feasible(options, rng);
  const std::size_t n = lp.a.cols();
  // Overwrite the last two rows with a contradiction: u·x <= beta and
  // u·x >= 2·beta for u > 0, beta > 0 — unsatisfiable for any x >= 0.
  Vec u(n);
  for (double& v : u) v = rng.uniform(0.2, 1.0) * options.coefficient_scale;
  const double beta = rng.uniform(0.5, 2.0);
  const std::size_t r1 = lp.a.rows() - 2;
  const std::size_t r2 = lp.a.rows() - 1;
  for (std::size_t j = 0; j < n; ++j) {
    lp.a(r1, j) = u[j];
    lp.a(r2, j) = -u[j];
  }
  lp.b[r1] = beta;
  lp.b[r2] = -2.0 * beta;
  return lp;
}

LinearProgram max_flow_routing(std::size_t layers, std::size_t width,
                               Rng& rng) {
  MEMLP_EXPECT(layers >= 1 && width >= 1);
  // Layered graph: source -> layer 1 (width nodes) -> ... -> layer L -> sink.
  // Edges: source to every first-layer node, complete bipartite between
  // consecutive layers, every last-layer node to sink.
  struct Edge {
    std::size_t from, to;  // node ids; 0 = source, 1..L*width = internal,
                           // L*width+1 = sink
    double capacity;
  };
  const std::size_t internal = layers * width;
  const std::size_t sink = internal + 1;
  std::vector<Edge> edges;
  const auto node_id = [&](std::size_t layer, std::size_t k) {
    return 1 + layer * width + k;
  };
  for (std::size_t k = 0; k < width; ++k)
    edges.push_back({0, node_id(0, k), rng.uniform(1.0, 4.0)});
  for (std::size_t layer = 0; layer + 1 < layers; ++layer)
    for (std::size_t from = 0; from < width; ++from)
      for (std::size_t to = 0; to < width; ++to)
        edges.push_back({node_id(layer, from), node_id(layer + 1, to),
                         rng.uniform(0.5, 2.0)});
  for (std::size_t k = 0; k < width; ++k)
    edges.push_back({node_id(layers - 1, k), sink, rng.uniform(1.0, 4.0)});

  const std::size_t num_edges = edges.size();
  // Rows: capacity per edge + 2 conservation rows per internal node.
  const std::size_t m = num_edges + 2 * internal;
  LinearProgram lp;
  lp.a = Matrix(m, num_edges);
  lp.b.assign(m, 0.0);
  lp.c.assign(num_edges, 0.0);
  for (std::size_t e = 0; e < num_edges; ++e) {
    lp.a(e, e) = 1.0;
    lp.b[e] = edges[e].capacity;
    if (edges[e].from == 0) lp.c[e] = 1.0;  // maximize flow out of source
  }
  for (std::size_t v = 1; v <= internal; ++v) {
    const std::size_t out_row = num_edges + 2 * (v - 1);
    const std::size_t in_row = out_row + 1;
    for (std::size_t e = 0; e < num_edges; ++e) {
      double coefficient = 0.0;
      if (edges[e].to == v) coefficient += 1.0;   // inflow
      if (edges[e].from == v) coefficient -= 1.0;  // outflow
      lp.a(out_row, e) = coefficient;    // inflow - outflow <= 0
      lp.a(in_row, e) = -coefficient;    // outflow - inflow <= 0
    }
  }
  lp.validate();
  return lp;
}

LinearProgram production_scheduling(std::size_t products,
                                    std::size_t resources, Rng& rng) {
  MEMLP_EXPECT(products >= 1 && resources >= 1);
  LinearProgram lp;
  lp.a = Matrix(resources, products);
  lp.b.assign(resources, 0.0);
  lp.c.assign(products, 0.0);
  for (std::size_t r = 0; r < resources; ++r) {
    for (std::size_t p = 0; p < products; ++p)
      lp.a(r, p) = rng.uniform(0.1, 2.0);  // units of resource r per product
    lp.b[r] = rng.uniform(5.0, 20.0) * static_cast<double>(products);
  }
  for (std::size_t p = 0; p < products; ++p)
    lp.c[p] = rng.uniform(1.0, 10.0);  // profit per unit
  lp.validate();
  return lp;
}

LinearProgram transportation(std::size_t suppliers, std::size_t consumers,
                             Rng& rng) {
  MEMLP_EXPECT(suppliers >= 1 && consumers >= 1);
  const std::size_t num_routes = suppliers * consumers;
  LinearProgram lp;
  lp.a = Matrix(suppliers + consumers, num_routes);
  lp.b.assign(suppliers + consumers, 0.0);
  lp.c.assign(num_routes, 0.0);
  const auto route = [&](std::size_t s, std::size_t t) {
    return s * consumers + t;
  };
  Vec demand(consumers);
  double total_demand = 0.0;
  for (std::size_t t = 0; t < consumers; ++t) {
    demand[t] = rng.uniform(1.0, 5.0);
    total_demand += demand[t];
  }
  // Supplies sized so total supply exceeds total demand (feasibility).
  for (std::size_t s = 0; s < suppliers; ++s) {
    for (std::size_t t = 0; t < consumers; ++t)
      lp.a(s, route(s, t)) = 1.0;  // sum_t x_st <= supply_s
    lp.b[s] = total_demand / static_cast<double>(suppliers) *
              rng.uniform(1.2, 1.8);
  }
  for (std::size_t t = 0; t < consumers; ++t) {
    for (std::size_t s = 0; s < suppliers; ++s)
      lp.a(suppliers + t, route(s, t)) = -1.0;  // sum_s x_st >= demand_t
    lp.b[suppliers + t] = -demand[t];
  }
  // Cost minimization as canonical max: maximize -cost.
  for (std::size_t s = 0; s < suppliers; ++s)
    for (std::size_t t = 0; t < consumers; ++t)
      lp.c[route(s, t)] = -rng.uniform(1.0, 10.0);
  lp.validate();
  return lp;
}

LinearProgram diet(std::size_t foods, std::size_t nutrients, Rng& rng) {
  MEMLP_EXPECT(foods >= 1 && nutrients >= 1);
  // Variables: portions per food. Rows: one nutrient-minimum row per
  // nutrient (−N·x ≤ −requirement) and one portion cap per food.
  LinearProgram lp;
  lp.a = Matrix(nutrients + foods, foods);
  lp.b.assign(nutrients + foods, 0.0);
  lp.c.assign(foods, 0.0);
  const double cap = 10.0;
  Matrix content(nutrients, foods);  // nutrient per portion
  for (std::size_t k = 0; k < nutrients; ++k)
    for (std::size_t f = 0; f < foods; ++f)
      content(k, f) = rng.uniform(0.0, 1.0);
  for (std::size_t k = 0; k < nutrients; ++k) {
    double max_attainable = 0.0;
    for (std::size_t f = 0; f < foods; ++f) {
      lp.a(k, f) = -content(k, f);
      max_attainable += content(k, f) * cap;
    }
    // Requirement comfortably attainable under the caps: feasible by
    // construction.
    lp.b[k] = -rng.uniform(0.1, 0.5) * max_attainable;
  }
  for (std::size_t f = 0; f < foods; ++f) {
    lp.a(nutrients + f, f) = 1.0;
    lp.b[nutrients + f] = cap;
  }
  // Cost minimization as canonical max.
  for (std::size_t f = 0; f < foods; ++f) lp.c[f] = -rng.uniform(0.5, 3.0);
  lp.validate();
  return lp;
}

LinearProgram assignment(std::size_t workers, std::size_t tasks, Rng& rng) {
  MEMLP_EXPECT(workers >= tasks && tasks >= 1);
  const std::size_t pairs = workers * tasks;
  LinearProgram lp;
  lp.a = Matrix(workers + tasks, pairs);
  lp.b.assign(workers + tasks, 0.0);
  lp.c.assign(pairs, 0.0);
  const auto pair_index = [&](std::size_t w, std::size_t t) {
    return w * tasks + t;
  };
  for (std::size_t w = 0; w < workers; ++w) {
    for (std::size_t t = 0; t < tasks; ++t)
      lp.a(w, pair_index(w, t)) = 1.0;  // sum_t x_wt <= 1
    lp.b[w] = 1.0;
  }
  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t w = 0; w < workers; ++w)
      lp.a(workers + t, pair_index(w, t)) = -1.0;  // sum_w x_wt >= 1
    lp.b[workers + t] = -1.0;
  }
  for (std::size_t w = 0; w < workers; ++w)
    for (std::size_t t = 0; t < tasks; ++t)
      lp.c[pair_index(w, t)] = rng.uniform(0.5, 5.0);  // match value
  lp.validate();
  return lp;
}

}  // namespace memlp::lp
