#include "lp/generator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "linalg/ops.hpp"
#include "linalg/sparse.hpp"

namespace memlp::lp {
namespace {

/// Draws the constraint matrix with the requested sign mix and sparsity.
Matrix draw_matrix(const GeneratorOptions& options, Rng& rng) {
  const std::size_t m = options.constraints;
  const std::size_t n = options.effective_variables();
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (options.sparsity > 0.0 && rng.uniform() < options.sparsity) continue;
      const double magnitude =
          rng.uniform(0.1, 1.0) * options.coefficient_scale;
      const bool negative = rng.uniform() < options.negative_fraction;
      a(i, j) = negative ? -magnitude : magnitude;
    }
  return a;
}

/// Ensures every column sum is comfortably positive so y = t·1 is
/// dual-feasible for large t (bounded primal), and no column is all-zero.
void ensure_positive_column_sums(Matrix& a, double scale, Rng& rng) {
  const double floor = 0.2 * scale;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) sum += a(i, j);
    while (sum < floor) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(a.rows()) - 1));
      const double boost = rng.uniform(0.5, 1.0) * scale;
      sum -= a(i, j);
      a(i, j) = std::abs(a(i, j)) + boost;
      sum += a(i, j);
    }
  }
}

/// Wraps a CSR constraint matrix in a feasible, bounded LP the same way
/// random_feasible does: interior point first, then b = A·x* + margin and a
/// positive objective. Callers must have arranged positive column sums.
LinearProgram feasible_from_csr(CsrMatrix a, Rng& rng) {
  LinearProgram lp;
  const std::size_t n = a.cols();
  Vec interior(n);
  for (double& v : interior) v = rng.uniform(0.5, 2.0);
  lp.b = a.multiply(interior);
  for (double& v : lp.b) v += rng.uniform(0.5, 2.0);
  lp.c.resize(n);
  for (double& v : lp.c) v = rng.uniform(0.1, 1.0);
  lp.a = std::move(a);
  lp.validate();
  return lp;
}

/// Edge of the layered flow graphs: node 0 is the source, 1..layers·width
/// the internal nodes, layers·width+1 the sink.
struct Edge {
  std::size_t from, to;
  double capacity;
};

/// Source -> layer 1 (width nodes) -> ... -> layer L -> sink, complete
/// bipartite between consecutive layers. RNG call order matters: this is the
/// exact sequence max_flow_routing has always drawn.
std::vector<Edge> layered_edges(std::size_t layers, std::size_t width,
                                Rng& rng) {
  std::vector<Edge> edges;
  const auto node_id = [&](std::size_t layer, std::size_t k) {
    return 1 + layer * width + k;
  };
  for (std::size_t k = 0; k < width; ++k)
    edges.push_back({0, node_id(0, k), rng.uniform(1.0, 4.0)});
  for (std::size_t layer = 0; layer + 1 < layers; ++layer)
    for (std::size_t from = 0; from < width; ++from)
      for (std::size_t to = 0; to < width; ++to)
        edges.push_back({node_id(layer, from), node_id(layer + 1, to),
                         rng.uniform(0.5, 2.0)});
  for (std::size_t k = 0; k < width; ++k)
    edges.push_back({node_id(layers - 1, k), width * layers + 1,
                     rng.uniform(1.0, 4.0)});
  return edges;
}

}  // namespace

LinearProgram random_feasible(const GeneratorOptions& options, Rng& rng) {
  MEMLP_EXPECT(options.constraints >= 1);
  LinearProgram lp;
  Matrix a = draw_matrix(options, rng);
  ensure_positive_column_sums(a, options.coefficient_scale, rng);

  const std::size_t n = a.cols();
  // Interior point first, then right-hand sides with strictly positive slack.
  Vec interior(n);
  for (double& v : interior) v = rng.uniform(0.5, 2.0);
  lp.b = gemv(a, interior);
  for (double& v : lp.b) v += rng.uniform(0.5, 2.0);

  lp.c.resize(n);
  for (double& v : lp.c)
    v = rng.uniform(0.1, 1.0) * options.coefficient_scale;
  lp.a = std::move(a);
  lp.validate();
  return lp;
}

LinearProgram random_infeasible(const GeneratorOptions& options, Rng& rng) {
  MEMLP_EXPECT(options.constraints >= 2);
  LinearProgram lp = random_feasible(options, rng);
  Matrix a = lp.a.dense();
  const std::size_t n = a.cols();
  // Overwrite the last two rows with a contradiction: u·x <= beta and
  // u·x >= 2·beta for u > 0, beta > 0 — unsatisfiable for any x >= 0.
  Vec u(n);
  for (double& v : u) v = rng.uniform(0.2, 1.0) * options.coefficient_scale;
  const double beta = rng.uniform(0.5, 2.0);
  const std::size_t r1 = a.rows() - 2;
  const std::size_t r2 = a.rows() - 1;
  for (std::size_t j = 0; j < n; ++j) {
    a(r1, j) = u[j];
    a(r2, j) = -u[j];
  }
  lp.b[r1] = beta;
  lp.b[r2] = -2.0 * beta;
  lp.a = std::move(a);
  return lp;
}

LinearProgram max_flow_routing(std::size_t layers, std::size_t width,
                               Rng& rng) {
  MEMLP_EXPECT(layers >= 1 && width >= 1);
  const std::size_t internal = layers * width;
  const std::vector<Edge> edges = layered_edges(layers, width, rng);

  const std::size_t num_edges = edges.size();
  // Rows: capacity per edge + 2 conservation rows per internal node.
  const std::size_t m = num_edges + 2 * internal;
  LinearProgram lp;
  Matrix a(m, num_edges);
  lp.b.assign(m, 0.0);
  lp.c.assign(num_edges, 0.0);
  for (std::size_t e = 0; e < num_edges; ++e) {
    a(e, e) = 1.0;
    lp.b[e] = edges[e].capacity;
    if (edges[e].from == 0) lp.c[e] = 1.0;  // maximize flow out of source
  }
  for (std::size_t v = 1; v <= internal; ++v) {
    const std::size_t out_row = num_edges + 2 * (v - 1);
    const std::size_t in_row = out_row + 1;
    for (std::size_t e = 0; e < num_edges; ++e) {
      double coefficient = 0.0;
      if (edges[e].to == v) coefficient += 1.0;   // inflow
      if (edges[e].from == v) coefficient -= 1.0;  // outflow
      a(out_row, e) = coefficient;    // inflow - outflow <= 0
      a(in_row, e) = -coefficient;    // outflow - inflow <= 0
    }
  }
  lp.a = std::move(a);
  lp.validate();
  return lp;
}

LinearProgram production_scheduling(std::size_t products,
                                    std::size_t resources, Rng& rng) {
  MEMLP_EXPECT(products >= 1 && resources >= 1);
  LinearProgram lp;
  Matrix a(resources, products);
  lp.b.assign(resources, 0.0);
  lp.c.assign(products, 0.0);
  for (std::size_t r = 0; r < resources; ++r) {
    for (std::size_t p = 0; p < products; ++p)
      a(r, p) = rng.uniform(0.1, 2.0);  // units of resource r per product
    lp.b[r] = rng.uniform(5.0, 20.0) * static_cast<double>(products);
  }
  for (std::size_t p = 0; p < products; ++p)
    lp.c[p] = rng.uniform(1.0, 10.0);  // profit per unit
  lp.a = std::move(a);
  lp.validate();
  return lp;
}

LinearProgram transportation(std::size_t suppliers, std::size_t consumers,
                             Rng& rng) {
  MEMLP_EXPECT(suppliers >= 1 && consumers >= 1);
  const std::size_t num_routes = suppliers * consumers;
  LinearProgram lp;
  Matrix a(suppliers + consumers, num_routes);
  lp.b.assign(suppliers + consumers, 0.0);
  lp.c.assign(num_routes, 0.0);
  const auto route = [&](std::size_t s, std::size_t t) {
    return s * consumers + t;
  };
  Vec demand(consumers);
  double total_demand = 0.0;
  for (std::size_t t = 0; t < consumers; ++t) {
    demand[t] = rng.uniform(1.0, 5.0);
    total_demand += demand[t];
  }
  // Supplies sized so total supply exceeds total demand (feasibility).
  for (std::size_t s = 0; s < suppliers; ++s) {
    for (std::size_t t = 0; t < consumers; ++t)
      a(s, route(s, t)) = 1.0;  // sum_t x_st <= supply_s
    lp.b[s] = total_demand / static_cast<double>(suppliers) *
              rng.uniform(1.2, 1.8);
  }
  for (std::size_t t = 0; t < consumers; ++t) {
    for (std::size_t s = 0; s < suppliers; ++s)
      a(suppliers + t, route(s, t)) = -1.0;  // sum_s x_st >= demand_t
    lp.b[suppliers + t] = -demand[t];
  }
  // Cost minimization as canonical max: maximize -cost.
  for (std::size_t s = 0; s < suppliers; ++s)
    for (std::size_t t = 0; t < consumers; ++t)
      lp.c[route(s, t)] = -rng.uniform(1.0, 10.0);
  lp.a = std::move(a);
  lp.validate();
  return lp;
}

LinearProgram diet(std::size_t foods, std::size_t nutrients, Rng& rng) {
  MEMLP_EXPECT(foods >= 1 && nutrients >= 1);
  // Variables: portions per food. Rows: one nutrient-minimum row per
  // nutrient (−N·x ≤ −requirement) and one portion cap per food.
  LinearProgram lp;
  Matrix a(nutrients + foods, foods);
  lp.b.assign(nutrients + foods, 0.0);
  lp.c.assign(foods, 0.0);
  const double cap = 10.0;
  Matrix content(nutrients, foods);  // nutrient per portion
  for (std::size_t k = 0; k < nutrients; ++k)
    for (std::size_t f = 0; f < foods; ++f)
      content(k, f) = rng.uniform(0.0, 1.0);
  for (std::size_t k = 0; k < nutrients; ++k) {
    double max_attainable = 0.0;
    for (std::size_t f = 0; f < foods; ++f) {
      a(k, f) = -content(k, f);
      max_attainable += content(k, f) * cap;
    }
    // Requirement comfortably attainable under the caps: feasible by
    // construction.
    lp.b[k] = -rng.uniform(0.1, 0.5) * max_attainable;
  }
  for (std::size_t f = 0; f < foods; ++f) {
    a(nutrients + f, f) = 1.0;
    lp.b[nutrients + f] = cap;
  }
  // Cost minimization as canonical max.
  for (std::size_t f = 0; f < foods; ++f) lp.c[f] = -rng.uniform(0.5, 3.0);
  lp.a = std::move(a);
  lp.validate();
  return lp;
}

LinearProgram assignment(std::size_t workers, std::size_t tasks, Rng& rng) {
  MEMLP_EXPECT(workers >= tasks && tasks >= 1);
  const std::size_t pairs = workers * tasks;
  LinearProgram lp;
  Matrix a(workers + tasks, pairs);
  lp.b.assign(workers + tasks, 0.0);
  lp.c.assign(pairs, 0.0);
  const auto pair_index = [&](std::size_t w, std::size_t t) {
    return w * tasks + t;
  };
  for (std::size_t w = 0; w < workers; ++w) {
    for (std::size_t t = 0; t < tasks; ++t)
      a(w, pair_index(w, t)) = 1.0;  // sum_t x_wt <= 1
    lp.b[w] = 1.0;
  }
  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t w = 0; w < workers; ++w)
      a(workers + t, pair_index(w, t)) = -1.0;  // sum_w x_wt >= 1
    lp.b[workers + t] = -1.0;
  }
  for (std::size_t w = 0; w < workers; ++w)
    for (std::size_t t = 0; t < tasks; ++t)
      lp.c[pair_index(w, t)] = rng.uniform(0.5, 5.0);  // match value
  lp.a = std::move(a);
  lp.validate();
  return lp;
}

LinearProgram multi_commodity_flow(std::size_t commodities,
                                   std::size_t layers, std::size_t width,
                                   Rng& rng) {
  MEMLP_EXPECT(commodities >= 1 && layers >= 1 && width >= 1);
  const std::size_t internal = layers * width;
  const std::vector<Edge> edges = layered_edges(layers, width, rng);
  const std::size_t num_edges = edges.size();
  const std::size_t n = commodities * num_edges;
  // Rows: one shared capacity row per edge (couples the commodities), then
  // two conservation rows per (commodity, internal node).
  const std::size_t m = num_edges + 2 * internal * commodities;
  const auto var = [&](std::size_t k, std::size_t e) {
    return k * num_edges + e;
  };
  std::vector<CsrMatrix::Triplet> triplets;
  triplets.reserve(n + 4 * internal * commodities * (width + 1));
  LinearProgram lp;
  lp.b.assign(m, 0.0);
  lp.c.assign(n, 0.0);
  for (std::size_t e = 0; e < num_edges; ++e) {
    for (std::size_t k = 0; k < commodities; ++k)
      triplets.push_back({e, var(k, e), 1.0});  // sum_k x_ke <= cap_e
    lp.b[e] = edges[e].capacity;
    if (edges[e].from == 0)
      for (std::size_t k = 0; k < commodities; ++k)
        lp.c[var(k, e)] = 1.0;  // maximize total flow out of the source
  }
  for (std::size_t k = 0; k < commodities; ++k)
    for (std::size_t v = 1; v <= internal; ++v) {
      const std::size_t out_row =
          num_edges + 2 * (k * internal + (v - 1));
      const std::size_t in_row = out_row + 1;
      for (std::size_t e = 0; e < num_edges; ++e) {
        double coefficient = 0.0;
        if (edges[e].to == v) coefficient += 1.0;
        if (edges[e].from == v) coefficient -= 1.0;
        if (coefficient == 0.0) continue;
        triplets.push_back({out_row, var(k, e), coefficient});
        triplets.push_back({in_row, var(k, e), -coefficient});
      }
    }
  lp.a = CsrMatrix::from_triplets(m, n, std::move(triplets));
  lp.validate();
  return lp;
}

LinearProgram block_diagonal(std::size_t blocks, std::size_t block_rows,
                             std::size_t block_cols, Rng& rng) {
  MEMLP_EXPECT(blocks >= 1 && block_rows >= 1 && block_cols >= 1);
  const std::size_t m = blocks * block_rows;
  const std::size_t n = blocks * block_cols;
  std::vector<CsrMatrix::Triplet> triplets;
  triplets.reserve(m * block_cols);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    // Dense random block drawn with the random_feasible sign mix; the boost
    // pass stays inside the block so the block-diagonal pattern survives.
    Matrix block(block_rows, block_cols);
    for (std::size_t i = 0; i < block_rows; ++i)
      for (std::size_t j = 0; j < block_cols; ++j) {
        const double magnitude = rng.uniform(0.1, 1.0);
        const bool negative = rng.uniform() < 0.3;
        block(i, j) = negative ? -magnitude : magnitude;
      }
    ensure_positive_column_sums(block, 1.0, rng);
    const std::size_t r0 = blk * block_rows;
    const std::size_t c0 = blk * block_cols;
    for (std::size_t i = 0; i < block_rows; ++i)
      for (std::size_t j = 0; j < block_cols; ++j)
        if (block(i, j) != 0.0)
          triplets.push_back({r0 + i, c0 + j, block(i, j)});
  }
  return feasible_from_csr(CsrMatrix::from_triplets(m, n, std::move(triplets)),
                           rng);
}

LinearProgram banded(std::size_t constraints, std::size_t bandwidth,
                     Rng& rng) {
  MEMLP_EXPECT(constraints >= 1);
  const std::size_t m = constraints;
  const std::size_t n = std::max<std::size_t>(1, m / 3);
  std::vector<CsrMatrix::Triplet> triplets;
  Vec sums(n, 0.0);
  // Last row touching each column; boosting there keeps the band intact.
  std::vector<std::size_t> anchor(n, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t center = i * n / m;
    const std::size_t lo = center > bandwidth ? center - bandwidth : 0;
    const std::size_t hi = std::min(n - 1, center + bandwidth);
    for (std::size_t j = lo; j <= hi; ++j) {
      const double magnitude = rng.uniform(0.1, 1.0);
      const bool negative = rng.uniform() < 0.3;
      const double value = negative ? -magnitude : magnitude;
      triplets.push_back({i, j, value});
      sums[j] += value;
      anchor[j] = i;
    }
  }
  // Sparse analogue of ensure_positive_column_sums: from_triplets sums
  // duplicates, so the corrective entry folds into the anchor cell.
  for (std::size_t j = 0; j < n; ++j)
    if (sums[j] < 0.2)
      triplets.push_back({anchor[j], j, 0.2 - sums[j] + rng.uniform(0.5, 1.0)});
  return feasible_from_csr(CsrMatrix::from_triplets(m, n, std::move(triplets)),
                           rng);
}

}  // namespace memlp::lp
