// Hardware latency/energy estimation (§4.4).
//
// The paper estimates crossbar-solver performance analytically: iteration
// count (from simulation) × per-iteration operation counts (≈2.7N
// coefficient writes, one MVM settle, one solve settle, amplifier updates)
// × per-operation constants from the Yakopcic-model-based study [23]. We
// reproduce the same methodology: the solvers count every hardware
// operation exactly (writes are counted per cell whose programmed level
// changed, pulses per level distance), and this model prices the counters.
//
// Per-operation constants (documented substitution — the paper does not
// publish its table; values are chosen in the published TiO2/ReRAM range and
// recorded here so every figure is reproducible):
//   * analog settle (MVM or solve): 100 ns — crossbar RC settling per [23].
//   * coefficient write: 500 ns/cell program-and-verify overhead plus
//     10 ns per pulse (§3.3's pulse trains).
//   * summing-amplifier bank: 20 ns per vector operation.
//   * NoC: 1 ns per value-hop through the analog switches [21].
//   * CMOS controller: 2 µs and 2 mJ per PDIP iteration (sequencing, DAC
//     refresh, write-verify control). Together with the 8 µJ per coefficient
//     write this reproduces the ~0.9 J / ~78 ms the paper estimates for an
//     ideal m = 1024 solve (~30 iterations × 2.7N coefficient updates) and
//     the ~10–50 W system power implied by its Fig. 6/7 pairs.
//
// The CPU baseline mirrors the paper's: measured wall-clock × 35 W package
// power (the power implied by the paper's 6.23 s / 218.1 J linprog pair).
//
// As §3.5 notes, the O(N²) initial programming of the full array is not part
// of the iterative-phase analysis; estimate() therefore prices the iterative
// counters, and estimate_programming() prices the one-off initialization
// separately (both are reported in EXPERIMENTS.md).
#pragma once

#include "core/xbar_pdip.hpp"
#include "obs/cost_ledger.hpp"

namespace memlp::perf {

/// Per-operation time/energy constants (see file comment).
struct HardwareCostConstants {
  double settle_s = 100e-9;
  double write_cell_s = 500e-9;
  double write_pulse_s = 10e-9;
  double amp_vector_op_s = 20e-9;
  double noc_value_hop_s = 1e-9;
  double controller_iteration_s = 2e-6;

  double settle_j = 5e-6;
  double write_cell_j = 8e-6;
  double write_pulse_j = 1e-9;
  double amp_element_j = 5e-12;
  double noc_value_hop_j = 1e-12;
  double controller_iteration_j = 2e-3;
};

/// A priced operation record.
struct CostEstimate {
  double latency_s = 0.0;
  double energy_j = 0.0;

  CostEstimate& operator+=(const CostEstimate& other) noexcept {
    latency_s += other.latency_s;
    energy_j += other.energy_j;
    return *this;
  }
};

/// Prices solver operation counters.
class HardwareModel {
 public:
  explicit HardwareModel(HardwareCostConstants constants = {})
      : constants_(constants) {}

  [[nodiscard]] const HardwareCostConstants& constants() const noexcept {
    return constants_;
  }

  /// Prices a raw backend counter set plus solver-level amps/iterations.
  [[nodiscard]] CostEstimate price(const core::BackendStats& backend,
                                   const xbar::AmplifierStats& amps,
                                   std::size_t iterations) const;

  /// Prices one cost-ledger counter set with the same constants. The
  /// pricing is linear, so summing priced rows of a ledger tree equals
  /// pricing the tree's total. Digital `flops`/`bytes` carry no analog
  /// cost (the CPU baseline prices wall time, not operation counts).
  [[nodiscard]] CostEstimate price_counters(
      const obs::CostCounters& counters) const;

  /// Iterative-phase estimate of a solve (excludes initial programming),
  /// the quantity Figs. 6/7 report.
  [[nodiscard]] CostEstimate estimate(const core::XbarSolveStats& stats) const;

  /// One-off array-programming estimate (the O(N²) initialization).
  [[nodiscard]] CostEstimate estimate_programming(
      const core::XbarSolveStats& stats) const;

 private:
  HardwareCostConstants constants_;
};

/// CPU-side cost model for the software baselines.
struct CpuModel {
  /// Package power implied by the paper's linprog latency/energy pairs.
  double power_w = 35.0;

  [[nodiscard]] CostEstimate estimate(double wall_seconds) const noexcept {
    return {wall_seconds, wall_seconds * power_w};
  }
};

}  // namespace memlp::perf
