// Priced views of the cost ledger (obs::CostLedger).
//
// The ledger records integer operation counters per profiler call path;
// this module turns that tree into priced, human/machine-readable forms:
//   * price_tree()          — one CostEstimate per path, path-sorted.
//   * split_programming()   — programming vs iterative buckets, matching
//                             HardwareModel::estimate{,_programming}()'s
//                             §3.5 split: any path with a "programming"
//                             segment is the one-off O(N²) initialization,
//                             everything else is the iterative phase.
//   * cost_table()          — the `memlp_solve --cost` phase×component
//                             breakdown table.
//   * export_counter_tracks() — cumulative "cost.energy_j" / "cost.flops"
//                             counter events from a ledger timeline
//                             (ChromeTraceSink renders them as "C" tracks).
//
// Pricing is linear in the counters, so the sum of priced rows equals the
// priced tree total, and — because every analog charge site mirrors a
// HardwareStats counter — the ledger's total analog cost reproduces
// estimate() + estimate_programming() exactly.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "obs/cost_ledger.hpp"
#include "perf/hardware_model.hpp"

namespace memlp::obs {
class TraceSink;
}  // namespace memlp::obs

namespace memlp::perf {

/// One priced row of a ledger tree.
struct CostTreeRow {
  std::string path;
  obs::CostCounters counters;
  CostEstimate cost;
};

/// Prices every path of `tree`, path-sorted (the tree's own order).
[[nodiscard]] std::vector<CostTreeRow> price_tree(const obs::CostTree& tree,
                                                  const HardwareModel& model);

/// True when `path` has a "programming" segment (e.g. "xbar/programming"),
/// i.e. belongs to the one-off array-initialization bucket.
[[nodiscard]] bool is_programming_path(const std::string& path);

/// The §3.5 split of a ledger tree (see file comment).
struct CostSplit {
  obs::CostCounters programming;
  obs::CostCounters iterative;
  CostEstimate programming_cost;
  CostEstimate iterative_cost;
};

[[nodiscard]] CostSplit split_programming(const obs::CostTree& tree,
                                          const HardwareModel& model);

/// The `--cost` phase×component breakdown table.
[[nodiscard]] TextTable cost_table(const obs::CostTree& tree,
                                   const HardwareModel& model);

/// Replays a ledger timeline into `sink` as cumulative `counter` events:
/// tracks "cost.energy_j" and "cost.flops", fields `name`, `ts_us`,
/// `value`. No-op when the ledger's timeline is off.
void export_counter_tracks(const obs::CostLedger& ledger,
                           const HardwareModel& model, obs::TraceSink& sink);

}  // namespace memlp::perf
