#include "perf/cost_tree.hpp"

#include "obs/trace.hpp"

namespace memlp::perf {

std::vector<CostTreeRow> price_tree(const obs::CostTree& tree,
                                    const HardwareModel& model) {
  std::vector<CostTreeRow> rows;
  rows.reserve(tree.size());
  for (const auto& [path, counters] : tree)
    rows.push_back({path, counters, model.price_counters(counters)});
  return rows;
}

bool is_programming_path(const std::string& path) {
  std::size_t begin = 0;
  while (begin <= path.size()) {
    std::size_t end = path.find('/', begin);
    if (end == std::string::npos) end = path.size();
    if (path.compare(begin, end - begin, "programming") == 0) return true;
    begin = end + 1;
  }
  return false;
}

CostSplit split_programming(const obs::CostTree& tree,
                            const HardwareModel& model) {
  CostSplit split;
  for (const auto& [path, counters] : tree) {
    if (is_programming_path(path))
      split.programming += counters;
    else
      split.iterative += counters;
  }
  split.programming_cost = model.price_counters(split.programming);
  split.iterative_cost = model.price_counters(split.iterative);
  return split;
}

TextTable cost_table(const obs::CostTree& tree, const HardwareModel& model) {
  const auto rows = price_tree(tree, model);
  obs::CostCounters total;
  CostEstimate total_cost;
  for (const CostTreeRow& row : rows) {
    total += row.counters;
    total_cost += row.cost;
  }
  TextTable table("cost: phase x component breakdown (per call path)");
  table.set_header({"path", "energy [mJ]", "latency [ms]", "settles", "cells",
                    "pulses", "amp ops", "hops", "iters", "flops", "bytes"});
  const auto count = [](std::uint64_t v) {
    return TextTable::num(static_cast<long long>(v));
  };
  const auto add = [&](const std::string& path,
                       const obs::CostCounters& counters,
                       const CostEstimate& cost) {
    table.add_row({path, TextTable::num(cost.energy_j * 1e3, 4),
                   TextTable::num(cost.latency_s * 1e3, 4),
                   count(counters.settles), count(counters.cells_written),
                   count(counters.write_pulses),
                   count(counters.amp_vector_ops),
                   count(counters.noc_value_hops),
                   count(counters.controller_iterations),
                   count(counters.flops), count(counters.bytes)});
  };
  for (const CostTreeRow& row : rows) add(row.path, row.counters, row.cost);
  add("TOTAL", total, total_cost);
  return table;
}

void export_counter_tracks(const obs::CostLedger& ledger,
                           const HardwareModel& model, obs::TraceSink& sink) {
  if (!ledger.timeline_enabled()) return;
  double energy_j = 0.0;
  std::uint64_t flops = 0;
  for (const obs::CostSample& sample : ledger.timeline()) {
    energy_j += model.price_counters(sample.delta).energy_j;
    flops += sample.delta.flops;
    const double ts_us = sample.ts_s * 1e6;
    obs::Event energy_event("counter");
    energy_event.with("name", "cost.energy_j")
        .with("ts_us", ts_us)
        .with("value", energy_j);
    sink.emit(energy_event);
    obs::Event flop_event("counter");
    flop_event.with("name", "cost.flops")
        .with("ts_us", ts_us)
        .with("value", static_cast<double>(flops));
    sink.emit(flop_event);
  }
}

}  // namespace memlp::perf
