#include "perf/hardware_model.hpp"

namespace memlp::perf {

CostEstimate HardwareModel::price(const core::BackendStats& backend,
                                  const xbar::AmplifierStats& amps,
                                  std::size_t iterations) const {
  const auto& k = constants_;
  CostEstimate cost;

  const double settles = static_cast<double>(backend.xbar.mvm_ops +
                                             backend.xbar.solve_ops +
                                             backend.noc.global_settles);
  const double cells = static_cast<double>(backend.xbar.cells_written);
  const double pulses = static_cast<double>(backend.xbar.write_pulses);
  const double amp_ops = static_cast<double>(backend.amps.vector_ops +
                                             amps.vector_ops);
  const double amp_elements = static_cast<double>(backend.amps.element_ops +
                                                  amps.element_ops);
  const double hops = static_cast<double>(backend.noc.value_hops);
  const double iters = static_cast<double>(iterations);

  cost.latency_s = settles * k.settle_s + cells * k.write_cell_s +
                   pulses * k.write_pulse_s + amp_ops * k.amp_vector_op_s +
                   hops * k.noc_value_hop_s +
                   iters * k.controller_iteration_s;
  cost.energy_j = settles * k.settle_j + cells * k.write_cell_j +
                  pulses * k.write_pulse_j + amp_elements * k.amp_element_j +
                  hops * k.noc_value_hop_j + iters * k.controller_iteration_j;
  return cost;
}

CostEstimate HardwareModel::price_counters(
    const obs::CostCounters& counters) const {
  const auto& k = constants_;
  CostEstimate cost;

  const double settles = static_cast<double>(counters.settles);
  const double cells = static_cast<double>(counters.cells_written);
  const double pulses = static_cast<double>(counters.write_pulses);
  const double amp_ops = static_cast<double>(counters.amp_vector_ops);
  const double amp_elements = static_cast<double>(counters.amp_element_ops);
  const double hops = static_cast<double>(counters.noc_value_hops);
  const double iters = static_cast<double>(counters.controller_iterations);

  cost.latency_s = settles * k.settle_s + cells * k.write_cell_s +
                   pulses * k.write_pulse_s + amp_ops * k.amp_vector_op_s +
                   hops * k.noc_value_hop_s +
                   iters * k.controller_iteration_s;
  cost.energy_j = settles * k.settle_j + cells * k.write_cell_j +
                  pulses * k.write_pulse_j + amp_elements * k.amp_element_j +
                  hops * k.noc_value_hop_j + iters * k.controller_iteration_j;
  return cost;
}

CostEstimate HardwareModel::estimate(const core::XbarSolveStats& stats) const {
  const core::BackendStats iterative =
      stats.backend.since(stats.programming);
  return price(iterative, stats.amps, stats.iterations);
}

CostEstimate HardwareModel::estimate_programming(
    const core::XbarSolveStats& stats) const {
  return price(stats.programming, {}, 0);
}

}  // namespace memlp::perf
