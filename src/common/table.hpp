// Plain-text table formatting for experiment harnesses.
//
// Every bench binary prints the rows/series of the paper figure it
// regenerates with this printer, so the outputs in EXPERIMENTS.md are
// uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace memlp {

/// Column-aligned text table with a title, a header row, and data rows.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Sets the header labels; must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row. Must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a double with `precision` significant-ish digits.
  static std::string num(double value, int precision = 4);

  /// Convenience: integer cell.
  static std::string num(long long value);

  /// Renders the table (title, rule, header, rule, rows, rule).
  [[nodiscard]] std::string str() const;

  /// Renders and writes to stdout. When MEMLP_CSV_DIR is set, also writes
  /// <dir>/<slug-of-title>.csv and <dir>/<slug-of-title>.json (best-effort).
  void print() const;

  /// Writes the table as CSV to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  /// Writes the table as a JSON artifact to `path`:
  ///   {"title": ..., "columns": [...], "rows": [{column: value, ...}, ...]}
  /// Cells that parse fully as numbers become JSON numbers, everything else
  /// stays a string. Returns false on I/O failure.
  bool write_json(const std::string& path) const;

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace memlp
