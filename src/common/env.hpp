// Environment-variable configuration helpers for bench harnesses.
//
// The figure harnesses default to a sweep that finishes in minutes on a small
// container; setting MEMLP_FULL=1 selects the paper's full sweep
// (1024 constraints, 100 trials). Individual knobs can also be overridden,
// e.g. MEMLP_TRIALS=20 MEMLP_MAX_M=512.
#pragma once

#include <cstdint>
#include <string>

namespace memlp {

/// Reads an integer environment variable, returning `fallback` when unset or
/// unparsable.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Reads a double environment variable, returning `fallback` when unset.
double env_double(const std::string& name, double fallback);

/// Reads a boolean environment variable ("1"/"true"/"yes", case-insensitive).
bool env_bool(const std::string& name, bool fallback);

/// True when MEMLP_FULL=1: run the paper's full sweep sizes and trial counts.
bool full_sweep_requested();

}  // namespace memlp
