// Error and exception types shared across all memlp libraries.
//
// memlp follows the C++ Core Guidelines error-handling philosophy (E.2/E.3):
// exceptions are used for errors that the immediate caller cannot reasonably
// be expected to handle — dimension mismatches, contract violations, and
// numerical failures that indicate a programming error or an unusable input.
// Expected outcomes (e.g. "this LP is infeasible") are NOT exceptions; they
// are encoded in result types such as memlp::SolveResult.
#pragma once

#include <stdexcept>
#include <string>

namespace memlp {

/// Base class for all memlp exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A precondition, postcondition, or invariant check failed.
/// Indicates a bug in the caller (precondition) or in memlp itself.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

/// Operands have incompatible shapes (e.g. GEMV with mismatched sizes).
class DimensionError : public Error {
 public:
  explicit DimensionError(const std::string& what) : Error(what) {}
};

/// A numerical operation could not be completed (singular matrix, overflow,
/// non-convergent iterative method where convergence is required).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// A configuration value (hardware parameter, solver option) is invalid.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

}  // namespace memlp
