// memlp::par — minimal deterministic threading layer.
//
// A chunked thread pool (plain std::thread + std::atomic, no work stealing):
// one process-wide pool whose workers claim contiguous index chunks off an
// atomic counter. It exists for the three places that dominate wall time —
// per-tile crossbar operations (noc/tiled.cpp), dense row elimination and
// Schur assembly (linalg/lu.cpp, core/pdip.cpp), and fanning independent LPs
// across the pool (core/batch.hpp).
//
// Determinism contract: a parallel region must produce bit-identical results
// at every thread count. The pool guarantees that each index in [0, count)
// is visited exactly once; the *caller* guarantees that
//   * the work done for index i is independent of which thread runs it and
//     of chunk boundaries (per-index state only — e.g. per-tile split RNGs),
//   * any cross-index reduction is order-insensitive (integer counters) or
//     merged by the caller in index order after the region.
// Every parallel site in memlp follows this contract; test_par asserts it.
//
// Thread count resolution: an explicit per-call `threads` argument wins;
// 0 defers to default_threads() (the MEMLP_THREADS environment variable,
// else std::thread::hardware_concurrency). Nested regions — a parallel_for
// issued from inside a worker or from a thread already running a region —
// execute inline on the calling thread, so composed parallel code (batched
// solves over tiled backends) neither deadlocks nor oversubscribes.
#pragma once

#include <cstddef>
#include <functional>

namespace memlp::par {

/// Worker count used when a call passes `threads = 0`: MEMLP_THREADS when
/// set to a positive integer (clamped to 256), otherwise the hardware
/// concurrency (at least 1). Resolved once per process.
std::size_t default_threads();

/// Dense, stable per-thread slot index for observability buffers: each
/// thread (the main thread, pool workers, anything else) is assigned the
/// next free index on its first call and keeps it for its lifetime. Values
/// are < thread_slot_limit(); threads past the limit share the last slot,
/// so per-slot consumers must still guard each slot (the profiler holds one
/// lock per slot). Merging per-slot buffers in increasing slot order is the
/// deterministic-merge order the parallelism contract above prescribes.
std::size_t thread_slot() noexcept;

/// Exclusive upper bound on thread_slot() values (pool cap + main thread).
std::size_t thread_slot_limit() noexcept;

/// Observability hooks around pooled parallel execution, for building
/// per-thread timelines (memlp::obs::Profiler installs these; none by
/// default). All callbacks must be thread-safe and cheap:
///   * region_begin/region_end fire on the calling thread around one
///     Pool::run (regions are serialized, so these never overlap);
///     region_begin fires before any worker can observe the job.
///   * chunk fires on the executing thread (caller or worker) after each
///     completed chunk with the half-open index range and its duration.
/// The inline paths (threads <= 1, nested regions) bypass the pool and fire
/// no hooks — timelines describe pooled execution only, so aggregated
/// profiles stay identical at every thread count.
struct TimelineHooks {
  void (*region_begin)(std::size_t count, std::size_t threads);
  void (*region_end)(double elapsed_s);
  void (*chunk)(std::size_t slot, std::size_t begin, std::size_t end,
                double elapsed_s);
};

/// Installs (nullptr clears) the process-wide timeline hooks. The pointed-to
/// struct must outlive all parallel regions; install before regions run.
void set_timeline_hooks(const TimelineHooks* hooks) noexcept;

/// Second, independent region-begin channel (the profiler owns the
/// TimelineHooks one): `hook` fires on the launching thread under the
/// pool's region serialization, before any worker can observe the job —
/// state it writes is visible to every worker of that region. Used by
/// memlp::obs to propagate the per-solve trace context into pooled worker
/// chunks (obs/context.hpp). nullptr clears. Like the timeline hooks, the
/// inline paths (threads <= 1, nested regions) fire nothing — they stay on
/// the calling thread, where thread-local state already applies.
void set_region_begin_hook(void (*hook)() noexcept) noexcept;

/// True on a thread currently executing inside a parallel region (pool
/// worker or a caller participating in its own region). Such threads run
/// further parallel_for calls inline.
bool in_parallel_region() noexcept;

/// Runs body(begin, end) over disjoint ranges covering [0, count), each at
/// most `grain` long, distributed across up to `threads` threads (0 =
/// default_threads()). The calling thread participates. Exceptions thrown by
/// `body` are rethrown on the calling thread (first one wins).
void parallel_for_ranges(std::size_t count, std::size_t grain,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t threads = 0);

/// Runs body(i) for every i in [0, count) (grain 1 — right for coarse items
/// like crossbar tiles or whole LP solves).
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace memlp::par
