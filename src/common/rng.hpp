// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in memlp (LP workload generators, process
// variation, write noise) draws from an explicitly seeded Rng so that every
// experiment in EXPERIMENTS.md is bit-reproducible. The generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64 as its authors
// recommend; it is small, fast, and passes BigCrush.
#pragma once

#include <array>
#include <cstdint>

namespace memlp {

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions, but the built-in helpers below are preferred
/// for cross-platform reproducibility (libstdc++/libc++ distributions differ).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal deviate (Box–Muller; caches the second deviate).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Uniform double in [-1, 1) — the paper's `Rd` matrix entries (Eq. 18).
  double signed_unit() noexcept;

  /// Returns an independent generator derived from this one's stream.
  /// Used to hand each trial / each component its own stream.
  Rng split() noexcept;

  /// Advances the state as if 2^128 outputs were drawn (xoshiro jump).
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace memlp
