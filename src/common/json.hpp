// Minimal JSON emission helpers.
//
// Shared by the observability layer (JSONL trace sinks, metrics snapshots)
// and the bench artifact writer (TextTable::write_json). Emission only — the
// repo never needs to *parse* JSON outside of tests.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace memlp {

/// Escapes `s` for use inside a JSON string literal (no surrounding quotes).
std::string json_escape(std::string_view s);

/// `s` as a quoted JSON string.
std::string json_string(std::string_view s);

/// A double as a JSON token. Non-finite values (which JSON cannot represent)
/// become `null`; round-trippable precision otherwise.
std::string json_number(double value);

/// An integer as a JSON token.
std::string json_number(std::int64_t value);

}  // namespace memlp
