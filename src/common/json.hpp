// Minimal JSON emission helpers and a small parser.
//
// Emission is shared by the observability layer (JSONL trace sinks, metrics
// snapshots) and the bench artifact writer. The parser (memlp::json) exists
// for the consumers of those artifacts — tools/memlp_report diffs
// BENCH_*.json trees, and tests validate exporter output — so it favors
// clear errors over speed and supports exactly standard JSON (no comments,
// no trailing commas).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace memlp {

/// Escapes `s` for use inside a JSON string literal (no surrounding quotes).
std::string json_escape(std::string_view s);

/// `s` as a quoted JSON string.
std::string json_string(std::string_view s);

/// A double as a JSON token. Non-finite values (which JSON cannot represent)
/// become `null`; round-trippable precision otherwise.
std::string json_number(double value);

/// An integer as a JSON token.
std::string json_number(std::int64_t value);

namespace json {

/// Raised by parse() on malformed input, with a byte offset in the message.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A parsed JSON document node. Object members keep no insertion order
/// (std::map — artifact consumers address members by name).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }

  /// Typed accessors; throw ParseError when the node has another kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& as_array() const;
  [[nodiscard]] const std::map<std::string, Value>& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const noexcept;

  /// Convenience: member's number/string, or the fallback when absent or of
  /// the wrong kind.
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const noexcept;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;

  static Value make_null();
  static Value make_bool(bool v);
  static Value make_number(double v);
  static Value make_string(std::string v);
  static Value make_array(std::vector<Value> v);
  static Value make_object(std::map<std::string, Value> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parses one JSON document (throws ParseError on malformed input or
/// trailing garbage).
Value parse(std::string_view text);

}  // namespace json

}  // namespace memlp
