// Wall-clock stopwatch used to measure the *software* baselines
// (simplex / software PDIP), mirroring how the paper timed MATLAB linprog.
// Hardware (crossbar) latency is never measured by wall clock — it is
// estimated through memlp::perf::HardwareModel from operation counters.
#pragma once

#include <chrono>

namespace memlp {

/// Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  /// Restarts timing from now.
  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace memlp
