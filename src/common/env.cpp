#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <optional>

namespace memlp {
namespace {

std::optional<std::string> env_raw(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return std::nullopt;
  return std::string(value);  // memlint:allow(R9): one-shot env read at config load, not per-iteration work
}

}  // namespace

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const auto raw = env_raw(name);
  if (!raw) return fallback;
  try {
    return std::stoll(*raw);
  } catch (...) {
    return fallback;
  }
}

double env_double(const std::string& name, double fallback) {
  const auto raw = env_raw(name);
  if (!raw) return fallback;
  try {
    return std::stod(*raw);
  } catch (...) {
    return fallback;
  }
}

bool env_bool(const std::string& name, bool fallback) {
  auto raw = env_raw(name);
  if (!raw) return fallback;
  std::string v = *raw;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

bool full_sweep_requested() { return env_bool("MEMLP_FULL", false); }

}  // namespace memlp
