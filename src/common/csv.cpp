#include "common/csv.hpp"

#include <fstream>

namespace memlp {

std::string csv_escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_row(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ',';
    out += csv_escape(fields[i]);
  }
  out += '\n';
  return out;
}

std::string csv_table(const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  std::string out = csv_row(header);
  for (const auto& row : rows) out += csv_row(row);
  return out;
}

bool write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream file(path);
  if (!file) return false;
  file << csv_table(header, rows);
  return static_cast<bool>(file);
}

}  // namespace memlp
