// Minimal CSV writing for experiment exports.
//
// The bench harnesses print TextTables for humans; setting MEMLP_CSV_DIR
// makes them also drop machine-readable CSVs for plotting, via
// TextTable-compatible rows. Quoting follows RFC 4180 (quote fields
// containing comma, quote, or newline; double embedded quotes).
#pragma once

#include <string>
#include <vector>

namespace memlp {

/// Escapes one field per RFC 4180.
std::string csv_escape(const std::string& field);

/// Renders one row.
std::string csv_row(const std::vector<std::string>& fields);

/// Renders a whole table (header + rows).
std::string csv_table(const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows);

/// Writes a table to `path`; returns false (without throwing) when the file
/// cannot be opened — CSV export is best-effort.
bool write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace memlp
