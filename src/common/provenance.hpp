// Build/run provenance for artifacts.
//
// Every bench artifact and regenerated results/*.txt header records where
// its numbers came from: the git commit, the compiler, the build type, and
// the sanitizer/flag configuration. The git SHA is resolved at runtime from
// MEMLP_GIT_SHA when set (scripts/run_all.sh exports the working-tree HEAD,
// which cannot go stale), falling back to the SHA captured when CMake last
// configured, then to "unknown" (e.g. a tarball build).
#pragma once

#include <string>

namespace memlp {

/// The git commit this binary's numbers should be attributed to (see file
/// comment for the resolution order). Short-SHA form, or "unknown".
std::string git_sha();

/// Compiler id and version, e.g. "gcc 12.2.0" or "clang 16.0.6".
std::string compiler_id();

/// CMAKE_BUILD_TYPE the binary was built with, e.g. "RelWithDebInfo".
std::string build_type();

/// Non-default build flags worth recording next to timings: the sanitizer
/// configuration ("address", "thread") or "" for a plain build.
std::string build_flags();

}  // namespace memlp
