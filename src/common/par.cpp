#include "common/par.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/stopwatch.hpp"

namespace memlp::par {
namespace {

thread_local bool t_in_region = false;

constexpr std::size_t kThreadSlotLimit = 258;  // 256 workers + main + spare.

std::atomic<const TimelineHooks*> g_timeline_hooks{nullptr};

const TimelineHooks* timeline_hooks() noexcept {
  return g_timeline_hooks.load(std::memory_order_acquire);
}

using RegionBeginHook = void (*)() noexcept;

std::atomic<RegionBeginHook> g_region_begin_hook{nullptr};

/// One parallel region: participants claim chunk indices off `next` until
/// exhausted; the last completed chunk releases the caller. Heap-held via
/// shared_ptr so a late-waking worker can touch it safely after the caller
/// has already returned.
struct Job {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t count = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::exception_ptr error;  // first failure; guarded by the pool mutex.
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(std::size_t count, std::size_t grain, std::size_t threads,
           const std::function<void(std::size_t, std::size_t)>& body) {
    // Serialize whole regions: one job at a time keeps the pool free of
    // work-stealing machinery, and concurrent callers (rare — regions are
    // issued from the main thread or run inline inside workers) just queue.
    std::lock_guard<std::mutex> region(region_mutex_);
    auto job = std::make_shared<Job>();
    job->body = &body;
    job->count = count;
    job->grain = grain;
    job->chunks = (count + grain - 1) / grain;
    ensure_workers(threads - 1);
    // Region hooks fire under region_mutex_, before the job is published, so
    // hook state written in region_begin is visible to every worker (the job
    // hand-off below synchronizes) and region callbacks never overlap.
    const TimelineHooks* hooks = timeline_hooks();
    Stopwatch region_timer;
    if (hooks != nullptr && hooks->region_begin != nullptr)
      hooks->region_begin(count, threads);
    const RegionBeginHook begin_hook =
        g_region_begin_hook.load(std::memory_order_acquire);
    if (begin_hook != nullptr) begin_hook();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = job;
      ++epoch_;
    }
    wake_cv_.notify_all();
    // The caller participates; with every chunk claimed by someone, the
    // region completes even if no worker wakes in time.
    const bool was_in_region = t_in_region;
    t_in_region = true;
    execute(*job);
    t_in_region = was_in_region;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) == job->chunks;
      });
      job_.reset();
      if (job->error) std::rethrow_exception(job->error);
    }
    if (hooks != nullptr && hooks->region_end != nullptr)
      hooks->region_end(region_timer.seconds());
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  /// Grows the pool to at least `wanted` workers (bounded; workers persist
  /// for the process lifetime). Called with region_mutex_ held.
  void ensure_workers(std::size_t wanted) {
    wanted = std::min<std::size_t>(wanted, 256);
    while (workers_.size() < wanted)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void worker_loop() {
    t_in_region = true;
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock, [&] {
          return stop_ || (epoch_ != seen && job_ != nullptr);
        });
        if (stop_) return;
        seen = epoch_;
        job = job_;
      }
      execute(*job);
    }
  }

  void execute(Job& job) {
    const TimelineHooks* hooks = timeline_hooks();
    for (;;) {
      const std::size_t chunk =
          job.next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job.chunks) return;
      const std::size_t begin = chunk * job.grain;
      const std::size_t end = std::min(begin + job.grain, job.count);
      Stopwatch chunk_timer;
      try {
        (*job.body)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!job.error) job.error = std::current_exception();
      }
      if (hooks != nullptr && hooks->chunk != nullptr)
        hooks->chunk(thread_slot(), begin, end, chunk_timer.seconds());
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.chunks) {
        // Lock so the caller cannot miss the notify between its predicate
        // check and its wait.
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  std::mutex region_mutex_;  ///< one region at a time.
  std::mutex mutex_;         ///< guards job_/epoch_/stop_/Job::error.
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace

std::size_t default_threads() {
  static const std::size_t resolved = [] {
    const std::int64_t env = env_int("MEMLP_THREADS", 0);
    if (env > 0) return static_cast<std::size_t>(std::min<std::int64_t>(env, 256));
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{1} : static_cast<std::size_t>(hw);
  }();
  return resolved;
}

bool in_parallel_region() noexcept { return t_in_region; }

std::size_t thread_slot() noexcept {
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot = std::min(
      next_slot.fetch_add(1, std::memory_order_relaxed), kThreadSlotLimit - 1);
  return slot;
}

std::size_t thread_slot_limit() noexcept { return kThreadSlotLimit; }

void set_timeline_hooks(const TimelineHooks* hooks) noexcept {
  g_timeline_hooks.store(hooks, std::memory_order_release);
}

void set_region_begin_hook(void (*hook)() noexcept) noexcept {
  g_region_begin_hook.store(hook, std::memory_order_release);
}

void parallel_for_ranges(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t threads) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  if (threads == 0) threads = default_threads();
  const std::size_t chunks = (count + grain - 1) / grain;
  threads = std::min(threads, chunks);
  if (threads <= 1 || t_in_region) {
    // Serial / nested: one pass over the whole range. Chunk boundaries are
    // required not to affect results (see header), so this is equivalent.
    body(0, count);
    return;
  }
  Pool::instance().run(count, grain, threads, body);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  parallel_for_ranges(
      count, 1,
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      threads);
}

}  // namespace memlp::par
