#include "common/rng.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace memlp {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire-style rejection-free-enough reduction; bias is negligible for the
  // spans used here, but we use rejection for exactness.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t raw;
  do {
    raw = (*this)();
  } while (raw >= limit);
  return lo + static_cast<std::int64_t>(raw % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller with a guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::signed_unit() noexcept { return 2.0 * uniform() - 1.0; }

Rng Rng::split() noexcept {
  Rng child(0);
  child.s_ = s_;
  child.jump();
  // Advance the parent past the child's raw draws so their streams diverge.
  (*this)();
  return child;
}

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

}  // namespace memlp
