#include "common/contracts.hpp"

#include <atomic>

namespace memlp::detail {
namespace {

std::atomic<void (*)() noexcept> g_failure_hook{nullptr};

}  // namespace

void set_contract_failure_hook(void (*hook)() noexcept) noexcept {
  g_failure_hook.store(hook, std::memory_order_release);
}

void notify_contract_failure() noexcept {
  if (auto* hook = g_failure_hook.load(std::memory_order_acquire);
      hook != nullptr)
    hook();
}

}  // namespace memlp::detail
