// Lightweight contract-checking macros in the spirit of the Core Guidelines
// (I.6 "Prefer Expects() for expressing preconditions", I.8 Ensures()).
//
// All checks are active in every build type: this library is a research
// simulator where correctness matters far more than the nanoseconds a branch
// costs, and the hot loops (GEMV/LU) hoist their checks outside the loops.
#pragma once

#include <sstream>
#include <string>

#include "common/error.hpp"

namespace memlp::detail {

/// Installs (nullptr clears) a callback fired on every contract failure just
/// before ContractViolation is thrown. memlp::obs::Telemetry hooks this to
/// dump the flight recorder — the common library stays free of any obs
/// dependency. The hook must not throw.
void set_contract_failure_hook(void (*hook)() noexcept) noexcept;

/// Fires the installed failure hook (no-op when none); defined in
/// contracts.cpp so the hook slot has one home across translation units.
void notify_contract_failure() noexcept;

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  notify_contract_failure();
  throw ContractViolation(os.str());
}

}  // namespace memlp::detail

/// Precondition check. Throws memlp::ContractViolation on failure.
#define MEMLP_EXPECT(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::memlp::detail::contract_fail("Precondition", #cond, __FILE__,      \
                                     __LINE__, "");                        \
  } while (false)

/// Precondition check with an explanatory message (streamable expression).
#define MEMLP_EXPECT_MSG(cond, msg)                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream memlp_os_;                                        \
      memlp_os_ << msg;                                                    \
      ::memlp::detail::contract_fail("Precondition", #cond, __FILE__,      \
                                     __LINE__, memlp_os_.str());           \
    }                                                                      \
  } while (false)

/// Postcondition check.
#define MEMLP_ENSURE(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::memlp::detail::contract_fail("Postcondition", #cond, __FILE__,     \
                                     __LINE__, "");                        \
  } while (false)

/// Internal invariant check.
#define MEMLP_ASSERT(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::memlp::detail::contract_fail("Invariant", #cond, __FILE__,         \
                                     __LINE__, "");                        \
  } while (false)
