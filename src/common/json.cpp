#include "common/json.hpp"

#include <cmath>
#include <cstdio>

namespace memlp {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_string(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string json_number(std::int64_t value) { return std::to_string(value); }

}  // namespace memlp
