#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace memlp {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_string(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string json_number(std::int64_t value) { return std::to_string(value); }

namespace json {
namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw ParseError("json: " + what + " at offset " + std::to_string(offset));
}

/// Recursive-descent parser over a string_view with a depth cap.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    Value value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail(pos_, "trailing garbage");
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail(pos_, "nesting too deep");
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Value::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return Value::make_bool(true);
        fail(pos_, "invalid literal");
      case 'f':
        if (consume_literal("false")) return Value::make_bool(false);
        fail(pos_, "invalid literal");
      case 'n':
        if (consume_literal("null")) return Value::make_null();
        fail(pos_, "invalid literal");
      default:
        return parse_number();
    }
  }

  Value parse_object(std::size_t depth) {
    expect('{');
    std::map<std::string, Value> members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members[std::move(key)] = parse_value(depth + 1);
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == '}') return Value::make_object(std::move(members));
      if (next != ',') fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  Value parse_array(std::size_t depth) {
    expect('[');
    std::vector<Value> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == ']') return Value::make_array(std::move(items));
      if (next != ',') fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail(pos_ - 1, "invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two separate 3-byte sequences — artifact content is
          // ASCII in practice).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0U | (code >> 6U));
            out += static_cast<char>(0x80U | (code & 0x3FU));
          } else {
            out += static_cast<char>(0xE0U | (code >> 12U));
            out += static_cast<char>(0x80U | ((code >> 6U) & 0x3FU));
            out += static_cast<char>(0x80U | (code & 0x3FU));
          }
          break;
        }
        default:
          fail(pos_ - 1, "invalid escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail(start, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != 0) fail(start, "malformed number");
    return Value::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void wrong_kind(const char* wanted) {
  throw ParseError(std::string("json: value is not a ") + wanted);
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) wrong_kind("bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) wrong_kind("number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) wrong_kind("string");
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  if (kind_ != Kind::kArray) wrong_kind("array");
  return array_;
}

const std::map<std::string, Value>& Value::as_object() const {
  if (kind_ != Kind::kObject) wrong_kind("object");
  return object_;
}

const Value* Value::find(const std::string& key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double Value::number_or(const std::string& key, double fallback) const noexcept {
  const Value* member = find(key);
  return member != nullptr && member->is_number() ? member->number_ : fallback;
}

std::string Value::string_or(const std::string& key,
                             std::string fallback) const {
  const Value* member = find(key);
  return member != nullptr && member->is_string() ? member->string_
                                                  : std::move(fallback);
}

Value Value::make_null() { return {}; }

Value Value::make_bool(bool v) {
  Value value;
  value.kind_ = Kind::kBool;
  value.bool_ = v;
  return value;
}

Value Value::make_number(double v) {
  Value value;
  value.kind_ = Kind::kNumber;
  value.number_ = v;
  return value;
}

Value Value::make_string(std::string v) {
  Value value;
  value.kind_ = Kind::kString;
  value.string_ = std::move(v);
  return value;
}

Value Value::make_array(std::vector<Value> v) {
  Value value;
  value.kind_ = Kind::kArray;
  value.array_ = std::move(v);
  return value;
}

Value Value::make_object(std::map<std::string, Value> v) {
  Value value;
  value.kind_ = Kind::kObject;
  value.object_ = std::move(v);
  return value;
}

Value parse(std::string_view text) { return Parser(text).document(); }

}  // namespace json

}  // namespace memlp
