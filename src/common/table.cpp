#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/env.hpp"

namespace memlp {

void TextTable::set_header(std::vector<std::string> header) {
  MEMLP_EXPECT(rows_.empty());
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  MEMLP_EXPECT_MSG(row.size() == header_.size(),
                   "row arity " << row.size() << " != header arity "
                                << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::num(long long value) { return std::to_string(value); }

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  }();
  const auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(width[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  out += rule + line(header_) + rule;
  for (const auto& row : rows_) out += line(row);
  out += rule;
  return out;
}

namespace {

std::string slugify(const std::string& title) {
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    else if (!slug.empty() && slug.back() != '-')
      slug += '-';
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug.empty() ? "table" : slug;
}

}  // namespace

void TextTable::print() const {
  std::fputs(str().c_str(), stdout);
  const char* dir = std::getenv("MEMLP_CSV_DIR");
  if (dir != nullptr && *dir != 0)
    (void)write_csv(std::string(dir) + "/" + slugify(title_) + ".csv");
}

bool TextTable::write_csv(const std::string& path) const {
  return memlp::write_csv(path, header_, rows_);
}

}  // namespace memlp
