#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/json.hpp"

namespace memlp {

void TextTable::set_header(std::vector<std::string> header) {
  MEMLP_EXPECT(rows_.empty());
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  MEMLP_EXPECT_MSG(row.size() == header_.size(),
                   "row arity " << row.size() << " != header arity "
                                << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::num(long long value) { return std::to_string(value); }

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  }();
  const auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(width[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  out += rule + line(header_) + rule;
  for (const auto& row : rows_) out += line(row);
  out += rule;
  return out;
}

namespace {

std::string slugify(const std::string& title) {
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    else if (!slug.empty() && slug.back() != '-')
      slug += '-';
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug.empty() ? "table" : slug;
}

}  // namespace

void TextTable::print() const {
  std::fputs(str().c_str(), stdout);
  const char* dir = std::getenv("MEMLP_CSV_DIR");
  if (dir != nullptr && *dir != 0) {
    const std::string stem = std::string(dir) + "/" + slugify(title_);
    (void)write_csv(stem + ".csv");
    (void)write_json(stem + ".json");
  }
}

bool TextTable::write_csv(const std::string& path) const {
  return memlp::write_csv(path, header_, rows_);
}

namespace {

std::string cell_to_json(const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    const double value = std::strtod(cell.c_str(), &end);
    if (end != nullptr && *end == 0) return json_number(value);
  }
  return json_string(cell);
}

}  // namespace

bool TextTable::write_json(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::string out = "{\"title\":" + json_string(title_) + ",\"columns\":[";
  for (std::size_t c = 0; c < header_.size(); ++c)
    out += (c ? "," : "") + json_string(header_[c]);
  out += "],\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += r ? ",{" : "{";
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      out += (c ? "," : "") + json_string(header_[c]) + ":" +
             cell_to_json(rows_[r][c]);
    }
    out += "}";
  }
  out += "]}\n";
  std::fputs(out.c_str(), file);
  std::fclose(file);
  return true;
}

}  // namespace memlp
