#include "common/provenance.hpp"

#include <cstdlib>

namespace memlp {

#ifndef MEMLP_GIT_SHA_CONFIGURE
#define MEMLP_GIT_SHA_CONFIGURE "unknown"
#endif
#ifndef MEMLP_BUILD_TYPE
#define MEMLP_BUILD_TYPE "unknown"
#endif
#ifndef MEMLP_SANITIZE_CONFIG
#define MEMLP_SANITIZE_CONFIG ""
#endif

std::string git_sha() {
  const char* env = std::getenv("MEMLP_GIT_SHA");
  if (env != nullptr && *env != 0) return env;
  return MEMLP_GIT_SHA_CONFIGURE;
}

std::string compiler_id() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string build_type() { return MEMLP_BUILD_TYPE; }

std::string build_flags() {
  const std::string sanitize = MEMLP_SANITIZE_CONFIG;
  if (sanitize.empty() || sanitize == "off") return "";
  return "sanitize=" + sanitize;
}

}  // namespace memlp
