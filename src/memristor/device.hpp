// Memristor device model.
//
// Implements the HP Labs TiO2 linear ion-drift model the paper quotes as
// Eq. (4):  M(q) = R_OFF · (1 − µ_v·R_ON/D² · q),
// in its equivalent state-variable form: with w ∈ [0,1] the normalized doped
// region width, M(w) = R_ON·w + R_OFF·(1−w) and dw/dt = µ_v·R_ON/D² · i(t)
// (Strukov et al., Nature 2008). Switching only occurs above the voltage
// threshold |V| > V_th; below it the device behaves as a plain resistor,
// which is what makes read-mode computation non-destructive (§2.3).
//
// The Device class simulates individual write pulses; the crossbar simulator
// does not integrate per-device ODEs in its hot path — it uses the derived
// ProgrammingModel constants (pulses per level transition, time and energy
// per pulse), which are calibrated from this model and unit-tested against
// it.
#pragma once

#include <cstddef>

#include "common/error.hpp"

namespace memlp::mem {

/// Physical device parameters (defaults: HP TiO2-like device; values in the
/// range used by the memristor literature the paper cites [3][12][22][23]).
struct DeviceParameters {
  double r_on_ohm = 1.0e3;        ///< Low resistance state R_ON.
  double r_off_ohm = 1.0e6;       ///< High resistance state R_OFF.
  double thickness_nm = 10.0;     ///< Film thickness D.
  /// Effective dopant mobility µ_v. Chosen so a 2 V / 10 ns pulse moves the
  /// state by ~1e-2 — the behavioural switching speed of fast TiO2/ReRAM
  /// devices (the purely linear drift model with the HP paper's DC mobility
  /// would need ms-scale pulses; real devices switch in ns via nonlinear
  /// drift, which this effective value stands in for).
  double mobility_nm2_per_vs = 1.0e9;
  double v_threshold = 1.0;       ///< Switching threshold V_th (volts).
  double v_write = 2.0;           ///< Write pulse amplitude V_dd (> V_th).
  double pulse_width_s = 10e-9;   ///< Write pulse width (10 ns, [23]-range).

  /// Low/high conductance bounds implied by the resistance window.
  [[nodiscard]] double g_min() const noexcept { return 1.0 / r_off_ohm; }
  [[nodiscard]] double g_max() const noexcept { return 1.0 / r_on_ohm; }

  /// Throws ConfigError when physically inconsistent.
  void validate() const;
};

/// A single memristor with internal state.
class Device {
 public:
  /// Creates the device at the given initial state w ∈ [0,1]
  /// (0 = fully OFF / R_OFF, 1 = fully ON / R_ON).
  explicit Device(DeviceParameters params, double initial_state = 0.0);

  /// Normalized doped-region width w ∈ [0,1].
  [[nodiscard]] double state() const noexcept { return w_; }

  /// Current memristance M(w) = R_ON·w + R_OFF·(1−w).
  [[nodiscard]] double memristance() const noexcept;

  /// Current conductance 1/M(w).
  [[nodiscard]] double conductance() const noexcept;

  /// Applies a voltage pulse of the given amplitude and duration.
  /// Below threshold the state is unchanged (resistor behaviour).
  /// Positive voltage grows w (towards R_ON), negative shrinks it.
  /// Returns the energy dissipated by the pulse (joules).
  double apply_pulse(double volts, double seconds);

  /// Number of standard write pulses (params.v_write / params.pulse_width_s)
  /// needed to move the conductance from its current value to within
  /// `tolerance` (relative) of `target_g`; simulates the pulses.
  /// Returns the pulse count (capped at `max_pulses`).
  std::size_t program_to_conductance(double target_g,
                                     double tolerance = 0.01,
                                     std::size_t max_pulses = 10'000);

  [[nodiscard]] const DeviceParameters& params() const noexcept {
    return params_;
  }

 private:
  DeviceParameters params_;
  double w_;
};

}  // namespace memlp::mem
