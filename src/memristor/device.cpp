#include "memristor/device.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace memlp::mem {

void DeviceParameters::validate() const {
  if (r_on_ohm <= 0 || r_off_ohm <= 0)
    throw ConfigError("device: resistances must be positive");
  if (r_on_ohm >= r_off_ohm)
    throw ConfigError("device: R_ON must be below R_OFF");
  if (thickness_nm <= 0) throw ConfigError("device: thickness must be > 0");
  if (mobility_nm2_per_vs <= 0)
    throw ConfigError("device: mobility must be > 0");
  if (v_threshold <= 0) throw ConfigError("device: V_th must be > 0");
  if (std::abs(v_write) <= v_threshold)
    throw ConfigError("device: |V_write| must exceed V_th");
  if (pulse_width_s <= 0)
    throw ConfigError("device: pulse width must be > 0");
}

Device::Device(DeviceParameters params, double initial_state)
    : params_(params), w_(std::clamp(initial_state, 0.0, 1.0)) {
  params_.validate();
}

double Device::memristance() const noexcept {
  return params_.r_on_ohm * w_ + params_.r_off_ohm * (1.0 - w_);
}

double Device::conductance() const noexcept { return 1.0 / memristance(); }

double Device::apply_pulse(double volts, double seconds) {
  MEMLP_EXPECT(seconds >= 0.0);
  const double resistance_before = memristance();
  if (std::abs(volts) > params_.v_threshold) {
    // Linear ion drift: dw/dt = µ_v·R_ON/D² · i(t), integrated with a small
    // fixed step so the w-dependence of the current is captured.
    const double k = params_.mobility_nm2_per_vs * params_.r_on_ohm /
                     (params_.thickness_nm * params_.thickness_nm);
    constexpr int kSteps = 16;
    const double dt = seconds / kSteps;
    for (int step = 0; step < kSteps; ++step) {
      const double current = volts / memristance();
      w_ = std::clamp(w_ + k * current * dt, 0.0, 1.0);
    }
  }
  // Energy ≈ V²/R · t with the pre-pulse resistance (adequate for the small
  // per-pulse state change).
  return volts * volts / resistance_before * seconds;
}

std::size_t Device::program_to_conductance(double target_g, double tolerance,
                                           std::size_t max_pulses) {
  MEMLP_EXPECT_MSG(
      target_g >= params_.g_min() * (1 - 1e-12) &&
          target_g <= params_.g_max() * (1 + 1e-12),
      "target conductance " << target_g << " outside device window ["
                            << params_.g_min() << ", " << params_.g_max()
                            << "]");
  // Program-and-verify: fixed-width pulses walk toward the target; when the
  // sign of the error flips (overshoot) the pulse width is halved, emulating
  // the amplitude/width adjustment of §3.3.
  std::size_t pulses = 0;
  double width = params_.pulse_width_s;
  double previous_direction = 0.0;
  while (pulses < max_pulses) {
    const double g = conductance();
    if (std::abs(g - target_g) <= tolerance * target_g) break;
    const double direction = target_g > g ? 1.0 : -1.0;
    if (previous_direction != 0.0 && direction != previous_direction)
      width = std::max(width * 0.5, params_.pulse_width_s * 1e-6);
    previous_direction = direction;
    apply_pulse(direction * params_.v_write, width);
    ++pulses;
  }
  return pulses;
}

}  // namespace memlp::mem
