#include "memristor/variation.hpp"

#include <cmath>

#include "common/error.hpp"

namespace memlp::mem {

VariationModel::VariationModel(VariationKind kind, double magnitude)
    : kind_(kind), magnitude_(magnitude) {
  if (magnitude < 0.0 || magnitude >= 1.0)
    throw ConfigError("variation magnitude must be in [0, 1)");
  if (kind == VariationKind::kNone && magnitude != 0.0)
    throw ConfigError("kNone variation must have zero magnitude");
}

double VariationModel::perturb(double value, Rng& rng) const {
  switch (kind_) {
    case VariationKind::kNone:
      return value;
    case VariationKind::kUniform:
      return value * (1.0 + magnitude_ * rng.signed_unit());
    case VariationKind::kLogNormal: {
      // 3σ of the log-normal exponent matches the max uniform spread so the
      // two models are comparable at equal `magnitude`.
      const double sigma = magnitude_ / 3.0;
      return value * std::exp(sigma * rng.normal());
    }
  }
  return value;  // unreachable
}

void VariationModel::perturb(Matrix& m, Rng& rng) const {
  if (kind_ == VariationKind::kNone) return;
  auto data = m.data();
  for (double& v : data) v = perturb(v, rng);
}

}  // namespace memlp::mem
