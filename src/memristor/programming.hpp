// Write-path model: conductance-level quantization and pulse accounting.
//
// §3.3: "Programming a memristor device to a specific resistance is achieved
// by adjusting the amplitude and width of the write pulse (or the total
// number of write pulse spikes)." We model the common pulse-train scheme:
// the conductance window [g_min, g_max] is divided into `levels` programmable
// states, and moving a cell by k levels costs k pulses. The per-pulse time
// and energy constants live in perf::HardwareModel; this class provides the
// level arithmetic and is calibrated against mem::Device in the unit tests.
#pragma once

#include <cstddef>

#include "memristor/device.hpp"

namespace memlp::mem {

/// Maps target conductances to discrete device levels.
class ProgrammingModel {
 public:
  /// `levels` >= 2 discrete conductance states across the device window.
  /// 2^8 = 256 levels corresponds to 8-bit write precision.
  ProgrammingModel(const DeviceParameters& device, std::size_t levels);

  [[nodiscard]] std::size_t levels() const noexcept { return levels_; }
  [[nodiscard]] double g_min() const noexcept { return g_min_; }
  [[nodiscard]] double g_max() const noexcept { return g_max_; }

  /// Index of the closest programmable level for `g` (clamped to window).
  [[nodiscard]] std::size_t level_for(double g) const noexcept;

  /// Conductance value of level `index`.
  [[nodiscard]] double conductance_of(std::size_t index) const noexcept;

  /// Quantizes `g` to the nearest programmable conductance.
  [[nodiscard]] double quantize(double g) const noexcept;

  /// Pulses needed to move a cell from conductance `from` to `to`
  /// (= level distance; 0 when both quantize to the same level).
  [[nodiscard]] std::size_t pulses_for(double from, double to) const noexcept;

 private:
  std::size_t levels_;
  double g_min_;
  double g_max_;
  double step_;
};

}  // namespace memlp::mem
