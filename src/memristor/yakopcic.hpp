// Yakopcic generalized memristor model.
//
// The paper's latency/energy estimates are "based on memristor model from
// [23]" (Yakopcic et al.). This class implements that device model — a
// threshold-driven state equation with a sinh I–V — alongside the simpler
// HP linear ion-drift Device. It is used to cross-check the write-path
// constants of perf::HardwareModel (see test_yakopcic.cpp's calibration
// tests); the crossbar hot path works with derived constants, not per-cell
// ODE integration.
//
//   I(V, x) = a1·x·sinh(b·V)          V ≥ 0
//             a2·x·sinh(b·V)          V < 0
//   dx/dt   = η·g(V)·f(x)
//   g(V)    = Ap·(e^V − e^Vp)         V >  Vp        (SET)
//             −An·(e^−V − e^Vn)       V < −Vn        (RESET)
//             0                       otherwise      (read-safe)
//   f(x)    = windowing that slows motion near the state boundaries.
#pragma once

#include <cstddef>

#include "common/error.hpp"

namespace memlp::mem {

/// Parameters of the Yakopcic model (defaults in the published range for
/// fast ReRAM-class devices).
struct YakopcicParameters {
  double a1 = 0.17;        ///< conductance factor, positive branch (A).
  double a2 = 0.17;        ///< conductance factor, negative branch (A).
  double b = 0.05;         ///< sinh slope (1/V).
  double v_p = 1.0;        ///< positive (SET) threshold (V).
  double v_n = 1.0;        ///< negative (RESET) threshold (V).
  double amp_p = 4.0e3;    ///< SET rate factor Ap (1/s).
  double amp_n = 4.0e3;    ///< RESET rate factor An (1/s).
  double x_on = 1.0;       ///< upper state bound.
  double x_off = 0.02;     ///< lower state bound (device never fully opens).
  double eta = 1.0;        ///< polarity (+1 or −1).

  void validate() const;
};

/// A single Yakopcic-model memristor.
class YakopcicDevice {
 public:
  explicit YakopcicDevice(YakopcicParameters params,
                          double initial_state = 0.02);

  /// Internal state variable x.
  [[nodiscard]] double state() const noexcept { return x_; }

  /// Device current at the given voltage (sinh I–V).
  [[nodiscard]] double current(double volts) const noexcept;

  /// Small-signal conductance at the given read voltage (I/V).
  [[nodiscard]] double conductance(double read_volts = 0.1) const noexcept;

  /// Applies a voltage pulse; integrates the state equation with sub-steps.
  /// Sub-threshold pulses leave the state unchanged (non-destructive reads).
  /// Returns the dissipated energy (J).
  double apply_pulse(double volts, double seconds);

  /// Drives the state to within `tolerance` of `target_state` with
  /// program-and-verify pulses (width halves on overshoot). Returns the
  /// pulse count (capped at max_pulses).
  std::size_t program_to_state(double target_state, double tolerance = 0.01,
                               std::size_t max_pulses = 10'000);

  [[nodiscard]] const YakopcicParameters& params() const noexcept {
    return params_;
  }

 private:
  [[nodiscard]] double rate(double volts) const noexcept;
  [[nodiscard]] double window(double direction) const noexcept;

  YakopcicParameters params_;
  double x_;
};

}  // namespace memlp::mem
