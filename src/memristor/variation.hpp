// Process-variation model for memristor crossbars.
//
// Implements Eq. (18) of the paper:
//     M' = M + M ∘ (var · Rd)
// where `var` is the maximum variation percentage (5%–20% per [22]) and Rd
// has i.i.d. entries uniform in (−1, 1). The paper resamples variation on
// every write ("process variation differs from each time of writing", §4.3),
// which this model reproduces: a fresh draw is applied each time a cell is
// programmed.
//
// A log-normal variant is provided as an ablation (geometry-variation
// studies such as [22] often report multiplicative log-normal spreads).
#pragma once

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace memlp::mem {

/// Shape of the multiplicative variation distribution.
enum class VariationKind {
  kNone,      ///< Ideal devices.
  kUniform,   ///< Eq. (18): factor 1 + var·U(−1,1).
  kLogNormal  ///< factor exp(σ·N(0,1)) with σ chosen to match `magnitude`
              ///< as the ~max (3σ) relative spread.
};

/// Multiplicative per-cell variation applied at write time.
class VariationModel {
 public:
  /// `magnitude` is the paper's `var` — the maximum variation fraction
  /// (e.g. 0.10 for 10%). Must be in [0, 1).
  VariationModel(VariationKind kind, double magnitude);

  /// Ideal (no-variation) model.
  static VariationModel none() { return {VariationKind::kNone, 0.0}; }

  /// Uniform model per Eq. (18).
  static VariationModel uniform(double magnitude) {
    return {VariationKind::kUniform, magnitude};
  }

  [[nodiscard]] VariationKind kind() const noexcept { return kind_; }
  [[nodiscard]] double magnitude() const noexcept { return magnitude_; }

  /// Returns `value` with one fresh variation draw applied.
  double perturb(double value, Rng& rng) const;

  /// Applies an independent draw to every element of `m` in place.
  void perturb(Matrix& m, Rng& rng) const;

 private:
  VariationKind kind_;
  double magnitude_;
};

}  // namespace memlp::mem
