#include "memristor/programming.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace memlp::mem {

ProgrammingModel::ProgrammingModel(const DeviceParameters& device,
                                   std::size_t levels)
    : levels_(levels), g_min_(device.g_min()), g_max_(device.g_max()) {
  device.validate();
  if (levels < 2) throw ConfigError("programming model needs >= 2 levels");
  step_ = (g_max_ - g_min_) / static_cast<double>(levels_ - 1);
}

std::size_t ProgrammingModel::level_for(double g) const noexcept {
  const double clamped = std::clamp(g, g_min_, g_max_);
  const double index = std::round((clamped - g_min_) / step_);
  return static_cast<std::size_t>(index);
}

double ProgrammingModel::conductance_of(std::size_t index) const noexcept {
  const std::size_t clamped = std::min(index, levels_ - 1);
  return g_min_ + static_cast<double>(clamped) * step_;
}

double ProgrammingModel::quantize(double g) const noexcept {
  return conductance_of(level_for(g));
}

std::size_t ProgrammingModel::pulses_for(double from,
                                         double to) const noexcept {
  const auto a = level_for(from);
  const auto b = level_for(to);
  return a > b ? a - b : b - a;
}

}  // namespace memlp::mem
