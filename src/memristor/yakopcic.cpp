#include "memristor/yakopcic.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace memlp::mem {

void YakopcicParameters::validate() const {
  if (a1 <= 0 || a2 <= 0) throw ConfigError("yakopcic: a1, a2 must be > 0");
  if (b <= 0) throw ConfigError("yakopcic: b must be > 0");
  if (v_p <= 0 || v_n <= 0)
    throw ConfigError("yakopcic: thresholds must be > 0");
  if (amp_p <= 0 || amp_n <= 0)
    throw ConfigError("yakopcic: rate factors must be > 0");
  if (!(x_off >= 0.0 && x_off < x_on && x_on <= 1.0))
    throw ConfigError("yakopcic: need 0 <= x_off < x_on <= 1");
  if (eta != 1.0 && eta != -1.0)
    throw ConfigError("yakopcic: eta must be +1 or -1");
}

YakopcicDevice::YakopcicDevice(YakopcicParameters params,
                               double initial_state)
    : params_(params),
      x_(std::clamp(initial_state, params.x_off, params.x_on)) {
  params_.validate();
}

double YakopcicDevice::current(double volts) const noexcept {
  const double amplitude = volts >= 0.0 ? params_.a1 : params_.a2;
  return amplitude * x_ * std::sinh(params_.b * volts);
}

double YakopcicDevice::conductance(double read_volts) const noexcept {
  return current(read_volts) / read_volts;
}

double YakopcicDevice::rate(double volts) const noexcept {
  if (volts > params_.v_p)
    return params_.amp_p * (std::exp(volts) - std::exp(params_.v_p));
  if (volts < -params_.v_n)
    return -params_.amp_n * (std::exp(-volts) - std::exp(params_.v_n));
  return 0.0;
}

double YakopcicDevice::window(double direction) const noexcept {
  // Motion slows linearly near the approached boundary.
  const double span = params_.x_on - params_.x_off;
  if (direction > 0.0) return (params_.x_on - x_) / span;
  return (x_ - params_.x_off) / span;
}

double YakopcicDevice::apply_pulse(double volts, double seconds) {
  MEMLP_EXPECT(seconds >= 0.0);
  double energy_j = 0.0;
  constexpr int kSteps = 16;
  const double dt = seconds / kSteps;
  for (int step = 0; step < kSteps; ++step) {
    energy_j += volts * current(volts) * dt;
    const double g = params_.eta * rate(volts);
    if (g != 0.0)
      x_ = std::clamp(x_ + g * window(g) * dt, params_.x_off, params_.x_on);
  }
  return std::abs(energy_j);
}

std::size_t YakopcicDevice::program_to_state(double target_state,
                                             double tolerance,
                                             std::size_t max_pulses) {
  MEMLP_EXPECT_MSG(
      target_state >= params_.x_off && target_state <= params_.x_on,
      "target state outside [x_off, x_on]");
  std::size_t pulses = 0;
  double width = 1e-6;
  double previous_direction = 0.0;
  while (pulses < max_pulses) {
    if (std::abs(x_ - target_state) <=
        tolerance * std::max(target_state, params_.x_off))
      break;
    const double direction = target_state > x_ ? 1.0 : -1.0;
    if (previous_direction != 0.0 && direction != previous_direction)
      width = std::max(width * 0.5, 1e-12);
    previous_direction = direction;
    const double volts =
        direction > 0.0 ? params_.v_p + 0.5 : -(params_.v_n + 0.5);
    apply_pulse(params_.eta > 0 ? volts : -volts, width);
    ++pulses;
  }
  return pulses;
}

}  // namespace memlp::mem
