file(REMOVE_RECURSE
  "CMakeFiles/memlp_benchutil.dir/bench_util.cpp.o"
  "CMakeFiles/memlp_benchutil.dir/bench_util.cpp.o.d"
  "libmemlp_benchutil.a"
  "libmemlp_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlp_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
