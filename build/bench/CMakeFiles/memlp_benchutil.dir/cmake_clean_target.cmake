file(REMOVE_RECURSE
  "libmemlp_benchutil.a"
)
