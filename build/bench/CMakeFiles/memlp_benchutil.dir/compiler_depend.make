# Empty compiler generated dependencies file for memlp_benchutil.
# This may be replaced when dependencies are built.
