file(REMOVE_RECURSE
  "CMakeFiles/ablation_variation.dir/ablation_variation.cpp.o"
  "CMakeFiles/ablation_variation.dir/ablation_variation.cpp.o.d"
  "ablation_variation"
  "ablation_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
