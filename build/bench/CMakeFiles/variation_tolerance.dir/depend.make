# Empty dependencies file for variation_tolerance.
# This may be replaced when dependencies are built.
