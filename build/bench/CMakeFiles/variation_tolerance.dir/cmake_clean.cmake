file(REMOVE_RECURSE
  "CMakeFiles/variation_tolerance.dir/variation_tolerance.cpp.o"
  "CMakeFiles/variation_tolerance.dir/variation_tolerance.cpp.o.d"
  "variation_tolerance"
  "variation_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variation_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
