file(REMOVE_RECURSE
  "CMakeFiles/iterations.dir/iterations.cpp.o"
  "CMakeFiles/iterations.dir/iterations.cpp.o.d"
  "iterations"
  "iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
