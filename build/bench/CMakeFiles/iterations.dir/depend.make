# Empty dependencies file for iterations.
# This may be replaced when dependencies are built.
