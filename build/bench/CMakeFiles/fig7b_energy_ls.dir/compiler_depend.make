# Empty compiler generated dependencies file for fig7b_energy_ls.
# This may be replaced when dependencies are built.
