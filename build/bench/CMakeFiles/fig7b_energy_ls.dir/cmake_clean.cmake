file(REMOVE_RECURSE
  "CMakeFiles/fig7b_energy_ls.dir/fig7b_energy_ls.cpp.o"
  "CMakeFiles/fig7b_energy_ls.dir/fig7b_energy_ls.cpp.o.d"
  "fig7b_energy_ls"
  "fig7b_energy_ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_energy_ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
