file(REMOVE_RECURSE
  "CMakeFiles/fig6a_latency.dir/fig6a_latency.cpp.o"
  "CMakeFiles/fig6a_latency.dir/fig6a_latency.cpp.o.d"
  "fig6a_latency"
  "fig6a_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
