# Empty dependencies file for fig6a_latency.
# This may be replaced when dependencies are built.
