file(REMOVE_RECURSE
  "CMakeFiles/fig5a_accuracy.dir/fig5a_accuracy.cpp.o"
  "CMakeFiles/fig5a_accuracy.dir/fig5a_accuracy.cpp.o.d"
  "fig5a_accuracy"
  "fig5a_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
