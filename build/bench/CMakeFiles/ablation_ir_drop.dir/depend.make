# Empty dependencies file for ablation_ir_drop.
# This may be replaced when dependencies are built.
