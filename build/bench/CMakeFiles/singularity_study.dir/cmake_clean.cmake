file(REMOVE_RECURSE
  "CMakeFiles/singularity_study.dir/singularity_study.cpp.o"
  "CMakeFiles/singularity_study.dir/singularity_study.cpp.o.d"
  "singularity_study"
  "singularity_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/singularity_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
