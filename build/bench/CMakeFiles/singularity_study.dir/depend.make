# Empty dependencies file for singularity_study.
# This may be replaced when dependencies are built.
