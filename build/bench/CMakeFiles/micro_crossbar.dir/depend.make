# Empty dependencies file for micro_crossbar.
# This may be replaced when dependencies are built.
