file(REMOVE_RECURSE
  "CMakeFiles/micro_crossbar.dir/micro_crossbar.cpp.o"
  "CMakeFiles/micro_crossbar.dir/micro_crossbar.cpp.o.d"
  "micro_crossbar"
  "micro_crossbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_crossbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
