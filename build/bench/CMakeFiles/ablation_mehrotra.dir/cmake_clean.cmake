file(REMOVE_RECURSE
  "CMakeFiles/ablation_mehrotra.dir/ablation_mehrotra.cpp.o"
  "CMakeFiles/ablation_mehrotra.dir/ablation_mehrotra.cpp.o.d"
  "ablation_mehrotra"
  "ablation_mehrotra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mehrotra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
