# Empty compiler generated dependencies file for ablation_mehrotra.
# This may be replaced when dependencies are built.
