file(REMOVE_RECURSE
  "CMakeFiles/ablation_nonidealities.dir/ablation_nonidealities.cpp.o"
  "CMakeFiles/ablation_nonidealities.dir/ablation_nonidealities.cpp.o.d"
  "ablation_nonidealities"
  "ablation_nonidealities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nonidealities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
