# Empty compiler generated dependencies file for fig5b_accuracy_ls.
# This may be replaced when dependencies are built.
