file(REMOVE_RECURSE
  "CMakeFiles/fig5b_accuracy_ls.dir/fig5b_accuracy_ls.cpp.o"
  "CMakeFiles/fig5b_accuracy_ls.dir/fig5b_accuracy_ls.cpp.o.d"
  "fig5b_accuracy_ls"
  "fig5b_accuracy_ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_accuracy_ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
