file(REMOVE_RECURSE
  "CMakeFiles/fig6b_latency_ls.dir/fig6b_latency_ls.cpp.o"
  "CMakeFiles/fig6b_latency_ls.dir/fig6b_latency_ls.cpp.o.d"
  "fig6b_latency_ls"
  "fig6b_latency_ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_latency_ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
