# Empty compiler generated dependencies file for fig6b_latency_ls.
# This may be replaced when dependencies are built.
