file(REMOVE_RECURSE
  "CMakeFiles/fig7a_energy.dir/fig7a_energy.cpp.o"
  "CMakeFiles/fig7a_energy.dir/fig7a_energy.cpp.o.d"
  "fig7a_energy"
  "fig7a_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
