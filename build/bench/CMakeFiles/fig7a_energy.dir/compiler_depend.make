# Empty compiler generated dependencies file for fig7a_energy.
# This may be replaced when dependencies are built.
