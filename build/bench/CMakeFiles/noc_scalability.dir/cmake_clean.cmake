file(REMOVE_RECURSE
  "CMakeFiles/noc_scalability.dir/noc_scalability.cpp.o"
  "CMakeFiles/noc_scalability.dir/noc_scalability.cpp.o.d"
  "noc_scalability"
  "noc_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
