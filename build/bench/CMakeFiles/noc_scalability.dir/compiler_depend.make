# Empty compiler generated dependencies file for noc_scalability.
# This may be replaced when dependencies are built.
