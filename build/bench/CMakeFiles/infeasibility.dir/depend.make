# Empty dependencies file for infeasibility.
# This may be replaced when dependencies are built.
