file(REMOVE_RECURSE
  "CMakeFiles/infeasibility.dir/infeasibility.cpp.o"
  "CMakeFiles/infeasibility.dir/infeasibility.cpp.o.d"
  "infeasibility"
  "infeasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infeasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
