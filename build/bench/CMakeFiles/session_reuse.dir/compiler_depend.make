# Empty compiler generated dependencies file for session_reuse.
# This may be replaced when dependencies are built.
