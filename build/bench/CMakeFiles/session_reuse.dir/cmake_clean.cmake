file(REMOVE_RECURSE
  "CMakeFiles/session_reuse.dir/session_reuse.cpp.o"
  "CMakeFiles/session_reuse.dir/session_reuse.cpp.o.d"
  "session_reuse"
  "session_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
