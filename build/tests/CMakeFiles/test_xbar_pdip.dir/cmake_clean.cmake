file(REMOVE_RECURSE
  "CMakeFiles/test_xbar_pdip.dir/test_xbar_pdip.cpp.o"
  "CMakeFiles/test_xbar_pdip.dir/test_xbar_pdip.cpp.o.d"
  "test_xbar_pdip"
  "test_xbar_pdip.pdb"
  "test_xbar_pdip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xbar_pdip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
