# Empty dependencies file for test_xbar_pdip.
# This may be replaced when dependencies are built.
