
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_lu.cpp" "tests/CMakeFiles/test_lu.dir/test_lu.cpp.o" "gcc" "tests/CMakeFiles/test_lu.dir/test_lu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/memlp_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/memlp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/memlp_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/memlp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/crossbar/CMakeFiles/memlp_xbar.dir/DependInfo.cmake"
  "/root/repo/build/src/memristor/CMakeFiles/memlp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/memlp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/memlp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memlp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
