# Empty compiler generated dependencies file for test_pdip.
# This may be replaced when dependencies are built.
