file(REMOVE_RECURSE
  "CMakeFiles/test_pdip.dir/test_pdip.cpp.o"
  "CMakeFiles/test_pdip.dir/test_pdip.cpp.o.d"
  "test_pdip"
  "test_pdip.pdb"
  "test_pdip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
