# Empty compiler generated dependencies file for test_amplifier.
# This may be replaced when dependencies are built.
