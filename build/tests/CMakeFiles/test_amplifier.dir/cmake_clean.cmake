file(REMOVE_RECURSE
  "CMakeFiles/test_amplifier.dir/test_amplifier.cpp.o"
  "CMakeFiles/test_amplifier.dir/test_amplifier.cpp.o.d"
  "test_amplifier"
  "test_amplifier.pdb"
  "test_amplifier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_amplifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
