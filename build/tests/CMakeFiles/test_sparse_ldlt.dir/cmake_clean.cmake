file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_ldlt.dir/test_sparse_ldlt.cpp.o"
  "CMakeFiles/test_sparse_ldlt.dir/test_sparse_ldlt.cpp.o.d"
  "test_sparse_ldlt"
  "test_sparse_ldlt.pdb"
  "test_sparse_ldlt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_ldlt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
