# Empty dependencies file for test_sparse_ldlt.
# This may be replaced when dependencies are built.
