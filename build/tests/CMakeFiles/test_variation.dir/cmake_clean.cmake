file(REMOVE_RECURSE
  "CMakeFiles/test_variation.dir/test_variation.cpp.o"
  "CMakeFiles/test_variation.dir/test_variation.cpp.o.d"
  "test_variation"
  "test_variation.pdb"
  "test_variation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
