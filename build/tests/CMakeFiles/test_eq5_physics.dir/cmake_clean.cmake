file(REMOVE_RECURSE
  "CMakeFiles/test_eq5_physics.dir/test_eq5_physics.cpp.o"
  "CMakeFiles/test_eq5_physics.dir/test_eq5_physics.cpp.o.d"
  "test_eq5_physics"
  "test_eq5_physics.pdb"
  "test_eq5_physics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eq5_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
