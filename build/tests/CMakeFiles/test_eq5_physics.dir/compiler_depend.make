# Empty compiler generated dependencies file for test_eq5_physics.
# This may be replaced when dependencies are built.
