# Empty dependencies file for test_yakopcic.
# This may be replaced when dependencies are built.
