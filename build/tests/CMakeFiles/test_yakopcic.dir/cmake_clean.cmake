file(REMOVE_RECURSE
  "CMakeFiles/test_yakopcic.dir/test_yakopcic.cpp.o"
  "CMakeFiles/test_yakopcic.dir/test_yakopcic.cpp.o.d"
  "test_yakopcic"
  "test_yakopcic.pdb"
  "test_yakopcic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yakopcic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
