# Empty compiler generated dependencies file for test_ls_pdip.
# This may be replaced when dependencies are built.
