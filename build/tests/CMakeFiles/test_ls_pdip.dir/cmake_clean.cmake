file(REMOVE_RECURSE
  "CMakeFiles/test_ls_pdip.dir/test_ls_pdip.cpp.o"
  "CMakeFiles/test_ls_pdip.dir/test_ls_pdip.cpp.o.d"
  "test_ls_pdip"
  "test_ls_pdip.pdb"
  "test_ls_pdip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ls_pdip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
