# Empty dependencies file for test_negfree.
# This may be replaced when dependencies are built.
