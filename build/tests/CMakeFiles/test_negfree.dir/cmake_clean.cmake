file(REMOVE_RECURSE
  "CMakeFiles/test_negfree.dir/test_negfree.cpp.o"
  "CMakeFiles/test_negfree.dir/test_negfree.cpp.o.d"
  "test_negfree"
  "test_negfree.pdb"
  "test_negfree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_negfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
