file(REMOVE_RECURSE
  "CMakeFiles/test_write_scheme.dir/test_write_scheme.cpp.o"
  "CMakeFiles/test_write_scheme.dir/test_write_scheme.cpp.o.d"
  "test_write_scheme"
  "test_write_scheme.pdb"
  "test_write_scheme[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_write_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
