# Empty dependencies file for test_write_scheme.
# This may be replaced when dependencies are built.
