# Empty compiler generated dependencies file for test_kkt.
# This may be replaced when dependencies are built.
