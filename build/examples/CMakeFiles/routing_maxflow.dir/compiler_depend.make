# Empty compiler generated dependencies file for routing_maxflow.
# This may be replaced when dependencies are built.
