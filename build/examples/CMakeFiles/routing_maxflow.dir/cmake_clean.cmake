file(REMOVE_RECURSE
  "CMakeFiles/routing_maxflow.dir/routing_maxflow.cpp.o"
  "CMakeFiles/routing_maxflow.dir/routing_maxflow.cpp.o.d"
  "routing_maxflow"
  "routing_maxflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_maxflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
