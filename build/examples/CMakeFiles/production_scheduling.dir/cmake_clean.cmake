file(REMOVE_RECURSE
  "CMakeFiles/production_scheduling.dir/production_scheduling.cpp.o"
  "CMakeFiles/production_scheduling.dir/production_scheduling.cpp.o.d"
  "production_scheduling"
  "production_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
