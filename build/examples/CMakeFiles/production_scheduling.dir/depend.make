# Empty dependencies file for production_scheduling.
# This may be replaced when dependencies are built.
