file(REMOVE_RECURSE
  "CMakeFiles/diet_planning.dir/diet_planning.cpp.o"
  "CMakeFiles/diet_planning.dir/diet_planning.cpp.o.d"
  "diet_planning"
  "diet_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diet_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
