# Empty compiler generated dependencies file for diet_planning.
# This may be replaced when dependencies are built.
