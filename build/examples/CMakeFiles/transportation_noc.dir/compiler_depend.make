# Empty compiler generated dependencies file for transportation_noc.
# This may be replaced when dependencies are built.
