file(REMOVE_RECURSE
  "CMakeFiles/transportation_noc.dir/transportation_noc.cpp.o"
  "CMakeFiles/transportation_noc.dir/transportation_noc.cpp.o.d"
  "transportation_noc"
  "transportation_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transportation_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
