# Empty dependencies file for memlp_noc.
# This may be replaced when dependencies are built.
