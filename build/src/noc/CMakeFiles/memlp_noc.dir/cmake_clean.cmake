file(REMOVE_RECURSE
  "CMakeFiles/memlp_noc.dir/tiled.cpp.o"
  "CMakeFiles/memlp_noc.dir/tiled.cpp.o.d"
  "CMakeFiles/memlp_noc.dir/topology.cpp.o"
  "CMakeFiles/memlp_noc.dir/topology.cpp.o.d"
  "libmemlp_noc.a"
  "libmemlp_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlp_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
