file(REMOVE_RECURSE
  "libmemlp_noc.a"
)
