file(REMOVE_RECURSE
  "libmemlp_perf.a"
)
