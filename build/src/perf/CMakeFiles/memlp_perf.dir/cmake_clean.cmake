file(REMOVE_RECURSE
  "CMakeFiles/memlp_perf.dir/hardware_model.cpp.o"
  "CMakeFiles/memlp_perf.dir/hardware_model.cpp.o.d"
  "libmemlp_perf.a"
  "libmemlp_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlp_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
