# Empty dependencies file for memlp_perf.
# This may be replaced when dependencies are built.
