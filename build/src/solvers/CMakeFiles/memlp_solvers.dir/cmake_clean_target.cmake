file(REMOVE_RECURSE
  "libmemlp_solvers.a"
)
