# Empty compiler generated dependencies file for memlp_solvers.
# This may be replaced when dependencies are built.
