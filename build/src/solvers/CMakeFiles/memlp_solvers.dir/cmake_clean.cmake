file(REMOVE_RECURSE
  "CMakeFiles/memlp_solvers.dir/simplex.cpp.o"
  "CMakeFiles/memlp_solvers.dir/simplex.cpp.o.d"
  "libmemlp_solvers.a"
  "libmemlp_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlp_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
