# Empty compiler generated dependencies file for memlp_core.
# This may be replaced when dependencies are built.
