
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backend.cpp" "src/core/CMakeFiles/memlp_core.dir/backend.cpp.o" "gcc" "src/core/CMakeFiles/memlp_core.dir/backend.cpp.o.d"
  "/root/repo/src/core/kkt.cpp" "src/core/CMakeFiles/memlp_core.dir/kkt.cpp.o" "gcc" "src/core/CMakeFiles/memlp_core.dir/kkt.cpp.o.d"
  "/root/repo/src/core/ls_pdip.cpp" "src/core/CMakeFiles/memlp_core.dir/ls_pdip.cpp.o" "gcc" "src/core/CMakeFiles/memlp_core.dir/ls_pdip.cpp.o.d"
  "/root/repo/src/core/negfree.cpp" "src/core/CMakeFiles/memlp_core.dir/negfree.cpp.o" "gcc" "src/core/CMakeFiles/memlp_core.dir/negfree.cpp.o.d"
  "/root/repo/src/core/pdip.cpp" "src/core/CMakeFiles/memlp_core.dir/pdip.cpp.o" "gcc" "src/core/CMakeFiles/memlp_core.dir/pdip.cpp.o.d"
  "/root/repo/src/core/scaling.cpp" "src/core/CMakeFiles/memlp_core.dir/scaling.cpp.o" "gcc" "src/core/CMakeFiles/memlp_core.dir/scaling.cpp.o.d"
  "/root/repo/src/core/xbar_pdip.cpp" "src/core/CMakeFiles/memlp_core.dir/xbar_pdip.cpp.o" "gcc" "src/core/CMakeFiles/memlp_core.dir/xbar_pdip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/memlp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/memristor/CMakeFiles/memlp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/crossbar/CMakeFiles/memlp_xbar.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/memlp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/memlp_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
