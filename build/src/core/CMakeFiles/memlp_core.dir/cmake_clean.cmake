file(REMOVE_RECURSE
  "CMakeFiles/memlp_core.dir/backend.cpp.o"
  "CMakeFiles/memlp_core.dir/backend.cpp.o.d"
  "CMakeFiles/memlp_core.dir/kkt.cpp.o"
  "CMakeFiles/memlp_core.dir/kkt.cpp.o.d"
  "CMakeFiles/memlp_core.dir/ls_pdip.cpp.o"
  "CMakeFiles/memlp_core.dir/ls_pdip.cpp.o.d"
  "CMakeFiles/memlp_core.dir/negfree.cpp.o"
  "CMakeFiles/memlp_core.dir/negfree.cpp.o.d"
  "CMakeFiles/memlp_core.dir/pdip.cpp.o"
  "CMakeFiles/memlp_core.dir/pdip.cpp.o.d"
  "CMakeFiles/memlp_core.dir/scaling.cpp.o"
  "CMakeFiles/memlp_core.dir/scaling.cpp.o.d"
  "CMakeFiles/memlp_core.dir/xbar_pdip.cpp.o"
  "CMakeFiles/memlp_core.dir/xbar_pdip.cpp.o.d"
  "libmemlp_core.a"
  "libmemlp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
