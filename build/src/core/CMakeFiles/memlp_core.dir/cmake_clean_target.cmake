file(REMOVE_RECURSE
  "libmemlp_core.a"
)
