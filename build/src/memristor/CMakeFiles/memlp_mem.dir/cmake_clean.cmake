file(REMOVE_RECURSE
  "CMakeFiles/memlp_mem.dir/device.cpp.o"
  "CMakeFiles/memlp_mem.dir/device.cpp.o.d"
  "CMakeFiles/memlp_mem.dir/programming.cpp.o"
  "CMakeFiles/memlp_mem.dir/programming.cpp.o.d"
  "CMakeFiles/memlp_mem.dir/variation.cpp.o"
  "CMakeFiles/memlp_mem.dir/variation.cpp.o.d"
  "CMakeFiles/memlp_mem.dir/yakopcic.cpp.o"
  "CMakeFiles/memlp_mem.dir/yakopcic.cpp.o.d"
  "libmemlp_mem.a"
  "libmemlp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
