
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memristor/device.cpp" "src/memristor/CMakeFiles/memlp_mem.dir/device.cpp.o" "gcc" "src/memristor/CMakeFiles/memlp_mem.dir/device.cpp.o.d"
  "/root/repo/src/memristor/programming.cpp" "src/memristor/CMakeFiles/memlp_mem.dir/programming.cpp.o" "gcc" "src/memristor/CMakeFiles/memlp_mem.dir/programming.cpp.o.d"
  "/root/repo/src/memristor/variation.cpp" "src/memristor/CMakeFiles/memlp_mem.dir/variation.cpp.o" "gcc" "src/memristor/CMakeFiles/memlp_mem.dir/variation.cpp.o.d"
  "/root/repo/src/memristor/yakopcic.cpp" "src/memristor/CMakeFiles/memlp_mem.dir/yakopcic.cpp.o" "gcc" "src/memristor/CMakeFiles/memlp_mem.dir/yakopcic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/memlp_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
