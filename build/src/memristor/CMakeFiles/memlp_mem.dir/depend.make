# Empty dependencies file for memlp_mem.
# This may be replaced when dependencies are built.
