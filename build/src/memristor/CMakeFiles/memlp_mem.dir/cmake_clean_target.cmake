file(REMOVE_RECURSE
  "libmemlp_mem.a"
)
