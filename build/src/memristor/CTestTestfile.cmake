# CMake generated Testfile for 
# Source directory: /root/repo/src/memristor
# Build directory: /root/repo/build/src/memristor
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
