file(REMOVE_RECURSE
  "CMakeFiles/memlp_lp.dir/generator.cpp.o"
  "CMakeFiles/memlp_lp.dir/generator.cpp.o.d"
  "CMakeFiles/memlp_lp.dir/presolve.cpp.o"
  "CMakeFiles/memlp_lp.dir/presolve.cpp.o.d"
  "CMakeFiles/memlp_lp.dir/problem.cpp.o"
  "CMakeFiles/memlp_lp.dir/problem.cpp.o.d"
  "CMakeFiles/memlp_lp.dir/text_format.cpp.o"
  "CMakeFiles/memlp_lp.dir/text_format.cpp.o.d"
  "libmemlp_lp.a"
  "libmemlp_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlp_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
