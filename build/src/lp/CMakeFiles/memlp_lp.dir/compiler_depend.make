# Empty compiler generated dependencies file for memlp_lp.
# This may be replaced when dependencies are built.
