file(REMOVE_RECURSE
  "libmemlp_lp.a"
)
