file(REMOVE_RECURSE
  "CMakeFiles/memlp_common.dir/csv.cpp.o"
  "CMakeFiles/memlp_common.dir/csv.cpp.o.d"
  "CMakeFiles/memlp_common.dir/env.cpp.o"
  "CMakeFiles/memlp_common.dir/env.cpp.o.d"
  "CMakeFiles/memlp_common.dir/rng.cpp.o"
  "CMakeFiles/memlp_common.dir/rng.cpp.o.d"
  "CMakeFiles/memlp_common.dir/table.cpp.o"
  "CMakeFiles/memlp_common.dir/table.cpp.o.d"
  "libmemlp_common.a"
  "libmemlp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
