# Empty dependencies file for memlp_common.
# This may be replaced when dependencies are built.
