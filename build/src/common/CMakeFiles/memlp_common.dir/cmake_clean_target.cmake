file(REMOVE_RECURSE
  "libmemlp_common.a"
)
