file(REMOVE_RECURSE
  "CMakeFiles/memlp_linalg.dir/iterative.cpp.o"
  "CMakeFiles/memlp_linalg.dir/iterative.cpp.o.d"
  "CMakeFiles/memlp_linalg.dir/ldlt.cpp.o"
  "CMakeFiles/memlp_linalg.dir/ldlt.cpp.o.d"
  "CMakeFiles/memlp_linalg.dir/lu.cpp.o"
  "CMakeFiles/memlp_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/memlp_linalg.dir/matrix.cpp.o"
  "CMakeFiles/memlp_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/memlp_linalg.dir/ops.cpp.o"
  "CMakeFiles/memlp_linalg.dir/ops.cpp.o.d"
  "CMakeFiles/memlp_linalg.dir/sparse.cpp.o"
  "CMakeFiles/memlp_linalg.dir/sparse.cpp.o.d"
  "libmemlp_linalg.a"
  "libmemlp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
