# Empty compiler generated dependencies file for memlp_linalg.
# This may be replaced when dependencies are built.
