file(REMOVE_RECURSE
  "libmemlp_linalg.a"
)
