# Empty compiler generated dependencies file for memlp_xbar.
# This may be replaced when dependencies are built.
