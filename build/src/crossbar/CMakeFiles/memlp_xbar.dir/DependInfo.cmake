
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crossbar/amplifier.cpp" "src/crossbar/CMakeFiles/memlp_xbar.dir/amplifier.cpp.o" "gcc" "src/crossbar/CMakeFiles/memlp_xbar.dir/amplifier.cpp.o.d"
  "/root/repo/src/crossbar/crossbar.cpp" "src/crossbar/CMakeFiles/memlp_xbar.dir/crossbar.cpp.o" "gcc" "src/crossbar/CMakeFiles/memlp_xbar.dir/crossbar.cpp.o.d"
  "/root/repo/src/crossbar/quantizer.cpp" "src/crossbar/CMakeFiles/memlp_xbar.dir/quantizer.cpp.o" "gcc" "src/crossbar/CMakeFiles/memlp_xbar.dir/quantizer.cpp.o.d"
  "/root/repo/src/crossbar/write_scheme.cpp" "src/crossbar/CMakeFiles/memlp_xbar.dir/write_scheme.cpp.o" "gcc" "src/crossbar/CMakeFiles/memlp_xbar.dir/write_scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/memlp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/memristor/CMakeFiles/memlp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
