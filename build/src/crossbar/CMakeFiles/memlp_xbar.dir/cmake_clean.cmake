file(REMOVE_RECURSE
  "CMakeFiles/memlp_xbar.dir/amplifier.cpp.o"
  "CMakeFiles/memlp_xbar.dir/amplifier.cpp.o.d"
  "CMakeFiles/memlp_xbar.dir/crossbar.cpp.o"
  "CMakeFiles/memlp_xbar.dir/crossbar.cpp.o.d"
  "CMakeFiles/memlp_xbar.dir/quantizer.cpp.o"
  "CMakeFiles/memlp_xbar.dir/quantizer.cpp.o.d"
  "CMakeFiles/memlp_xbar.dir/write_scheme.cpp.o"
  "CMakeFiles/memlp_xbar.dir/write_scheme.cpp.o.d"
  "libmemlp_xbar.a"
  "libmemlp_xbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlp_xbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
