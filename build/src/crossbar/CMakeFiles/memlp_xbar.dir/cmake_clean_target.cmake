file(REMOVE_RECURSE
  "libmemlp_xbar.a"
)
