# Empty compiler generated dependencies file for memlp_gen.
# This may be replaced when dependencies are built.
