file(REMOVE_RECURSE
  "CMakeFiles/memlp_gen.dir/memlp_gen.cpp.o"
  "CMakeFiles/memlp_gen.dir/memlp_gen.cpp.o.d"
  "memlp_gen"
  "memlp_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlp_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
