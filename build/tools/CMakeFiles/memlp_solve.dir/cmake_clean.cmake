file(REMOVE_RECURSE
  "CMakeFiles/memlp_solve.dir/memlp_solve.cpp.o"
  "CMakeFiles/memlp_solve.dir/memlp_solve.cpp.o.d"
  "memlp_solve"
  "memlp_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlp_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
