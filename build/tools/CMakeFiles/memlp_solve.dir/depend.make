# Empty dependencies file for memlp_solve.
# This may be replaced when dependencies are built.
