// memlp_gen — LP instance generator over the memlp text format.
//
//   memlp_gen [options] > problem.lp
//
//   --kind feasible|infeasible|maxflow|scheduling|transportation|diet|
//          assignment                      (default feasible)
//   --m <n>            constraints for the random kinds (default 32)
//   --size <a> <b>     domain sizes (layers/width, products/resources,
//                      suppliers/consumers, foods/nutrients, workers/tasks)
//   --seed <n>         generator seed (default 1)
//
// Emits the instance on stdout; pipe into memlp_solve:
//   memlp_gen --kind maxflow --size 3 4 | memlp_solve --solver xbar -
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "lp/generator.hpp"
#include "lp/text_format.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: memlp_gen [--kind feasible|infeasible|maxflow|scheduling|"
      "transportation|diet|assignment] [--m n] [--size a b] [--seed n]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string kind = "feasible";
  std::size_t m = 32;
  std::size_t size_a = 3;
  std::size_t size_b = 3;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--kind") {
      kind = next();
    } else if (arg == "--m") {
      m = std::stoull(next());
    } else if (arg == "--size") {
      size_a = std::stoull(next());
      size_b = std::stoull(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  memlp::Rng rng(seed);
  memlp::lp::LinearProgram problem;
  try {
    if (kind == "feasible") {
      memlp::lp::GeneratorOptions options;
      options.constraints = m;
      problem = memlp::lp::random_feasible(options, rng);
    } else if (kind == "infeasible") {
      memlp::lp::GeneratorOptions options;
      options.constraints = m < 2 ? 2 : m;
      problem = memlp::lp::random_infeasible(options, rng);
    } else if (kind == "maxflow") {
      problem = memlp::lp::max_flow_routing(size_a, size_b, rng);
    } else if (kind == "scheduling") {
      problem = memlp::lp::production_scheduling(size_a, size_b, rng);
    } else if (kind == "transportation") {
      problem = memlp::lp::transportation(size_a, size_b, rng);
    } else if (kind == "diet") {
      problem = memlp::lp::diet(size_a, size_b, rng);
    } else if (kind == "assignment") {
      problem = memlp::lp::assignment(size_a, size_b, rng);
    } else {
      std::fprintf(stderr, "unknown kind '%s'\n", kind.c_str());
      usage();
      return 2;
    }
  } catch (const memlp::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  memlp::lp::write_text(std::cout, problem);
  return 0;
}
