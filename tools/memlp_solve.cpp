// memlp_solve — command-line LP solver over the memlp text format.
//
//   memlp_solve [options] <problem.lp | ->
//
//   --solver <name>                 any solver registered in the
//                                   memlp::engine registry (default xbar;
//                                   built-ins: simplex, pdip, xbar, ls —
//                                   a bad name lists what is registered)
//   --mps                           read the problem as MPS (fixed or free
//                                   format, RANGES/BOUNDS) instead of the
//                                   memlp text format; the objective is
//                                   reported in the file's own sense
//                                   (MINIMIZE by default)
//   --variation <fraction>          process-variation level (default 0.10)
//   --seed <n>                      hardware seed (default 42)
//   --tile-dim <n>                  force the NoC with this tile size
//   --trace <path>                  structured trace (JSONL; *.csv → CSV,
//                                   *.chrome.json → Chrome trace events,
//                                   "-" → JSONL on stderr)
//   --convergence                   print the per-iteration convergence table
//   --profile                       print the phase breakdown table
//                                   (obs::Profiler call-path aggregate)
//   --cost                          print the phase×component cost breakdown
//                                   (obs::CostLedger attribution priced by
//                                   perf::HardwareModel; implies profiling)
//   --chrome-trace <path>           write the profiled solve's span timeline
//                                   as Chrome trace-event JSON, with
//                                   cost-ledger counter tracks (implies
//                                   profiling; open in chrome://tracing or
//                                   https://ui.perfetto.dev)
//   --metrics-out <path>            write a Prometheus text snapshot of the
//                                   metrics registry after the solve (also
//                                   honoured via MEMLP_METRICS_OUT; render
//                                   with tools/memlp_top)
//   --quiet                         print only the objective value
//
// Reads the problem from a file (or stdin with "-"), solves it, prints the
// status, objective, solution vector, and — for the crossbar solvers — the
// hardware operation record and latency/energy estimates. Exits 0 only when
// the solve reached a verified optimum (2 on usage/parse errors).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "engine/registry.hpp"
#include "lp/mps.hpp"
#include "lp/text_format.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/cost_ledger.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "perf/cost_tree.hpp"
#include "perf/hardware_model.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: memlp_solve [--solver name] [--mps] "
               "[--variation f] [--seed n] [--tile-dim n] "
               "[--max-iterations n] [--trace path] "
               "[--convergence] [--profile] [--cost] [--chrome-trace path] "
               "[--metrics-out path] [--quiet] <problem.lp | ->\n");
}

/// Comma-joined names of every registered solver (for the bad-name path).
std::string registered_solvers() {
  std::string joined;
  for (const std::string& name :
       memlp::engine::SolverRegistry::global().names()) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

void print_result(const memlp::lp::SolveResult& result, bool quiet) {
  if (quiet) {
    // A non-optimal solve has no objective worth printing; report the
    // status on stderr and let the exit code speak.
    if (!result.optimal())
      std::fprintf(stderr, "status: %s\n",
                   memlp::lp::to_string(result.status).c_str());
    else
      std::printf("%.10g\n", result.objective);
    return;
  }
  std::printf("status:     %s\n", memlp::lp::to_string(result.status).c_str());
  if (!result.optimal()) return;
  std::printf("objective:  %.10g\n", result.objective);
  std::printf("x:         ");
  for (double v : result.x) std::printf(" %.6g", v);
  std::printf("\niterations: %zu\n", result.iterations);
  if (result.wall_seconds > 0.0)
    std::printf("wall:       %.6f s\n", result.wall_seconds);
}

void print_convergence(const memlp::obs::MemoryTraceSink& sink) {
  const auto records = sink.events_of("iteration");
  if (records.empty()) {
    std::printf(
        "convergence: no per-iteration records (this solver only emits a "
        "solve summary)\n");
    return;
  }
  std::printf("%5s %4s %12s %12s %12s %12s %9s %9s\n", "it", "att", "mu",
              "primal_inf", "dual_inf", "gap", "alpha_p", "alpha_d");
  for (const auto& event : records) {
    const double attempt = event.number("attempt", 0.0);
    std::printf("%5.0f %4.0f %12.4e %12.4e %12.4e %12.4e",
                event.number("iteration"), attempt, event.number("mu"),
                event.number("primal_inf"), event.number("dual_inf"),
                event.number("gap"));
    for (const char* key : {"alpha_p", "alpha_d"}) {
      if (event.find(key) != nullptr)
        std::printf(" %9.3e", event.number(key));
      else
        std::printf(" %9s", "-");
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string solver = "xbar";
  double variation = 0.10;
  std::uint64_t seed = 42;
  std::size_t tile_dim = 0;
  std::size_t max_iterations = 0;  // 0 = solver default.
  bool mps = false;
  bool quiet = false;
  bool convergence = false;
  bool profile = false;
  bool cost = false;
  std::string chrome_trace_path;
  std::string trace_spec;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--solver") {
      solver = next();
    } else if (arg == "--mps") {
      mps = true;
    } else if (arg == "--variation") {
      variation = std::stod(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--tile-dim") {
      tile_dim = std::stoull(next());
    } else if (arg == "--max-iterations") {
      max_iterations = std::stoull(next());
    } else if (arg == "--trace") {
      trace_spec = next();
    } else if (arg == "--convergence") {
      convergence = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--cost") {
      cost = true;
    } else if (arg == "--chrome-trace") {
      chrome_trace_path = next();
    } else if (arg == "--metrics-out") {
      memlp::obs::Telemetry::global().set_metrics_out(next());
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }
  // Resolve the solver name before any work: a typo should fail fast and
  // tell the user what IS registered.
  if (!memlp::engine::SolverRegistry::global().contains(solver)) {
    std::fprintf(stderr, "unknown solver '%s' (registered: %s)\n",
                 solver.c_str(), registered_solvers().c_str());
    usage();
    return 2;
  }

  // Assemble the trace destination: a file/stream sink from --trace, an
  // in-memory sink for --convergence, or a tee when both are requested.
  std::unique_ptr<memlp::obs::TraceSink> file_sink;
  std::unique_ptr<memlp::obs::MemoryTraceSink> memory_sink;
  std::unique_ptr<memlp::obs::TeeTraceSink> tee_sink;
  memlp::obs::TraceSink* sink = nullptr;
  if (!trace_spec.empty()) {
    file_sink = memlp::obs::open_trace_sink(trace_spec);
    if (file_sink == nullptr) {
      std::fprintf(stderr, "cannot open trace destination %s\n",
                   trace_spec.c_str());
      return 2;
    }
    sink = file_sink.get();
  }
  if (convergence) {
    memory_sink = std::make_unique<memlp::obs::MemoryTraceSink>();
    if (sink != nullptr) {
      tee_sink = std::make_unique<memlp::obs::TeeTraceSink>(
          file_sink.get(), memory_sink.get());
      sink = tee_sink.get();
    } else {
      sink = memory_sink.get();
    }
  }

  // The profiler must be active before the solve starts; the Chrome trace
  // export needs the raw span timeline, the table only the aggregate. The
  // cost ledger attributes to the profiler's call paths, so --cost implies
  // profiling (aggregation only).
  std::unique_ptr<memlp::obs::Profiler> profiler;
  if (profile || cost || !chrome_trace_path.empty()) {
    profiler = std::make_unique<memlp::obs::Profiler>(
        /*record_timeline=*/!chrome_trace_path.empty());
    memlp::obs::Profiler::set_active(profiler.get());
  }
  std::unique_ptr<memlp::obs::CostLedger> ledger;
  if (cost || !chrome_trace_path.empty()) {
    ledger = std::make_unique<memlp::obs::CostLedger>(
        /*record_timeline=*/!chrome_trace_path.empty());
    memlp::obs::CostLedger::set_active(ledger.get());
  }

  memlp::lp::LinearProgram problem;
  std::unique_ptr<memlp::lp::MpsModel> mps_model;
  try {
    if (mps) {
      if (path == "-") {
        mps_model = std::make_unique<memlp::lp::MpsModel>(
            memlp::lp::read_mps(std::cin, "<stdin>"));
      } else {
        mps_model = std::make_unique<memlp::lp::MpsModel>(
            memlp::lp::read_mps_file(path));
      }
      problem = mps_model->problem;
    } else if (path == "-") {
      std::stringstream buffer;
      buffer << std::cin.rdbuf();
      problem = memlp::lp::from_text(buffer.str());
    } else {
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
      }
      problem = memlp::lp::read_text(file);
    }
  } catch (const memlp::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  if (!quiet)
    std::printf("problem:    %zu constraints, %zu variables\n",
                problem.num_constraints(), problem.num_variables());

  const auto variation_model =
      variation > 0.0 ? memlp::mem::VariationModel::uniform(variation)
                      : memlp::mem::VariationModel::none();

  // One uniform request; the registry maps the name to the solver and the
  // report carries the hardware record when the solver has one.
  memlp::engine::SolveRequest request;
  request.solver = solver;
  request.pdip.trace = sink;
  if (max_iterations > 0) request.pdip.max_iterations = max_iterations;
  request.seed = seed;
  request.hardware.crossbar.variation = variation_model;
  if (tile_dim > 0) {
    request.hardware.force_noc = true;
    request.hardware.tile_dim = tile_dim;
  }
  const memlp::engine::SolveReport report =
      memlp::engine::solve(problem, request);
  memlp::lp::SolveResult result = report.result;
  // MPS input: report the objective in the file's own sense (a MINIMIZE
  // file shows its minimum, not the canonical-max negation).
  if (mps_model != nullptr && result.optimal())
    result.objective = mps_model->original_objective(result.x);
  print_result(result, quiet);
  if (!quiet && result.optimal() && report.has_hardware_stats) {
    const memlp::perf::HardwareModel hardware;
    const auto estimate = hardware.estimate(report.stats);
    std::printf("hardware:   %zux%zu system, %zu cells written, "
                "%zu settles, est. %.3f ms / %.3f mJ\n",
                report.stats.system_dim, report.stats.system_dim,
                report.stats.backend.xbar.cells_written,
                report.stats.backend.xbar.mvm_ops +
                    report.stats.backend.xbar.solve_ops,
                estimate.latency_s * 1e3, estimate.energy_j * 1e3);
  }

  if (convergence) print_convergence(*memory_sink);
  if (ledger != nullptr) memlp::obs::CostLedger::set_active(nullptr);
  if (cost) {
    const memlp::perf::HardwareModel hardware;
    std::printf("\n%s",
                memlp::perf::cost_table(ledger->tree(), hardware)
                    .str()
                    .c_str());
    if (report.has_hardware_stats) {
      // The ledger's analog counters must reproduce the HardwareStats
      // totals: iterative estimate + one-off programming estimate.
      const auto ledger_cost = hardware.price_counters(ledger->total());
      auto check = hardware.estimate(report.stats);
      check += hardware.estimate_programming(report.stats);
      const double scale = std::max(std::abs(check.energy_j), 1e-300);
      std::printf(
          "cost check: ledger %.6f mJ vs hardware estimate %.6f mJ "
          "(rel diff %.3e)\n",
          ledger_cost.energy_j * 1e3, check.energy_j * 1e3,
          std::abs(ledger_cost.energy_j - check.energy_j) / scale);
    }
  }
  if (profiler != nullptr) {
    memlp::obs::Profiler::set_active(nullptr);
    if (profile) std::printf("\n%s", profiler->table().str().c_str());
    if (!chrome_trace_path.empty()) {
      memlp::obs::ChromeTraceSink trace_sink(chrome_trace_path);
      if (trace_sink.ok()) {
        profiler->export_spans(trace_sink);
        if (ledger != nullptr) {
          const memlp::perf::HardwareModel hardware;
          memlp::perf::export_counter_tracks(*ledger, hardware, trace_sink);
        }
        trace_sink.flush();
        std::printf("chrome trace: %s\n", chrome_trace_path.c_str());
      } else {
        std::fprintf(stderr, "cannot write chrome trace %s\n",
                     chrome_trace_path.c_str());
      }
    }
  }
  if (file_sink != nullptr) file_sink->flush();
  const std::string metrics_path =
      memlp::obs::Telemetry::global().write_metrics_if_configured();
  if (!metrics_path.empty() && !quiet)
    std::printf("metrics: %s\n", metrics_path.c_str());
  return result.optimal() ? 0 : 1;
}
