// memlp_solve — command-line LP solver over the memlp text format.
//
//   memlp_solve [options] <problem.lp | ->
//
//   --solver simplex|pdip|xbar|ls   solver to use (default xbar)
//   --variation <fraction>          process-variation level (default 0.10)
//   --seed <n>                      hardware seed (default 42)
//   --tile-dim <n>                  force the NoC with this tile size
//   --quiet                         print only the objective value
//
// Reads the problem from a file (or stdin with "-"), solves it, prints the
// status, objective, solution vector, and — for the crossbar solvers — the
// hardware operation record and latency/energy estimates.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/ls_pdip.hpp"
#include "core/pdip.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/text_format.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: memlp_solve [--solver simplex|pdip|xbar|ls] "
               "[--variation f] [--seed n] [--tile-dim n] [--quiet] "
               "<problem.lp | ->\n");
}

void print_result(const memlp::lp::SolveResult& result, bool quiet) {
  if (quiet) {
    std::printf("%.10g\n", result.objective);
    return;
  }
  std::printf("status:     %s\n", memlp::lp::to_string(result.status).c_str());
  if (!result.optimal()) return;
  std::printf("objective:  %.10g\n", result.objective);
  std::printf("x:         ");
  for (double v : result.x) std::printf(" %.6g", v);
  std::printf("\niterations: %zu\n", result.iterations);
}

}  // namespace

int main(int argc, char** argv) {
  std::string solver = "xbar";
  double variation = 0.10;
  std::uint64_t seed = 42;
  std::size_t tile_dim = 0;
  bool quiet = false;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--solver") {
      solver = next();
    } else if (arg == "--variation") {
      variation = std::stod(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--tile-dim") {
      tile_dim = std::stoull(next());
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  memlp::lp::LinearProgram problem;
  try {
    if (path == "-") {
      std::stringstream buffer;
      buffer << std::cin.rdbuf();
      problem = memlp::lp::from_text(buffer.str());
    } else {
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
      }
      problem = memlp::lp::read_text(file);
    }
  } catch (const memlp::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  if (!quiet)
    std::printf("problem:    %zu constraints, %zu variables\n",
                problem.num_constraints(), problem.num_variables());

  const auto variation_model =
      variation > 0.0 ? memlp::mem::VariationModel::uniform(variation)
                      : memlp::mem::VariationModel::none();

  if (solver == "simplex") {
    print_result(memlp::solvers::solve_simplex(problem), quiet);
    return 0;
  }
  if (solver == "pdip") {
    print_result(memlp::core::solve_pdip(problem), quiet);
    return 0;
  }

  const memlp::perf::HardwareModel hardware;
  if (solver == "xbar") {
    memlp::core::XbarPdipOptions options;
    options.hardware.crossbar.variation = variation_model;
    options.seed = seed;
    if (tile_dim > 0) {
      options.hardware.force_noc = true;
      options.hardware.tile_dim = tile_dim;
    }
    const auto outcome = memlp::core::solve_xbar_pdip(problem, options);
    print_result(outcome.result, quiet);
    if (!quiet && outcome.result.optimal()) {
      const auto cost = hardware.estimate(outcome.stats);
      std::printf("hardware:   %zux%zu system, %zu cells written, "
                  "%zu settles, est. %.3f ms / %.3f mJ\n",
                  outcome.stats.system_dim, outcome.stats.system_dim,
                  outcome.stats.backend.xbar.cells_written,
                  outcome.stats.backend.xbar.mvm_ops +
                      outcome.stats.backend.xbar.solve_ops,
                  cost.latency_s * 1e3, cost.energy_j * 1e3);
    }
    return outcome.result.optimal() ? 0 : 1;
  }
  if (solver == "ls") {
    memlp::core::LsPdipOptions options;
    options.hardware.crossbar.variation = variation_model;
    options.seed = seed;
    if (tile_dim > 0) {
      options.hardware.force_noc = true;
      options.hardware.tile_dim = tile_dim;
    }
    const auto outcome = memlp::core::solve_ls_pdip(problem, options);
    print_result(outcome.result, quiet);
    return outcome.result.optimal() ? 0 : 1;
  }
  std::fprintf(stderr, "unknown solver '%s'\n", solver.c_str());
  usage();
  return 2;
}
