// memlp_top — one-shot per-solver dashboard over a Prometheus snapshot.
//
// Reads a `.prom` file written by the telemetry exposition (memlp_solve
// --metrics-out, MEMLP_METRICS_OUT, the benches) and tabulates, per solver
// kind: request/solve counts, solves/sec against the process uptime gauge,
// the p50/p95/p99 solve-latency quantiles, total anomaly count from the
// health-monitor counters, and total estimated analog energy. The `top` of
// a run you cannot attach to — point it at the last snapshot.
//
//   memlp_top run.prom
//   memlp_top --raw run.prom     # also dump every parsed metric
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace {

/// One parsed exposition: plain samples (counters, gauges, _sum/_count) and
/// quantile-labelled samples keyed "name|q".
struct Snapshot {
  std::map<std::string, double> plain;
  std::map<std::string, double> quantile;  ///< "name|0.95" → value.
};

bool parse_prom(const char* path, Snapshot& out) {
  std::FILE* file = std::fopen(path, "r");
  if (file == nullptr) return false;
  char line[1024];
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (line[0] == '#' || line[0] == '\n') continue;
    std::string text(line);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
      text.pop_back();
    const std::size_t space = text.rfind(' ');
    if (space == std::string::npos) continue;
    const std::string value_text = text.substr(space + 1);
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str()) continue;
    std::string name = text.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace == std::string::npos) {
      out.plain[name] = value;
      continue;
    }
    // Only quantile labels are emitted by the exposition writer.
    const std::string base = name.substr(0, brace);
    const std::size_t q = name.find("quantile=\"", brace);
    if (q == std::string::npos) continue;
    const std::size_t q_begin = q + std::strlen("quantile=\"");
    const std::size_t q_end = name.find('"', q_begin);
    if (q_end == std::string::npos) continue;
    out.quantile[base + "|" + name.substr(q_begin, q_end - q_begin)] = value;
  }
  std::fclose(file);
  return true;
}

double lookup(const std::map<std::string, double>& table,
              const std::string& key, double fallback = 0.0) {
  const auto it = table.find(key);
  return it == table.end() ? fallback : it->second;
}

std::string quantile_ms(const Snapshot& snap, const std::string& base,
                        const char* q) {
  const auto it = snap.quantile.find(base + "|" + q);
  if (it == snap.quantile.end()) return "-";
  return memlp::TextTable::num(it->second * 1e3);
}

int usage() {
  std::fputs("usage: memlp_top [--raw] <metrics.prom>\n", stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool raw = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--raw") == 0) {
      raw = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return usage();
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path == nullptr) return usage();

  Snapshot snap;
  if (!parse_prom(path, snap)) {
    std::fprintf(stderr, "memlp_top: cannot read '%s'\n", path);
    return 1;
  }

  // Solver kinds are discovered from their latency summaries (every registry
  // solve observes memlp_<solver>_solve_seconds) or, for snapshots from
  // callers that drive the core solvers directly (the benches), from the
  // per-solver memlp_<solver>_solves counters — those rows render counts and
  // anomalies with "-" quantiles.
  const std::string kCountSuffix = "_solve_seconds_count";
  const std::string kSolvesSuffix = "_solves";
  const std::string kPrefix = "memlp_";
  std::vector<std::string> solvers;
  const auto add_solver = [&solvers](std::string name) {
    for (const std::string& existing : solvers)
      if (existing == name) return;
    solvers.push_back(std::move(name));
  };
  for (const auto& [name, value] : snap.plain) {
    if (name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    if (name.size() > kPrefix.size() + kCountSuffix.size() &&
        name.compare(name.size() - kCountSuffix.size(), kCountSuffix.size(),
                     kCountSuffix) == 0)
      add_solver(name.substr(
          kPrefix.size(), name.size() - kPrefix.size() - kCountSuffix.size()));
    else if (name.size() > kPrefix.size() + kSolvesSuffix.size() &&
             name.compare(name.size() - kSolvesSuffix.size(),
                          kSolvesSuffix.size(), kSolvesSuffix) == 0)
      add_solver(name.substr(
          kPrefix.size(), name.size() - kPrefix.size() - kSolvesSuffix.size()));
  }

  // A near-zero uptime gauge means the snapshot writer was constructed at
  // export time (bench snapshots) — a rate against it would be noise.
  const double uptime_s = lookup(snap.plain, "memlp_process_uptime_seconds");
  const bool rate_valid = uptime_s > 1e-3;

  memlp::TextTable table("memlp_top — " + std::string(path));
  table.set_header({"solver", "solves", "solves/s", "p50_ms", "p95_ms",
                    "p99_ms", "anomalies", "energy_j"});
  for (const std::string& solver : solvers) {
    const std::string latency = kPrefix + solver + "_solve_seconds";
    double solves = lookup(snap.plain, latency + "_count");
    if (solves == 0.0)
      solves = lookup(snap.plain, kPrefix + solver + kSolvesSuffix);
    double anomalies = 0.0;
    const std::string health_prefix = kPrefix + "health_" + solver + "_";
    for (const auto& [name, value] : snap.plain)
      if (name.compare(0, health_prefix.size(), health_prefix) == 0)
        anomalies += value;
    const double energy_j =
        lookup(snap.plain, kPrefix + solver + "_solve_energy_j_sum");
    table.add_row({solver, memlp::TextTable::num((long long)solves),
                   rate_valid ? memlp::TextTable::num(solves / uptime_s)
                              : std::string("-"),
                   quantile_ms(snap, latency, "0.5"),
                   quantile_ms(snap, latency, "0.95"),
                   quantile_ms(snap, latency, "0.99"),
                   memlp::TextTable::num((long long)anomalies),
                   memlp::TextTable::num(energy_j)});
  }
  std::fputs(table.str().c_str(), stdout);

  if (raw) {
    std::fputs("\nraw samples:\n", stdout);
    for (const auto& [name, value] : snap.plain)
      std::fprintf(stdout, "  %s = %g\n", name.c_str(), value);
    for (const auto& [name, value] : snap.quantile)
      std::fprintf(stdout, "  %s = %g\n", name.c_str(), value);
  }
  return 0;
}
