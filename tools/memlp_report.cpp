// memlp_report — bench-artifact diff and regression gate.
//
// Loads two trees of BENCH_*.json artifacts (written by bench/artifact.cpp,
// schema "memlp.bench/1"), matches them by bench name, and compares every
// metric with direction-aware noise thresholds: deterministic estimates
// (hardware-model latency/energy, iteration counts, relative errors) get a
// tight default tolerance, `measured` wall-clock metrics a loose one.
// Exits non-zero on any regression, so scripts/check.sh and CI can gate on
// a committed baseline tree. `--validate` checks one tree for schema
// conformance instead.
//
// Usage:
//   memlp_report [options] <baseline_dir> <candidate_dir>
//   memlp_report --validate <dir>
// Options:
//   --tolerance <frac>           estimated-metric tolerance (default 0.10)
//   --tolerance-measured <frac>  measured-metric tolerance (default 0.50)
//   --require-coverage           a bench or metric missing from the
//                                candidate tree is a failure (default:
//                                warning only)
// Exit codes: 0 = clean, 1 = regression (or invalid tree), 2 = usage/io.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace {

using memlp::json::Value;

constexpr const char* kSchema = "memlp.bench/1";

struct Metric {
  double value = 0.0;
  std::string unit;
  bool lower_is_better = true;
  bool measured = false;
};

struct Artifact {
  std::string name;
  std::string git_sha;
  std::map<std::string, Metric> metrics;
};

struct Options {
  double tolerance_estimated = 0.10;
  double tolerance_measured = 0.50;
  bool require_coverage = false;
};

std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parses one artifact; prints the problem and returns nullopt when the
/// document does not conform to the schema.
std::optional<Artifact> load_artifact(const std::filesystem::path& path) {
  const auto text = read_file(path);
  if (!text) {
    std::fprintf(stderr, "memlp_report: cannot read %s\n",
                 path.string().c_str());
    return std::nullopt;
  }
  Value doc;
  try {
    doc = memlp::json::parse(*text);
  } catch (const memlp::json::ParseError& error) {
    std::fprintf(stderr, "memlp_report: %s: %s\n", path.string().c_str(),
                 error.what());
    return std::nullopt;
  }
  if (!doc.is_object() || doc.string_or("schema", "") != kSchema) {
    std::fprintf(stderr, "memlp_report: %s: missing or unknown schema\n",
                 path.string().c_str());
    return std::nullopt;
  }
  Artifact artifact;
  artifact.name = doc.string_or("name", "");
  if (artifact.name.empty()) {
    std::fprintf(stderr, "memlp_report: %s: missing name\n",
                 path.string().c_str());
    return std::nullopt;
  }
  const Value* provenance = doc.find("provenance");
  if (provenance == nullptr || !provenance->is_object() ||
      provenance->string_or("git_sha", "").empty()) {
    std::fprintf(stderr, "memlp_report: %s: missing provenance.git_sha\n",
                 path.string().c_str());
    return std::nullopt;
  }
  artifact.git_sha = provenance->string_or("git_sha", "");
  const Value* config = doc.find("config");
  if (config == nullptr || !config->is_object()) {
    std::fprintf(stderr, "memlp_report: %s: missing config\n",
                 path.string().c_str());
    return std::nullopt;
  }
  const Value* counters = doc.find("counters");
  if (counters == nullptr || !counters->is_object()) {
    std::fprintf(stderr, "memlp_report: %s: missing counters\n",
                 path.string().c_str());
    return std::nullopt;
  }
  const Value* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    std::fprintf(stderr, "memlp_report: %s: missing metrics\n",
                 path.string().c_str());
    return std::nullopt;
  }
  for (const Value& entry : metrics->as_array()) {
    if (!entry.is_object()) {
      std::fprintf(stderr, "memlp_report: %s: non-object metric entry\n",
                   path.string().c_str());
      return std::nullopt;
    }
    const std::string name = entry.string_or("name", "");
    const Value* value = entry.find("value");
    if (name.empty() || value == nullptr || !value->is_number()) {
      std::fprintf(stderr, "memlp_report: %s: malformed metric entry\n",
                   path.string().c_str());
      return std::nullopt;
    }
    Metric metric;
    metric.value = value->as_number();
    metric.unit = entry.string_or("unit", "");
    metric.lower_is_better = entry.string_or("better", "lower") != "higher";
    const Value* measured = entry.find("measured");
    metric.measured = measured != nullptr &&
                      measured->kind() == Value::Kind::kBool &&
                      measured->as_bool();
    artifact.metrics[name] = metric;
  }
  // Cost-ledger tree (schema addition; optional so older artifacts still
  // load): each path's energy/flops become synthetic deterministic metrics
  // "cost_tree.<path>.<field>", so the direction-aware compare and
  // --require-coverage treat per-phase energy like any other metric.
  const Value* cost_tree = doc.find("cost_tree");
  if (cost_tree != nullptr && cost_tree->is_array()) {
    for (const Value& entry : cost_tree->as_array()) {
      if (!entry.is_object()) continue;
      const std::string tree_path = entry.string_or("path", "");
      if (tree_path.empty()) continue;
      const auto add = [&](const char* key, const char* unit) {
        const Value* value = entry.find(key);
        if (value == nullptr || !value->is_number()) return;
        Metric metric;
        metric.value = value->as_number();
        metric.unit = unit;
        metric.lower_is_better = true;
        metric.measured = false;
        artifact.metrics["cost_tree." + tree_path + "." + key] = metric;
      };
      add("energy_j", "J");
      add("flops", "flops");
    }
  }
  return artifact;
}

/// Loads every BENCH_*.json under `dir`, keyed by bench name. `ok` is
/// cleared when any file fails to load/validate.
std::map<std::string, Artifact> load_tree(const std::filesystem::path& dir,
                                          bool& ok) {
  std::map<std::string, Artifact> tree;
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) == 0 &&
        file.size() > 5 + 5 &&
        file.compare(file.size() - 5, 5, ".json") == 0)
      files.push_back(entry.path());
  }
  if (ec) {
    std::fprintf(stderr, "memlp_report: cannot list %s: %s\n",
                 dir.string().c_str(), ec.message().c_str());
    ok = false;
    return tree;
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    auto artifact = load_artifact(path);
    if (!artifact) {
      ok = false;
      continue;
    }
    tree[artifact->name] = std::move(*artifact);
  }
  return tree;
}

/// Relative change of `candidate` vs `baseline` in the "worse" direction
/// (positive = worse), with a tiny absolute floor so near-zero baselines
/// don't produce infinite ratios.
double relative_worsening(const Metric& baseline, double candidate) {
  const double scale = std::max(std::abs(baseline.value), 1e-12);
  const double delta = candidate - baseline.value;
  return (baseline.lower_is_better ? delta : -delta) / scale;
}

int run_compare(const Options& options,
                const std::filesystem::path& baseline_dir,
                const std::filesystem::path& candidate_dir) {
  bool trees_ok = true;
  const auto baseline = load_tree(baseline_dir, trees_ok);
  const auto candidate = load_tree(candidate_dir, trees_ok);
  if (!trees_ok) return 2;
  if (baseline.empty()) {
    std::fprintf(stderr, "memlp_report: no BENCH_*.json under %s\n",
                 baseline_dir.string().c_str());
    return 2;
  }

  int regressions = 0;
  int warnings = 0;
  int compared = 0;
  for (const auto& [name, base] : baseline) {
    const auto cand_it = candidate.find(name);
    if (cand_it == candidate.end()) {
      std::printf("MISSING   %s: not in candidate tree\n", name.c_str());
      if (options.require_coverage) ++regressions; else ++warnings;
      continue;
    }
    const Artifact& cand = cand_it->second;
    for (const auto& [metric_name, base_metric] : base.metrics) {
      const auto metric_it = cand.metrics.find(metric_name);
      if (metric_it == cand.metrics.end()) {
        std::printf("MISSING   %s/%s: metric not in candidate\n",
                    name.c_str(), metric_name.c_str());
        if (options.require_coverage) ++regressions; else ++warnings;
        continue;
      }
      ++compared;
      const double tolerance = base_metric.measured
                                   ? options.tolerance_measured
                                   : options.tolerance_estimated;
      const double worse =
          relative_worsening(base_metric, metric_it->second.value);
      const char* verdict = "ok       ";
      if (worse > tolerance) {
        verdict = "REGRESSED";
        ++regressions;
      } else if (worse < -tolerance) {
        verdict = "improved ";
      }
      std::printf("%s %s/%s: %.6g -> %.6g %s (%+.1f%%, tol %.0f%%)\n",
                  verdict, name.c_str(), metric_name.c_str(),
                  base_metric.value, metric_it->second.value,
                  base_metric.unit.c_str(), worse * 100.0,
                  tolerance * 100.0);
    }
  }
  std::printf(
      "\nmemlp_report: %d metric(s) compared, %d regression(s), "
      "%d warning(s)\n",
      compared, regressions, warnings);
  return regressions > 0 ? 1 : 0;
}

int run_validate(const std::filesystem::path& dir) {
  bool ok = true;
  const auto tree = load_tree(dir, ok);
  if (tree.empty()) {
    std::fprintf(stderr, "memlp_report: no BENCH_*.json under %s\n",
                 dir.string().c_str());
    return 1;
  }
  for (const auto& [name, artifact] : tree)
    std::printf("valid     %s (git %s, %zu metric(s))\n", name.c_str(),
                artifact.git_sha.c_str(), artifact.metrics.size());
  std::printf("\nmemlp_report: %zu artifact(s) valid%s\n", tree.size(),
              ok ? "" : ", but some files failed to load");
  return ok ? 0 : 1;
}

int usage() {
  std::fprintf(stderr,
               "usage: memlp_report [--tolerance F] [--tolerance-measured F] "
               "[--require-coverage] <baseline_dir> <candidate_dir>\n"
               "       memlp_report --validate <dir>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  bool validate = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&]() -> std::optional<double> {
      if (i + 1 >= argc) return std::nullopt;
      return std::strtod(argv[++i], nullptr);
    };
    if (arg == "--validate") {
      validate = true;
    } else if (arg == "--require-coverage") {
      options.require_coverage = true;
    } else if (arg == "--tolerance") {
      const auto value = next_value();
      if (!value) return usage();
      options.tolerance_estimated = *value;
    } else if (arg == "--tolerance-measured") {
      const auto value = next_value();
      if (!value) return usage();
      options.tolerance_measured = *value;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (validate)
    return positional.size() == 1 ? run_validate(positional[0]) : usage();
  if (positional.size() != 2) return usage();
  return run_compare(options, positional[0], positional[1]);
}
