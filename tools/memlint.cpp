// memlint — memlp's project-invariant linter (thin CLI).
//
// A from-scratch C++ source-level lint pass (token scanner + scope tracker,
// no libclang) that enforces the discipline rules the simulator's fidelity
// contracts depend on. The analysis lives in tools/memlint/ so the test
// suite can link the layers directly:
//
//   stripper.*   comment/string/raw-string/digit-separator stripping
//   parse.*      brace/scope tracking, functions, lambdas, call/alloc sites
//   callgraph.*  cross-file symbol table + project-local call graph
//   rules.*      R1–R7 line rules, R8–R10 model rules
//   linter.*     two-pass driver, suppressions, summary, JSON
//
// See docs/static-analysis.md for the rule catalogue and
// docs/parallelism.md for the contracts themselves.
//
// Diagnostics are file:line with the rule id; `memlint:allow(R<n>)` on the
// finding's line or `memlint:allow-file(R<n>)` anywhere in the file
// suppresses (comma-separated ids or slugs accepted). Matching happens on
// comment- and string-literal-stripped text, so rule tables do not flag
// themselves.
//
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

#include <filesystem>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "memlint/diag.hpp"
#include "memlint/linter.hpp"

namespace fs = std::filesystem;

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: memlint [--root DIR] [--list-rules] [--json] [--summary] "
        "[path...]\n"
        "Scans path... (default: src tools bench examples) under DIR\n"
        "(default: cwd) for memlp project-invariant violations.\n"
        "  --json     print diagnostics as JSON (schema memlp.memlint/1)\n"
        "  --summary  print a per-rule hit/suppression summary to stderr\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> paths;
  bool json = false;
  bool summary = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return usage(std::cerr, 2);
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const memlint::Rule& rule : memlint::kRules)
        std::cout << 'R' << rule.id << '/' << rule.name << ": "
                  << rule.summary << '\n';
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "memlint: unknown option " << arg << '\n';
      return usage(std::cerr, 2);
    } else {
      paths.emplace_back(arg);
    }
  }
  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "memlint: bad --root: " << ec.message() << '\n';
    return 2;
  }
  if (paths.empty()) paths = {"src", "tools", "bench", "examples"};

  memlint::Linter linter(root);
  for (const std::string& p : paths) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    if (fs::is_directory(abs)) {
      linter.scan_tree(abs);
    } else if (fs::is_regular_file(abs)) {
      linter.scan_file(abs);
    }
    // Missing default subdirectories are skipped silently so the same
    // invocation works on fixture trees that only contain src/.
  }
  linter.finalize();

  if (json) {
    linter.print_json(std::cout);
  } else {
    for (const memlint::Diagnostic& diag : linter.diagnostics()) {
      const memlint::Rule* rule = memlint::find_rule(diag.rule);
      std::cout << diag.file << ':' << diag.line << ": [R" << diag.rule
                << '/' << (rule != nullptr ? rule->name : "?") << "] "
                << diag.message << '\n';
    }
  }
  if (summary) linter.print_summary(std::cerr);
  if (linter.io_error()) return 2;
  if (!linter.diagnostics().empty()) {
    std::cerr << "memlint: " << linter.diagnostics().size()
              << " violation(s)\n";
    return 1;
  }
  return 0;
}
