// memlint — memlp's project-invariant linter.
//
// A from-scratch C++ source-level lint pass (token scanner, no libclang)
// that enforces the discipline rules the simulator's fidelity contracts
// depend on (see docs/static-analysis.md for the full catalogue and
// docs/parallelism.md for the contracts themselves):
//
//   R1 parallelism-discipline  no std::thread/std::async/raw mutexes
//                              outside src/common/par.* — all parallelism
//                              goes through memlp::par so the
//                              bit-identical-at-any-thread-count contract
//                              stays checkable in one place.
//   R2 rng-discipline          no std::random_device / rand() / ad-hoc
//                              std engine seeding outside src/common/rng.*
//                              — every stochastic draw must come from a
//                              seeded, splittable memlp::Rng stream.
//   R3 io-discipline           no std::cout/std::cerr/printf in library
//                              code outside src/obs/ — all side-channel
//                              output flows through memlp::obs sinks.
//                              tools/, bench/ and examples/ are exempt.
//   R4 error-discipline        no bare assert() or throw
//                              std::runtime_error in src/ — use
//                              MEMLP_EXPECT*/MEMLP_ASSERT or a typed
//                              memlp::Error subclass.
//   R5 unit-suffix             double/float identifiers named after a
//                              physical quantity (energy/latency/power)
//                              must carry a unit suffix (_j, _pj, _s,
//                              _ns, _w, ...).
//   R6 header-hygiene          every header must contain #pragma once.
//                              (Deep self-containment is verified by the
//                              generated memlp_header_check target.)
//   R7 engine-encapsulation    the PDIP iteration engine and its
//                              NewtonSystem policies (core/engine.hpp and
//                              the core/newton_* pairs) are private to
//                              src/core/ — everything else goes through
//                              the solver wrappers or engine/registry.hpp,
//                              so the bit-exactness contract has one
//                              surface to audit.
//
// Diagnostics are file:line with the rule id; a finding on a line whose
// trailing comment contains `memlint:allow(R<n>)` (comma-separated ids
// accepted) is suppressed. Matching happens on comment- and
// string-literal-stripped text, so rule tables like the one below do not
// flag themselves.
//
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Rule {
  int id;                // 1..7 — printed as R<id>.
  const char* name;      // kebab-case slug.
  const char* summary;   // one-line rationale for --list-rules.
};

constexpr Rule kRules[] = {
    {1, "parallelism-discipline",
     "raw threading primitives outside src/common/par.* break the "
     "bit-identical-at-any-thread-count contract; use memlp::par"},
    {2, "rng-discipline",
     "non-deterministic or ad-hoc RNG outside src/common/rng.* breaks "
     "seeded replay; draw from a split memlp::Rng stream"},
    {3, "io-discipline",
     "direct console output in library code bypasses memlp::obs trace "
     "sinks (tools/bench/examples are exempt)"},
    {4, "error-discipline",
     "bare assert()/throw std::runtime_error in src/ bypass "
     "MEMLP_EXPECT*/memlp::Error contract reporting"},
    {5, "unit-suffix",
     "physical-quantity identifiers (energy/latency/power) must carry a "
     "unit suffix such as _j, _pj, _s, _ns, _w"},
    {6, "header-hygiene", "headers must contain #pragma once"},
    {7, "engine-encapsulation",
     "core/engine.hpp and core/newton_* are private to src/core/; include "
     "the solver wrappers or engine/registry.hpp instead"},
};

const Rule* find_rule(int id) {
  for (const Rule& rule : kRules)
    if (rule.id == id) return &rule;
  return nullptr;
}

struct Diagnostic {
  std::string file;  // root-relative path.
  std::size_t line;  // 1-based; 0 for whole-file findings.
  int rule;
  std::string message;
};

/// Comment/string-literal stripper. Stateful across lines so that block
/// comments spanning lines are handled; stripped characters are replaced
/// with spaces to keep columns stable.
class Stripper {
 public:
  std::string strip(const std::string& line) {
    std::string out;
    out.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state_) {
        case State::kCode:
          if (c == '/' && next == '/') {
            // Line comment: blank the rest of the line.
            out.append(line.size() - i, ' ');
            i = line.size();
          } else if (c == '/' && next == '*') {
            state_ = State::kBlockComment;
            out.append(2, ' ');
            ++i;
          } else if (c == '"') {
            // Raw strings are not used in this codebase; treat R"..."
            // conservatively as an ordinary string (delimiters without
            // parentheses would mis-scan, which the linter tolerates).
            state_ = State::kString;
            out.push_back(' ');
          } else if (c == '\'') {
            state_ = State::kChar;
            out.push_back(' ');
          } else {
            out.push_back(c);
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state_ = State::kCode;
            out.append(2, ' ');
            ++i;
          } else {
            out.push_back(' ');
          }
          break;
        case State::kString:
          if (c == '\\' && next != '\0') {
            out.append(2, ' ');
            ++i;
          } else {
            if (c == '"') state_ = State::kCode;
            out.push_back(' ');
          }
          break;
        case State::kChar:
          if (c == '\\' && next != '\0') {
            out.append(2, ' ');
            ++i;
          } else {
            if (c == '\'') state_ = State::kCode;
            out.push_back(' ');
          }
          break;
      }
    }
    // An unterminated string literal does not continue across lines
    // (multi-line strings need explicit continuation, which we don't use).
    if (state_ == State::kString || state_ == State::kChar)
      state_ = State::kCode;
    return out;
  }

 private:
  enum class State { kCode, kBlockComment, kString, kChar };
  State state_ = State::kCode;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Finds `token` in `line` as a whole token: the characters adjacent to the
/// match must not extend an identifier (so `snprintf` never matches
/// `printf`, `static_assert` never matches `assert`).
std::vector<std::size_t> find_token(std::string_view line,
                                    std::string_view token) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    const bool left_ok =
        pos == 0 || (!is_ident_char(line[pos - 1]) && line[pos - 1] != ':');
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

/// True when the first non-space character before `pos` is `c` — used to
/// skip template-argument mentions like std::lock_guard<std::mutex>.
bool preceded_by(std::string_view line, std::size_t pos, char c) {
  while (pos > 0) {
    --pos;
    if (line[pos] == ' ' || line[pos] == '\t') continue;
    return line[pos] == c;
  }
  return false;
}

/// Parses `memlint:allow(R1,R3)` (rule ids or rule names) out of the raw
/// (unstripped) line. Returns the set of suppressed rule ids.
std::set<int> parse_suppressions(const std::string& raw_line) {
  std::set<int> allowed;
  const std::string marker = "memlint:allow(";
  std::size_t pos = raw_line.find(marker);
  while (pos != std::string::npos) {
    const std::size_t open = pos + marker.size();
    const std::size_t close = raw_line.find(')', open);
    if (close == std::string::npos) break;
    std::stringstream list(raw_line.substr(open, close - open));
    std::string item;
    while (std::getline(list, item, ',')) {
      // Trim and normalise.
      item.erase(std::remove_if(item.begin(), item.end(),
                                [](unsigned char c) {
                                  return std::isspace(c) != 0;
                                }),
                 item.end());
      if (item.empty()) continue;
      if ((item[0] == 'R' || item[0] == 'r') && item.size() > 1 &&
          std::isdigit(static_cast<unsigned char>(item[1])) != 0) {
        allowed.insert(std::stoi(item.substr(1)));
      } else {
        for (const Rule& rule : kRules)
          if (item == rule.name) allowed.insert(rule.id);
      }
    }
    pos = raw_line.find(marker, close);
  }
  return allowed;
}

/// Per-file scan context derived from the root-relative path.
struct FileContext {
  std::string rel;     // forward-slash, root-relative path.
  bool in_src;         // under src/.
  bool in_obs;         // under src/obs/.
  bool in_core;        // under src/core/ (the engine's home, see R7).
  bool is_par_file;    // src/common/par.hpp or par.cpp.
  bool is_rng_file;    // src/common/rng.hpp or rng.cpp.
  bool is_header;      // .hpp/.h.
};

FileContext make_context(const std::string& rel) {
  FileContext context;
  context.rel = rel;
  context.in_src = rel.rfind("src/", 0) == 0;
  context.in_obs = rel.rfind("src/obs/", 0) == 0;
  context.in_core = rel.rfind("src/core/", 0) == 0;
  context.is_par_file =
      rel == "src/common/par.hpp" || rel == "src/common/par.cpp";
  context.is_rng_file =
      rel == "src/common/rng.hpp" || rel == "src/common/rng.cpp";
  context.is_header = rel.ends_with(".hpp") || rel.ends_with(".h");
  return context;
}

const char* const kR1Tokens[] = {
    "std::thread",       "std::jthread",          "std::async",
    "std::mutex",        "std::recursive_mutex",  "std::shared_mutex",
    "std::timed_mutex",  "std::condition_variable",
    "std::counting_semaphore", "std::binary_semaphore", "std::barrier",
    "std::latch",        "pthread_create",
};

const char* const kR2Tokens[] = {
    "std::random_device", "std::mt19937",  "std::mt19937_64",
    "std::minstd_rand",   "std::minstd_rand0",
    "std::default_random_engine", "std::ranlux24", "std::ranlux48",
    "std::rand", "std::srand", "rand", "srand", "rand_r",
};

const char* const kR3Tokens[] = {
    "std::cout", "std::cerr", "std::clog", "printf",
    "fprintf",   "puts",      "putchar",   "fputs",
};

/// Engine-internal headers (R7): private to src/core/. Matched against the
/// RAW line (an include path is a string literal, which the stripper blanks)
/// together with an include directive on the same line — which is also why
/// this table does not flag itself.
const char* const kR7Tokens[] = {
    "\"core/engine.hpp\"",
    "\"core/newton_",
};

/// Unit suffixes accepted by R5 (longest-match not needed; any match wins).
const char* const kUnitSuffixes[] = {
    "_j",  "_mj", "_uj", "_nj", "_pj", "_fj",             // energy
    "_s",  "_ms", "_us", "_ns", "_ps", "_fs",             // time
    "_w",  "_kw", "_mw", "_uw", "_nw",                    // power
    "_hz", "_khz", "_mhz", "_ghz",                        // rate
    "_seconds", "_joules",                                // spelled out
};

bool has_unit_suffix(std::string_view ident) {
  for (std::string_view suffix : kUnitSuffixes)
    if (ident.ends_with(suffix)) return true;
  return false;
}

const char* const kQuantityWords[] = {"energy", "latency", "power", "wall",
                                      "duration"};

/// Extracts identifier tokens with their start offsets.
std::vector<std::pair<std::size_t, std::string>> identifiers(
    std::string_view line) {
  std::vector<std::pair<std::size_t, std::string>> out;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isalpha(static_cast<unsigned char>(line[i])) != 0 ||
        line[i] == '_') {
      std::size_t start = i;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      out.emplace_back(start, std::string(line.substr(start, i - start)));
    } else {
      ++i;
    }
  }
  return out;
}

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  void scan_file(const fs::path& path) {
    const std::string rel = relative_slash(path);
    const FileContext context = make_context(rel);
    std::ifstream in(path);
    if (!in) {
      std::cerr << "memlint: cannot read " << path.string() << '\n';
      io_error_ = true;
      return;
    }
    Stripper stripper;
    std::string raw;
    std::size_t line_no = 0;
    bool saw_pragma_once = false;
    while (std::getline(in, raw)) {
      ++line_no;
      const std::string code = stripper.strip(raw);
      if (code.find("#pragma") != std::string::npos &&
          code.find("once") != std::string::npos)
        saw_pragma_once = true;
      const std::set<int> allowed = parse_suppressions(raw);
      check_line(context, code, raw, line_no, allowed);
    }
    if (context.is_header && !saw_pragma_once)
      report(context, 0, 6, "header is missing #pragma once");
  }

  void scan_tree(const fs::path& dir) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc")
        files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) scan_file(file);
  }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] bool io_error() const { return io_error_; }

 private:
  std::string relative_slash(const fs::path& path) const {
    std::error_code ec;
    fs::path rel = fs::relative(path, root_, ec);
    std::string s = (ec || rel.empty() ? path : rel).generic_string();
    return s;
  }

  void report(const FileContext& context, std::size_t line, int rule_id,
              std::string message) {
    diagnostics_.push_back(
        {context.rel, line, rule_id, std::move(message)});
  }

  void check_line(const FileContext& context, const std::string& code,
                  const std::string& raw, std::size_t line_no,
                  const std::set<int>& allowed) {
    // R1 — parallelism discipline (everywhere except src/common/par.*).
    if (!context.is_par_file && !allowed.contains(1)) {
      for (const char* token : kR1Tokens) {
        for (std::size_t pos : find_token(code, token)) {
          // A mutex type mentioned as a template argument
          // (std::lock_guard<std::mutex>) locks an existing, already
          // vetted mutex; only declarations/spawns are flagged.
          if (preceded_by(code, pos, '<')) continue;
          report(context, line_no, 1,
                 std::string(token) +
                     " outside src/common/par.*; use memlp::par");
        }
      }
    }
    // R2 — RNG discipline (everywhere except src/common/rng.*).
    if (!context.is_rng_file && !allowed.contains(2)) {
      for (const char* token : kR2Tokens) {
        std::string_view tok(token);
        for (std::size_t pos : find_token(code, token)) {
          // Bare `rand`/`srand`/`rand_r` must be a call to count.
          if (tok.rfind("std::", 0) != 0) {
            std::size_t after = pos + tok.size();
            while (after < code.size() && code[after] == ' ') ++after;
            if (after >= code.size() || code[after] != '(') continue;
          }
          report(context, line_no, 2,
                 std::string(token) +
                     " outside src/common/rng.*; draw from a split "
                     "memlp::Rng stream");
        }
      }
    }
    // R3 — IO discipline (library code only; src/obs/ is the sink layer).
    if (context.in_src && !context.in_obs && !allowed.contains(3)) {
      for (const char* token : kR3Tokens) {
        if (!find_token(code, token).empty())
          report(context, line_no, 3,
                 std::string(token) +
                     " in library code; route output through memlp::obs");
      }
    }
    // R4 — error discipline (library code only).
    if (context.in_src && !allowed.contains(4)) {
      for (std::size_t pos : find_token(code, "assert")) {
        std::size_t after = pos + 6;
        while (after < code.size() && code[after] == ' ') ++after;
        if (after < code.size() && code[after] == '(')
          report(context, line_no, 4,
                 "bare assert(); use MEMLP_EXPECT*/MEMLP_ASSERT");
      }
      if (code.find("throw std::runtime_error") != std::string::npos)
        report(context, line_no, 4,
               "throw std::runtime_error; throw a typed memlp::Error "
               "subclass");
    }
    // R5 — unit suffixes on physical-quantity declarations.
    if (!allowed.contains(5)) {
      const auto idents = identifiers(code);
      for (std::size_t i = 1; i < idents.size(); ++i) {
        const std::string& type = idents[i - 1].second;
        if (type != "double" && type != "float") continue;
        // Only a declarator position counts: between the type and the
        // name, allow whitespace and &/* — this rejects casts like
        // static_cast<double>(energy) and template args.
        const std::size_t gap_begin = idents[i - 1].first + type.size();
        const std::string_view gap(code.data() + gap_begin,
                                   idents[i].first - gap_begin);
        const bool declarator =
            !gap.empty() &&
            gap.find_first_not_of(" \t&*") == std::string_view::npos;
        if (!declarator) continue;
        const std::string& name = idents[i].second;
        bool quantity = false;
        for (const char* word : kQuantityWords)
          if (name.find(word) != std::string::npos) quantity = true;
        if (quantity && !has_unit_suffix(name))
          report(context, line_no, 5,
                 "'" + name +
                     "' names a physical quantity but has no unit suffix "
                     "(_j, _pj, _s, _ns, _w, ...)");
      }
    }
    // R7 — engine encapsulation (everywhere except src/core/ itself). The
    // include path is a string literal, which the stripper blanks out of
    // `code`, so this rule matches on the raw line; requiring the directive
    // and the path on one line keeps doc-comment mentions clean.
    if (!context.in_core && !allowed.contains(7) &&
        raw.find("#include") != std::string::npos) {
      for (const char* token : kR7Tokens) {
        if (raw.find(token) != std::string::npos)
          report(context, line_no, 7,
                 std::string(token) +
                     " is engine-internal (private to src/core/); include "
                     "the solver wrappers or engine/registry.hpp");
      }
    }
  }

  fs::path root_;
  std::vector<Diagnostic> diagnostics_;
  bool io_error_ = false;
};

int usage(std::ostream& os, int code) {
  os << "usage: memlint [--root DIR] [--list-rules] [path...]\n"
        "Scans path... (default: src tools bench examples) under DIR\n"
        "(default: cwd) for memlp project-invariant violations.\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return usage(std::cerr, 2);
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const Rule& rule : kRules)
        std::cout << 'R' << rule.id << '/' << rule.name << ": "
                  << rule.summary << '\n';
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "memlint: unknown option " << arg << '\n';
      return usage(std::cerr, 2);
    } else {
      paths.emplace_back(arg);
    }
  }
  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "memlint: bad --root: " << ec.message() << '\n';
    return 2;
  }
  if (paths.empty()) paths = {"src", "tools", "bench", "examples"};

  Linter linter(root);
  for (const std::string& p : paths) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    if (fs::is_directory(abs)) {
      linter.scan_tree(abs);
    } else if (fs::is_regular_file(abs)) {
      linter.scan_file(abs);
    }
    // Missing default subdirectories are skipped silently so the same
    // invocation works on fixture trees that only contain src/.
  }

  for (const Diagnostic& diag : linter.diagnostics()) {
    const Rule* rule = find_rule(diag.rule);
    std::cout << diag.file << ':' << diag.line << ": [R" << diag.rule << '/'
              << (rule != nullptr ? rule->name : "?") << "] " << diag.message
              << '\n';
  }
  if (linter.io_error()) return 2;
  if (!linter.diagnostics().empty()) {
    std::cerr << "memlint: " << linter.diagnostics().size()
              << " violation(s)\n";
    return 1;
  }
  return 0;
}
