// Scope-aware source model — memlint's second analysis layer.
//
// A brace/scope tracker over the stripped text classifies every `{` as a
// namespace, class, function, lambda, control block, or brace-initializer,
// which yields per-file:
//
//   * function definitions with qualified names (`Crossbar::solve`) and
//     body line ranges, including class-inline and anon-namespace ones;
//   * lambda expressions with parsed capture lists (default `&`/`=`,
//     explicit `&name`/`name`), parameter names, the enclosing call they
//     are an argument of (e.g. `parallel_for`), and — when bound to a
//     variable — the variable name so `parallel_for(n, body)` resolves;
//   * per-function site lists: project-local free-call sites (member
//     calls through `.`/`->` are deliberately NOT resolved — virtual
//     dispatch is invisible to a token scanner, so each implementation
//     carries its own annotations), allocation sites (`new`,
//     `make_unique/shared`, container construction and growth), ledger
//     charges, and the maximum nested-loop depth.
//
// The model is line-accurate, not column-accurate: a site is attributed to
// the innermost function whose body covers its line.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace memlint {

struct CallSite {
  std::size_t line = 0;
  std::string name;  // simple callee name (`gemv`, `parallel_for`).
  bool member = false;  // reached through `.`/`->` — not resolved.
  std::vector<std::string> arg_idents;  // direct argument identifiers.
};

struct AllocSite {
  std::size_t line = 0;
  std::string what;  // human-readable site description, e.g. "Vec(...)".
};

struct MutationSite {
  std::size_t line = 0;
  std::string target;  // base identifier written to.
  std::string how;     // "=", "+=", ".push_back(...)", "++", ...
};

struct LambdaInfo {
  std::size_t intro_line = 0;  // line of the `[` introducer.
  std::size_t body_begin = 0;  // line of the `{`.
  std::size_t body_end = 0;    // line of the matching `}`.
  bool default_ref = false;    // `[&...]`
  bool default_copy = false;   // `[=...]`
  bool captures_this = false;  // `this` / `*this`
  std::vector<std::string> ref_captures;   // `&name`
  std::vector<std::string> copy_captures;  // `name`, `name = init`
  std::vector<std::string> params;
  std::string bound_to;   // variable name when `auto f = [...]`.
  std::string passed_to;  // innermost enclosing call at the introducer.
  int enclosing_function = -1;  // index into FileModel::functions.
};

struct FunctionInfo {
  std::string name;  // qualified as written: `Crossbar::solve`, `gemv`.
  std::size_t header_line = 0;  // first line of the signature.
  std::size_t body_begin = 0;   // line of the opening `{`.
  std::size_t body_end = 0;     // line of the matching `}`.
  bool hot = false;             // carries the hot-path annotation.
  std::size_t max_loop_depth = 0;  // for/while/do nesting (see parse.cpp).
  bool charges_ledger = false;  // mentions CostLedger / charge_active.
  std::vector<CallSite> calls;
  std::vector<AllocSite> allocs;
};

struct FileModel {
  std::string rel;  // root-relative path, forward slashes.
  std::vector<FunctionInfo> functions;
  std::vector<LambdaInfo> lambdas;
};

/// Parses one file's stripped lines (index 0 = line 1). `raw` is consulted
/// only for the hot-path annotation marker, which lives in comments.
FileModel parse_file(const std::string& rel,
                     const std::vector<std::string>& stripped,
                     const std::vector<std::string>& raw);

/// Scans a lambda body for writes to by-reference captures. Writes through
/// an index (`out[i] = ...`) or a call result (`m(i, j) = ...`) are the
/// sanctioned per-slot pattern and do not count; direct assignment,
/// compound assignment, increment/decrement, and container-growth calls on
/// a by-ref capture do. With a `[&]` default capture every mutated
/// identifier that is neither a parameter nor declared inside the body is
/// treated as captured.
std::vector<MutationSite> lambda_ref_mutations(
    const LambdaInfo& lambda, const std::vector<std::string>& stripped);

}  // namespace memlint
