// memlint rule catalogue and diagnostic record (docs/static-analysis.md).
#pragma once

#include <cstddef>
#include <string>

namespace memlint {

struct Rule {
  int id;                // 1..10 — printed as R<id>.
  const char* name;      // kebab-case slug.
  const char* summary;   // one-line rationale for --list-rules.
};

// Rules are numbered once and never reused. R1–R7 are line-local token
// rules; R8–R10 run on the parsed function/lambda/call-graph model.
inline constexpr Rule kRules[] = {
    {1, "parallelism-discipline",
     "raw threading primitives outside src/common/par.* break the "
     "bit-identical-at-any-thread-count contract; use memlp::par"},
    {2, "rng-discipline",
     "non-deterministic or ad-hoc RNG outside src/common/rng.* breaks "
     "seeded replay; draw from a split memlp::Rng stream"},
    {3, "io-discipline",
     "direct console output in library code bypasses memlp::obs trace "
     "sinks (tools/bench/examples are exempt)"},
    {4, "error-discipline",
     "bare assert()/throw std::runtime_error in src/ bypass "
     "MEMLP_EXPECT*/memlp::Error contract reporting"},
    {5, "unit-suffix",
     "physical-quantity identifiers (energy/latency/power) must carry a "
     "unit suffix such as _j, _pj, _s, _ns, _w"},
    {6, "header-hygiene", "headers must contain #pragma once"},
    {7, "engine-encapsulation",
     "core/engine.hpp and core/newton_* are private to src/core/; include "
     "the solver wrappers or engine/registry.hpp instead"},
    {8, "par-capture-determinism",
     "lambdas handed to memlp::par may write captures only through "
     "per-index slots; scalar accumulation or container growth is "
     "merge-order-dependent and breaks the bit-identical contract"},
    {9, "hot-path-allocation",
     "functions carrying the hot annotation must stay transitively "
     "allocation-free (no new/make_unique/container growth) so the analog "
     "kernels survive the scale-up to N in the thousands"},
    {10, "ledger-coverage",
     "src/linalg functions with nested loops must charge CostLedger flops "
     "(directly or via a callee) so cost attribution stays trustworthy"},
};

inline const Rule* find_rule(int id) {
  for (const Rule& rule : kRules)
    if (rule.id == id) return &rule;
  return nullptr;
}

struct Diagnostic {
  std::string file;  // root-relative path.
  std::size_t line;  // 1-based; 0 for whole-file findings.
  int rule;
  std::string message;
};

}  // namespace memlint
