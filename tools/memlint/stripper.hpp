// Comment/string-literal stripper — the first memlint analysis layer.
#pragma once

#include <string>

namespace memlint {

/// Comment/string-literal stripper. Stateful across lines so that block
/// comments and raw string literals spanning lines are handled; stripped
/// characters are replaced with spaces to keep columns stable.
///
/// C++14 digit separators (`10'000`) are recognized and do NOT open a
/// character-literal state: a `'` whose preceding token starts with a digit
/// and whose next character is alphanumeric separates digits. (Without
/// this, everything after `10'000` on the line was blanked as a char
/// literal — hiding any violation after it.)
///
/// Raw string literals `R"delim( ... )delim"` are skipped exactly,
/// including multi-line bodies; the `u8R`/`uR`/`UR`/`LR` prefixes are
/// recognized too.
class Stripper {
 public:
  std::string strip(const std::string& line);

  /// True when a block comment or raw string is still open (for tests).
  [[nodiscard]] bool mid_multiline() const { return state_ != State::kCode; }

 private:
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state_ = State::kCode;
  std::string raw_terminator_;  // `)delim"` closing the open raw string.
};

}  // namespace memlint
