#include "memlint/stripper.hpp"

#include <cctype>
#include <cstddef>
#include <string_view>

#include "memlint/text.hpp"

namespace memlint {
namespace {

/// True when the `'` at `pos` is a C++14 digit separator: the token it
/// interrupts starts with a digit (so `10'000` and `0xFF'FF` qualify but a
/// `u8'a'` char literal — whose preceding token `u8` starts with a letter —
/// does not) and an alphanumeric continues the literal right after it.
bool is_digit_separator(std::string_view line, std::size_t pos) {
  if (pos == 0 || pos + 1 >= line.size()) return false;
  if (std::isalnum(static_cast<unsigned char>(line[pos + 1])) == 0)
    return false;
  std::size_t start = pos;
  while (start > 0 && is_ident_char(line[start - 1])) --start;
  return start < pos &&
         std::isdigit(static_cast<unsigned char>(line[start])) != 0;
}

/// When the `"` at `pos` opens a raw string literal, returns the length of
/// its `R`-ending encoding prefix (1 for `R`, 2 for `uR`/`UR`/`LR`, 3 for
/// `u8R`); 0 when it is an ordinary string.
std::size_t raw_prefix_length(std::string_view line, std::size_t pos) {
  for (std::string_view prefix : {"u8R", "uR", "UR", "LR", "R"}) {
    if (pos < prefix.size()) continue;
    const std::size_t start = pos - prefix.size();
    if (line.substr(start, prefix.size()) != prefix) continue;
    if (start > 0 && is_ident_char(line[start - 1])) continue;
    return prefix.size();
  }
  return 0;
}

}  // namespace

std::string Stripper::strip(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    const char next = i + 1 < line.size() ? line[i + 1] : '\0';
    switch (state_) {
      case State::kCode:
        if (c == '/' && next == '/') {
          // Line comment: blank the rest of the line.
          out.append(line.size() - i, ' ');
          i = line.size();
        } else if (c == '/' && next == '*') {
          state_ = State::kBlockComment;
          out.append(2, ' ');
          ++i;
        } else if (c == '"') {
          if (raw_prefix_length(line, i) > 0) {
            // R"delim( — capture the delimiter so only )delim" closes it.
            std::size_t open = line.find('(', i + 1);
            // A malformed raw string (no `(` before EOL) cannot occur in
            // valid C++; treat it as ordinary-string fallback.
            if (open == std::string::npos) {
              state_ = State::kString;
              out.push_back(' ');
              break;
            }
            raw_terminator_.assign(1, ')');
            raw_terminator_.append(line, i + 1, open - (i + 1));
            raw_terminator_.push_back('"');
            state_ = State::kRawString;
            out.append(open - i + 1, ' ');
            i = open;
          } else {
            state_ = State::kString;
            out.push_back(' ');
          }
        } else if (c == '\'') {
          if (is_digit_separator(line, i)) {
            // `10'000` — stay in code; the separator itself carries no
            // token information, so blank it like other punctuation noise.
            out.push_back(' ');
          } else {
            state_ = State::kChar;
            out.push_back(' ');
          }
        } else {
          out.push_back(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state_ = State::kCode;
          out.append(2, ' ');
          ++i;
        } else {
          out.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out.append(2, ' ');
          ++i;
        } else {
          if (c == '"') state_ = State::kCode;
          out.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out.append(2, ' ');
          ++i;
        } else {
          if (c == '\'') state_ = State::kCode;
          out.push_back(' ');
        }
        break;
      case State::kRawString: {
        const std::size_t close = line.find(raw_terminator_, i);
        if (close == std::string::npos) {
          out.append(line.size() - i, ' ');
          i = line.size();
        } else {
          const std::size_t end = close + raw_terminator_.size();
          out.append(end - i, ' ');
          i = end - 1;
          state_ = State::kCode;
        }
        break;
      }
    }
  }
  // An unterminated ordinary string/char literal does not continue across
  // lines (multi-line strings need explicit continuation, which we don't
  // use); block comments and raw strings do.
  if (state_ == State::kString || state_ == State::kChar)
    state_ = State::kCode;
  return out;
}

}  // namespace memlint
