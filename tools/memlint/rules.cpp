#include "memlint/rules.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string_view>
#include <utility>

#include "memlint/text.hpp"

namespace memlint {
namespace {

const char* const kR1Tokens[] = {
    "std::thread",       "std::jthread",          "std::async",
    "std::mutex",        "std::recursive_mutex",  "std::shared_mutex",
    "std::timed_mutex",  "std::condition_variable",
    "std::counting_semaphore", "std::binary_semaphore", "std::barrier",
    "std::latch",        "pthread_create",
};

const char* const kR2Tokens[] = {
    "std::random_device", "std::mt19937",  "std::mt19937_64",
    "std::minstd_rand",   "std::minstd_rand0",
    "std::default_random_engine", "std::ranlux24", "std::ranlux48",
    "std::rand", "std::srand", "rand", "srand", "rand_r",
};

const char* const kR3Tokens[] = {
    "std::cout", "std::cerr", "std::clog", "printf",
    "fprintf",   "puts",      "putchar",   "fputs",
};

/// Engine-internal headers (R7): private to src/core/. Matched against the
/// RAW line (an include path is a string literal, which the stripper blanks)
/// together with an include directive on the same line — which is also why
/// this table does not flag itself.
const char* const kR7Tokens[] = {
    "\"core/engine.hpp\"",
    "\"core/newton_",
};

/// Unit suffixes accepted by R5 (longest-match not needed; any match wins).
const char* const kUnitSuffixes[] = {
    "_j",  "_mj", "_uj", "_nj", "_pj", "_fj",             // energy
    "_s",  "_ms", "_us", "_ns", "_ps", "_fs",             // time
    "_w",  "_kw", "_mw", "_uw", "_nw",                    // power
    "_hz", "_khz", "_mhz", "_ghz",                        // rate
    "_seconds", "_joules",                                // spelled out
};

bool has_unit_suffix(std::string_view ident) {
  for (std::string_view suffix : kUnitSuffixes)
    if (ident.ends_with(suffix)) return true;
  return false;
}

const char* const kQuantityWords[] = {"energy", "latency", "power", "wall",
                                      "duration"};

bool is_par_entry_point(std::string_view name) {
  return name == "parallel_for" || name == "parallel_for_ranges" ||
         name == "for_chunks";
}

/// The memlp::par entry point a lambda is handed to — directly as an
/// argument, or by the name it is bound to appearing among a par call's
/// argument identifiers in the same enclosing function. Empty when the
/// lambda never reaches the parallel runtime.
std::string par_entry_for(const FileModel& model, const LambdaInfo& lambda) {
  if (is_par_entry_point(lambda.passed_to)) return lambda.passed_to;
  if (lambda.bound_to.empty() || lambda.enclosing_function < 0) return {};
  const FunctionInfo& fn =
      model.functions[static_cast<std::size_t>(lambda.enclosing_function)];
  for (const CallSite& call : fn.calls) {
    if (!is_par_entry_point(call.name)) continue;
    if (std::find(call.arg_idents.begin(), call.arg_idents.end(),
                  lambda.bound_to) != call.arg_idents.end())
      return call.name;
  }
  return {};
}

// R8 — par-capture determinism.
void check_par_captures(const FileModel& model,
                        const std::vector<std::string>& stripped,
                        std::vector<Diagnostic>& out) {
  for (const LambdaInfo& lambda : model.lambdas) {
    const std::string entry = par_entry_for(model, lambda);
    if (entry.empty()) continue;
    for (const MutationSite& site : lambda_ref_mutations(lambda, stripped)) {
      out.push_back(
          {model.rel, site.line, 8,
           "lambda passed to par::" + entry +
               " mutates by-reference capture '" + site.target + "' (" +
               site.how +
               "); write through per-index slots or reduce after the join"});
    }
  }
}

// R9 — hot-path allocation freedom, transitive through project-local free
// calls. Diagnostics land on the allocation site; when reached through a
// call chain, the message names the hot root for context.
void check_hot_paths(const std::vector<FileModel>& models,
                     const CallGraph& graph, std::vector<Diagnostic>& out) {
  // An allocation site reachable from several hot roots reports once; a
  // site inside a hot function itself claims the first-person message
  // before any transitive walk can reach it.
  std::set<std::pair<std::string, std::size_t>> reported;
  for (const FunctionRef& root : graph.all()) {
    if (!graph.fn(root).hot) continue;
    for (const AllocSite& alloc : graph.fn(root).allocs) {
      const std::string& file = graph.file_of(root);
      if (!reported.insert({file, alloc.line}).second) continue;
      out.push_back({file, alloc.line, 9,
                     "allocation (" + alloc.what + ") in hot-annotated '" +
                         graph.fn(root).name +
                         "'; hot paths must stay allocation-free"});
    }
  }
  for (const FunctionRef& root : graph.all()) {
    if (!graph.fn(root).hot) continue;
    const std::string root_name = graph.fn(root).name;
    for (const Reached& step : graph.closure(root)) {
      const FunctionInfo& fn = graph.fn(step.ref);
      const std::string& file = graph.file_of(step.ref);
      for (const AllocSite& alloc : fn.allocs) {
        if (!reported.insert({file, alloc.line}).second) continue;
        std::string message = "allocation (" + alloc.what + ") in ";
        if (step.ref == root) {
          message += "hot-annotated '" + root_name + "'";
        } else {
          message += "'" + fn.name + "', reachable from hot-annotated '" +
                     root_name + "'";
        }
        message += "; hot paths must stay allocation-free";
        out.push_back({file, alloc.line, 9, std::move(message)});
      }
    }
  }
  (void)models;
}

// R10 — ledger coverage: nested loops in src/linalg must charge flops,
// directly or through a reachable callee.
void check_ledger_coverage(const std::vector<FileModel>& models,
                           const CallGraph& graph,
                           std::vector<Diagnostic>& out) {
  for (const FunctionRef& ref : graph.all()) {
    const std::string& file = graph.file_of(ref);
    if (!file.starts_with("src/linalg/")) continue;
    const FunctionInfo& fn = graph.fn(ref);
    if (fn.max_loop_depth < 2) continue;
    bool charged = false;
    for (const Reached& step : graph.closure(ref)) {
      if (graph.fn(step.ref).charges_ledger) {
        charged = true;
        break;
      }
    }
    if (charged) continue;
    out.push_back(
        {file, fn.header_line, 10,
         "'" + fn.name +
             "' has nested loops but never charges CostLedger flops "
             "(directly or via a callee); cost attribution has a hole"});
  }
  (void)models;
}

}  // namespace

FileContext make_context(const std::string& rel) {
  FileContext context;
  context.rel = rel;
  context.in_src = rel.rfind("src/", 0) == 0;
  context.in_obs = rel.rfind("src/obs/", 0) == 0;
  context.in_core = rel.rfind("src/core/", 0) == 0;
  context.in_linalg = rel.rfind("src/linalg/", 0) == 0;
  context.is_par_file =
      rel == "src/common/par.hpp" || rel == "src/common/par.cpp";
  context.is_rng_file =
      rel == "src/common/rng.hpp" || rel == "src/common/rng.cpp";
  context.is_header = rel.ends_with(".hpp") || rel.ends_with(".h");
  return context;
}

void check_line(const FileContext& context, const std::string& code,
                const std::string& raw, std::size_t line_no,
                std::vector<Diagnostic>& out) {
  const auto report = [&](int rule_id, std::string message) {
    out.push_back({context.rel, line_no, rule_id, std::move(message)});
  };
  // R1 — parallelism discipline (everywhere except src/common/par.*).
  if (!context.is_par_file) {
    for (const char* token : kR1Tokens) {
      for (std::size_t pos : find_token(code, token)) {
        // A mutex type mentioned as a template argument
        // (std::lock_guard<std::mutex>) locks an existing, already
        // vetted mutex; only declarations/spawns are flagged.
        if (preceded_by(code, pos, '<')) continue;
        report(1, std::string(token) +
                      " outside src/common/par.*; use memlp::par");
      }
    }
  }
  // R2 — RNG discipline (everywhere except src/common/rng.*).
  if (!context.is_rng_file) {
    for (const char* token : kR2Tokens) {
      std::string_view tok(token);
      for (std::size_t pos : find_token(code, token)) {
        // Bare `rand`/`srand`/`rand_r` must be a call to count.
        if (tok.rfind("std::", 0) != 0) {
          std::size_t after = pos + tok.size();
          while (after < code.size() && code[after] == ' ') ++after;
          if (after >= code.size() || code[after] != '(') continue;
        }
        report(2, std::string(token) +
                      " outside src/common/rng.*; draw from a split "
                      "memlp::Rng stream");
      }
    }
  }
  // R3 — IO discipline (library code only; src/obs/ is the sink layer).
  if (context.in_src && !context.in_obs) {
    for (const char* token : kR3Tokens) {
      if (!find_token(code, token).empty())
        report(3, std::string(token) +
                      " in library code; route output through memlp::obs");
    }
  }
  // R4 — error discipline (library code only).
  if (context.in_src) {
    for (std::size_t pos : find_token(code, "assert")) {
      std::size_t after = pos + 6;
      while (after < code.size() && code[after] == ' ') ++after;
      if (after < code.size() && code[after] == '(')
        report(4, "bare assert(); use MEMLP_EXPECT*/MEMLP_ASSERT");
    }
    if (code.find("throw std::runtime_error") != std::string::npos)
      report(4,
             "throw std::runtime_error; throw a typed memlp::Error "
             "subclass");
  }
  // R5 — unit suffixes on physical-quantity declarations.
  {
    const auto idents = identifiers(code);
    for (std::size_t i = 1; i < idents.size(); ++i) {
      const std::string& type = idents[i - 1].second;
      if (type != "double" && type != "float") continue;
      // Only a declarator position counts: between the type and the
      // name, allow whitespace and &/* — this rejects casts like
      // static_cast<double>(energy) and template args.
      const std::size_t gap_begin = idents[i - 1].first + type.size();
      const std::string_view gap(code.data() + gap_begin,
                                 idents[i].first - gap_begin);
      const bool declarator =
          !gap.empty() &&
          gap.find_first_not_of(" \t&*") == std::string_view::npos;
      if (!declarator) continue;
      const std::string& name = idents[i].second;
      bool quantity = false;
      for (const char* word : kQuantityWords)
        if (name.find(word) != std::string::npos) quantity = true;
      if (quantity && !has_unit_suffix(name))
        report(5, "'" + name +
                      "' names a physical quantity but has no unit suffix "
                      "(_j, _pj, _s, _ns, _w, ...)");
    }
  }
  // R7 — engine encapsulation (everywhere except src/core/ itself). The
  // include path is a string literal, which the stripper blanks out of
  // `code`, so this rule matches on the raw line; requiring the directive
  // and the path on one line keeps doc-comment mentions clean.
  if (!context.in_core && raw.find("#include") != std::string::npos) {
    for (const char* token : kR7Tokens) {
      if (raw.find(token) != std::string::npos)
        report(7, std::string(token) +
                      " is engine-internal (private to src/core/); include "
                      "the solver wrappers or engine/registry.hpp");
    }
  }
}

void check_model_rules(const std::vector<FileModel>& models,
                       const std::vector<std::vector<std::string>>& stripped,
                       const CallGraph& graph,
                       std::vector<Diagnostic>& out) {
  for (std::size_t f = 0; f < models.size(); ++f)
    check_par_captures(models[f], stripped[f], out);
  check_hot_paths(models, graph, out);
  check_ledger_coverage(models, graph, out);
  // Deterministic output: finalize findings sort by file, line, rule.
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

}  // namespace memlint
