#include "memlint/callgraph.hpp"

#include <deque>
#include <set>

#include "memlint/text.hpp"

namespace memlint {
namespace {

/// Class qualifier of a definition name: "Cls" for `Cls::f`, "" for `f`.
std::string class_of(const std::string& qualified) {
  const std::size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? std::string{} : qualified.substr(0, pos);
}

}  // namespace

void CallGraph::build(const std::vector<FileModel>& models) {
  models_ = &models;
  by_simple_.clear();
  file_excluded_.assign(models.size(), false);
  for (std::size_t f = 0; f < models.size(); ++f) {
    file_excluded_[f] = models[f].rel.starts_with("src/obs/");
    for (std::size_t k = 0; k < models[f].functions.size(); ++k) {
      const std::string simple(simple_name(models[f].functions[k].name));
      by_simple_[simple].push_back(
          {static_cast<int>(f), static_cast<int>(k)});
    }
  }
}

std::vector<FunctionRef> CallGraph::resolve(
    const std::string& simple, const std::string& caller_class) const {
  const auto it = by_simple_.find(simple);
  if (it == by_simple_.end()) return {};
  std::vector<FunctionRef> same_class;
  std::vector<FunctionRef> everywhere;
  for (const FunctionRef& ref : it->second) {
    if (file_excluded_[static_cast<std::size_t>(ref.file)]) continue;
    const std::string cls = class_of(fn(ref).name);
    if (!caller_class.empty() && cls == caller_class)
      same_class.push_back(ref);
    everywhere.push_back(ref);
  }
  return same_class.empty() ? everywhere : same_class;
}

std::vector<Reached> CallGraph::closure(FunctionRef root) const {
  std::vector<Reached> out;
  std::set<FunctionRef> seen;
  std::deque<Reached> queue;
  queue.push_back({root, {-1, -1}, 0});
  seen.insert(root);
  while (!queue.empty()) {
    const Reached current = queue.front();
    queue.pop_front();
    out.push_back(current);
    const FunctionInfo& info = fn(current.ref);
    const std::string caller_class = class_of(info.name);
    for (const CallSite& call : info.calls) {
      for (const FunctionRef& next : resolve(call.name, caller_class)) {
        if (next == current.ref) continue;  // self-recursion.
        if (!seen.insert(next).second) continue;
        queue.push_back({next, current.ref, call.line});
      }
    }
  }
  return out;
}

std::vector<FunctionRef> CallGraph::all() const {
  std::vector<FunctionRef> out;
  for (std::size_t f = 0; f < models_->size(); ++f)
    for (std::size_t k = 0; k < (*models_)[f].functions.size(); ++k)
      out.push_back({static_cast<int>(f), static_cast<int>(k)});
  return out;
}

}  // namespace memlint
