#include "memlint/linter.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <sstream>

#include "memlint/callgraph.hpp"
#include "memlint/rules.hpp"
#include "memlint/stripper.hpp"

namespace memlint {

namespace fs = std::filesystem;

std::set<int> parse_suppressions(const std::string& raw_line,
                                 const std::string& marker) {
  std::set<int> allowed;
  std::size_t pos = raw_line.find(marker);
  while (pos != std::string::npos) {
    const std::size_t open = pos + marker.size();
    const std::size_t close = raw_line.find(')', open);
    if (close == std::string::npos) break;
    std::stringstream list(raw_line.substr(open, close - open));
    std::string item;
    while (std::getline(list, item, ',')) {
      // Trim and normalise.
      item.erase(std::remove_if(item.begin(), item.end(),
                                [](unsigned char c) {
                                  return std::isspace(c) != 0;
                                }),
                 item.end());
      if (item.empty()) continue;
      if ((item[0] == 'R' || item[0] == 'r') && item.size() > 1 &&
          std::isdigit(static_cast<unsigned char>(item[1])) != 0) {
        allowed.insert(std::stoi(item.substr(1)));
      } else {
        for (const Rule& rule : kRules)
          if (item == rule.name) allowed.insert(rule.id);
      }
    }
    pos = raw_line.find(marker, close);
  }
  return allowed;
}

std::string Linter::relative_slash(const fs::path& path) const {
  std::error_code ec;
  fs::path rel = fs::relative(path, root_, ec);
  std::string s = (ec || rel.empty() ? path : rel).generic_string();
  return s;
}

bool Linter::is_suppressed(const Diagnostic& diag) const {
  const auto it = records_.find(diag.file);
  if (it == records_.end()) return false;
  if (it->second.file_allows.contains(diag.rule)) return true;
  const auto line_it = it->second.line_allows.find(diag.line);
  return line_it != it->second.line_allows.end() &&
         line_it->second.contains(diag.rule);
}

void Linter::deliver(const Diagnostic& diag) {
  const std::size_t slot =
      diag.rule >= 0 && diag.rule < 16 ? static_cast<std::size_t>(diag.rule)
                                       : 0;
  if (is_suppressed(diag)) {
    ++suppressed_[slot];
    return;
  }
  ++hits_[slot];
  diagnostics_.push_back(diag);
}

void Linter::scan_file(const fs::path& path) {
  const std::string rel = relative_slash(path);
  const FileContext context = make_context(rel);
  std::ifstream in(path);
  if (!in) {
    std::cerr << "memlint: cannot read " << path.string() << '\n';
    io_error_ = true;
    return;
  }
  Stripper stripper;
  FileRecord& record = records_[rel];
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
  std::vector<Diagnostic> pending;
  std::string raw;
  std::size_t line_no = 0;
  bool saw_pragma_once = false;
  const std::string line_marker = "memlint:allow(";
  const std::string file_marker = "memlint:allow-file(";
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string code = stripper.strip(raw);
    if (code.find("#pragma") != std::string::npos &&
        code.find("once") != std::string::npos)
      saw_pragma_once = true;
    const std::set<int> line_allowed = parse_suppressions(raw, line_marker);
    if (!line_allowed.empty()) record.line_allows[line_no] = line_allowed;
    const std::set<int> file_allowed = parse_suppressions(raw, file_marker);
    record.file_allows.insert(file_allowed.begin(), file_allowed.end());
    check_line(context, code, raw, line_no, pending);
    raw_lines.push_back(raw);
    code_lines.push_back(code);
  }
  if (context.is_header && !saw_pragma_once)
    pending.push_back({rel, 0, 6, "header is missing #pragma once"});
  // Suppressions (notably allow-file) may follow a finding, so filtering
  // waits until the whole file is read.
  for (const Diagnostic& diag : pending) deliver(diag);
  models_.push_back(parse_file(rel, code_lines, raw_lines));
  stripped_.push_back(std::move(code_lines));
}

void Linter::scan_tree(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) scan_file(file);
}

void Linter::finalize() {
  CallGraph graph;
  graph.build(models_);
  std::vector<Diagnostic> model_diags;
  check_model_rules(models_, stripped_, graph, model_diags);
  for (const Diagnostic& diag : model_diags) deliver(diag);
}

void Linter::print_summary(std::ostream& os) const {
  os << "memlint summary:\n";
  for (const Rule& rule : kRules) {
    std::string label = "R";
    label += std::to_string(rule.id);
    label += "/";
    label += rule.name;
    os << "  " << label;
    for (std::size_t pad = label.size(); pad < 28; ++pad) os << ' ';
    os << ' ' << hits(rule.id) << " hit(s), " << suppressed(rule.id)
       << " suppressed\n";
  }
}

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

void Linter::print_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"memlp.memlint/1\",\n  \"violations\": [";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& diag = diagnostics_[i];
    const Rule* rule = find_rule(diag.rule);
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"file\": \"" << json_escape(diag.file)
       << "\", \"line\": " << diag.line << ", \"rule\": \"R" << diag.rule
       << "\", \"slug\": \"" << (rule != nullptr ? rule->name : "?")
       << "\", \"message\": \"" << json_escape(diag.message) << "\"}";
  }
  os << (diagnostics_.empty() ? "]" : "\n  ]") << ",\n  \"count\": "
     << diagnostics_.size() << "\n}\n";
}

}  // namespace memlint
