// Shared token-level text helpers for the memlint scanner layers.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace memlint {

inline bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

inline bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Finds `token` in `line` as a whole token: the characters adjacent to the
/// match must not extend an identifier (so `snprintf` never matches
/// `printf`, `static_assert` never matches `assert`). A leading `:` also
/// blocks a match, so `foo::mutex` never matches `mutex`.
inline std::vector<std::size_t> find_token(std::string_view line,
                                           std::string_view token) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    const bool left_ok =
        pos == 0 || (!is_ident_char(line[pos - 1]) && line[pos - 1] != ':');
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

/// True when the first non-space character before `pos` is `c` — used to
/// skip template-argument mentions like std::lock_guard<std::mutex>.
inline bool preceded_by(std::string_view line, std::size_t pos, char c) {
  while (pos > 0) {
    --pos;
    if (line[pos] == ' ' || line[pos] == '\t') continue;
    return line[pos] == c;
  }
  return false;
}

/// Index of the first non-space character before `pos`, or npos.
inline std::size_t prev_nonspace(std::string_view line, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (line[pos] != ' ' && line[pos] != '\t') return pos;
  }
  return std::string_view::npos;
}

/// Index of the first non-space character at/after `pos`, or npos.
inline std::size_t next_nonspace(std::string_view line, std::size_t pos) {
  while (pos < line.size()) {
    if (line[pos] != ' ' && line[pos] != '\t') return pos;
    ++pos;
  }
  return std::string_view::npos;
}

/// Extracts identifier tokens with their start offsets.
inline std::vector<std::pair<std::size_t, std::string>> identifiers(
    std::string_view line) {
  std::vector<std::pair<std::size_t, std::string>> out;
  std::size_t i = 0;
  while (i < line.size()) {
    if (is_ident_start(line[i])) {
      std::size_t start = i;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      out.emplace_back(start, std::string(line.substr(start, i - start)));
    } else {
      ++i;
    }
  }
  return out;
}

/// The simple (unqualified) tail of a possibly `A::B::c` qualified name.
inline std::string_view simple_name(std::string_view qualified) {
  const std::size_t pos = qualified.rfind("::");
  return pos == std::string_view::npos ? qualified
                                       : qualified.substr(pos + 2);
}

}  // namespace memlint
