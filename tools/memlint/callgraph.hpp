// Cross-file symbol table and project-local call graph — memlint's third
// analysis layer, built in the finalize pass once every file is parsed.
//
// Resolution is deliberately modest: only free-call sites (identifier
// followed by `(`, not reached through `.`/`->` and not `std::`-qualified)
// become edges. A call from `Cls::f` prefers definitions inside `Cls`
// (unqualified member calls), then falls back to every project definition
// sharing the simple name. Member calls through objects stay unresolved —
// virtual dispatch is invisible to a token scanner — which is why each hot
// layer (crossbar, factor cache, LU kernels) carries its own annotation
// instead of relying on transitive discovery through interfaces.
//
// Files under `src/obs/` are indexed but never traversed: the observability
// layer (CostLedger, TraceWriter) is exempt from hot-path allocation
// accounting because tracing is off on measured runs.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "memlint/parse.hpp"

namespace memlint {

struct FunctionRef {
  int file = -1;  // index into the model list.
  int fn = -1;    // index into FileModel::functions.
  bool operator<(const FunctionRef& o) const {
    return file != o.file ? file < o.file : fn < o.fn;
  }
  bool operator==(const FunctionRef& o) const {
    return file == o.file && fn == o.fn;
  }
};

/// One step of a hot-path closure walk: a reached function and the call
/// site it was reached through (for diagnostics like `solve -> gemv`).
struct Reached {
  FunctionRef ref;
  FunctionRef parent;        // {-1,-1} for the root.
  std::size_t via_line = 0;  // call-site line in the parent's file.
};

class CallGraph {
 public:
  void build(const std::vector<FileModel>& models);

  const FunctionInfo& fn(FunctionRef ref) const {
    return (*models_)[static_cast<std::size_t>(ref.file)]
        .functions[static_cast<std::size_t>(ref.fn)];
  }
  const std::string& file_of(FunctionRef ref) const {
    return (*models_)[static_cast<std::size_t>(ref.file)].rel;
  }

  /// Definitions matching a call to `simple` from inside `caller_class`
  /// (empty for free functions). Excludes src/obs/ definitions.
  std::vector<FunctionRef> resolve(const std::string& simple,
                                   const std::string& caller_class) const;

  /// Breadth-first closure over resolved free calls starting at `root`
  /// (root itself is the first element). Traversal never enters src/obs/.
  std::vector<Reached> closure(FunctionRef root) const;

  /// All functions, for iteration by rules.
  std::vector<FunctionRef> all() const;

 private:
  const std::vector<FileModel>* models_ = nullptr;
  std::map<std::string, std::vector<FunctionRef>> by_simple_;
  std::vector<bool> file_excluded_;  // src/obs/ — indexed, not traversed.
};

}  // namespace memlint
