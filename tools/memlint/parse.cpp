#include "memlint/parse.hpp"

#include <algorithm>
#include <array>
#include <string_view>

#include "memlint/text.hpp"

namespace memlint {
namespace {

constexpr std::size_t kPendingCap = 4096;  // signature buffer bound.

bool is_control_keyword(std::string_view tok) {
  static constexpr std::array<std::string_view, 9> kWords = {
      "if", "for", "while", "switch", "catch", "return",
      "sizeof", "do", "else"};
  return std::find(kWords.begin(), kWords.end(), tok) != kWords.end();
}

bool is_class_keyword(std::string_view tok) {
  return tok == "class" || tok == "struct" || tok == "enum" || tok == "union";
}

/// Declarator-position exclusions: `return value` must not read as a
/// declaration of `value`.
bool is_non_type_keyword(std::string_view tok) {
  static constexpr std::array<std::string_view, 10> kWords = {
      "return", "else", "case", "goto", "throw", "new",
      "delete", "co_return", "co_yield", "in"};
  return std::find(kWords.begin(), kWords.end(), tok) != kWords.end();
}

/// Container-growth methods that (re)allocate; a hot path calling one of
/// these on anything is flagged by R9.
bool is_growth_method(std::string_view tok) {
  static constexpr std::array<std::string_view, 8> kMethods = {
      "push_back", "emplace_back", "emplace", "resize",
      "reserve",   "insert",       "append",  "assign"};
  return std::find(kMethods.begin(), kMethods.end(), tok) != kMethods.end();
}

/// Types whose non-empty construction allocates. `Vec`/`Matrix` are the
/// project's owning linalg containers; the rest are std:: owners (matched
/// only when `std::`-qualified).
bool is_project_alloc_type(std::string_view tok) {
  return tok == "Vec" || tok == "Matrix";
}

bool is_std_alloc_type(std::string_view tok) {
  static constexpr std::array<std::string_view, 11> kTypes = {
      "vector", "string", "map",          "set",  "unordered_map",
      "deque",  "list",   "stringstream", "ostringstream",
      "unordered_set", "multimap"};
  return std::find(kTypes.begin(), kTypes.end(), tok) != kTypes.end();
}

bool is_par_entry_point(std::string_view tok) {
  return tok == "parallel_for" || tok == "parallel_for_ranges" ||
         tok == "for_chunks";
}

/// The hot-path marker, looked up on RAW lines (it lives in comments).
bool has_hot_marker(const std::string& raw_line) {
  return raw_line.find("memlint:hot") != std::string::npos;
}

struct Scope {
  enum class Kind { kNamespace, kClass, kFunction, kLambda, kBlock, kInit };
  Kind kind;
  bool is_loop = false;
  int index = -1;     // functions[]/lambdas[] index for those kinds.
  std::string name;   // class/namespace name (class qualification).
};

struct Paren {
  std::string callee;       // simple name of the call, "" for grouping.
  bool member = false;      // reached through `.`/`->`.
  bool external = false;    // `std::`-qualified.
  bool lambda_params = false;
  int call_fn = -1;         // owning function of the CallSite, if any.
  int call_site = -1;
};

class Parser {
 public:
  Parser(const std::string& rel, const std::vector<std::string>& stripped,
         const std::vector<std::string>& raw)
      : stripped_(stripped), raw_(raw) {
    model_.rel = rel;
  }

  FileModel run() {
    bool in_preprocessor = false;
    for (std::size_t idx = 0; idx < stripped_.size(); ++idx) {
      line_no_ = idx + 1;
      const std::string& line = stripped_[idx];
      if (in_preprocessor) {
        in_preprocessor = raw_[idx].ends_with("\\");
        continue;
      }
      const std::size_t first = line.find_first_not_of(" \t");
      if (first != std::string::npos && line[first] == '#') {
        in_preprocessor = raw_[idx].ends_with("\\");
        continue;
      }
      process_line(line);
    }
    // Close any unbalanced scopes so partial inputs still yield ranges.
    while (!scopes_.empty()) pop_scope();
    return std::move(model_);
  }

 private:
  // ---- pending signature buffer -----------------------------------------
  void pend(char c) {
    if (pending_.empty()) {
      if (c == ' ') return;
      pending_start_ = line_no_;
    }
    if (pending_.size() < kPendingCap) {
      if (c == ' ' && pending_.ends_with(' ')) return;
      pending_.push_back(c);
    }
  }
  void pend(std::string_view tok) {
    for (char c : tok) pend(c);
  }
  void clear_pending() {
    pending_.clear();
    pending_start_ = 0;
  }

  /// Trailing identifier of `pending_` (skipping trailing spaces), with its
  /// start offset, or "" when pending ends in punctuation.
  std::string pending_tail_ident(std::size_t* start = nullptr) const {
    std::size_t end = pending_.size();
    while (end > 0 && pending_[end - 1] == ' ') --end;
    std::size_t begin = end;
    while (begin > 0 && is_ident_char(pending_[begin - 1])) --begin;
    if (start != nullptr) *start = begin;
    return pending_.substr(begin, end - begin);
  }

  char pending_last_char() const {
    std::size_t end = pending_.size();
    while (end > 0 && pending_[end - 1] == ' ') --end;
    return end == 0 ? '\0' : pending_[end - 1];
  }

  // ---- scope helpers ----------------------------------------------------
  int enclosing_function() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
      if (it->kind == Scope::Kind::kFunction) return it->index;
    return -1;
  }

  bool in_executable_code() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      switch (it->kind) {
        case Scope::Kind::kFunction:
        case Scope::Kind::kLambda:
          return true;
        case Scope::Kind::kNamespace:
        case Scope::Kind::kClass:
          return false;
        default:
          continue;
      }
    }
    return false;
  }

  std::size_t loop_depth_on_stack() const {
    std::size_t depth = 0;
    for (const Scope& scope : scopes_)
      if (scope.is_loop) ++depth;
    return depth;
  }

  void pop_scope() {
    if (scopes_.empty()) return;
    const Scope scope = scopes_.back();
    scopes_.pop_back();
    if (scope.kind == Scope::Kind::kFunction && scope.index >= 0)
      model_.functions[static_cast<std::size_t>(scope.index)].body_end =
          line_no_;
    if (scope.kind == Scope::Kind::kLambda && scope.index >= 0)
      model_.lambdas[static_cast<std::size_t>(scope.index)].body_end =
          line_no_;
  }

  // ---- lambda pending machine -------------------------------------------
  enum class LambdaStage { kNone, kCaptures, kAwaitParams, kParams, kAwait };

  void cancel_lambda() {
    lambda_stage_ = LambdaStage::kNone;
    lambda_ = LambdaInfo{};
    capture_text_.clear();
    param_text_.clear();
  }

  void finish_lambda_captures() {
    // Split the capture list on top-level commas.
    std::vector<std::string> items;
    std::string current;
    int depth = 0;
    for (char c : capture_text_) {
      if (c == '(' || c == '[' || c == '<' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '>' || c == '}') --depth;
      if (c == ',' && depth == 0) {
        items.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    items.push_back(current);
    for (std::string& item : items) {
      item.erase(std::remove(item.begin(), item.end(), ' '), item.end());
      if (item.empty()) continue;
      if (item == "&") {
        lambda_.default_ref = true;
      } else if (item == "=") {
        lambda_.default_copy = true;
      } else if (item == "this" || item == "*this") {
        lambda_.captures_this = true;
      } else if (item[0] == '&') {
        std::size_t end = 1;
        while (end < item.size() && is_ident_char(item[end])) ++end;
        if (end > 1) lambda_.ref_captures.push_back(item.substr(1, end - 1));
      } else {
        std::size_t end = 0;
        while (end < item.size() && is_ident_char(item[end])) ++end;
        if (end > 0) lambda_.copy_captures.push_back(item.substr(0, end));
      }
    }
  }

  void finish_lambda_params() {
    std::vector<std::string> items;
    std::string current;
    int depth = 0;
    for (char c : param_text_) {
      if (c == '(' || c == '[' || c == '<' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '>' || c == '}') --depth;
      if (c == ',' && depth == 0) {
        items.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    items.push_back(current);
    for (const std::string& item : items) {
      // The declared name is the last identifier of the parameter.
      const auto idents = identifiers(item);
      if (!idents.empty()) lambda_.params.push_back(idents.back().second);
    }
  }

  // ---- site recording ---------------------------------------------------
  FunctionInfo* site_function() {
    const int fn = enclosing_function();
    if (fn < 0) return nullptr;
    return &model_.functions[static_cast<std::size_t>(fn)];
  }

  void record_alloc(std::string what) {
    if (lambda_stage_ != LambdaStage::kNone) return;
    if (FunctionInfo* fn = site_function())
      fn->allocs.push_back({line_no_, std::move(what)});
  }

  // ---- token / char handlers --------------------------------------------
  void process_line(const std::string& line) {
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (is_ident_start(c)) {
        std::size_t end = i;
        while (end < line.size() && is_ident_char(line[end])) ++end;
        handle_token(line, i, end);
        i = end;
        continue;
      }
      if (lambda_stage_ == LambdaStage::kCaptures && c != '[' && c != ']')
        capture_text_.push_back(c);
      if (lambda_stage_ == LambdaStage::kParams && c != '(' && c != ')')
        param_text_.push_back(c);
      switch (c) {
        case '{':
          handle_open_brace();
          break;
        case '}':
          pop_scope();
          clear_pending();
          cancel_lambda();
          braceless_loops_ = 0;
          break;
        case '(':
          handle_open_paren();
          pend('(');
          break;
        case ')':
          handle_close_paren();
          pend(')');
          break;
        case '[':
          handle_open_bracket(line, i);
          pend('[');
          break;
        case ']':
          handle_close_bracket();
          pend(']');
          break;
        case ';':
          // `;` separates statements only at paren depth 0 — inside a
          // `for (init; cond; step)` header it must not reset the
          // signature buffer, or the `{` that follows loses its header.
          if (!parens_.empty()) {
            pend(';');
            break;
          }
          clear_pending();
          braceless_loops_ = 0;  // the brace-less statement ends here.
          if (lambda_stage_ != LambdaStage::kNone &&
              lambda_stage_ != LambdaStage::kCaptures &&
              lambda_stage_ != LambdaStage::kParams)
            cancel_lambda();
          break;
        case '\t':
          pend(' ');
          break;
        default:
          pend(c);
          break;
      }
      ++i;
    }
    pend(' ');  // line break behaves like whitespace between tokens.
  }

  void handle_token(const std::string& line, std::size_t s, std::size_t e) {
    const std::string_view tok(line.data() + s, e - s);
    if (lambda_stage_ == LambdaStage::kCaptures) {
      capture_text_.append(tok);
      pend(tok);
      return;
    }
    if (lambda_stage_ == LambdaStage::kParams) {
      param_text_.append(tok);
      pend(tok);
      return;
    }

    // Nested-loop depth: counted at the keyword so brace-less inner loops
    // (`for (...) for (...) x;`) still register. A loop keyword whose body
    // turns out to be a brace block decrements the tentative brace-less
    // count again in handle_open_brace; a `;` at paren depth 0 ends the
    // brace-less statement. Range-for counts like any other loop.
    if ((tok == "for" || tok == "while" || tok == "do") &&
        in_executable_code()) {
      if (FunctionInfo* fn = site_function())
        fn->max_loop_depth = std::max(
            fn->max_loop_depth,
            loop_depth_on_stack() + braceless_loops_ + 1);
      ++braceless_loops_;
    }

    if (in_executable_code() && lambda_stage_ == LambdaStage::kNone) {
      if (tok == "CostLedger" || tok == "charge_active") {
        if (FunctionInfo* fn = site_function()) fn->charges_ledger = true;
      }
      check_alloc_token(line, e, tok);
    }

    // Argument identifiers of an open memlp::par entry-point call, for
    // resolving lambdas passed by variable name.
    if (!parens_.empty() && parens_.back().call_fn >= 0 &&
        is_par_entry_point(parens_.back().callee) && !is_control_keyword(tok))
      model_.functions[static_cast<std::size_t>(parens_.back().call_fn)]
          .calls[static_cast<std::size_t>(parens_.back().call_site)]
          .arg_idents.emplace_back(tok);

    pend(tok);
  }

  void check_alloc_token(const std::string& line, std::size_t e,
                         std::string_view tok) {
    if (enclosing_function() < 0) return;
    if (tok == "new") {
      // `new` as an expression keyword; `operator new` overloads and
      // `new`-in-identifier are excluded by whole-token matching.
      record_alloc("new");
      return;
    }
    if (tok == "make_unique" || tok == "make_shared") {
      record_alloc(std::string(tok));
      return;
    }
    if (is_growth_method(tok)) {
      const char prev = pending_last_char();
      const std::size_t next = next_nonspace(line, e);
      if ((prev == '.' || prev == '>') && next != std::string::npos &&
          line[next] == '(') {
        std::string what = ".";
        what += tok;
        what += "(...)";
        record_alloc(std::move(what));
      }
      return;
    }

    // Allocating-container construction. `std::` owners must be
    // std-qualified; the project types Vec/Matrix must NOT be qualified
    // (so `Matrix::identity` — a call, handled at its own definition —
    // and foreign `x::Matrix` names don't fire).
    // Qualification means `::` immediately before the token — a ternary's
    // lone `:` (`cond ? a : Vec(...)`) does not qualify.
    const bool qualified = !pending_tail_qualifier().empty() ||
                           pending_.ends_with("::");
    const bool alloc_type =
        (is_project_alloc_type(tok) && !qualified) ||
        (is_std_alloc_type(tok) && qualified &&
         pending_tail_qualifier() == "std");
    if (!alloc_type) return;

    std::size_t pos = e;
    // Skip one balanced template-argument list on the same line.
    std::size_t after_type = next_nonspace(line, pos);
    if (after_type != std::string::npos && line[after_type] == '<') {
      int depth = 0;
      pos = after_type;
      while (pos < line.size()) {
        if (line[pos] == '<') ++depth;
        if (line[pos] == '>' && --depth == 0) break;
        ++pos;
      }
      if (pos >= line.size()) return;  // template args span lines: give up.
      ++pos;
      after_type = next_nonspace(line, pos);
    }
    if (after_type == std::string::npos) return;
    if (line[after_type] == ':') return;  // static member access.
    if (line[after_type] == '&' || line[after_type] == '*') return;  // ref.

    const auto non_empty_list = [&](std::size_t open, char close) {
      const std::size_t inside = next_nonspace(line, open + 1);
      return inside == std::string::npos || line[inside] != close;
    };
    if (line[after_type] == '(' || line[after_type] == '{') {
      // Temporary: `Vec(b.begin(), b.end())`. Empty parens are a
      // non-allocating default construction.
      if (non_empty_list(after_type, line[after_type] == '(' ? ')' : '}'))
        record_alloc(std::string(tok) + "(...) temporary");
      return;
    }
    if (!is_ident_start(line[after_type])) return;
    std::size_t name_end = after_type;
    while (name_end < line.size() && is_ident_char(line[name_end]))
      ++name_end;
    const std::size_t after_name = next_nonspace(line, name_end);
    if (after_name == std::string::npos) return;
    if (line[after_name] == '(' || line[after_name] == '{') {
      if (non_empty_list(after_name, line[after_name] == '(' ? ')' : '}'))
        record_alloc(std::string(tok) + " " +
                     line.substr(after_type, name_end - after_type) +
                     "(...)");
    }
    // `Type name = expr;` charges the initializer expression (usually a
    // callee's return, flagged at the callee); `Type name;` default-
    // constructs without heap. Neither is recorded here.
  }

  /// Qualifier identifier before a trailing `::` of pending (e.g. "std"
  /// for `std::vector`). Walks one level only.
  std::string pending_tail_qualifier() const {
    std::size_t end = pending_.size();
    while (end > 0 && pending_[end - 1] == ' ') --end;
    if (end < 2 || pending_[end - 1] != ':' || pending_[end - 2] != ':')
      return {};
    end -= 2;
    while (end > 0 && pending_[end - 1] == ' ') --end;
    std::size_t begin = end;
    while (begin > 0 && is_ident_char(pending_[begin - 1])) --begin;
    return pending_.substr(begin, end - begin);
  }

  void handle_open_paren() {
    Paren paren;
    if (lambda_stage_ == LambdaStage::kAwaitParams) {
      paren.lambda_params = true;
      lambda_stage_ = LambdaStage::kParams;
      parens_.push_back(paren);
      return;
    }
    std::size_t name_start = 0;
    const std::string callee = pending_tail_ident(&name_start);
    if (!callee.empty() && !is_control_keyword(callee)) {
      paren.callee = callee;
      // Qualification just before the callee: `.`/`->` member access,
      // or a `qual::` chain whose head decides project vs std.
      std::size_t before = name_start;
      while (before > 0 && pending_[before - 1] == ' ') --before;
      if (before > 0) {
        const char q = pending_[before - 1];
        if (q == '.' || (q == '>' && before > 1 && pending_[before - 2] == '-')) {
          paren.member = true;
        } else if (q == ':') {
          std::string head;
          std::size_t cursor = before;
          while (cursor >= 2 && pending_[cursor - 1] == ':' &&
                 pending_[cursor - 2] == ':') {
            cursor -= 2;
            std::size_t b = cursor;
            while (b > 0 && is_ident_char(pending_[b - 1])) --b;
            head = pending_.substr(b, cursor - b);
            cursor = b;
          }
          paren.external = head == "std";
        }
      }
      if (!paren.member && !paren.external) {
        if (FunctionInfo* fn = site_function()) {
          fn->calls.push_back({line_no_, callee, false, {}});
          paren.call_fn = enclosing_function();
          paren.call_site = static_cast<int>(fn->calls.size()) - 1;
        }
      }
    }
    parens_.push_back(paren);
  }

  void handle_close_paren() {
    if (parens_.empty()) return;
    const Paren paren = parens_.back();
    parens_.pop_back();
    if (paren.lambda_params && lambda_stage_ == LambdaStage::kParams) {
      finish_lambda_params();
      lambda_stage_ = LambdaStage::kAwait;
    }
  }

  void handle_open_bracket(const std::string& line, std::size_t i) {
    // `[[attribute]]` — not a lambda, not a subscript.
    if (i + 1 < line.size() && line[i + 1] == '[') return;
    if (i > 0 && line[i - 1] == '[') return;
    if (lambda_stage_ == LambdaStage::kCaptures) return;  // nested `[]`.
    // Lambda introducer vs subscript: a lambda begins where an expression
    // may begin — after punctuation/operators or at a statement start —
    // while a subscript follows a value (identifier, `)`, `]`).
    const char prev = pending_last_char();
    const std::string tail = pending_tail_ident();
    const bool expression_context =
        prev == '\0' || prev == '(' || prev == ',' || prev == '=' ||
        prev == '{' || prev == '<' || prev == '&' || prev == '|' ||
        prev == '!' || prev == '?' || prev == ':' || prev == '+' ||
        prev == '-' || prev == '*' || prev == '/' || prev == '%' ||
        tail == "return";
    if (!expression_context) return;

    lambda_ = LambdaInfo{};
    lambda_.intro_line = line_no_;
    lambda_.enclosing_function = enclosing_function();
    // `auto name = [...]` — remember the binding for by-name resolution.
    if (prev == '=') {
      std::string copy = pending_;
      std::size_t end = copy.size();
      while (end > 0 && (copy[end - 1] == ' ' || copy[end - 1] == '='))
        --end;
      std::size_t begin = end;
      while (begin > 0 && is_ident_char(copy[begin - 1])) --begin;
      lambda_.bound_to = copy.substr(begin, end - begin);
    }
    // The innermost named call this lambda is an argument of.
    for (auto it = parens_.rbegin(); it != parens_.rend(); ++it) {
      if (!it->callee.empty()) {
        lambda_.passed_to = it->callee;
        break;
      }
    }
    lambda_stage_ = LambdaStage::kCaptures;
    capture_text_.clear();
    param_text_.clear();
  }

  void handle_close_bracket() {
    if (lambda_stage_ == LambdaStage::kCaptures) {
      finish_lambda_captures();
      lambda_stage_ = LambdaStage::kAwaitParams;
    }
  }

  void handle_open_brace() {
    Scope scope{Scope::Kind::kBlock, false, -1, {}};
    const std::string pending = pending_;
    const auto pending_has = [&](std::string_view word) {
      return !find_token(pending, word).empty();
    };

    if (lambda_stage_ == LambdaStage::kAwaitParams ||
        lambda_stage_ == LambdaStage::kAwait) {
      lambda_.body_begin = line_no_;
      model_.lambdas.push_back(lambda_);
      scope.kind = Scope::Kind::kLambda;
      scope.index = static_cast<int>(model_.lambdas.size()) - 1;
      lambda_stage_ = LambdaStage::kNone;
    } else if (pending_has("namespace")) {
      scope.kind = Scope::Kind::kNamespace;
    } else if (pending_has("class") || pending_has("struct") ||
               pending_has("enum") || pending_has("union")) {
      scope.kind = Scope::Kind::kClass;
      // Name: the identifier right after the class keyword.
      const auto idents = identifiers(pending);
      for (std::size_t k = 0; k + 1 < idents.size(); ++k)
        if (is_class_keyword(idents[k].second)) {
          scope.name = idents[k + 1].second;
          break;
        }
    } else if (in_executable_code()) {
      const char prev = pending_last_char();
      const std::string tail = pending_tail_ident();
      if (prev == ')') {
        scope.kind = Scope::Kind::kBlock;
        const auto idents = identifiers(pending);
        const std::string head = idents.empty() ? "" : idents.front().second;
        scope.is_loop = head == "for" || head == "while";
        if (!is_control_keyword(head) && head != "try")
          scope.kind = Scope::Kind::kInit;  // call-adjacent brace init.
        // This loop's body is a brace block after all.
        if (scope.is_loop && braceless_loops_ > 0) --braceless_loops_;
      } else if (tail == "do") {
        scope.is_loop = true;
        if (braceless_loops_ > 0) --braceless_loops_;
      } else if (tail == "else" || tail == "try" || pending.empty()) {
        scope.kind = Scope::Kind::kBlock;
      } else {
        // `= {...}`, `Type{...}`, `return {...}`, argument `{...}` — a
        // brace initializer, transparent to control flow.
        scope.kind = Scope::Kind::kInit;
      }
    } else {
      // Namespace/class scope: a `(`...`)` signature opens a function.
      const std::size_t open = pending.find('(');
      if (open != std::string::npos && pending.find(')') != std::string::npos) {
        FunctionInfo fn;
        fn.header_line = pending_start_ == 0 ? line_no_ : pending_start_;
        fn.body_begin = line_no_;
        fn.name = function_name(pending, open);
        // Class-inline definitions qualify with the enclosing class.
        if (fn.name.find("::") == std::string::npos) {
          for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
            if (it->kind == Scope::Kind::kClass && !it->name.empty()) {
              fn.name = it->name + "::" + fn.name;
              break;
            }
        }
        fn.hot = hot_marker_near(fn.header_line);
        model_.functions.push_back(std::move(fn));
        scope.kind = Scope::Kind::kFunction;
        scope.index = static_cast<int>(model_.functions.size()) - 1;
      } else {
        scope.kind = Scope::Kind::kInit;
      }
    }
    scopes_.push_back(std::move(scope));
    clear_pending();
  }

  static std::string function_name(const std::string& pending,
                                   std::size_t open) {
    std::size_t end = open;
    while (end > 0 && pending[end - 1] == ' ') --end;
    std::size_t begin = end;
    while (begin > 0 &&
           (is_ident_char(pending[begin - 1]) || pending[begin - 1] == ':'))
      --begin;
    std::string name = pending.substr(begin, end - begin);
    while (!name.empty() && name.front() == ':') name.erase(name.begin());
    return name.empty() ? "(anon)" : name;
  }

  /// The hot marker must sit on the signature itself or within the two raw
  /// lines above it — adjacent to the function it marks, like allow().
  bool hot_marker_near(std::size_t header_line) const {
    const std::size_t lo = header_line > 3 ? header_line - 3 : 0;
    for (std::size_t idx = lo; idx < line_no_ && idx < raw_.size(); ++idx)
      if (has_hot_marker(raw_[idx])) return true;
    return false;
  }

  const std::vector<std::string>& stripped_;
  const std::vector<std::string>& raw_;
  FileModel model_;
  std::vector<Scope> scopes_;
  std::vector<Paren> parens_;
  std::string pending_;
  std::size_t pending_start_ = 0;
  std::size_t line_no_ = 0;
  std::size_t braceless_loops_ = 0;  // open loop headers without `{` yet.
  LambdaStage lambda_stage_ = LambdaStage::kNone;
  LambdaInfo lambda_;
  std::string capture_text_;
  std::string param_text_;
};

// ---- lambda mutation analysis -------------------------------------------

bool is_local_decl_pair(std::string_view line, std::size_t prev_end,
                        std::size_t cur_start) {
  for (std::size_t i = prev_end; i < cur_start; ++i) {
    const char c = line[i];
    if (c != ' ' && c != '&' && c != '*') return false;
  }
  return true;
}

/// Walks left from `pos` (exclusive) across a `a.b->c` postfix chain and
/// returns the base identifier, or "" when the chain ends in `]`/`)` —
/// an indexed or call-result write, which is the sanctioned per-slot form.
std::string base_identifier(std::string_view line, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && (line[i - 1] == ' ' || line[i - 1] == '\t')) --i;
  if (i == 0) return {};
  if (line[i - 1] == ']' || line[i - 1] == ')') return {};
  std::string base;
  while (i > 0) {
    if (is_ident_char(line[i - 1])) {
      std::size_t begin = i;
      while (begin > 0 && is_ident_char(line[begin - 1])) --begin;
      base = std::string(line.substr(begin, i - begin));
      i = begin;
      // Continue only through member access.
      if (i > 0 && line[i - 1] == '.') {
        --i;
        continue;
      }
      if (i > 1 && line[i - 1] == '>' && line[i - 2] == '-') {
        i -= 2;
        continue;
      }
      break;
    }
    if (line[i - 1] == ']' || line[i - 1] == ')') return {};
    break;
  }
  return base;
}

}  // namespace

FileModel parse_file(const std::string& rel,
                     const std::vector<std::string>& stripped,
                     const std::vector<std::string>& raw) {
  return Parser(rel, stripped, raw).run();
}

std::vector<MutationSite> lambda_ref_mutations(
    const LambdaInfo& lambda, const std::vector<std::string>& stripped) {
  std::vector<MutationSite> out;
  if (lambda.body_begin == 0 || lambda.body_end < lambda.body_begin)
    return out;
  const std::size_t lo = lambda.body_begin - 1;
  const std::size_t hi = std::min(lambda.body_end, stripped.size());

  // Pass 1 — identifiers declared inside the body (declarator position:
  // `Type name`, allowing `&`/`*` between; plus structured bindings).
  std::vector<std::string> locals = lambda.params;
  for (std::size_t idx = lo; idx < hi; ++idx) {
    const std::string& line = stripped[idx];
    const auto idents = identifiers(line);
    for (std::size_t k = 1; k < idents.size(); ++k) {
      const auto& [prev_pos, prev] = idents[k - 1];
      const auto& [cur_pos, cur] = idents[k];
      if (is_non_type_keyword(prev)) continue;
      if (is_local_decl_pair(line, prev_pos + prev.size(), cur_pos))
        locals.push_back(cur);
      // `auto [a, b]` / `auto& [a, b]` structured bindings.
      if (prev == "auto") {
        const std::size_t bracket = line.find('[', prev_pos);
        if (bracket != std::string::npos && bracket < cur_pos) {
          const std::size_t close = line.find(']', bracket);
          for (const auto& [p, name] :
               identifiers(line.substr(bracket, close == std::string::npos
                                                    ? std::string::npos
                                                    : close - bracket)))
            locals.push_back(name);
        }
      }
    }
  }
  const auto contains = [](const std::vector<std::string>& v,
                           const std::string& s) {
    return std::find(v.begin(), v.end(), s) != v.end();
  };

  const auto flag_if_captured = [&](std::size_t line_no,
                                    const std::string& base,
                                    std::string how) {
    if (base.empty()) return;
    const bool explicit_ref = contains(lambda.ref_captures, base);
    const bool implicit_ref = lambda.default_ref && !contains(locals, base) &&
                              !contains(lambda.copy_captures, base);
    if (explicit_ref || implicit_ref)
      out.push_back({line_no, base, std::move(how)});
  };

  // Pass 2 — mutation sites.
  for (std::size_t idx = lo; idx < hi; ++idx) {
    const std::string& line = stripped[idx];
    const std::size_t line_no = idx + 1;
    // Assignment and compound assignment.
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] != '=') continue;
      if (i + 1 < line.size() && line[i + 1] == '=') {
        ++i;
        continue;
      }
      std::size_t op_begin = i;
      std::string how = "=";
      if (i > 0) {
        const char prev = line[i - 1];
        if (prev == '=' || prev == '<' || prev == '>' || prev == '!')
          continue;  // ==, <=, >=, != (and <<=/>>= — accepted miss).
        if (prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
            prev == '%' || prev == '&' || prev == '|' || prev == '^') {
          op_begin = i - 1;
          how = std::string(1, prev) + "=";
        }
      }
      const std::string base = base_identifier(line, op_begin);
      if (base.empty()) continue;
      // A declaration with initializer is a local write, not a capture
      // mutation (and pass 1 already collected the name).
      if (contains(locals, base) || contains(lambda.params, base)) continue;
      flag_if_captured(line_no, base, how);
    }
    // Increment / decrement.
    for (std::size_t i = 0; i + 1 < line.size(); ++i) {
      const char c = line[i];
      if ((c != '+' && c != '-') || line[i + 1] != c) continue;
      const std::string how(2, c);
      // Prefix: `++x`. The whole postfix chain is scanned forward —
      // `++local[bi].tile_settles` writes a per-index slot and is
      // sanctioned, `++counter` is not.
      std::size_t after = i + 2;
      while (after < line.size() && line[after] == ' ') ++after;
      if (after < line.size() && is_ident_start(line[after])) {
        std::size_t end = after;
        while (end < line.size() && is_ident_char(line[end])) ++end;
        const std::string base(line.substr(after, end - after));
        bool indexed = false;
        std::size_t cursor = end;
        while (cursor < line.size()) {
          const char nc = line[cursor];
          if (nc == ' ') {
            ++cursor;
          } else if (nc == '[' || nc == '(') {
            indexed = true;
            break;
          } else if (nc == '.') {
            ++cursor;
            while (cursor < line.size() && is_ident_char(line[cursor]))
              ++cursor;
          } else if (nc == '-' && cursor + 1 < line.size() &&
                     line[cursor + 1] == '>') {
            cursor += 2;
            while (cursor < line.size() && is_ident_char(line[cursor]))
              ++cursor;
          } else {
            break;
          }
        }
        if (!indexed) flag_if_captured(line_no, base, how);
      } else {
        // Postfix: `x++`.
        flag_if_captured(line_no, base_identifier(line, i), how);
      }
      ++i;
    }
    // Container growth on a captured object.
    for (const auto& [pos, name] : identifiers(line)) {
      if (!is_growth_method(name)) continue;
      const std::size_t after = pos + name.size();
      if (after >= line.size() || next_nonspace(line, after) == std::string::npos ||
          line[next_nonspace(line, after)] != '(')
        continue;
      if (pos == 0) continue;
      const char prev = line[pos - 1];
      if (prev != '.' && !(prev == '>' && pos >= 2 && line[pos - 2] == '-'))
        continue;
      const std::size_t chain_end = prev == '.' ? pos - 1 : pos - 2;
      flag_if_captured(line_no, base_identifier(line, chain_end),
                       "." + name + "(...)");
    }
  }
  return out;
}

}  // namespace memlint
