// Rule implementations — line rules (R1–R5, R7) and model rules (R8–R10).
//
// Rules always evaluate; the Linter filters findings against line- and
// file-scoped suppressions afterwards, so `--summary` can count suppressed
// hits per rule. R6 (header hygiene) lives in the Linter because it needs
// whole-file state.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "memlint/callgraph.hpp"
#include "memlint/diag.hpp"
#include "memlint/parse.hpp"

namespace memlint {

/// Per-file scan context derived from the root-relative path.
struct FileContext {
  std::string rel;     // forward-slash, root-relative path.
  bool in_src;         // under src/.
  bool in_obs;         // under src/obs/.
  bool in_core;        // under src/core/ (the engine's home, see R7).
  bool in_linalg;      // under src/linalg/ (R10's scope).
  bool is_par_file;    // src/common/par.hpp or par.cpp.
  bool is_rng_file;    // src/common/rng.hpp or rng.cpp.
  bool is_header;      // .hpp/.h.
};

FileContext make_context(const std::string& rel);

/// Line rules R1–R5 and R7. `code` is the stripped line, `raw` the
/// original (R7 matches include paths, which are string literals).
void check_line(const FileContext& context, const std::string& code,
                const std::string& raw, std::size_t line_no,
                std::vector<Diagnostic>& out);

/// Model rules R8–R10 over the parsed per-file models and the cross-file
/// call graph. `stripped` holds each file's stripped lines, parallel to
/// `models` (needed for lambda-body mutation analysis).
void check_model_rules(const std::vector<FileModel>& models,
                       const std::vector<std::vector<std::string>>& stripped,
                       const CallGraph& graph,
                       std::vector<Diagnostic>& out);

}  // namespace memlint
