// Two-pass lint driver.
//
// Pass 1 (scan_file/scan_tree): per-file — strip, run line rules R1–R7,
// parse the scope/function/lambda model, and collect suppressions
// (same-line `memlint:allow(Rn)` and whole-file `memlint:allow-file(Rn)`).
// Pass 2 (finalize): build the cross-file call graph and run the model
// rules R8–R10, then filter every finding against the suppression maps.
//
// Suppressed findings are counted per rule (for --summary) but not
// reported. Exit-code policy stays with the caller: diagnostics() empty
// means clean.
#pragma once

#include <array>
#include <cstddef>
#include <filesystem>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "memlint/diag.hpp"
#include "memlint/parse.hpp"

namespace memlint {

/// Parses `memlint:allow(R1,R3)` (rule ids or rule names) out of the raw
/// (unstripped) line. Returns the set of suppressed rule ids. `marker`
/// selects the same-line or the file-scope form.
std::set<int> parse_suppressions(const std::string& raw_line,
                                 const std::string& marker);

class Linter {
 public:
  explicit Linter(std::filesystem::path root) : root_(std::move(root)) {}

  void scan_file(const std::filesystem::path& path);
  void scan_tree(const std::filesystem::path& dir);

  /// Runs the cross-file rules (R8–R10). Call once, after all scans.
  void finalize();

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] bool io_error() const { return io_error_; }

  /// Per-rule counters: reported hits and suppressed hits, indexed by
  /// rule id. Meaningful after finalize().
  [[nodiscard]] std::size_t hits(int rule) const {
    return counter(hits_, rule);
  }
  [[nodiscard]] std::size_t suppressed(int rule) const {
    return counter(suppressed_, rule);
  }

  /// One line per rule: `R1/parallelism-discipline  2 hit(s), 1 suppressed`.
  void print_summary(std::ostream& os) const;

  /// Machine-readable diagnostics (schema memlp.memlint/1).
  void print_json(std::ostream& os) const;

 private:
  struct FileRecord {
    std::map<std::size_t, std::set<int>> line_allows;
    std::set<int> file_allows;
  };

  static std::size_t counter(const std::array<std::size_t, 16>& table,
                             int rule) {
    return rule >= 0 && rule < 16
               ? table[static_cast<std::size_t>(rule)]
               : 0;
  }

  [[nodiscard]] bool is_suppressed(const Diagnostic& diag) const;
  void deliver(const Diagnostic& diag);
  std::string relative_slash(const std::filesystem::path& path) const;

  std::filesystem::path root_;
  std::vector<Diagnostic> diagnostics_;
  std::map<std::string, FileRecord> records_;
  std::vector<FileModel> models_;
  std::vector<std::vector<std::string>> stripped_;
  std::array<std::size_t, 16> hits_{};
  std::array<std::size_t, 16> suppressed_{};
  bool io_error_ = false;
};

}  // namespace memlint
