// Ablation (extension): Mehrotra predictor–corrector on the crossbar.
//
// The paper's Algorithm 1 uses the plain µ rule of Eq. (8). Modern software
// IPMs use Mehrotra's predictor–corrector instead; on the crossbar the
// corrector re-uses the already-programmed array, so it costs one extra
// analog settle per iteration while saving iterations — and every saved
// iteration saves the O(N) coefficient rewrite that dominates the latency
// estimate. This harness quantifies the trade.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/result.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("ablation_mehrotra",
                      "Ablation — Mehrotra on the crossbar (extension)",
                      "plain Eq. (8) µ rule vs predictor-corrector",
                      config);
  const perf::HardwareModel hardware;

  TextTable table("crossbar PDIP at 10% variation");
  table.set_header({"m", "rule", "iterations", "settles", "est. latency [ms]",
                    "relative error"});
  for (const std::size_t m : config.sizes) {
    for (const bool mehrotra : {false, true}) {
      std::vector<double> iterations, settles, latency, errors;
      for (std::size_t trial = 0; trial < config.trials; ++trial) {
        const auto problem = bench::feasible_problem(config, m, trial);
        const auto reference = solvers::solve_simplex(problem);
        if (!reference.optimal()) continue;
        core::XbarPdipOptions options;
        options.hardware.crossbar.variation =
            mem::VariationModel::uniform(0.10);
        options.pdip.predictor_corrector = mehrotra;
        options.seed = config.seed + trial;
        const auto outcome = core::solve_xbar_pdip(problem, options);
        if (!outcome.result.optimal()) continue;
        iterations.push_back(static_cast<double>(outcome.stats.iterations));
        const auto iterative =
            outcome.stats.backend.since(outcome.stats.programming);
        settles.push_back(static_cast<double>(iterative.xbar.mvm_ops +
                                              iterative.xbar.solve_ops));
        latency.push_back(hardware.estimate(outcome.stats).latency_s * 1e3);
        errors.push_back(lp::relative_error(outcome.result.objective,
                                            reference.objective));
      }
      table.add_row({TextTable::num((long long)m),
                     mehrotra ? "Mehrotra" : "Eq. (8)",
                     TextTable::num(bench::mean(iterations), 4),
                     TextTable::num(bench::mean(settles), 4),
                     TextTable::num(bench::mean(latency), 4),
                     bench::percent(bench::mean(errors))});
    }
    std::fflush(stdout);
  }
  run.table(table);
  std::printf(
      "\nexpected: fewer iterations (and hence fewer O(N) rewrite phases) "
      "for ~3x the settles — a net latency win on write-dominated "
      "hardware.\n");
  return run.finish();
}
