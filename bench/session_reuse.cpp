// Extension: array reuse across re-priced solves (XbarPdipSession).
//
// The system matrix holds only A and the state diagonals; b and c enter
// through the analog right-hand side. A persistent session therefore pays
// the O(N²) array programming once per constraint matrix and solves every
// re-priced instance (new b/c — re-routed traffic, changed capacities,
// rolling horizons) with pure O(N)-per-iteration cost. This harness
// measures the amortization.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/result.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("session_reuse",
                      "Extension — session reuse across re-priced solves",
                      "programming amortized over solves sharing A", config);
  const perf::HardwareModel hardware;

  TextTable table("first solve vs re-priced solves (10% variation)");
  table.set_header({"m", "solve", "program cells", "program [ms]",
                    "iterative [ms]", "relative error"});
  for (const std::size_t m : config.sizes) {
    Rng rng(config.seed + m);
    lp::GeneratorOptions generator;
    generator.constraints = m;
    lp::LinearProgram problem = lp::random_feasible(generator, rng);

    core::XbarPdipOptions options;
    options.hardware.crossbar.variation = mem::VariationModel::uniform(0.10);
    options.seed = config.seed + m;
    core::XbarPdipSession session(options);

    for (int round = 0; round < 3; ++round) {
      if (round > 0) {
        for (double& v : problem.b) v *= rng.uniform(0.9, 1.1);
        for (double& v : problem.c) v *= rng.uniform(0.9, 1.1);
      }
      const auto reference = solvers::solve_simplex(problem);
      const auto outcome = session.solve(problem);
      std::string error = "-";
      if (outcome.result.optimal() && reference.optimal())
        error = bench::percent(lp::relative_error(outcome.result.objective,
                                                  reference.objective));
      table.add_row(
          {TextTable::num((long long)m),
           round == 0 ? "first" : "re-priced #" + std::to_string(round),
           TextTable::num(
               (long long)outcome.stats.programming.xbar.cells_written),
           TextTable::num(
               hardware.estimate_programming(outcome.stats).latency_s * 1e3,
               4),
           TextTable::num(hardware.estimate(outcome.stats).latency_s * 1e3,
                          4),
           error});
    }
    std::fflush(stdout);
  }
  run.table(table);
  std::printf(
      "\nexpected: re-priced solves program zero cells — the O(N²) "
      "initialization is per-A, not per-problem.\n");
  run.export_metrics();
  return run.finish();
}
