// Ablation: NoC topology and tile size (§3.4, Fig. 3).
//
// Compares the hierarchical (Fig. 3a) and mesh (Fig. 3b) structures on the
// same tiled workload — functionally equivalent, differing in data-movement
// cost — across tile sizes, and contrasts the composite-settle solve with
// the distributed block-Jacobi alternative on a diagonally dominant system.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/result.hpp"
#include "noc/tiled.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("ablation_noc",
                      "Ablation — NoC topology and tile size",
                      "hierarchical vs mesh; tile-dim sweep; solve schemes",
                      config);
  const std::size_t m = config.sizes.back();
  const perf::HardwareModel hardware;

  TextTable topo_table("crossbar PDIP on a tiled NoC (no variation)");
  topo_table.set_header({"topology", "tile dim", "tiles", "value-hops",
                         "est. latency [ms]", "relative error"});
  for (const auto kind :
       {noc::TopologyKind::kHierarchical, noc::TopologyKind::kMesh}) {
    for (const std::size_t tile_dim : {16UL, 32UL, 64UL}) {
      std::vector<double> errors;
      std::vector<double> hops;
      std::vector<double> latency;
      double tiles = 0.0;
      for (std::size_t trial = 0; trial < config.trials; ++trial) {
        const auto problem = bench::feasible_problem(config, m, trial);
        const auto reference = solvers::solve_simplex(problem);
        if (!reference.optimal()) continue;
        core::XbarPdipOptions options;
        options.hardware.force_noc = true;
        options.hardware.tile_dim = tile_dim;
        options.hardware.topology = kind;
        options.seed = config.seed + trial;
        const auto outcome = core::solve_xbar_pdip(problem, options);
        if (!outcome.result.optimal()) continue;
        errors.push_back(
            lp::relative_error(outcome.result.objective, reference.objective));
        hops.push_back(static_cast<double>(outcome.stats.backend.noc.value_hops));
        latency.push_back(hardware.estimate(outcome.stats).latency_s * 1e3);
        tiles = static_cast<double>(outcome.stats.backend.num_tiles);
      }
      topo_table.add_row(
          {kind == noc::TopologyKind::kHierarchical ? "hierarchical" : "mesh",
           TextTable::num((long long)tile_dim), TextTable::num(tiles, 4),
           TextTable::num(bench::mean(hops), 5),
           TextTable::num(bench::mean(latency), 4),
           bench::percent(bench::mean(errors))});
    }
  }
  run.table(topo_table);

  // Composite settle vs block-Jacobi on a diagonally dominant system.
  TextTable solve_table("tiled solve schemes (diagonally dominant system)");
  solve_table.set_header(
      {"scheme", "converged", "sweeps", "tile settles", "value-hops"});
  {
    const std::size_t dim = 48;
    Rng rng(config.seed);
    Matrix a(dim, dim);
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j < dim; ++j) a(i, j) = rng.uniform(0.0, 1.0);
      a(i, i) += static_cast<double>(dim);
    }
    Vec b(dim);
    for (double& v : b) v = rng.uniform(-1.0, 1.0);

    noc::TiledConfig tiled_config;
    tiled_config.tile_dim = 16;
    tiled_config.xbar.io_bits = 8;
    noc::TiledCrossbarMatrix composite(tiled_config, Rng(config.seed + 1));
    composite.program(a);
    const auto direct = composite.solve(b);
    solve_table.add_row(
        {"composite settle", direct.has_value() ? "yes" : "no", "1",
         TextTable::num((long long)composite.noc_stats().tile_settles),
         TextTable::num((long long)composite.noc_stats().value_hops)});

    noc::TiledCrossbarMatrix jacobi(tiled_config, Rng(config.seed + 1));
    jacobi.program(a);
    const auto iterative = jacobi.solve_block_jacobi(b);
    solve_table.add_row(
        {"block-Jacobi", iterative.converged ? "yes" : "no",
         TextTable::num((long long)iterative.sweeps),
         TextTable::num((long long)jacobi.noc_stats().tile_settles),
         TextTable::num((long long)jacobi.noc_stats().value_hops)});
  }
  run.table(solve_table);
  std::printf(
      "\nexpected: hierarchy beats mesh on aggregate hop count at equal "
      "tiles; smaller tiles cost more data movement.\n");
  return run.finish();
}
