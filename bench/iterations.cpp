// §4.2 iteration counts: "Following aspects were taken into consideration:
// Relative error, number of iterations, and number of iterations for
// detecting infeasibility…".
//
// Reports mean PDIP iterations per solve (feasible LPs) and per detection
// (infeasible LPs) for the software PDIP and both crossbar solvers across
// variation levels — the quantity behind the latency scaling of Fig. 6.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/ls_pdip.hpp"
#include "core/pdip.hpp"
#include "core/xbar_pdip.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("iterations",
                      "§4.2 — iteration counts",
                      "iterations to solve / to detect infeasibility",
                      config);

  TextTable feasible_table("mean iterations to solve (feasible LPs)");
  std::vector<std::string> header{"m", "sw PDIP"};
  for (double variation : config.variations) {
    header.push_back("xbar " + bench::percent(variation));
    header.push_back("LS " + bench::percent(variation));
  }
  feasible_table.set_header(header);

  for (const std::size_t m : config.sizes) {
    std::vector<double> software;
    std::vector<std::vector<double>> xbar(config.variations.size());
    std::vector<std::vector<double>> ls(config.variations.size());
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const auto problem = bench::feasible_problem(config, m, trial);
      const auto pdip = core::solve_pdip(problem);
      if (pdip.optimal())
        software.push_back(static_cast<double>(pdip.iterations));
      for (std::size_t v = 0; v < config.variations.size(); ++v) {
        const auto variation_model =
            config.variations[v] > 0.0
                ? mem::VariationModel::uniform(config.variations[v])
                : mem::VariationModel::none();
        core::XbarPdipOptions xbar_options;
        xbar_options.hardware.crossbar.variation = variation_model;
        xbar_options.seed = config.seed + 1000 * m + trial;
        const auto xbar_outcome = core::solve_xbar_pdip(problem, xbar_options);
        if (xbar_outcome.result.optimal())
          xbar[v].push_back(static_cast<double>(xbar_outcome.stats.iterations));
        core::LsPdipOptions ls_options;
        ls_options.hardware.crossbar.variation = variation_model;
        ls_options.seed = config.seed + 1000 * m + trial;
        const auto ls_outcome = core::solve_ls_pdip(problem, ls_options);
        if (ls_outcome.result.optimal())
          ls[v].push_back(static_cast<double>(ls_outcome.stats.iterations));
      }
    }
    std::vector<std::string> row{TextTable::num((long long)m),
                                 TextTable::num(bench::mean(software), 3)};
    for (std::size_t v = 0; v < config.variations.size(); ++v) {
      row.push_back(TextTable::num(bench::mean(xbar[v]), 3));
      row.push_back(TextTable::num(bench::mean(ls[v]), 3));
    }
    feasible_table.add_row(row);
    // Iteration counts are deterministic given the seed — the primary
    // regression signal behind Fig. 6's latency scaling.
    if (m == config.sizes.back()) {
      run.metric("pdip_iterations", bench::mean(software),
                 {"iters", true, /*measured=*/false});
      for (std::size_t v = 0; v < config.variations.size(); ++v)
        run.metric(
            "xbar_iterations/var=" + bench::percent(config.variations[v]),
            bench::mean(xbar[v]), {"iters", true, /*measured=*/false});
    }
    std::fflush(stdout);
  }
  run.table(feasible_table);

  TextTable infeasible_table(
      "mean iterations to detect infeasibility (10% variation)");
  infeasible_table.set_header({"m", "sw PDIP", "xbar", "xbar-LS"});
  for (const std::size_t m : config.sizes) {
    std::vector<double> software, xbar, ls;
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const auto problem = bench::infeasible_problem(config, m, trial);
      const auto pdip = core::solve_pdip(problem);
      if (pdip.status == lp::SolveStatus::kInfeasible)
        software.push_back(static_cast<double>(pdip.iterations));
      core::XbarPdipOptions xbar_options;
      xbar_options.hardware.crossbar.variation =
          mem::VariationModel::uniform(0.10);
      xbar_options.seed = config.seed + 1000 * m + trial;
      const auto xbar_outcome = core::solve_xbar_pdip(problem, xbar_options);
      if (xbar_outcome.result.status == lp::SolveStatus::kInfeasible)
        xbar.push_back(static_cast<double>(xbar_outcome.stats.iterations));
      core::LsPdipOptions ls_options;
      ls_options.hardware.crossbar.variation =
          mem::VariationModel::uniform(0.10);
      ls_options.seed = config.seed + 1000 * m + trial;
      const auto ls_outcome = core::solve_ls_pdip(problem, ls_options);
      if (ls_outcome.result.status == lp::SolveStatus::kInfeasible)
        ls.push_back(static_cast<double>(ls_outcome.stats.iterations));
    }
    infeasible_table.add_row({TextTable::num((long long)m),
                              TextTable::num(bench::mean(software), 3),
                              TextTable::num(bench::mean(xbar), 3),
                              TextTable::num(bench::mean(ls), 3)});
    std::fflush(stdout);
  }
  run.table(infeasible_table);
  std::printf(
      "\npaper: infeasibility detection needs fewer iterations than a full "
      "solve, hence its larger speedups (§4.4).\n");
  return run.finish();
}
