// Ablation: word/bit-line wire resistance (IR drop, cf. [15]).
//
// The paper assumes ideal interconnect; real crossbars lose accuracy to the
// series resistance of the metal lines, more so for far-corner cells. This
// ablation sweeps the per-segment line resistance on the crossbar PDIP
// solver and contrasts a monolithic array with a NoC of small tiles — tiling
// shortens the lines, which is one more argument for the §3.4 structure.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

namespace {

struct Cell {
  double error = 0.0;
  std::size_t solved = 0;
  std::size_t attempted = 0;
};

Cell run(const bench::SweepConfig& config, std::size_t m,
         double line_resistance, bool tiled) {
  Cell cell;
  std::vector<double> errors;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    const auto problem = bench::feasible_problem(config, m, trial);
    const auto reference = solvers::solve_simplex(problem);
    if (!reference.optimal()) continue;
    ++cell.attempted;
    core::XbarPdipOptions options;
    options.hardware.crossbar.line_resistance_ohm = line_resistance;
    if (tiled) {
      options.hardware.force_noc = true;
      options.hardware.tile_dim = 32;
    }
    options.seed = config.seed + trial;
    const auto outcome = core::solve_xbar_pdip(problem, options);
    if (!outcome.result.optimal()) continue;
    ++cell.solved;
    errors.push_back(
        lp::relative_error(outcome.result.objective, reference.objective));
  }
  cell.error = bench::mean(errors);
  return cell;
}

}  // namespace

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun bench_run("ablation_ir_drop",
                      "Ablation — interconnect IR drop",
                      "accuracy vs line resistance; monolithic vs tiled",
                      config);
  const std::size_t m = config.sizes.back();

  TextTable table("crossbar PDIP accuracy vs per-segment line resistance");
  table.set_header({"r_wire [ohm]", "monolithic err", "solved",
                    "tiled-NoC err", "solved(t)"});
  for (const double r_wire : {0.0, 0.5, 1.0, 2.0, 5.0}) {
    const Cell mono = run(config, m, r_wire, false);
    const Cell tiled = run(config, m, r_wire, true);
    table.add_row({TextTable::num(r_wire, 2), bench::percent(mono.error),
                   TextTable::num((long long)mono.solved) + "/" +
                       TextTable::num((long long)mono.attempted),
                   bench::percent(tiled.error),
                   TextTable::num((long long)tiled.solved) + "/" +
                       TextTable::num((long long)tiled.attempted)});
  }
  bench_run.table(table);
  std::printf(
      "\nexpected: accuracy degrades with wire resistance. Tiling bounds the "
      "worst-case line length, which matters for arrays much larger than "
      "this sweep's; at these sizes both variants degrade mildly.\n");
  return bench_run.finish();
}
