// §4.3 observation: "we tested Matlab linprog function with matrices with
// process variation. To our surprise, relative error is similar to what we
// get from PDIP solver simulation. It can be concluded that linear programs
// are not affected by process variation too much; the larger the size, the
// less impact process variation could result."
//
// This harness perturbs A by Eq. (18) and solves the perturbed problem
// *exactly* (simplex), comparing the optimum against the unperturbed one —
// isolating the LP's intrinsic variation tolerance from the solver.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/batch.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/result.hpp"
#include "memristor/variation.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("variation_tolerance",
                      
      "§4.3 — intrinsic variation tolerance of linear programs",
      "exact solve of Eq.(18)-perturbed problems vs the crossbar solver",
      config);

  TextTable table("mean relative error at 10% variation");
  table.set_header(
      {"m", "exact solve of perturbed LP", "crossbar solver", "ratio"});

  for (const std::size_t m : config.sizes) {
    std::vector<double> exact_errors;
    std::vector<double> xbar_errors;
    // Serial pass: instances, exact references, and the perturbed exact
    // solves. The crossbar solves are queued for a batched fan-out.
    std::vector<lp::LinearProgram> problems;
    problems.reserve(config.trials);
    std::vector<BatchJob> jobs;
    std::vector<double> reference_objectives;
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      problems.push_back(bench::feasible_problem(config, m, trial));
      const auto& problem = problems.back();
      const auto reference = solvers::solve_simplex(problem);
      if (!reference.optimal()) continue;

      // Exact solve of the perturbed problem.
      lp::LinearProgram perturbed = problem;
      Rng rng(config.seed + 7000 * m + trial);
      Matrix perturbed_a = perturbed.a.dense();
      mem::VariationModel::uniform(0.10).perturb(perturbed_a, rng);
      perturbed.a = std::move(perturbed_a);
      const auto perturbed_result = solvers::solve_simplex(perturbed);
      if (perturbed_result.optimal())
        exact_errors.push_back(lp::relative_error(perturbed_result.objective,
                                                  reference.objective));

      // Crossbar solve of the original problem at the same variation level.
      BatchJob job;
      job.problem = &problem;
      job.options.hardware.crossbar.variation =
          mem::VariationModel::uniform(0.10);
      job.options.seed = config.seed + 1000 * m + trial;
      jobs.push_back(job);
      reference_objectives.push_back(reference.objective);
    }
    const auto outcomes = solve_batch(std::span<const BatchJob>(jobs));
    for (std::size_t k = 0; k < outcomes.size(); ++k)
      if (outcomes[k].result.optimal())
        xbar_errors.push_back(lp::relative_error(
            outcomes[k].result.objective, reference_objectives[k]));
    const double exact = bench::mean(exact_errors);
    const double xbar = bench::mean(xbar_errors);
    table.add_row({TextTable::num((long long)m), bench::percent(exact),
                   bench::percent(xbar),
                   exact > 0.0 ? TextTable::num(xbar / exact, 3) : "-"});
    std::fflush(stdout);
  }
  run.table(table);
  std::printf(
      "\npaper: the two error levels are similar — LPs are inherently "
      "variation-tolerant, increasingly so with size.\n");
  return run.finish();
}
