// Ablation: sparsity across the problem pipeline (§3.5).
//
// "the initialization time complexity is O(N²) for dense matrices, and will
// be lower for sparse matrices that are common in linear programs." —
// structurally zero cells stay at the erased conductance level for free, so
// the one-off programming cost scales with the number of nonzeros, and
// all-zero shards of the tiled structure are skipped outright.
//
// The harness sweeps a density × N grid and reports, per cell:
//   * nnz(A) and the software Schur-assembly flop count (the CSR path's
//     measured ledger charge vs the dense path's closed form),
//   * the tiled crossbar's zero-shard count and programmed cells,
//   * the xbar solve's settle wall time and accuracy.
// A fixed crossover check (m = 512, 5% density) asserts the sparse Schur
// assembly beats the dense closed form by at least 5x — the regression gate
// memlp_report enforces against results/json/baseline.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "core/xbar_pdip.hpp"
#include "linalg/sparse.hpp"
#include "lp/generator.hpp"
#include "lp/result.hpp"
#include "obs/cost_ledger.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

namespace {

/// Flops the ledger attributes to one csr_schur_dense call: total flop delta
/// across the tree (the call is bracketed tightly, nothing else charges).
std::uint64_t measured_flops(const obs::CostTree& before,
                             const obs::CostTree& after) {
  const obs::CostTree delta = bench::cost_tree_delta(before, after);
  std::uint64_t total = 0;
  for (const auto& [path, counters] : delta) total += counters.flops;
  return total;
}

/// Dense Schur-assembly closed form (see core/newton_software.cpp): 3 flops
/// per triple-product term over m(m+1)/2 dot products of length n, plus the
/// diagonal shift.
std::uint64_t dense_schur_flops(std::size_t m, std::size_t n) {
  const auto rows = static_cast<std::uint64_t>(m);
  const auto cols = static_cast<std::uint64_t>(n);
  return 3 * cols * (rows * (rows + 1) / 2) + 2 * rows;
}

/// One sparse Schur assembly of A·Θ·Aᵀ + diag(shift) with unit weights,
/// returning the ledger-measured flops.
std::uint64_t sparse_schur_flops(const bench::BenchRun& run,
                                 const lp::LinearProgram& problem) {
  const Vec theta(problem.num_variables(), 1.0);
  const Vec shift(problem.num_constraints(), 1.0);
  const obs::CostTree before = run.ledger().tree();
  const Matrix s = csr_schur_dense(problem.a.csr(), theta, shift);
  (void)s;
  return measured_flops(before, run.ledger().tree());
}

}  // namespace

int main() {
  auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("ablation_sparsity",
                      "Ablation — sparsity across the problem pipeline",
                      "programming, Schur assembly, and shard count scale "
                      "with nnz, not N^2",
                      config);
  const perf::HardwareModel hardware;

  // --- density × N grid -------------------------------------------------
  // Small tile_dim so even the smoke sizes shard the KKT system and expose
  // its structurally-zero blocks to the zero-shard skip.
  constexpr std::size_t kGridTileDim = 8;
  TextTable table("sparsity grid (xbar PDIP, NoC tiles of 8, no variation)");
  table.set_header({"m", "density", "nnz(A)", "schur flops (csr)",
                    "schur flops (dense form)", "zero shards", "shards",
                    "program cells", "settle [ms]", "relative error"});
  for (const std::size_t m : config.sizes) {
    for (const double density : {0.05, 0.25, 1.0}) {
      Rng rng(config.seed + 31 * m);
      lp::GeneratorOptions generator;
      generator.constraints = m;
      generator.sparsity = 1.0 - density;
      const auto problem = lp::random_feasible(generator, rng);
      const auto nnz = static_cast<double>(problem.a.nnz());
      const std::uint64_t csr_flops = sparse_schur_flops(run, problem);
      const std::uint64_t dense_flops = dense_schur_flops(
          problem.num_constraints(), problem.num_variables());

      const auto reference = solvers::solve_simplex(problem);
      core::XbarPdipOptions options;
      options.seed = config.seed + m;
      options.hardware.force_noc = true;
      options.hardware.tile_dim = kGridTileDim;
      Stopwatch settle_timer;
      const auto outcome = core::solve_xbar_pdip(problem, options);
      const double settle_ms = settle_timer.seconds() * 1e3;
      const double error =
          outcome.result.optimal() && reference.optimal()
              ? lp::relative_error(outcome.result.objective,
                                   reference.objective)
              : 1.0;
      const auto& backend = outcome.stats.backend;
      table.add_row(
          {TextTable::num(static_cast<double>(m), 0), bench::percent(density),
           TextTable::num(nnz, 0),
           TextTable::num(static_cast<double>(csr_flops), 0),
           TextTable::num(static_cast<double>(dense_flops), 0),
           TextTable::num(static_cast<double>(backend.zero_tiles), 0),
           TextTable::num(static_cast<double>(backend.num_tiles), 0),
           TextTable::num(
               static_cast<double>(outcome.stats.programming.xbar.cells_written),
               0),
           TextTable::num(settle_ms, 3), bench::percent(error)});

      const std::string cell =
          "/m" + std::to_string(m) + "/d" +
          std::to_string(static_cast<int>(density * 100));
      run.metric("nnz" + cell, nnz, {.unit = "cells", .measured = false});
      run.metric("schur_flops_csr" + cell, static_cast<double>(csr_flops),
                 {.unit = "flops", .measured = false});
      run.metric("zero_shards" + cell,
                 static_cast<double>(backend.zero_tiles),
                 {.unit = "tiles", .lower_is_better = false,
                  .measured = false});
      run.metric("program_cells" + cell,
                 static_cast<double>(
                     outcome.stats.programming.xbar.cells_written),
                 {.unit = "cells", .measured = false});
      run.metric("settle_wall_ms" + cell, settle_ms,
                 {.unit = "ms", .measured = true});
    }
  }
  run.table(table);

  // --- fixed crossover check (regression-gated) -------------------------
  // m = 512, n = m/3, 5% density: the CSR row-intersection assembly must
  // beat the dense closed form by at least 5x. Runs at a fixed size
  // regardless of the sweep so the smoke gate exercises the real frontier.
  {
    constexpr std::size_t kCrossoverM = 512;
    Rng rng(config.seed);
    lp::GeneratorOptions generator;
    generator.constraints = kCrossoverM;
    generator.sparsity = 0.95;
    const auto problem = lp::random_feasible(generator, rng);
    const std::uint64_t csr_flops = sparse_schur_flops(run, problem);
    const std::uint64_t dense_flops = dense_schur_flops(
        problem.num_constraints(), problem.num_variables());
    const double ratio = static_cast<double>(dense_flops) /
                         static_cast<double>(csr_flops == 0 ? 1 : csr_flops);
    TextTable crossover("Schur-assembly crossover (m = 512, 5% density)");
    crossover.set_header(
        {"nnz(A)", "csr flops", "dense flops", "dense/csr ratio"});
    crossover.add_row(
        {TextTable::num(static_cast<double>(problem.a.nnz()), 0),
         TextTable::num(static_cast<double>(csr_flops), 0),
         TextTable::num(static_cast<double>(dense_flops), 0),
         TextTable::num(ratio, 1)});
    run.table(crossover);
    run.metric("schur_flops_ratio_5pct_m512", ratio,
               {.unit = "x", .lower_is_better = false, .measured = false});
    if (ratio < 5.0) {
      std::fprintf(stderr,
                   "FAIL: sparse Schur assembly only %.2fx cheaper than the "
                   "dense closed form at 5%% density, m=512 (gate: >= 5x)\n",
                   ratio);
      run.finish();
      return 1;
    }
  }

  std::printf(
      "\nexpected: programming cells and Schur flops fall with density while "
      "accuracy holds; all-zero shards of the tile grid are never "
      "programmed.\n");
  return run.finish();
}
