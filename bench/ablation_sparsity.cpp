// Ablation: sparsity and the O(N²) initialization (§3.5).
//
// "the initialization time complexity is O(N²) for dense matrices, and will
// be lower for sparse matrices that are common in linear programs." —
// structurally zero cells stay at the erased conductance level for free, so
// the one-off programming cost scales with the number of nonzeros.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/result.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("ablation_sparsity",
                      "Ablation — sparsity vs initialization cost",
                      "programming writes scale with the nonzero count",
                      config);
  const std::size_t m = config.sizes.back();
  const perf::HardwareModel hardware;

  TextTable table("crossbar PDIP vs A-sparsity (no variation)");
  table.set_header({"sparsity", "nnz(A)", "program cells", "program [ms]",
                    "iterative [ms]", "relative error"});
  for (const double sparsity : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    std::vector<double> program_cells, program_ms, iter_ms, errors;
    double nnz = 0.0;
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      Rng rng(config.seed + 31 * trial);
      lp::GeneratorOptions generator;
      generator.constraints = m;
      generator.sparsity = sparsity;
      const auto problem = lp::random_feasible(generator, rng);
      nnz = 0.0;
      for (double v : problem.a.data())
        if (v != 0.0) nnz += 1.0;
      const auto reference = solvers::solve_simplex(problem);
      if (!reference.optimal()) continue;
      core::XbarPdipOptions options;
      options.seed = config.seed + trial;
      const auto outcome = core::solve_xbar_pdip(problem, options);
      if (!outcome.result.optimal()) continue;
      program_cells.push_back(
          static_cast<double>(outcome.stats.programming.xbar.cells_written));
      program_ms.push_back(
          hardware.estimate_programming(outcome.stats).latency_s * 1e3);
      iter_ms.push_back(hardware.estimate(outcome.stats).latency_s * 1e3);
      errors.push_back(
          lp::relative_error(outcome.result.objective, reference.objective));
    }
    table.add_row({bench::percent(sparsity), TextTable::num(nnz, 5),
                   TextTable::num(bench::mean(program_cells), 6),
                   TextTable::num(bench::mean(program_ms), 4),
                   TextTable::num(bench::mean(iter_ms), 4),
                   bench::percent(bench::mean(errors))});
  }
  run.table(table);
  std::printf(
      "\nexpected: one-off programming cost falls with sparsity while the "
      "iterative phase and accuracy are unaffected.\n");
  return run.finish();
}
