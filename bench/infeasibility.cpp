// §4.4 infeasibility-detection table.
//
// Paper reference points at m = 1024: an infeasible system costs linprog
// ~30 s / 1023.1 J to detect, vs 265 ms / 10.9 J on the crossbar solver at
// 20% variation — "at least 113x". Detection on the crossbar comes from the
// divergence of the dual iterate (§3.1), so it typically needs *fewer*
// iterations than a full solve.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/ls_pdip.hpp"
#include "core/xbar_pdip.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("infeasibility",
                      "§4.4 — infeasibility detection",
                      "latency/energy to detect infeasible LPs", config);

  const perf::HardwareModel hardware;
  const perf::CpuModel cpu;
  TextTable table("infeasible-LP detection (20% variation for crossbars)");
  table.set_header({"m", "detected (sx/xb/ls)", "simplex [ms]", "simplex [J]",
                    "xbar [ms]", "xbar [J]", "xbar-LS [ms]", "xbar-LS [J]",
                    "xbar iters"});

  for (const std::size_t m : config.sizes) {
    std::vector<double> sx_ms, sx_j, xb_ms, xb_j, ls_ms, ls_j, xb_iters;
    std::size_t sx_hits = 0, xb_hits = 0, ls_hits = 0;
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const auto problem = bench::infeasible_problem(config, m, trial);
      const auto reference = solvers::solve_simplex(problem);
      if (reference.status == lp::SolveStatus::kInfeasible) {
        ++sx_hits;
        sx_ms.push_back(reference.wall_seconds * 1e3);
        sx_j.push_back(cpu.estimate(reference.wall_seconds).energy_j);
      }
      core::XbarPdipOptions xbar_options;
      xbar_options.hardware.crossbar.variation =
          mem::VariationModel::uniform(0.20);
      xbar_options.seed = config.seed + 1000 * m + trial;
      const auto xbar = core::solve_xbar_pdip(problem, xbar_options);
      if (xbar.result.status == lp::SolveStatus::kInfeasible) {
        ++xb_hits;
        xb_ms.push_back(hardware.estimate(xbar.stats).latency_s * 1e3);
        xb_j.push_back(hardware.estimate(xbar.stats).energy_j);
        xb_iters.push_back(static_cast<double>(xbar.stats.iterations));
      }
      core::LsPdipOptions ls_options;
      ls_options.hardware.crossbar.variation =
          mem::VariationModel::uniform(0.20);
      ls_options.seed = config.seed + 1000 * m + trial;
      const auto ls = core::solve_ls_pdip(problem, ls_options);
      if (ls.result.status == lp::SolveStatus::kInfeasible) {
        ++ls_hits;
        ls_ms.push_back(hardware.estimate(ls.stats).latency_s * 1e3);
        ls_j.push_back(hardware.estimate(ls.stats).energy_j);
      }
    }
    char detected[48];
    std::snprintf(detected, sizeof detected, "%zu/%zu/%zu of %zu", sx_hits,
                  xb_hits, ls_hits, config.trials);
    table.add_row({TextTable::num((long long)m), detected,
                   TextTable::num(bench::mean(sx_ms), 4),
                   TextTable::num(bench::mean(sx_j), 4),
                   TextTable::num(bench::mean(xb_ms), 4),
                   TextTable::num(bench::mean(xb_j), 4),
                   TextTable::num(bench::mean(ls_ms), 4),
                   TextTable::num(bench::mean(ls_j), 4),
                   TextTable::num(bench::mean(xb_iters), 3)});
    std::fflush(stdout);
  }
  run.table(table);
  std::printf(
      "\npaper at m=1024: linprog ~30 s / 1023.1 J vs crossbar 265 ms / "
      "10.9 J at 20%% variation (>=113x).\n");
  return run.finish();
}
