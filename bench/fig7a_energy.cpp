// Fig. 7(a): estimated energy consumption of the crossbar LP solver,
// compared with the exact software solver and the software PDIP baseline.
//
// Paper reference points at m = 1024: linprog 218.1 J; crossbar solver
// 0.9 J (ideal), 6.2 J (5%), 8.9 J (10%), 12.1 J (20%) — ≥24x reduction.
// CPU energy = measured wall time × the package power implied by the
// paper's own latency/energy pairs (35 W). Crossbar energy is derived from
// the cost ledger: each solve is bracketed with ledger snapshots and the
// delta's iterative bucket (perf::split_programming) is priced — the same
// number HardwareModel::estimate(stats) produces, but attributed per phase.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/pdip.hpp"
#include "core/xbar_pdip.hpp"
#include "perf/cost_tree.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("fig7a_energy",
                      "Fig. 7(a) — estimated energy consumption",
                      "crossbar solver vs software simplex and PDIP",
                      config);

  const perf::HardwareModel hardware;
  const perf::CpuModel cpu;
  TextTable table("mean energy per solve (feasible LPs)");
  std::vector<std::string> header{"m", "simplex [J]", "sw PDIP [J]"};
  for (double variation : config.variations)
    header.push_back("xbar " + bench::percent(variation) + " [J]");
  header.emplace_back("best reduction");
  table.set_header(header);

  for (const std::size_t m : config.sizes) {
    std::vector<double> simplex_j;
    std::vector<double> pdip_j;
    std::vector<std::vector<double>> xbar_j(config.variations.size());
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const auto problem = bench::feasible_problem(config, m, trial);
      const auto reference = solvers::solve_simplex(problem);
      if (reference.optimal())
        simplex_j.push_back(cpu.estimate(reference.wall_seconds).energy_j);
      const auto software = core::solve_pdip(problem);
      if (software.optimal())
        pdip_j.push_back(cpu.estimate(software.wall_seconds).energy_j);
      for (std::size_t v = 0; v < config.variations.size(); ++v) {
        core::XbarPdipOptions options;
        options.hardware.crossbar.variation =
            config.variations[v] > 0.0
                ? mem::VariationModel::uniform(config.variations[v])
                : mem::VariationModel::none();
        options.seed = config.seed + 1000 * m + trial;
        // Throughput benches run the settle-cache reuse path; exact mode is
        // reserved for bit-exact golden traces.
        options.settle_mode = xbar::SettleMode::kReuse;
        const auto before = run.ledger().tree();
        const auto outcome = core::solve_xbar_pdip(problem, options);
        if (outcome.result.optimal()) {
          const auto delta =
              bench::cost_tree_delta(before, run.ledger().tree());
          xbar_j[v].push_back(
              perf::split_programming(delta, hardware).iterative_cost.energy_j);
        }
      }
    }
    std::vector<std::string> row{TextTable::num((long long)m),
                                 TextTable::num(bench::mean(simplex_j), 4),
                                 TextTable::num(bench::mean(pdip_j), 4)};
    double best = 0.0;
    for (auto& samples : xbar_j) {
      const double value = bench::mean(samples);
      row.push_back(TextTable::num(value, 4));
      if (best == 0.0 || (value > 0.0 && value < best)) best = value;
    }
    row.push_back(best > 0.0
                      ? TextTable::num(bench::mean(simplex_j) / best, 3) + "x"
                      : "-");
    table.add_row(row);
    // Regression metrics at the sweep's largest size (see fig6a_latency).
    if (m == config.sizes.back()) {
      run.metric("simplex_energy_j", bench::mean(simplex_j),
                 {"J", true, /*measured=*/true});
      run.metric("pdip_energy_j", bench::mean(pdip_j),
                 {"J", true, /*measured=*/true});
      for (std::size_t v = 0; v < config.variations.size(); ++v)
        run.metric(
            "xbar_energy_est_j/var=" + bench::percent(config.variations[v]),
            bench::mean(xbar_j[v]), {"J", true, /*measured=*/false});
    }
    std::fflush(stdout);
  }
  run.table(table);
  std::printf(
      "\npaper at m=1024: 218.1 J vs 0.9-12.1 J (>=24x reduction); energy "
      "grows with the variation level.\n");
  return run.finish();
}
