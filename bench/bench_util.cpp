#include "bench_util.hpp"

#include <cstdio>
#include <numeric>
#include <sstream>

#include "common/env.hpp"
#include "common/par.hpp"
#include "common/provenance.hpp"

namespace memlp::bench {

SweepConfig SweepConfig::from_env() {
  SweepConfig config;
  const bool full = full_sweep_requested();
  const auto min_m = static_cast<std::size_t>(env_int("MEMLP_MIN_M", 4));
  const auto max_m = static_cast<std::size_t>(
      env_int("MEMLP_MAX_M", full ? 1024 : 64));
  config.trials =
      static_cast<std::size_t>(env_int("MEMLP_TRIALS", full ? 20 : 5));
  for (std::size_t m = min_m; m <= max_m; m *= 2) config.sizes.push_back(m);
  config.seed = static_cast<std::uint64_t>(env_int("MEMLP_SEED", 0xbe9c));
  return config;
}

std::string SweepConfig::describe() const {
  std::ostringstream os;
  os << "m in {";
  for (std::size_t i = 0; i < sizes.size(); ++i)
    os << (i ? "," : "") << sizes[i];
  os << "}, n = m/3, " << trials << " trials/cell, seed " << seed;
  return os.str();
}

void print_header(const std::string& experiment, const std::string& paper_ref,
                  const SweepConfig& config) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  // Text artifacts carry the same provenance as BENCH_*.json: numbers in a
  // committed results/*.txt are attributable to one commit and seed.
  std::string build = build_type();
  if (!build_flags().empty()) build += ", " + build_flags();
  std::printf("provenance: git %s, %s (%s), threads %zu\n", git_sha().c_str(),
              compiler_id().c_str(), build.c_str(), par::default_threads());
  std::printf("sweep: %s (MEMLP_FULL=1 for the paper's full sweep)\n\n",
              config.describe().c_str());
}

namespace {

Rng trial_rng(const SweepConfig& config, std::size_t m, std::size_t trial,
              bool infeasible) {
  // One independent deterministic stream per cell.
  const std::uint64_t tag = (infeasible ? 0x8000'0000ULL : 0) |
                            (static_cast<std::uint64_t>(m) << 32) | trial;
  return Rng(config.seed ^ (tag * 0x9e3779b97f4a7c15ULL));
}

}  // namespace

lp::LinearProgram feasible_problem(const SweepConfig& config, std::size_t m,
                                   std::size_t trial) {
  Rng rng = trial_rng(config, m, trial, false);
  lp::GeneratorOptions options;
  options.constraints = m;
  return lp::random_feasible(options, rng);
}

lp::LinearProgram infeasible_problem(const SweepConfig& config, std::size_t m,
                                     std::size_t trial) {
  Rng rng = trial_rng(config, m, trial, true);
  lp::GeneratorOptions options;
  options.constraints = m < 2 ? 2 : m;
  return lp::random_infeasible(options, rng);
}

bool export_table_artifacts(const TextTable& table, const std::string& stem) {
  const bool csv_ok = table.write_csv(stem + ".csv");
  const bool json_ok = table.write_json(stem + ".json");
  return csv_ok && json_ok;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

std::string percent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.2f%%", fraction * 100.0);
  return buffer;
}

}  // namespace memlp::bench
