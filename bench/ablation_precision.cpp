// Ablation: analog precision.
//
// §4.1 fixes the voltage I/O at 8 bits and §3.3's pulse programming implies
// a finite number of conductance levels (256 here). This ablation sweeps
// both knobs on the crossbar PDIP solver to show where the paper's accuracy
// floor comes from.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("ablation_precision",
                      "Ablation — I/O bits and conductance levels",
                      "accuracy floor vs analog precision (no variation)",
                      config);
  const std::size_t m = config.sizes.back();

  TextTable io_table("mean relative error vs voltage I/O precision");
  io_table.set_header({"io bits", "relative error", "mean iterations"});
  for (const std::size_t bits : {4, 6, 8, 10, 12, 0}) {
    std::vector<double> errors;
    std::vector<double> iterations;
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const auto problem = bench::feasible_problem(config, m, trial);
      const auto reference = solvers::solve_simplex(problem);
      if (!reference.optimal()) continue;
      core::XbarPdipOptions options;
      options.hardware.crossbar.io_bits = bits;
      options.seed = config.seed + trial;
      const auto outcome = core::solve_xbar_pdip(problem, options);
      if (!outcome.result.optimal()) continue;
      errors.push_back(
          lp::relative_error(outcome.result.objective, reference.objective));
      iterations.push_back(static_cast<double>(outcome.stats.iterations));
    }
    io_table.add_row({bits == 0 ? "ideal" : TextTable::num((long long)bits),
                      bench::percent(bench::mean(errors)),
                      TextTable::num(bench::mean(iterations), 3)});
  }
  run.table(io_table);

  TextTable level_table("mean relative error vs conductance levels (writes)");
  level_table.set_header({"levels", "relative error", "mean iterations"});
  for (const std::size_t levels :
       {16UL, 64UL, 256UL, 1024UL, 1UL << 20}) {
    std::vector<double> errors;
    std::vector<double> iterations;
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const auto problem = bench::feasible_problem(config, m, trial);
      const auto reference = solvers::solve_simplex(problem);
      if (!reference.optimal()) continue;
      core::XbarPdipOptions options;
      options.hardware.crossbar.conductance_levels = levels;
      options.seed = config.seed + trial;
      const auto outcome = core::solve_xbar_pdip(problem, options);
      if (!outcome.result.optimal()) continue;
      errors.push_back(
          lp::relative_error(outcome.result.objective, reference.objective));
      iterations.push_back(static_cast<double>(outcome.stats.iterations));
    }
    level_table.add_row({levels == (1UL << 20)
                             ? "2^20"
                             : TextTable::num((long long)levels),
                         bench::percent(bench::mean(errors)),
                         TextTable::num(bench::mean(iterations), 3)});
  }
  run.table(level_table);
  std::printf(
      "\nexpected: error shrinks with precision and saturates around the "
      "paper's 8-bit / 256-level setting.\n");
  return run.finish();
}
