// Ablation: the process-variation model.
//
// §4.1 models variation as uniform (Eq. 18); geometry studies such as [22]
// also motivate a log-normal spread. This ablation compares the two at
// matched magnitudes, and quantifies the retry scheme's value (§4.3: fresh
// draws on every write are what make re-solving effective).
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("ablation_variation",
                      "Ablation — variation model and retry scheme",
                      "uniform vs log-normal; retries on/off", config);
  const std::size_t m = config.sizes.back();

  TextTable model_table("variation distribution (crossbar PDIP)");
  model_table.set_header(
      {"model", "magnitude", "solved", "relative error"});
  for (const double magnitude : {0.05, 0.10, 0.20}) {
    for (const bool lognormal : {false, true}) {
      std::vector<double> errors;
      std::size_t solved = 0, attempted = 0;
      for (std::size_t trial = 0; trial < config.trials; ++trial) {
        const auto problem = bench::feasible_problem(config, m, trial);
        const auto reference = solvers::solve_simplex(problem);
        if (!reference.optimal()) continue;
        ++attempted;
        core::XbarPdipOptions options;
        options.hardware.crossbar.variation =
            lognormal
                ? mem::VariationModel(mem::VariationKind::kLogNormal,
                                      magnitude)
                : mem::VariationModel::uniform(magnitude);
        options.seed = config.seed + trial;
        const auto outcome = core::solve_xbar_pdip(problem, options);
        if (!outcome.result.optimal()) continue;
        ++solved;
        errors.push_back(
            lp::relative_error(outcome.result.objective, reference.objective));
      }
      model_table.add_row({lognormal ? "log-normal" : "uniform (Eq. 18)",
                           bench::percent(magnitude),
                           TextTable::num((long long)solved) + "/" +
                               TextTable::num((long long)attempted),
                           bench::percent(bench::mean(errors))});
    }
  }
  run.table(model_table);

  TextTable retry_table("retry scheme (crossbar PDIP)");
  retry_table.set_header(
      {"variation", "max retries", "solved", "mean attempts"});
  for (const double stress : {0.20, 0.35}) {
    for (const std::size_t retries : {0UL, 2UL, 4UL}) {
      std::size_t solved = 0, attempted = 0;
      std::vector<double> attempts;
      for (std::size_t trial = 0; trial < config.trials; ++trial) {
        const auto problem = bench::feasible_problem(config, m, trial);
        const auto reference = solvers::solve_simplex(problem);
        if (!reference.optimal()) continue;
        ++attempted;
        core::XbarPdipOptions options;
        options.hardware.crossbar.variation =
            mem::VariationModel::uniform(stress);
        options.max_retries = retries;
        options.seed = config.seed + trial;
        const auto outcome = core::solve_xbar_pdip(problem, options);
        attempts.push_back(static_cast<double>(outcome.stats.attempts));
        if (outcome.result.optimal()) ++solved;
      }
      retry_table.add_row({bench::percent(stress),
                           TextTable::num((long long)retries),
                           TextTable::num((long long)solved) + "/" +
                               TextTable::num((long long)attempted),
                           TextTable::num(bench::mean(attempts), 3)});
    }
  }
  run.table(retry_table);
  std::printf(
      "\npaper §4.3: re-solving with freshly drawn variation 'could "
      "guarantee convergence'.\n");
  return run.finish();
}
