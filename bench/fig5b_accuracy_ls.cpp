// Fig. 5(b): accuracy of the large-scale crossbar LP solver (Algorithm 2).
//
// Reproduces: "Accuracy simulation results of memristor crossbar-based
// linear program solver for large scale operations." The paper reports
// 0.8%–8.5% relative error across 0–20% process variation.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/ls_pdip.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("fig5b_accuracy_ls",
                      
      "Fig. 5(b) — large-scale crossbar solver accuracy",
      "relative error vs exact optimum, 0/5/10/20% variation", config);

  TextTable table("mean relative error (feasible LPs, Algorithm 2)");
  std::vector<std::string> header{"m", "n"};
  for (double variation : config.variations)
    header.push_back("var=" + bench::percent(variation));
  header.emplace_back("non-optimal");
  table.set_header(header);

  for (const std::size_t m : config.sizes) {
    std::vector<std::string> row{TextTable::num((long long)m),
                                 TextTable::num((long long)(m / 3 ? m / 3 : 1))};
    std::size_t failures = 0;
    for (const double variation : config.variations) {
      std::vector<double> errors;
      for (std::size_t trial = 0; trial < config.trials; ++trial) {
        const auto problem = bench::feasible_problem(config, m, trial);
        const auto reference = solvers::solve_simplex(problem);
        if (!reference.optimal()) continue;
        core::LsPdipOptions options;
        options.hardware.crossbar.variation =
            variation > 0.0 ? mem::VariationModel::uniform(variation)
                            : mem::VariationModel::none();
        options.seed = config.seed + 1000 * m + trial;
        const auto outcome = core::solve_ls_pdip(problem, options);
        if (!outcome.result.optimal()) {
          ++failures;
          continue;
        }
        errors.push_back(
            lp::relative_error(outcome.result.objective, reference.objective));
      }
      row.push_back(bench::percent(bench::mean(errors)));
    }
    row.push_back(TextTable::num((long long)failures));
    table.add_row(row);
    std::fflush(stdout);
  }
  run.table(table);
  std::printf(
      "\npaper: 0.8%%-8.5%% relative error; rare convergence failures are "
      "absorbed by the re-solve scheme.\n");
  return run.finish();
}
