// Fig. 6(b): estimated computation latency of the large-scale crossbar
// solver (Algorithm 2) vs the exact software solver.
//
// Paper reference point at m = 1024: < 80 ms even at 20% variation (vs
// 6234 ms for linprog), and — unlike Algorithm 1 — almost flat in the
// variation level, because M1 is programmed once and only O(N) diagonal
// cells are rewritten per iteration.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/ls_pdip.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("fig6b_latency_ls",
                      "Fig. 6(b) — large-scale solver latency",
                      "Algorithm 2 vs software simplex", config);

  const perf::HardwareModel hardware;
  TextTable table("mean latency per solve (feasible LPs, Algorithm 2)");
  std::vector<std::string> header{"m", "simplex [ms]"};
  for (double variation : config.variations)
    header.push_back("xbar-LS " + bench::percent(variation) + " [ms]");
  header.emplace_back("best speedup");
  table.set_header(header);

  for (const std::size_t m : config.sizes) {
    std::vector<double> simplex_ms;
    std::vector<std::vector<double>> ls_ms(config.variations.size());
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const auto problem = bench::feasible_problem(config, m, trial);
      const auto reference = solvers::solve_simplex(problem);
      if (reference.optimal())
        simplex_ms.push_back(reference.wall_seconds * 1e3);
      for (std::size_t v = 0; v < config.variations.size(); ++v) {
        core::LsPdipOptions options;
        options.hardware.crossbar.variation =
            config.variations[v] > 0.0
                ? mem::VariationModel::uniform(config.variations[v])
                : mem::VariationModel::none();
        options.seed = config.seed + 1000 * m + trial;
        const auto outcome = core::solve_ls_pdip(problem, options);
        if (outcome.result.optimal())
          ls_ms[v].push_back(hardware.estimate(outcome.stats).latency_s * 1e3);
      }
    }
    std::vector<std::string> row{TextTable::num((long long)m),
                                 TextTable::num(bench::mean(simplex_ms), 4)};
    double best = 0.0;
    for (auto& samples : ls_ms) {
      const double value = bench::mean(samples);
      row.push_back(TextTable::num(value, 4));
      if (best == 0.0 || (value > 0.0 && value < best)) best = value;
    }
    row.push_back(best > 0.0
                      ? TextTable::num(bench::mean(simplex_ms) / best, 3) + "x"
                      : "-");
    table.add_row(row);
    std::fflush(stdout);
  }
  run.table(table);
  std::printf(
      "\npaper at m=1024: <80 ms at 20%% variation vs 6234 ms; latency "
      "nearly flat in the variation level.\n");
  return run.finish();
}
