#include "artifact.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/env.hpp"
#include "common/json.hpp"
#include "common/par.hpp"
#include "common/provenance.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "perf/hardware_model.hpp"

namespace memlp::bench {
namespace {

std::string artifact_dir() {
  const char* env = std::getenv("MEMLP_BENCH_DIR");
  if (env != nullptr && *env != 0) return env;
  return "results/json";
}

void append_member(std::string& out, const char* key, const std::string& raw,
                   bool first = false) {
  if (!first) out += ",";
  out += json_string(key);
  out += ":";
  out += raw;
}

std::string sizes_json(const std::vector<std::size_t>& sizes) {
  std::string out = "[";
  for (std::size_t i = 0; i < sizes.size(); ++i)
    out += (i ? "," : "") + json_number(static_cast<std::int64_t>(sizes[i]));
  return out + "]";
}

std::string doubles_json(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i)
    out += (i ? "," : "") + json_number(values[i]);
  return out + "]";
}

}  // namespace

obs::CostTree cost_tree_delta(const obs::CostTree& before,
                              const obs::CostTree& after) {
  obs::CostTree delta;
  for (const auto& [path, counters] : after) {
    const auto it = before.find(path);
    const obs::CostCounters moved =
        it == before.end() ? counters : counters.since(it->second);
    if (!moved.zero()) delta[path] = moved;
  }
  return delta;
}

BenchRun::BenchRun(std::string name, std::string experiment,
                   std::string paper_ref, SweepConfig config)
    : name_(std::move(name)),
      experiment_(std::move(experiment)),
      paper_ref_(std::move(paper_ref)),
      config_(std::move(config)) {
  print_header(experiment_, paper_ref_, config_);
  if (obs::Profiler::active() == nullptr) {
    obs::Profiler::set_active(&profiler_);
    owns_active_ = true;
  }
  if (obs::CostLedger::active() == nullptr) {
    obs::CostLedger::set_active(&ledger_);
    owns_ledger_ = true;
  }
}

BenchRun::~BenchRun() { finish(); }

void BenchRun::table(const TextTable& table) {
  table.print();
  tables_.push_back(table);
}

void BenchRun::metric(const std::string& name, double value,
                      MetricOptions options) {
  metrics_.push_back({name, value, std::move(options)});
}

std::string BenchRun::to_json() const {
  std::string out = "{";
  append_member(out, "schema", json_string("memlp.bench/1"), /*first=*/true);
  append_member(out, "name", json_string(name_));
  append_member(out, "experiment", json_string(experiment_));
  append_member(out, "paper_ref", json_string(paper_ref_));

  std::string provenance = "{";
  append_member(provenance, "git_sha", json_string(git_sha()), true);
  append_member(provenance, "compiler", json_string(compiler_id()));
  append_member(provenance, "build_type", json_string(build_type()));
  append_member(provenance, "build_flags", json_string(build_flags()));
  append_member(provenance, "threads",
                json_number(static_cast<std::int64_t>(par::default_threads())));
  append_member(provenance, "seed",
                json_number(static_cast<std::int64_t>(config_.seed)));
  append_member(provenance, "full_sweep",
                full_sweep_requested() ? "true" : "false");
  provenance += "}";
  append_member(out, "provenance", provenance);

  std::string config = "{";
  append_member(config, "sizes", sizes_json(config_.sizes), true);
  append_member(config, "trials",
                json_number(static_cast<std::int64_t>(config_.trials)));
  append_member(config, "variations", doubles_json(config_.variations));
  append_member(config, "seed",
                json_number(static_cast<std::int64_t>(config_.seed)));
  config += "}";
  append_member(out, "config", config);

  append_member(out, "wall_s", json_number(wall_.seconds()));

  std::string phases = "[";
  bool first_phase = true;
  for (const obs::CallPathStats& stats : profiler_.aggregate()) {
    if (!first_phase) phases += ",";
    first_phase = false;
    std::string phase = "{";
    append_member(phase, "path", json_string(stats.path), true);
    append_member(phase, "count",
                  json_number(static_cast<std::int64_t>(stats.count)));
    append_member(phase, "total_s", json_number(stats.total_s));
    append_member(phase, "p50_s", json_number(stats.p50_s));
    append_member(phase, "p95_s", json_number(stats.p95_s));
    append_member(phase, "p99_s", json_number(stats.p99_s));
    append_member(phase, "max_s", json_number(stats.max_s));
    phase += "}";
    phases += phase;
  }
  phases += "]";
  append_member(out, "phases", phases);

  // The run's cost tree: integer counters per call path plus their priced
  // energy/latency (perf::HardwareModel default constants — the same table
  // recorded under "hardware_constants" below).
  const perf::HardwareModel pricing;
  std::string cost_tree = "[";
  bool first_cost = true;
  for (const auto& [path, counters] : ledger_.tree()) {
    if (!first_cost) cost_tree += ",";
    first_cost = false;
    const perf::CostEstimate priced = pricing.price_counters(counters);
    std::string entry = "{";
    append_member(entry, "path", json_string(path), true);
    const auto count = [&](const char* key, std::uint64_t value) {
      append_member(entry, key,
                    json_number(static_cast<std::int64_t>(value)));
    };
    count("settles", counters.settles);
    count("cells_written", counters.cells_written);
    count("write_pulses", counters.write_pulses);
    count("amp_vector_ops", counters.amp_vector_ops);
    count("amp_element_ops", counters.amp_element_ops);
    count("noc_value_hops", counters.noc_value_hops);
    count("controller_iterations", counters.controller_iterations);
    count("flops", counters.flops);
    count("bytes", counters.bytes);
    append_member(entry, "energy_j", json_number(priced.energy_j));
    append_member(entry, "latency_s", json_number(priced.latency_s));
    entry += "}";
    cost_tree += entry;
  }
  cost_tree += "]";
  append_member(out, "cost_tree", cost_tree);

  std::string metrics = "[";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (i > 0) metrics += ",";
    const Metric& metric = metrics_[i];
    std::string entry = "{";
    append_member(entry, "name", json_string(metric.name), true);
    append_member(entry, "value", json_number(metric.value));
    append_member(entry, "unit", json_string(metric.options.unit));
    append_member(entry, "better",
                  json_string(metric.options.lower_is_better ? "lower"
                                                             : "higher"));
    append_member(entry, "measured",
                  metric.options.measured ? "true" : "false");
    entry += "}";
    metrics += entry;
  }
  metrics += "]";
  append_member(out, "metrics", metrics);

  const auto& registry = obs::MetricsRegistry::global();
  std::string counters = "{";
  bool first = true;
  for (const auto& [name, value] : registry.counter_values()) {
    append_member(counters, name.c_str(),
                  json_number(static_cast<std::int64_t>(value)), first);
    first = false;
  }
  counters += "}";
  append_member(out, "counters", counters);
  std::string gauges = "{";
  first = true;
  for (const auto& [name, value] : registry.gauge_values()) {
    append_member(gauges, name.c_str(), json_number(value), first);
    first = false;
  }
  gauges += "}";
  append_member(out, "gauges", gauges);
  std::string histograms = "{";
  first = true;
  for (const auto& [name, stats] : registry.histogram_values()) {
    std::string entry = "{";
    append_member(entry, "count",
                  json_number(static_cast<std::int64_t>(stats.count)), true);
    append_member(entry, "total", json_number(stats.total));
    append_member(entry, "p50", json_number(stats.p50));
    append_member(entry, "p95", json_number(stats.p95));
    append_member(entry, "p99", json_number(stats.p99));
    append_member(entry, "max", json_number(stats.max));
    entry += "}";
    append_member(histograms, name.c_str(), entry, first);
    first = false;
  }
  histograms += "}";
  append_member(out, "histograms", histograms);

  const perf::HardwareCostConstants constants;
  std::string hardware = "{";
  append_member(hardware, "settle_s", json_number(constants.settle_s), true);
  append_member(hardware, "write_cell_s", json_number(constants.write_cell_s));
  append_member(hardware, "write_pulse_s",
                json_number(constants.write_pulse_s));
  append_member(hardware, "amp_vector_op_s",
                json_number(constants.amp_vector_op_s));
  append_member(hardware, "noc_value_hop_s",
                json_number(constants.noc_value_hop_s));
  append_member(hardware, "controller_iteration_s",
                json_number(constants.controller_iteration_s));
  append_member(hardware, "settle_j", json_number(constants.settle_j));
  append_member(hardware, "write_cell_j", json_number(constants.write_cell_j));
  append_member(hardware, "write_pulse_j",
                json_number(constants.write_pulse_j));
  append_member(hardware, "amp_element_j",
                json_number(constants.amp_element_j));
  append_member(hardware, "noc_value_hop_j",
                json_number(constants.noc_value_hop_j));
  append_member(hardware, "controller_iteration_j",
                json_number(constants.controller_iteration_j));
  hardware += "}";
  append_member(out, "hardware_constants", hardware);

  std::string tables = "[";
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    if (t > 0) tables += ",";
    const TextTable& table = tables_[t];
    std::string entry = "{";
    append_member(entry, "title", json_string(table.title()), true);
    std::string columns = "[";
    for (std::size_t i = 0; i < table.header().size(); ++i)
      columns += (i ? "," : "") + json_string(table.header()[i]);
    columns += "]";
    append_member(entry, "columns", columns);
    std::string rows = "[";
    for (std::size_t r = 0; r < table.rows().size(); ++r) {
      if (r > 0) rows += ",";
      rows += "[";
      const auto& row = table.rows()[r];
      for (std::size_t c = 0; c < row.size(); ++c)
        rows += (c ? "," : "") + json_string(row[c]);
      rows += "]";
    }
    rows += "]";
    append_member(entry, "rows", rows);
    entry += "}";
    tables += entry;
  }
  tables += "]";
  append_member(out, "tables", tables);

  out += "}\n";
  return out;
}

void BenchRun::export_metrics() {
  const std::string dir = artifact_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/BENCH_" + name_ + ".prom";
  if (obs::Telemetry::global().write_metrics(path))
    std::printf("metrics: %s\n", path.c_str());
  else
    std::fprintf(stderr, "warning: could not write metrics %s\n", path.c_str());
}

int BenchRun::finish() {
  if (finished_) return 0;
  finished_ = true;
  const std::string document = to_json();  // before deactivating: aggregate()
  if (owns_active_) {
    obs::Profiler::set_active(nullptr);
    owns_active_ = false;
  }
  if (owns_ledger_) {
    obs::CostLedger::set_active(nullptr);
    owns_ledger_ = false;
  }
  const std::string dir = artifact_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "warning: could not write artifact %s\n",
                 path.c_str());
    return 0;
  }
  std::fputs(document.c_str(), file);
  std::fclose(file);
  std::printf("\nartifact: %s\n", path.c_str());
  return 0;
}

}  // namespace memlp::bench
