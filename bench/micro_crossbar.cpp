// Micro-benchmarks of the crossbar simulator (google-benchmark): programming
// cost, analog MVM, analog solve, and the per-iteration diagonal update —
// simulator wall time, not hardware estimates (those come from
// perf::HardwareModel in the figure harnesses).
#include <benchmark/benchmark.h>

#include "artifact.hpp"

#include <cstdint>

#include "common/rng.hpp"
#include "crossbar/crossbar.hpp"

namespace {

using namespace memlp;

Matrix random_nonneg(std::size_t n, Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(0.0, 1.0);
    a(i, i) += static_cast<double>(n);
  }
  return a;
}

xbar::CrossbarConfig paper_config() {
  xbar::CrossbarConfig config;
  config.variation = mem::VariationModel::uniform(0.10);
  return config;
}

void BM_Program(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = random_nonneg(n, rng);
  xbar::Crossbar crossbar(paper_config(), Rng(2));
  for (auto _ : state) crossbar.program(a);
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Program)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_AnalogMvm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Matrix a = random_nonneg(n, rng);
  xbar::Crossbar crossbar(paper_config(), Rng(4));
  crossbar.program(a);
  Vec x(n);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(crossbar.multiply(x));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AnalogMvm)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_AnalogSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const Matrix a = random_nonneg(n, rng);
  Vec b(n);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    // Re-program so every solve refactors (as the PDIP iteration does).
    xbar::Crossbar crossbar(paper_config(), Rng(6));
    crossbar.program(a);
    benchmark::DoNotOptimize(crossbar.solve(b));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AnalogSolve)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_DiagonalUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const Matrix a = random_nonneg(n, rng);
  xbar::Crossbar crossbar(paper_config(), Rng(8));
  crossbar.program(a, 2.0 * a.max_abs());
  double value = 0.5;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) crossbar.update_cell(i, i, value);
    value = value == 0.5 ? 0.75 : 0.5;  // force level changes
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DiagonalUpdate)->RangeMultiplier(2)->Range(16, 256)->Complexity();

}  // namespace


namespace {

/// Console reporter that also records every timing into the bench artifact
/// (per-iteration real time, ns — measured, so memlp_report applies loose
/// thresholds).
class ArtifactReporter : public benchmark::ConsoleReporter {
 public:
  explicit ArtifactReporter(memlp::bench::BenchRun& run) : run_(run) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      run_.metric(run.benchmark_name(), run.GetAdjustedRealTime(),
                  {"ns", true, /*measured=*/true});
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  memlp::bench::BenchRun& run_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  memlp::bench::BenchRun run("micro_crossbar",
                             "micro — micro_crossbar",
                             "crossbar simulator programming/MVM/solve timings",
                             memlp::bench::SweepConfig::from_env());
  ArtifactReporter reporter(run);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return run.finish();
}

