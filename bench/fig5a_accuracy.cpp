// Fig. 5(a): accuracy of the memristor crossbar-based LP solver.
//
// Reproduces: "Accuracy simulation results of memristor crossbar-based
// linear program solver. Results are compared to Matlab linprog function.
// Number of constraints varies from 4 to 1024." The paper reports 0.2%–9.9%
// relative error across 0–20% process variation, decreasing with problem
// size. The exact reference here is the two-phase simplex solver.
//
// The per-trial crossbar solves are independent (per-trial seeds), so each
// (m, variation) cell fans out through solve_batch; MEMLP_THREADS controls
// the worker count and the results are identical at any value.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/batch.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("fig5a_accuracy",
                      "Fig. 5(a) — crossbar PDIP solver accuracy",
                      "relative error vs exact optimum, 0/5/10/20% variation",
                      config);

  TextTable table("mean relative error (feasible LPs)");
  std::vector<std::string> header{"m", "n"};
  for (double variation : config.variations)
    header.push_back("var=" + bench::percent(variation));
  header.emplace_back("non-optimal");
  table.set_header(header);

  for (const std::size_t m : config.sizes) {
    std::vector<std::string> row{TextTable::num((long long)m),
                                 TextTable::num((long long)(m / 3 ? m / 3 : 1))};
    // The instances and their exact optima are variation-independent:
    // generate and reference-solve each trial once per m.
    std::vector<lp::LinearProgram> problems;
    std::vector<lp::SolveResult> references;
    problems.reserve(config.trials);
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      problems.push_back(bench::feasible_problem(config, m, trial));
      references.push_back(solvers::solve_simplex(problems.back()));
    }
    std::size_t failures = 0;
    for (const double variation : config.variations) {
      std::vector<BatchJob> jobs;
      std::vector<double> reference_objectives;
      for (std::size_t trial = 0; trial < config.trials; ++trial) {
        if (!references[trial].optimal()) continue;
        BatchJob job;
        job.problem = &problems[trial];
        job.options.hardware.crossbar.variation =
            variation > 0.0 ? mem::VariationModel::uniform(variation)
                            : mem::VariationModel::none();
        job.options.seed = config.seed + 1000 * m + trial;
        // Benches run the settle-cache's rank-k reuse path (the exact mode
        // exists for bit-exact golden traces; reuse is the production
        // default for throughput runs).
        job.options.settle_mode = xbar::SettleMode::kReuse;
        jobs.push_back(job);
        reference_objectives.push_back(references[trial].objective);
      }
      const auto outcomes = solve_batch(std::span<const BatchJob>(jobs));
      std::vector<double> errors;
      for (std::size_t k = 0; k < outcomes.size(); ++k) {
        if (!outcomes[k].result.optimal()) {
          ++failures;
          continue;
        }
        errors.push_back(lp::relative_error(outcomes[k].result.objective,
                                            reference_objectives[k]));
      }
      row.push_back(bench::percent(bench::mean(errors)));
      // Accuracy at the sweep's largest size is deterministic given the
      // seed — a tight regression signal for solver-fidelity changes. The
      // same cells re-solved in exact settle mode pin reuse-vs-exact parity:
      // a drifting rank-k correction shows up as these two metrics split.
      if (m == config.sizes.back()) {
        run.metric("rel_error/var=" + bench::percent(variation),
                   bench::mean(errors), {"frac", true, /*measured=*/false});
        std::vector<BatchJob> exact_jobs = jobs;
        for (auto& job : exact_jobs)
          job.options.settle_mode = xbar::SettleMode::kExact;
        const auto exact_outcomes =
            solve_batch(std::span<const BatchJob>(exact_jobs));
        std::vector<double> exact_errors;
        for (std::size_t k = 0; k < exact_outcomes.size(); ++k)
          if (exact_outcomes[k].result.optimal())
            exact_errors.push_back(lp::relative_error(
                exact_outcomes[k].result.objective, reference_objectives[k]));
        run.metric("rel_error_exact/var=" + bench::percent(variation),
                   bench::mean(exact_errors),
                   {"frac", true, /*measured=*/false});
      }
    }
    row.push_back(TextTable::num((long long)failures));
    table.add_row(row);
    std::fflush(stdout);
  }
  run.table(table);
  std::printf(
      "\npaper: 0.2%%-9.9%% relative error; inaccuracy decreases with the "
      "number of constraints.\n");
  return run.finish();
}
