// §4.3 singularity study.
//
// The paper attributes the large-scale solver's rare failures to variation
// pushing the coefficient matrix "from a non-singular matrix to closer to a
// singular matrix (with determinant equal to 0)", and argues via Cramer's
// rule that solutions degrade in inverse proportion to the determinant.
// This harness quantifies that: for the crossbar system matrix of a sample
// LP it draws many variation realizations and reports
//   * the fraction that the analog solve rejects as singular,
//   * the spread of log|det| relative to the ideal matrix,
//   * the conditioning estimate ‖M⁻¹‖₁, and
//   * the solve error correlation with conditioning.
#include <cmath>
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/kkt.hpp"
#include "core/negfree.hpp"
#include "crossbar/crossbar.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"

using namespace memlp;

int main() {
  auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("singularity_study",
                      "§4.3 — variation-induced near-singularity",
                      "det/conditioning of the crossbar system matrix",
                      config);
  const std::size_t m = config.sizes.back();
  const std::size_t draws = 40;

  const auto problem = bench::feasible_problem(config, m, 0);
  const core::KktLayout layout{problem.num_variables(),
                               problem.num_constraints()};
  const core::NegativeFreeSystem negfree(core::assemble_kkt(
      problem, core::PdipState::ones(layout.n, layout.m)));
  const Matrix& ideal = negfree.matrix();
  const LuFactorization ideal_lu(ideal);
  const double ideal_logdet = ideal_lu.log_abs_determinant();

  Vec rhs(negfree.dim());
  Rng rhs_rng(config.seed);
  for (double& v : rhs) v = rhs_rng.uniform(-1.0, 1.0);
  const Vec reference =
      ideal_lu.singular() ? Vec(negfree.dim(), 0.0) : ideal_lu.solve(rhs);

  TextTable table("variation draws on the augmented KKT matrix M");
  table.set_header({"variation", "singular draws", "mean |dlogdet|",
                    "mean ||M^-1||_1", "mean solve rel-err"});
  for (const double variation : {0.0, 0.05, 0.10, 0.20, 0.35}) {
    std::size_t singular = 0;
    std::vector<double> logdet_shift, inverse_norm, solve_error;
    for (std::size_t draw = 0; draw < draws; ++draw) {
      xbar::CrossbarConfig hw;
      hw.variation = variation > 0.0
                         ? mem::VariationModel::uniform(variation)
                         : mem::VariationModel::none();
      xbar::Crossbar crossbar(hw, Rng(config.seed + 100 * draw + 1));
      crossbar.program(ideal);
      const LuFactorization lu(crossbar.effective());
      if (lu.singular()) {
        ++singular;
        continue;
      }
      logdet_shift.push_back(
          std::abs(lu.log_abs_determinant() - ideal_logdet));
      if (const auto estimate = lu.inverse_norm_estimate())
        inverse_norm.push_back(*estimate);
      const auto solution = crossbar.solve(rhs);
      if (solution && !ideal_lu.singular()) {
        const double err = norm_inf(sub(*solution, reference)) /
                           (1.0 + norm_inf(reference));
        solve_error.push_back(err);
      }
    }
    table.add_row({bench::percent(variation),
                   TextTable::num((long long)singular) + "/" +
                       TextTable::num((long long)draws),
                   TextTable::num(bench::mean(logdet_shift), 4),
                   TextTable::num(bench::mean(inverse_norm), 4),
                   bench::percent(bench::mean(solve_error))});
    std::fflush(stdout);
  }
  run.table(table);
  std::printf(
      "\npaper: singular/near-singular draws are rare and become rarer for "
      "large matrices; the re-solve scheme redraws variation and recovers "
      "(§4.3).\n");
  return run.finish();
}
