// Ablation: second-order analog non-idealities the paper idealizes away.
//
// §3.3 asserts the V/2 half-select bias has "negligible effect"; reads are
// assumed noiseless. This harness turns both knobs on the crossbar PDIP
// solver: per-half-select disturb (state drift accumulated by the write
// traffic of the PDIP iteration) and per-read Gaussian noise, quantifying
// where "negligible" stops holding.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

namespace {

struct Cell {
  double error = 0.0;
  double iterations = 0.0;
  std::size_t solved = 0;
  std::size_t attempted = 0;
};

template <typename Configure>
Cell run(const bench::SweepConfig& config, std::size_t m,
         Configure&& configure) {
  Cell cell;
  std::vector<double> errors, iterations;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    const auto problem = bench::feasible_problem(config, m, trial);
    const auto reference = solvers::solve_simplex(problem);
    if (!reference.optimal()) continue;
    ++cell.attempted;
    core::XbarPdipOptions options;
    configure(options);
    options.seed = config.seed + trial;
    const auto outcome = core::solve_xbar_pdip(problem, options);
    if (!outcome.result.optimal()) continue;
    ++cell.solved;
    errors.push_back(
        lp::relative_error(outcome.result.objective, reference.objective));
    iterations.push_back(static_cast<double>(outcome.stats.iterations));
  }
  cell.error = bench::mean(errors);
  cell.iterations = bench::mean(iterations);
  return cell;
}

}  // namespace

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun bench_run("ablation_nonidealities",
                      "Ablation — half-select disturb and read noise",
                      "where §3.3's 'negligible effect' stops holding",
                      config);
  const std::size_t m = config.sizes.back();

  TextTable disturb_table("half-select disturb per write event");
  disturb_table.set_header(
      {"disturb/event", "solved", "relative error", "iterations"});
  for (const double disturb : {0.0, 1e-6, 1e-5, 1e-4, 1e-3}) {
    const Cell cell = run(config, m, [&](core::XbarPdipOptions& options) {
      options.hardware.crossbar.write_scheme.half_select_disturb = disturb;
    });
    disturb_table.add_row({TextTable::num(disturb, 2),
                           TextTable::num((long long)cell.solved) + "/" +
                               TextTable::num((long long)cell.attempted),
                           bench::percent(cell.error),
                           TextTable::num(cell.iterations, 3)});
  }
  bench_run.table(disturb_table);

  TextTable noise_table("per-read Gaussian noise (fraction of full scale)");
  noise_table.set_header(
      {"sigma", "solved", "relative error", "iterations"});
  for (const double sigma : {0.0, 1e-4, 1e-3, 5e-3, 2e-2}) {
    const Cell cell = run(config, m, [&](core::XbarPdipOptions& options) {
      options.hardware.crossbar.read_noise_sigma = sigma;
    });
    noise_table.add_row({TextTable::num(sigma, 2),
                         TextTable::num((long long)cell.solved) + "/" +
                             TextTable::num((long long)cell.attempted),
                         bench::percent(cell.error),
                         TextTable::num(cell.iterations, 3)});
  }
  bench_run.table(noise_table);
  std::printf(
      "\nfinding: the iterative PDIP loop absorbs both non-idealities over "
      "this whole range (errors stay at the baseline noise floor; strong "
      "read noise only costs iterations) — extending the paper's "
      "noise-tolerance observation (§1) beyond its own assumptions.\n");
  return bench_run.finish();
}
