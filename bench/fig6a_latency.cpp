// Fig. 6(a): estimated computation latency of the crossbar LP solver,
// compared with the exact software solver ("Matlab linprog" stand-in) and
// the software PDIP baseline.
//
// Paper reference points at m = 1024: linprog 6.23 s; crossbar solver
// 78 ms (ideal), 155 ms (5%), 195 ms (10%), 239 ms (20%) — ≥26x speedup.
// Crossbar latency is the iterative-phase estimate of perf::HardwareModel
// (the O(N²) initial programming is excluded per §3.5 and reported
// separately by bench/complexity_scaling).
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/pdip.hpp"
#include "core/xbar_pdip.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("fig6a_latency",
                      "Fig. 6(a) — estimated computation latency",
                      "crossbar solver vs software simplex and PDIP",
                      config);

  const perf::HardwareModel hardware;
  TextTable table("mean latency per solve (feasible LPs)");
  std::vector<std::string> header{"m", "simplex [ms]", "sw PDIP [ms]"};
  for (double variation : config.variations)
    header.push_back("xbar " + bench::percent(variation) + " [ms]");
  header.emplace_back("best speedup");
  table.set_header(header);

  for (const std::size_t m : config.sizes) {
    std::vector<double> simplex_ms;
    std::vector<double> pdip_ms;
    std::vector<std::vector<double>> xbar_ms(config.variations.size());
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const auto problem = bench::feasible_problem(config, m, trial);
      const auto reference = solvers::solve_simplex(problem);
      if (reference.optimal())
        simplex_ms.push_back(reference.wall_seconds * 1e3);
      const auto software = core::solve_pdip(problem);
      if (software.optimal()) pdip_ms.push_back(software.wall_seconds * 1e3);
      for (std::size_t v = 0; v < config.variations.size(); ++v) {
        core::XbarPdipOptions options;
        options.hardware.crossbar.variation =
            config.variations[v] > 0.0
                ? mem::VariationModel::uniform(config.variations[v])
                : mem::VariationModel::none();
        options.seed = config.seed + 1000 * m + trial;
        // Throughput benches run the settle-cache reuse path; exact mode is
        // reserved for bit-exact golden traces.
        options.settle_mode = xbar::SettleMode::kReuse;
        const auto outcome = core::solve_xbar_pdip(problem, options);
        if (outcome.result.optimal())
          xbar_ms[v].push_back(hardware.estimate(outcome.stats).latency_s *
                               1e3);
      }
    }
    std::vector<std::string> row{TextTable::num((long long)m),
                                 TextTable::num(bench::mean(simplex_ms), 4),
                                 TextTable::num(bench::mean(pdip_ms), 4)};
    double best_xbar = 0.0;
    for (auto& samples : xbar_ms) {
      const double value = bench::mean(samples);
      row.push_back(TextTable::num(value, 4));
      if (best_xbar == 0.0 || (value > 0.0 && value < best_xbar))
        best_xbar = value;
    }
    row.push_back(best_xbar > 0.0
                      ? TextTable::num(bench::mean(simplex_ms) / best_xbar, 3) +
                            "x"
                      : "-");
    table.add_row(row);
    // Regression metrics at the sweep's largest size: wall-clock baselines
    // are measured (loose thresholds); xbar latencies are deterministic
    // hardware-model estimates (tight thresholds).
    if (m == config.sizes.back()) {
      run.metric("simplex_wall_ms", bench::mean(simplex_ms),
                 {"ms", true, /*measured=*/true});
      run.metric("pdip_wall_ms", bench::mean(pdip_ms),
                 {"ms", true, /*measured=*/true});
      for (std::size_t v = 0; v < config.variations.size(); ++v)
        run.metric(
            "xbar_latency_est_ms/var=" + bench::percent(config.variations[v]),
            bench::mean(xbar_ms[v]), {"ms", true, /*measured=*/false});
    }
    std::fflush(stdout);
  }
  run.table(table);
  std::printf(
      "\npaper at m=1024: simplex-class solver 6.23 s vs crossbar 78-239 ms "
      "(>=26x); latency grows with variation via extra iterations.\n");
  return run.finish();
}
