// Fig. 7(b): estimated energy consumption of the large-scale crossbar
// solver (Algorithm 2) vs the exact software solver.
//
// Paper reference: an average of ~273x energy reduction for the
// large-scale implementation. Crossbar energy is derived from the cost
// ledger (snapshot/diff around each solve, iterative bucket priced) rather
// than recomputed inline from HardwareStats; see fig7a_energy.cpp.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/ls_pdip.hpp"
#include "perf/cost_tree.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("fig7b_energy_ls",
                      "Fig. 7(b) — large-scale solver energy",
                      "Algorithm 2 vs software simplex", config);

  const perf::HardwareModel hardware;
  const perf::CpuModel cpu;
  TextTable table("mean energy per solve (feasible LPs, Algorithm 2)");
  std::vector<std::string> header{"m", "simplex [J]"};
  for (double variation : config.variations)
    header.push_back("xbar-LS " + bench::percent(variation) + " [J]");
  header.emplace_back("best reduction");
  table.set_header(header);

  for (const std::size_t m : config.sizes) {
    std::vector<double> simplex_j;
    std::vector<std::vector<double>> ls_j(config.variations.size());
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const auto problem = bench::feasible_problem(config, m, trial);
      const auto reference = solvers::solve_simplex(problem);
      if (reference.optimal())
        simplex_j.push_back(cpu.estimate(reference.wall_seconds).energy_j);
      for (std::size_t v = 0; v < config.variations.size(); ++v) {
        core::LsPdipOptions options;
        options.hardware.crossbar.variation =
            config.variations[v] > 0.0
                ? mem::VariationModel::uniform(config.variations[v])
                : mem::VariationModel::none();
        options.seed = config.seed + 1000 * m + trial;
        const auto before = run.ledger().tree();
        const auto outcome = core::solve_ls_pdip(problem, options);
        if (outcome.result.optimal()) {
          const auto delta =
              bench::cost_tree_delta(before, run.ledger().tree());
          ls_j[v].push_back(
              perf::split_programming(delta, hardware).iterative_cost.energy_j);
        }
      }
    }
    std::vector<std::string> row{TextTable::num((long long)m),
                                 TextTable::num(bench::mean(simplex_j), 4)};
    double best = 0.0;
    for (auto& samples : ls_j) {
      const double value = bench::mean(samples);
      row.push_back(TextTable::num(value, 4));
      if (best == 0.0 || (value > 0.0 && value < best)) best = value;
    }
    row.push_back(best > 0.0
                      ? TextTable::num(bench::mean(simplex_j) / best, 3) + "x"
                      : "-");
    table.add_row(row);
    std::fflush(stdout);
  }
  run.table(table);
  std::printf("\npaper: ~273x average energy reduction for Algorithm 2.\n");
  return run.finish();
}
