// Micro-benchmarks of the linear-algebra substrate (google-benchmark):
// the O(N³) LU factorization and O(N²) GEMV that bound the software PDIP's
// per-iteration cost (§3.5).
#include <benchmark/benchmark.h>

#include "artifact.hpp"

#include <cstdint>

#include "common/rng.hpp"
#include "linalg/factor_cache.hpp"
#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"
#include "linalg/sparse.hpp"

namespace {

using namespace memlp;

Matrix random_matrix(std::size_t n, Rng& rng, bool boost_diagonal) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  if (boost_diagonal)
    for (std::size_t i = 0; i < n; ++i)
      a(i, i) += static_cast<double>(n) + 1.0;
  return a;
}

/// Rectangular m x n matrix with the given fill fraction (percent).
Matrix random_sparse(std::size_t m, std::size_t n, int density_pct,
                     Rng& rng) {
  Matrix a(m, n);
  const double density = static_cast<double>(density_pct) / 100.0;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (rng.uniform() < density) a(i, j) = rng.normal();
  return a;
}

void BM_LuFactorSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = random_matrix(n, rng, true);
  Vec b(n);
  for (double& v : b) v = rng.normal();
  for (auto _ : state) {
    const LuFactorization lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LuFactorSolve)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_Gemv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Matrix a = random_matrix(n, rng, false);
  Vec x(n);
  for (double& v : x) v = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(gemv(a, x));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Gemv)->RangeMultiplier(2)->Range(32, 1024)->Complexity();

// CSR SpMV against the dense GEMV above: at LP-typical fill fractions the
// O(nnz) walk beats the O(N²) sweep by roughly the density factor.
void BM_CsrSpmv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto density_pct = static_cast<int>(state.range(1));
  Rng rng(2);
  const CsrMatrix a =
      CsrMatrix::from_dense(random_sparse(n, n, density_pct, rng));
  Vec x(n);
  for (double& v : x) v = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(a.multiply(x));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CsrSpmv)
    ->ArgsProduct({{128, 256, 512, 1024}, {5, 25, 100}})
    ->Complexity();

// Normal-equations assembly S = A·Θ·Aᵀ + diag(w/y), sparse CSR
// row-intersection kernel vs the dense m²n triple product it replaces
// (both as used by the software PDIP, m constraints over n = m/3
// variables).
void BM_SchurAssemblyCsr(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto density_pct = static_cast<int>(state.range(1));
  const std::size_t n = m / 3;
  Rng rng(6);
  const CsrMatrix a =
      CsrMatrix::from_dense(random_sparse(m, n, density_pct, rng));
  Vec theta(n, 1.0), shift(m, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(csr_schur_dense(a, theta, shift));
  state.SetComplexityN(static_cast<std::int64_t>(m));
}
BENCHMARK(BM_SchurAssemblyCsr)
    ->ArgsProduct({{96, 192, 384}, {5, 25, 100}})
    ->Complexity();

void BM_SchurAssemblyDense(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto density_pct = static_cast<int>(state.range(1));
  const std::size_t n = m / 3;
  Rng rng(6);
  const Matrix a = random_sparse(m, n, density_pct, rng);
  Vec theta(n, 1.0), shift(m, 1.0);
  for (auto _ : state) {
    Matrix s(m, m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t k = 0; k <= i; ++k) {
        double sum = 0.0;
        for (std::size_t j = 0; j < n; ++j)
          sum += a(i, j) * theta[j] * a(k, j);
        s(i, k) = sum;
        s(k, i) = sum;
      }
      s(i, i) += shift[i];
    }
    benchmark::DoNotOptimize(s);
  }
  state.SetComplexityN(static_cast<std::int64_t>(m));
}
BENCHMARK(BM_SchurAssemblyDense)
    ->ArgsProduct({{96, 192, 384}, {5, 25, 100}})
    ->Complexity();

void BM_LuSolveMany(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto nrhs = static_cast<std::size_t>(state.range(1));
  Rng rng(4);
  const Matrix a = random_matrix(n, rng, true);
  const LuFactorization lu(a);
  Matrix b(n, nrhs);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < nrhs; ++j) b(i, j) = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(lu.solve_many(b));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LuSolveMany)
    ->ArgsProduct({{64, 128, 256}, {1, 8, 32}})
    ->Complexity();

// The PDIP settle pattern: a diagonal band of the matrix mutates every
// iteration, and each iteration does one prepare() + one solve(). Contrasts
// the full-refactor path (incremental=0) against the rank-k reuse path
// (incremental=1) at the settle-cache's crossbar tuning.
void BM_FactorCacheSettle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool incremental = state.range(1) != 0;
  Rng rng(5);
  Matrix a = random_matrix(n, rng, true);
  Vec b(n);
  for (double& v : b) v = rng.normal();
  FactorCacheOptions options;
  options.incremental = incremental;
  options.iterative_refinement = false;
  options.refresh_interval = 64;
  FactorizationCache cache(options);
  const std::size_t band = n / 4;  // dirty rows per "iteration"
  std::size_t step = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < band; ++i) {
      const std::size_t r = (step + i) % n;
      a(r, r) += 1.0 / static_cast<double>(n + step + i);
      cache.note_row(r);
    }
    ++step;
    if (!cache.prepare(a)) state.SkipWithError("singular prepare");
    benchmark::DoNotOptimize(cache.solve(b));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FactorCacheSettle)
    ->ArgsProduct({{64, 128, 256}, {0, 1}})
    ->Complexity();

void BM_GaussSeidelSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Matrix a = random_matrix(n, rng, true);
  Vec b(n);
  for (double& v : b) v = rng.normal();
  IterativeOptions options;
  options.max_sweeps = 1;
  for (auto _ : state) benchmark::DoNotOptimize(gauss_seidel(a, b, options));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GaussSeidelSweep)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Complexity();

}  // namespace


namespace {

/// Console reporter that also records every timing into the bench artifact
/// (per-iteration real time, ns — measured, so memlp_report applies loose
/// thresholds).
class ArtifactReporter : public benchmark::ConsoleReporter {
 public:
  explicit ArtifactReporter(memlp::bench::BenchRun& run) : run_(run) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      run_.metric(run.benchmark_name(), run.GetAdjustedRealTime(),
                  {"ns", true, /*measured=*/true});
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  memlp::bench::BenchRun& run_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  memlp::bench::BenchRun run("micro_linalg",
                             "micro — micro_linalg",
                             "LU factorization and GEMV kernel timings",
                             memlp::bench::SweepConfig::from_env());
  ArtifactReporter reporter(run);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return run.finish();
}

