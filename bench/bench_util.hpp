// Shared harness utilities for the figure/table reproduction binaries.
//
// Every bench binary sweeps problem sizes and process-variation levels per
// the paper's §4.2 setup (m ∈ {4..1024} exponential, n = m/3, variation
// ∈ {0, 5, 10, 20}%). The default sweep is sized to finish in minutes on a
// small machine; set MEMLP_FULL=1 for the paper's full sweep, or override
// individual knobs: MEMLP_MAX_M, MEMLP_TRIALS, MEMLP_MIN_M.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "lp/generator.hpp"
#include "lp/problem.hpp"

namespace memlp::bench {

/// Sweep parameters resolved from the environment.
struct SweepConfig {
  std::vector<std::size_t> sizes;       ///< constraint counts m.
  std::size_t trials = 5;               ///< problems per (m, variation) cell.
  std::vector<double> variations{0.0, 0.05, 0.10, 0.20};
  std::uint64_t seed = 0xbe9c;

  /// Default: m ∈ {4..64}, 5 trials. MEMLP_FULL=1: m ∈ {4..1024}, 20 trials
  /// (the paper's 100 are overridable via MEMLP_TRIALS).
  static SweepConfig from_env();

  /// Echo of the resolved parameters for the run header.
  [[nodiscard]] std::string describe() const;
};

/// Prints the standard run header (what is reproduced, with what sweep).
void print_header(const std::string& experiment, const std::string& paper_ref,
                  const SweepConfig& config);

/// Deterministic per-(size, variation, trial) problem streams.
lp::LinearProgram feasible_problem(const SweepConfig& config, std::size_t m,
                                   std::size_t trial);
lp::LinearProgram infeasible_problem(const SweepConfig& config, std::size_t m,
                                     std::size_t trial);

/// Writes `table` as machine-readable run artifacts: <stem>.csv and
/// <stem>.json side by side (the JSON mirrors TextTable::write_json's
/// schema, for downstream figure tooling). Returns true when both writes
/// succeeded. Harnesses that print() with MEMLP_CSV_DIR set get the same
/// pair automatically; this is the explicit-path variant.
bool export_table_artifacts(const TextTable& table, const std::string& stem);

/// Mean of a sample vector (0 for empty).
double mean(const std::vector<double>& values);

/// Formats a percentage with two digits.
std::string percent(double fraction);

}  // namespace memlp::bench
