// Ablation: Eq. (16c)'s RU/RL balancing blocks.
//
// Compares the Schur-diagonal reading (RU = −Y⁻¹W, RL = X⁻¹Z; the default,
// which converges) against the literal "very small random values" reading
// across balancing magnitudes, plus the ratio-cap sweep of the Schur mode
// and the recovery-mode comparison (division-free vs Eq. 16b diagonal
// solve). Documents why DESIGN.md adopts the Schur interpretation.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/ls_pdip.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

namespace {

struct CellStats {
  double error = 0.0;
  std::size_t solved = 0;
  std::size_t attempted = 0;
};

CellStats run(const bench::SweepConfig& config, std::size_t m,
              const core::LsPdipOptions& base) {
  CellStats stats;
  std::vector<double> errors;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    const auto problem = bench::feasible_problem(config, m, trial);
    const auto reference = solvers::solve_simplex(problem);
    if (!reference.optimal()) continue;
    ++stats.attempted;
    core::LsPdipOptions options = base;
    options.seed = config.seed + trial;
    const auto outcome = core::solve_ls_pdip(problem, options);
    if (!outcome.result.optimal()) continue;
    ++stats.solved;
    errors.push_back(
        lp::relative_error(outcome.result.objective, reference.objective));
  }
  stats.error = bench::mean(errors);
  return stats;
}

}  // namespace

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun bench_run("ablation_balancing",
                      "Ablation — Algorithm 2 design choices",
                      "Schur vs literal RU/RL; ratio cap; recovery mode",
                      config);
  const std::size_t m = config.sizes.back();

  TextTable mode_table("M1 mode (10% variation)");
  mode_table.set_header({"mode", "solved", "relative error"});
  {
    core::LsPdipOptions schur;
    schur.hardware.crossbar.variation = mem::VariationModel::uniform(0.10);
    const auto schur_stats = run(config, m, schur);
    mode_table.add_row(
        {"Schur diagonal (default)",
         TextTable::num((long long)schur_stats.solved) + "/" +
             TextTable::num((long long)schur_stats.attempted),
         bench::percent(schur_stats.error)});
    for (const double scale : {0.005, 0.02, 0.1}) {
      core::LsPdipOptions literal = schur;
      literal.m1_mode = core::M1Mode::kLiteralBalanced;
      literal.recovery = core::RecoveryMode::kM2Diagonal;
      literal.balancing_scale = scale;
      const auto literal_stats = run(config, m, literal);
      mode_table.add_row(
          {"literal, eps=" + TextTable::num(scale, 3),
           TextTable::num((long long)literal_stats.solved) + "/" +
               TextTable::num((long long)literal_stats.attempted),
           bench::percent(literal_stats.error)});
    }
  }
  bench_run.table(mode_table);

  TextTable cap_table("Schur ratio cap (10% variation)");
  cap_table.set_header({"ratio cap", "solved", "relative error"});
  for (const double cap : {1e2, 1e3, 1e4, 1e6}) {
    core::LsPdipOptions options;
    options.hardware.crossbar.variation = mem::VariationModel::uniform(0.10);
    options.ratio_cap = cap;
    const auto stats = run(config, m, options);
    cap_table.add_row({TextTable::num(cap, 2),
                       TextTable::num((long long)stats.solved) + "/" +
                           TextTable::num((long long)stats.attempted),
                       bench::percent(stats.error)});
  }
  bench_run.table(cap_table);

  TextTable recovery_table("slack-direction recovery (10% variation)");
  recovery_table.set_header({"recovery", "solved", "relative error"});
  for (const bool stable : {true, false}) {
    core::LsPdipOptions options;
    options.hardware.crossbar.variation = mem::VariationModel::uniform(0.10);
    options.recovery = stable ? core::RecoveryMode::kStable
                              : core::RecoveryMode::kM2Diagonal;
    const auto stats = run(config, m, options);
    recovery_table.add_row(
        {stable ? "division-free (default)" : "Eq. (16b) diagonal solve",
         TextTable::num((long long)stats.solved) + "/" +
             TextTable::num((long long)stats.attempted),
         bench::percent(stats.error)});
  }
  bench_run.table(recovery_table);
  std::printf(
      "\nexpected: the literal random-fill mode rarely converges (1/eps "
      "step amplification); the Eq. (16b) recovery is noise-amplified on "
      "near-zero diagonals.\n");
  return bench_run.finish();
}
