// Machine-readable bench artifacts.
//
// Every harness run is stamped into results/json/BENCH_<name>.json (override
// the directory with MEMLP_BENCH_DIR): git SHA and build provenance, the
// resolved sweep config, wall-clock and profiler phase breakdown, explicit
// regression metrics, the metrics-registry snapshot, the hardware-model cost
// constants the estimates were priced with, and every printed table.
// tools/memlp_report diffs two artifact trees and fails on regression; the
// schema is versioned ("memlp.bench/1") so the reporter can reject
// incompatible trees instead of mis-reading them.
#pragma once

#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "obs/cost_ledger.hpp"
#include "obs/profiler.hpp"

namespace memlp::bench {

/// Counter-wise difference of two ledger snapshots (`after` − `before`),
/// dropping paths whose counters did not move. Harnesses bracket one solve
/// with `run.ledger().tree()` snapshots to get that solve's cost tree.
[[nodiscard]] obs::CostTree cost_tree_delta(const obs::CostTree& before,
                                            const obs::CostTree& after);

/// How a metric should be compared by memlp_report.
struct MetricOptions {
  std::string unit;            ///< display only, e.g. "ms", "J", "iters".
  bool lower_is_better = true; ///< comparison direction; see also `measured`.
  bool measured = false;       ///< wall-clock (noisy) vs deterministic
                               ///< hardware-model estimate / exact count.
};

/// One bench run: prints the standard header on construction, collects
/// tables and metrics, and writes BENCH_<name>.json on finish(). Also
/// activates an (aggregation-only) obs::Profiler and obs::CostLedger for
/// the run when none are active, so artifacts carry solver phase
/// breakdowns and per-phase cost trees for free.
class BenchRun {
 public:
  /// `name` keys the artifact file; `experiment`/`paper_ref` mirror the old
  /// print_header arguments.
  BenchRun(std::string name, std::string experiment, std::string paper_ref,
           SweepConfig config);
  ~BenchRun();
  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  /// Prints `table` (TextTable::print, honoring MEMLP_CSV_DIR) and records
  /// it into the artifact.
  void table(const TextTable& table);

  /// Records a regression metric. Estimated/deterministic metrics get tight
  /// default thresholds in memlp_report; `measured` ones get loose.
  void metric(const std::string& name, double value, MetricOptions options);

  /// Writes the artifact and prints its path; returns 0 so harnesses can
  /// `return run.finish();`. Idempotent; the destructor calls it.
  int finish();

  /// Writes a Prometheus snapshot of the global metrics registry to
  /// BENCH_<name>.prom next to the JSON artifact (same MEMLP_BENCH_DIR
  /// override) — the input format tools/memlp_top renders.
  void export_metrics();

  /// The run's cost ledger (harnesses snapshot/diff it to derive per-solve
  /// energy from the attribution instead of recomputing inline).
  [[nodiscard]] const obs::CostLedger& ledger() const noexcept {
    return ledger_;
  }

 private:
  struct Metric {
    std::string name;
    double value = 0.0;
    MetricOptions options;
  };

  [[nodiscard]] std::string to_json() const;

  std::string name_;
  std::string experiment_;
  std::string paper_ref_;
  SweepConfig config_;
  Stopwatch wall_;
  obs::Profiler profiler_;
  obs::CostLedger ledger_;
  bool owns_active_ = false;
  bool owns_ledger_ = false;
  bool finished_ = false;
  std::vector<Metric> metrics_;
  std::vector<TextTable> tables_;
};

}  // namespace memlp::bench
