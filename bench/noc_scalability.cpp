// §3.4 scalability: one fixed problem, shrinking crossbar tiles.
//
// The NoC exists because manufacturable arrays are bounded (§3.4); this
// harness solves a fixed LP while sweeping the tile size from "one big
// array" down to small tiles, reporting how tile count, data movement, and
// the latency estimate respond — the scalability trade-off of Fig. 3.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/batch.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/result.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("noc_scalability",
                      "§3.4 — NoC scalability vs tile size",
                      "fixed problem, shrinking manufacturable arrays",
                      config);
  const std::size_t m = config.sizes.back();
  const perf::HardwareModel hardware;

  const auto problem = bench::feasible_problem(config, m, 0);
  const auto reference = solvers::solve_simplex(problem);
  if (!reference.optimal()) {
    std::printf("reference solve failed\n");
    return 1;
  }
  std::printf("problem: m=%zu, n=%zu (system dim grows to ~3(n+m))\n\n",
              problem.num_constraints(), problem.num_variables());

  TextTable table("crossbar PDIP across tile sizes (10% variation)");
  table.set_header({"tile dim", "tiles", "NoC transfers", "value-hops",
                    "est. latency [ms]", "relative error"});
  // The five tilings are independent solves of the same problem — fan them
  // out as one heterogeneous batch (MEMLP_THREADS workers).
  const std::vector<std::size_t> tile_dims{0, 128, 64, 32, 16};
  std::vector<BatchJob> jobs;
  for (const std::size_t tile_dim : tile_dims) {
    BatchJob job;
    job.problem = &problem;
    job.options.hardware.crossbar.variation =
        mem::VariationModel::uniform(0.10);
    if (tile_dim != 0) {
      job.options.hardware.force_noc = true;
      job.options.hardware.tile_dim = tile_dim;
    }
    job.options.seed = config.seed;
    jobs.push_back(job);
  }
  const auto outcomes = solve_batch(std::span<const BatchJob>(jobs));
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    const std::size_t tile_dim = tile_dims[k];
    const auto& outcome = outcomes[k];
    std::string error = "-";
    if (outcome.result.optimal())
      error = bench::percent(
          lp::relative_error(outcome.result.objective, reference.objective));
    const auto cost = hardware.estimate(outcome.stats);
    table.add_row(
        {tile_dim == 0 ? "monolithic" : TextTable::num((long long)tile_dim),
         TextTable::num((long long)outcome.stats.backend.num_tiles),
         TextTable::num((long long)outcome.stats.backend.noc.transfers),
         TextTable::num((long long)outcome.stats.backend.noc.value_hops),
         TextTable::num(cost.latency_s * 1e3, 4), error});
    std::fflush(stdout);
  }
  run.table(table);
  std::printf(
      "\nexpected: identical accuracy at every tiling; data movement and "
      "latency grow as tiles shrink — the cost of manufacturability.\n");
  run.export_metrics();
  return run.finish();
}
