// §3.5 complexity comparison: per-iteration cost of the software methods
// (O(N³) LU / O(N²) Gauss-Seidel sweep) vs the crossbar solver's O(N)
// coefficient updates and O(1) settles.
//
// This harness measures the actual quantities: per-iteration wall time of
// the software PDIP (dominated by the LU of the 2(n+m) Newton system),
// per-sweep wall time of Gauss–Seidel on the same system, and the counted
// per-iteration written cells / analog settles of both crossbar solvers.
// It also reports the one-off O(N²) array-programming cost that the
// iterative analysis excludes.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "core/kkt.hpp"
#include "core/ls_pdip.hpp"
#include "core/pdip.hpp"
#include "core/xbar_pdip.hpp"
#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"
#include "perf/hardware_model.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("complexity_scaling",
                      "§3.5 — per-iteration complexity scaling",
                      "O(N^3) LU / O(N^2) iterative vs O(N) crossbar updates",
                      config);

  const perf::HardwareModel hardware;
  TextTable table("per-iteration cost vs N = n + m");
  table.set_header({"m", "N", "LU [ms]", "GS sweep [ms]", "xbar cells/iter",
                    "xbar settles/iter", "program [ms] (one-off)"});

  for (const std::size_t m : config.sizes) {
    const auto problem = bench::feasible_problem(config, m, 0);
    const std::size_t n = problem.num_variables();
    const core::KktLayout layout{n, m};

    // Software per-iteration: one LU factorization + solve of Eq. (12).
    const core::PdipState state = core::PdipState::ones(n, m);
    const Matrix kkt = core::assemble_kkt(problem, state);
    const Vec rhs = core::kkt_rhs(problem, state, 0.1);
    Stopwatch lu_timer;
    const LuFactorization lu(kkt);
    Vec solution;
    if (!lu.singular()) solution = lu.solve(rhs);
    const double lu_ms = lu_timer.millis();

    // One Gauss–Seidel sweep over the same system (cost per sweep; the
    // method itself need not converge on a KKT matrix).
    IterativeOptions gs_options;
    gs_options.max_sweeps = 1;
    Matrix dominant = kkt;  // make the diagonal usable for a sweep timing
    for (std::size_t i = 0; i < dominant.rows(); ++i)
      dominant(i, i) += dominant.inf_norm();
    Stopwatch gs_timer;
    (void)gauss_seidel(dominant, rhs, gs_options);
    const double gs_ms = gs_timer.millis();

    // Crossbar solver: counted per-iteration writes and settles.
    core::XbarPdipOptions options;
    options.seed = config.seed + m;
    const auto outcome = core::solve_xbar_pdip(problem, options);
    double cells_per_iteration = 0.0;
    double settles_per_iteration = 0.0;
    double program_ms = 0.0;
    if (outcome.stats.iterations > 0) {
      const auto iterative =
          outcome.stats.backend.since(outcome.stats.programming);
      cells_per_iteration =
          static_cast<double>(iterative.xbar.cells_written) /
          static_cast<double>(outcome.stats.iterations);
      settles_per_iteration =
          static_cast<double>(iterative.xbar.mvm_ops +
                              iterative.xbar.solve_ops) /
          static_cast<double>(outcome.stats.iterations);
      program_ms = hardware.estimate_programming(outcome.stats).latency_s * 1e3;
    }

    table.add_row({TextTable::num((long long)m),
                   TextTable::num((long long)layout.dim()),
                   TextTable::num(lu_ms, 4), TextTable::num(gs_ms, 4),
                   TextTable::num(cells_per_iteration, 4),
                   TextTable::num(settles_per_iteration, 3),
                   TextTable::num(program_ms, 4)});
    std::fflush(stdout);
  }
  run.table(table);
  std::printf(
      "\nexpected shape: LU time grows ~N^3 and the sweep ~N^2, while the "
      "crossbar writes grow linearly in N (2(n+m) diagonal cells) with a "
      "constant number of settles.\n");
  return run.finish();
}
