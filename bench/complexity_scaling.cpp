// §3.5 complexity comparison: per-iteration cost of the software methods
// (O(N³) LU / O(N²) Gauss-Seidel sweep) vs the crossbar solver's O(N)
// coefficient updates and O(1) settles.
//
// This harness measures the actual quantities: per-iteration wall time of
// the software PDIP (dominated by the LU of the 2(n+m) Newton system),
// per-sweep wall time of Gauss–Seidel on the same system, and the counted
// per-iteration written cells / analog settles of both crossbar solvers.
// It also reports the one-off O(N²) array-programming cost that the
// iterative analysis excludes.
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "core/kkt.hpp"
#include "core/ls_pdip.hpp"
#include "core/pdip.hpp"
#include "core/xbar_pdip.hpp"
#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"
#include "obs/cost_ledger.hpp"
#include "obs/profiler.hpp"
#include "perf/hardware_model.hpp"

using namespace memlp;

namespace {

/// Total wall seconds accumulated so far in the simulated analog settle
/// (profiler paths under the xbar solver ending in "/settle"). Snapshot
/// before/after one solve and subtract to isolate that solve's share.
double settle_wall_seconds() {
  const obs::Profiler* profiler = obs::Profiler::active();
  if (profiler == nullptr) return 0.0;
  double total = 0.0;
  for (const auto& stats : profiler->aggregate()) {
    if (stats.path.rfind("xbar", 0) != 0) continue;
    constexpr std::string_view kSuffix = "/settle";
    if (stats.path.size() >= kSuffix.size() &&
        stats.path.compare(stats.path.size() - kSuffix.size(), kSuffix.size(),
                           kSuffix) == 0)
      total += stats.total_s;
  }
  return total;
}

/// Digital flops the ledger attributes to settle call paths in `tree`.
std::uint64_t settle_flops(const obs::CostTree& tree) {
  std::uint64_t total = 0;
  for (const auto& [path, counters] : tree)
    if (path.find("/settle") != std::string::npos) total += counters.flops;
  return total;
}

}  // namespace

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("complexity_scaling",
                      "§3.5 — per-iteration complexity scaling",
                      "O(N^3) LU / O(N^2) iterative vs O(N) crossbar updates",
                      config);

  const perf::HardwareModel hardware;
  TextTable table("per-iteration cost vs N = n + m");
  table.set_header({"m", "N", "LU [ms]", "GS sweep [ms]", "xbar cells/iter",
                    "xbar settles/iter", "settle exact [ms]",
                    "settle reuse [ms]", "settle speedup",
                    "program [ms] (one-off)"});

  for (const std::size_t m : config.sizes) {
    const auto problem = bench::feasible_problem(config, m, 0);
    const std::size_t n = problem.num_variables();
    const core::KktLayout layout{n, m};

    // Software per-iteration: one LU factorization + solve of Eq. (12).
    const core::PdipState state = core::PdipState::ones(n, m);
    const Matrix kkt = core::assemble_kkt(problem, state);
    const Vec rhs = core::kkt_rhs(problem, state, 0.1);
    Stopwatch lu_timer;
    const LuFactorization lu(kkt);
    Vec solution;
    if (!lu.singular()) solution = lu.solve(rhs);
    const double lu_ms = lu_timer.millis();

    // One Gauss–Seidel sweep over the same system (cost per sweep; the
    // method itself need not converge on a KKT matrix).
    IterativeOptions gs_options;
    gs_options.max_sweeps = 1;
    Matrix dominant = kkt;  // make the diagonal usable for a sweep timing
    for (std::size_t i = 0; i < dominant.rows(); ++i)
      dominant(i, i) += dominant.inf_norm();
    Stopwatch gs_timer;
    (void)gauss_seidel(dominant, rhs, gs_options);
    const double gs_ms = gs_timer.millis();

    // Crossbar solver: counted per-iteration writes and settles, plus the
    // simulated settle cost in both settle modes — `exact` re-factors the
    // effective matrix whenever a conductance actually changed (bit-exact
    // with the paper-faithful baseline); `reuse` patches the cached factor
    // with the rank-k correction instead.
    core::XbarPdipOptions options;
    options.seed = config.seed + m;
    options.settle_mode = xbar::SettleMode::kExact;
    const double exact_wall_before_s = settle_wall_seconds();
    const auto exact_flops_before = settle_flops(run.ledger().tree());
    const auto outcome = core::solve_xbar_pdip(problem, options);
    const double exact_settle_ms =
        (settle_wall_seconds() - exact_wall_before_s) * 1e3;
    const auto exact_settle_flops =
        settle_flops(run.ledger().tree()) - exact_flops_before;

    core::XbarPdipOptions reuse_options = options;
    reuse_options.settle_mode = xbar::SettleMode::kReuse;
    const double reuse_wall_before_s = settle_wall_seconds();
    const auto reuse_flops_before = settle_flops(run.ledger().tree());
    const auto reuse_outcome = core::solve_xbar_pdip(problem, reuse_options);
    const double reuse_settle_ms =
        (settle_wall_seconds() - reuse_wall_before_s) * 1e3;
    const auto reuse_settle_flops =
        settle_flops(run.ledger().tree()) - reuse_flops_before;

    double cells_per_iteration = 0.0;
    double settles_per_iteration = 0.0;
    double program_ms = 0.0;
    if (outcome.stats.iterations > 0) {
      const auto iterative =
          outcome.stats.backend.since(outcome.stats.programming);
      cells_per_iteration =
          static_cast<double>(iterative.xbar.cells_written) /
          static_cast<double>(outcome.stats.iterations);
      settles_per_iteration =
          static_cast<double>(iterative.xbar.mvm_ops +
                              iterative.xbar.solve_ops) /
          static_cast<double>(outcome.stats.iterations);
      program_ms = hardware.estimate_programming(outcome.stats).latency_s * 1e3;
    }
    const double settle_speedup =
        reuse_settle_ms > 0.0 ? exact_settle_ms / reuse_settle_ms : 0.0;

    table.add_row({TextTable::num((long long)m),
                   TextTable::num((long long)layout.dim()),
                   TextTable::num(lu_ms, 4), TextTable::num(gs_ms, 4),
                   TextTable::num(cells_per_iteration, 4),
                   TextTable::num(settles_per_iteration, 3),
                   TextTable::num(exact_settle_ms, 4),
                   TextTable::num(reuse_settle_ms, 4),
                   TextTable::num(settle_speedup, 3) + "x",
                   TextTable::num(program_ms, 4)});
    // Regression metrics at the sweep's largest size: the settle-reuse
    // speedup is the headline (wall clocks are measured/noisy; the flop
    // counts are exact ledger counters and get tight thresholds).
    if (m == config.sizes.back()) {
      run.metric("settle_wall_ms/exact", exact_settle_ms,
                 {"ms", true, /*measured=*/true});
      run.metric("settle_wall_ms/reuse", reuse_settle_ms,
                 {"ms", true, /*measured=*/true});
      run.metric("settle_speedup", settle_speedup,
                 {"x", /*lower_is_better=*/false, /*measured=*/true});
      run.metric("settle_flops/exact",
                 static_cast<double>(exact_settle_flops),
                 {"flops", true, /*measured=*/false});
      run.metric("settle_flops/reuse",
                 static_cast<double>(reuse_settle_flops),
                 {"flops", true, /*measured=*/false});
      run.metric("settle_flops_ratio",
                 reuse_settle_flops > 0
                     ? static_cast<double>(exact_settle_flops) /
                           static_cast<double>(reuse_settle_flops)
                     : 0.0,
                 {"x", /*lower_is_better=*/false, /*measured=*/false});
      // Deterministic cache counters: how many O(N³) factorizations each
      // mode actually paid for across the whole solve.
      const auto& exact_cache = outcome.stats.backend.settle_cache;
      const auto& reuse_cache = reuse_outcome.stats.backend.settle_cache;
      run.metric("settle_full_factorizations/exact",
                 static_cast<double>(exact_cache.full_factorizations),
                 {"count", true, /*measured=*/false});
      run.metric("settle_full_factorizations/reuse",
                 static_cast<double>(reuse_cache.full_factorizations),
                 {"count", true, /*measured=*/false});
      run.metric("settle_incremental_updates/reuse",
                 static_cast<double>(reuse_cache.incremental_updates),
                 {"count", /*lower_is_better=*/false, /*measured=*/false});
    }
    std::fflush(stdout);
  }
  run.table(table);
  std::printf(
      "\nexpected shape: LU time grows ~N^3 and the sweep ~N^2, while the "
      "crossbar writes grow linearly in N (2(n+m) diagonal cells) with a "
      "constant number of settles.\n");
  return run.finish();
}
