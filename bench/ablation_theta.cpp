// Ablation: step-length policy.
//
// §3.4: "θ, on the other hand, were found to be better to be constant to
// guarantee convergence" for the large-scale solver, while Algorithm 1 uses
// the adaptive Eq. (11) rule. This ablation sweeps the constant θ for
// Algorithm 2 and compares against Algorithm 1's adaptive rule at different
// safety ratios r.
#include <cstdio>
#include <vector>

#include "artifact.hpp"
#include "bench_util.hpp"
#include "core/ls_pdip.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

using namespace memlp;

int main() {
  const auto config = bench::SweepConfig::from_env();
  bench::BenchRun run("ablation_theta",
                      "Ablation — step-length policy",
                      "constant θ (Algorithm 2) vs adaptive r (Algorithm 1)",
                      config);
  const std::size_t m = config.sizes.back();

  TextTable theta_table("Algorithm 2: constant θ sweep (10% variation)");
  theta_table.set_header({"theta", "solved", "relative error", "iterations"});
  for (const double theta : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    std::vector<double> errors;
    std::vector<double> iterations;
    std::size_t solved = 0, attempted = 0;
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const auto problem = bench::feasible_problem(config, m, trial);
      const auto reference = solvers::solve_simplex(problem);
      if (!reference.optimal()) continue;
      ++attempted;
      core::LsPdipOptions options;
      options.theta = theta;
      options.hardware.crossbar.variation = mem::VariationModel::uniform(0.10);
      options.seed = config.seed + trial;
      const auto outcome = core::solve_ls_pdip(problem, options);
      if (!outcome.result.optimal()) continue;
      ++solved;
      errors.push_back(
          lp::relative_error(outcome.result.objective, reference.objective));
      iterations.push_back(static_cast<double>(outcome.stats.iterations));
    }
    theta_table.add_row({TextTable::num(theta, 2),
                         TextTable::num((long long)solved) + "/" +
                             TextTable::num((long long)attempted),
                         bench::percent(bench::mean(errors)),
                         TextTable::num(bench::mean(iterations), 3)});
  }
  run.table(theta_table);

  TextTable r_table("Algorithm 1: adaptive safety ratio r (10% variation)");
  r_table.set_header({"r", "solved", "relative error", "iterations"});
  for (const double r : {0.5, 0.7, 0.9, 0.99}) {
    std::vector<double> errors;
    std::vector<double> iterations;
    std::size_t solved = 0, attempted = 0;
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const auto problem = bench::feasible_problem(config, m, trial);
      const auto reference = solvers::solve_simplex(problem);
      if (!reference.optimal()) continue;
      ++attempted;
      core::XbarPdipOptions options;
      options.pdip.step_ratio = r;
      options.hardware.crossbar.variation = mem::VariationModel::uniform(0.10);
      options.seed = config.seed + trial;
      const auto outcome = core::solve_xbar_pdip(problem, options);
      if (!outcome.result.optimal()) continue;
      ++solved;
      errors.push_back(
          lp::relative_error(outcome.result.objective, reference.objective));
      iterations.push_back(static_cast<double>(outcome.stats.iterations));
    }
    r_table.add_row({TextTable::num(r, 2),
                     TextTable::num((long long)solved) + "/" +
                         TextTable::num((long long)attempted),
                     bench::percent(bench::mean(errors)),
                     TextTable::num(bench::mean(iterations), 3)});
  }
  run.table(r_table);
  std::printf(
      "\nexpected: mid-range constant θ converges reliably (the paper's "
      "recommendation); θ near 1 oscillates.\n");
  return run.finish();
}
