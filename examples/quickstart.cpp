// Quickstart: solve a small LP on the simulated memristor crossbar.
//
//   maximize 3x₁ + 5x₂
//   s.t.      x₁        ≤ 4
//                  2x₂  ≤ 12
//            3x₁ + 2x₂  ≤ 18,   x ≥ 0        (optimum: 36 at x = (2, 6))
//
// Shows the three-step API: describe the LP, pick the hardware, solve.
#include <cstdio>

#include "core/xbar_pdip.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

int main() {
  using namespace memlp;

  // 1. The problem: max cᵀx subject to A·x ≤ b, x ≥ 0.
  lp::LinearProgram problem;
  problem.a = Matrix{{1, 0}, {0, 2}, {3, 2}};
  problem.b = {4, 12, 18};
  problem.c = {3, 5};

  // 2. The hardware: the paper's setup — 256 conductance levels, 8-bit
  //    voltage I/O, 10% process variation, fresh draws on every write.
  core::XbarPdipOptions options;
  options.hardware.crossbar.variation = mem::VariationModel::uniform(0.10);
  options.seed = 42;

  // 3. Solve on the crossbar and compare with the exact simplex optimum.
  const auto outcome = core::solve_xbar_pdip(problem, options);
  const auto exact = solvers::solve_simplex(problem);

  std::printf("crossbar solver: %s\n",
              lp::to_string(outcome.result.status).c_str());
  if (outcome.result.optimal()) {
    std::printf("  objective      = %.4f (exact: %.4f, error %.2f%%)\n",
                outcome.result.objective, exact.objective,
                100.0 * lp::relative_error(outcome.result.objective,
                                           exact.objective));
    std::printf("  x              = (%.3f, %.3f)\n", outcome.result.x[0],
                outcome.result.x[1]);
    std::printf("  PDIP iterations= %zu (attempts: %zu)\n",
                outcome.stats.iterations, outcome.stats.attempts);

    const perf::HardwareModel hardware;
    const auto cost = hardware.estimate(outcome.stats);
    std::printf("  est. latency   = %.3f ms, est. energy = %.3f mJ\n",
                cost.latency_s * 1e3, cost.energy_j * 1e3);
    std::printf("  crossbar ops   : %zu cells written, %zu MVMs, %zu solves\n",
                outcome.stats.backend.xbar.cells_written,
                outcome.stats.backend.xbar.mvm_ops,
                outcome.stats.backend.xbar.solve_ops);
  }
  return outcome.result.optimal() ? 0 : 1;
}
