// Routing example (the paper's opening motivation): maximum flow through a
// layered network, formulated as an LP with edge-capacity rows and
// two-sided flow-conservation rows (the conservation rows carry ±1
// coefficients, exercising the negative-coefficient elimination of Eq. 13).
//
// Solves the same instance with all four solvers in this library and
// compares objective values and costs.
#include <cstdio>

#include "common/rng.hpp"
#include "core/ls_pdip.hpp"
#include "core/pdip.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/generator.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

int main() {
  using namespace memlp;

  Rng rng(7);
  const auto problem = lp::max_flow_routing(/*layers=*/3, /*width=*/3, rng);
  std::printf("max-flow LP: %zu edges (variables), %zu rows\n",
              problem.num_variables(), problem.num_constraints());

  const auto simplex = solvers::solve_simplex(problem);
  std::printf("\nsimplex (exact):    flow = %.4f   [%zu pivots, %.3f ms]\n",
              simplex.objective, simplex.iterations,
              simplex.wall_seconds * 1e3);

  const auto pdip = core::solve_pdip(problem);
  std::printf("software PDIP:      flow = %.4f   [%zu iterations, %.3f ms]\n",
              pdip.objective, pdip.iterations, pdip.wall_seconds * 1e3);

  const perf::HardwareModel hardware;

  core::XbarPdipOptions xbar_options;
  xbar_options.hardware.crossbar.variation = mem::VariationModel::uniform(0.10);
  xbar_options.seed = 99;
  const auto xbar = core::solve_xbar_pdip(problem, xbar_options);
  std::printf("crossbar PDIP:      flow = %.4f   [%zu iterations, est. %.3f "
              "ms, error %.2f%%]\n",
              xbar.result.objective, xbar.stats.iterations,
              hardware.estimate(xbar.stats).latency_s * 1e3,
              100.0 * lp::relative_error(xbar.result.objective,
                                         simplex.objective));

  core::LsPdipOptions ls_options;
  ls_options.hardware.crossbar.variation = mem::VariationModel::uniform(0.10);
  ls_options.seed = 99;
  const auto ls = core::solve_ls_pdip(problem, ls_options);
  if (ls.result.optimal())
    std::printf("large-scale solver: flow = %.4f   [%zu iterations, est. "
                "%.3f ms, error %.2f%%]\n",
                ls.result.objective, ls.stats.iterations,
                hardware.estimate(ls.stats).latency_s * 1e3,
                100.0 * lp::relative_error(ls.result.objective,
                                           simplex.objective));
  else
    std::printf("large-scale solver: %s — the duplicated ±conservation rows "
                "leave M1 near-singular; Algorithm 1 handles this class\n",
                lp::to_string(ls.result.status).c_str());

  std::printf("\nnegative-coefficient elimination: %zu compensation "
              "variables on a %zux%zu crossbar system\n",
              xbar.stats.compensations, xbar.stats.system_dim,
              xbar.stats.system_dim);
  return simplex.optimal() && xbar.result.optimal() ? 0 : 1;
}
