// Variation study (extension example): sweeps the process-variation level
// finely on one LP and prints an ASCII accuracy curve, separating the two
// error sources the paper discusses — the solver's analog noise floor and
// the LP's intrinsic sensitivity to a perturbed A (§4.3).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/generator.hpp"
#include "memristor/variation.hpp"
#include "solvers/simplex.hpp"

int main() {
  using namespace memlp;

  Rng rng(31);
  lp::GeneratorOptions generator;
  generator.constraints = 48;
  const auto problem = lp::random_feasible(generator, rng);
  const auto exact = solvers::solve_simplex(problem);
  std::printf("random feasible LP: m=%zu, n=%zu, exact optimum %.4f\n\n",
              problem.num_constraints(), problem.num_variables(),
              exact.objective);

  std::printf("%-10s %-14s %-18s %s\n", "variation", "xbar error",
              "perturbed-exact", "|-- xbar error bar");
  const std::vector<double> levels{0.0,  0.02, 0.05, 0.08, 0.10,
                                   0.12, 0.15, 0.20, 0.25};
  for (const double level : levels) {
    // Crossbar solver at this variation level (mean of 3 seeds).
    double xbar_error = 0.0;
    int solved = 0;
    for (int seed = 0; seed < 3; ++seed) {
      core::XbarPdipOptions options;
      options.hardware.crossbar.variation =
          level > 0.0 ? mem::VariationModel::uniform(level)
                      : mem::VariationModel::none();
      options.seed = 100 + seed;
      const auto outcome = core::solve_xbar_pdip(problem, options);
      if (!outcome.result.optimal()) continue;
      ++solved;
      xbar_error +=
          lp::relative_error(outcome.result.objective, exact.objective);
    }
    if (solved > 0) xbar_error /= solved;

    // Intrinsic sensitivity: exact solve of the Eq.(18)-perturbed problem.
    lp::LinearProgram perturbed = problem;
    Rng perturb_rng(500 + static_cast<std::uint64_t>(level * 1000));
    if (level > 0.0) {
      Matrix perturbed_a = perturbed.a.dense();
      mem::VariationModel::uniform(level).perturb(perturbed_a, perturb_rng);
      perturbed.a = std::move(perturbed_a);
    }
    const auto perturbed_exact = solvers::solve_simplex(perturbed);
    const double intrinsic =
        perturbed_exact.optimal()
            ? lp::relative_error(perturbed_exact.objective, exact.objective)
            : 0.0;

    const int bar = std::min(50, static_cast<int>(xbar_error * 500));
    std::printf("%-10.2f %-14s %-18s %s\n", level,
                (std::to_string(xbar_error * 100).substr(0, 5) + "%").c_str(),
                (std::to_string(intrinsic * 100).substr(0, 5) + "%").c_str(),
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  std::printf(
      "\nboth curves grow together: the solver's error largely mirrors the "
      "LP's intrinsic sensitivity to coefficient perturbation (§4.3).\n");
  return 0;
}
