// Transportation example on the multi-crossbar NoC (§3.4, Fig. 3):
// a supplier→consumer cost-minimization LP whose system matrix is forced
// onto a grid of small crossbar tiles behind a hierarchical analog NoC —
// the configuration for problems larger than a single manufacturable array.
#include <cstdio>

#include "common/rng.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/generator.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

int main() {
  using namespace memlp;

  Rng rng(21);
  const auto problem = lp::transportation(/*suppliers=*/4, /*consumers=*/6,
                                          rng);
  const auto exact = solvers::solve_simplex(problem);
  std::printf("transportation LP: %zu routes, %zu supply/demand rows\n",
              problem.num_variables(), problem.num_constraints());
  std::printf("exact minimal cost: %.3f\n\n", -exact.objective);

  for (const auto topology :
       {noc::TopologyKind::kHierarchical, noc::TopologyKind::kMesh}) {
    core::XbarPdipOptions options;
    options.hardware.crossbar.variation = mem::VariationModel::uniform(0.05);
    options.hardware.force_noc = true;     // split across tiles
    options.hardware.tile_dim = 24;        // manufacturable array size
    options.hardware.topology = topology;
    options.seed = 5;
    const auto outcome = core::solve_xbar_pdip(problem, options);
    const char* name = topology == noc::TopologyKind::kHierarchical
                           ? "hierarchical NoC"
                           : "mesh NoC        ";
    if (!outcome.result.optimal()) {
      std::printf("%s: %s\n", name,
                  lp::to_string(outcome.result.status).c_str());
      continue;
    }
    const perf::HardwareModel hardware;
    const auto cost = hardware.estimate(outcome.stats);
    std::printf("%s: cost = %.3f (error %.2f%%), %zu tiles, %zu NoC "
                "transfers, %zu value-hops, est. %.3f ms\n",
                name, -outcome.result.objective,
                100.0 * lp::relative_error(outcome.result.objective,
                                           exact.objective),
                outcome.stats.backend.num_tiles,
                outcome.stats.backend.noc.transfers,
                outcome.stats.backend.noc.value_hops,
                cost.latency_s * 1e3);
  }
  std::printf(
      "\nthe two Fig. 3 topologies compute identical results; they differ "
      "only in data-movement cost.\n");
  return exact.optimal() ? 0 : 1;
}
