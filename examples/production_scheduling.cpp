// Scheduling example (the paper's second motivating domain): maximize
// profit over a product mix under resource-capacity constraints — an
// all-non-negative LP that maps to the crossbar without compensation
// columns for A itself.
//
// Sweeps the process-variation level on one instance and reports how the
// objective, iteration count, and estimated latency/energy respond.
#include <cstdio>

#include "common/rng.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/generator.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

int main() {
  using namespace memlp;

  Rng rng(11);
  const auto problem =
      lp::production_scheduling(/*products=*/12, /*resources=*/8, rng);
  const auto exact = solvers::solve_simplex(problem);
  std::printf("production plan over %zu products, %zu resources\n",
              problem.num_variables(), problem.num_constraints());
  std::printf("exact optimal profit: %.3f\n\n", exact.objective);

  const perf::HardwareModel hardware;
  std::printf("%-10s %-12s %-10s %-12s %-12s %-10s\n", "variation", "profit",
              "error", "iterations", "latency[ms]", "energy[mJ]");
  for (const double variation : {0.0, 0.05, 0.10, 0.20}) {
    core::XbarPdipOptions options;
    options.hardware.crossbar.variation =
        variation > 0.0 ? mem::VariationModel::uniform(variation)
                        : mem::VariationModel::none();
    options.seed = 1234;
    const auto outcome = core::solve_xbar_pdip(problem, options);
    if (!outcome.result.optimal()) {
      std::printf("%-10.2f %s\n", variation,
                  lp::to_string(outcome.result.status).c_str());
      continue;
    }
    const auto cost = hardware.estimate(outcome.stats);
    std::printf("%-10.2f %-12.3f %-10.2f%% %-12zu %-12.3f %-10.3f\n",
                variation, outcome.result.objective,
                100.0 * lp::relative_error(outcome.result.objective,
                                           exact.objective),
                outcome.stats.iterations, cost.latency_s * 1e3,
                cost.energy_j * 1e3);
  }
  std::printf(
      "\nthe profit stays within a few percent of the exact optimum even at "
      "20%% device variation (§4.3).\n");
  return exact.optimal() ? 0 : 1;
}
