// Diet-planning example: the classic cost-minimization LP (Stigler) solved
// end-to-end on the crossbar — generate, presolve, solve, verify, and save
// the instance in the memlp text format for the `memlp_solve` CLI.
#include <cstdio>
#include <fstream>

#include "common/rng.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/generator.hpp"
#include "lp/presolve.hpp"
#include "lp/text_format.hpp"
#include "solvers/simplex.hpp"

int main() {
  using namespace memlp;

  Rng rng(17);
  const auto problem = lp::diet(/*foods=*/10, /*nutrients=*/6, rng);
  std::printf("diet LP: %zu foods, %zu nutrient minimums + portion caps "
              "(%zu rows)\n",
              problem.num_variables(), std::size_t{6},
              problem.num_constraints());

  // Presolve (no-op here, but part of the production pipeline).
  const auto pre = lp::presolve(problem);
  if (pre.outcome != lp::PresolveResult::Outcome::kReduced) {
    std::printf("presolve classified the problem as %s\n",
                pre.outcome == lp::PresolveResult::Outcome::kInfeasible
                    ? "infeasible"
                    : "unbounded");
    return 1;
  }
  std::printf("presolve: removed %zu rows, %zu columns\n",
              pre.removed_rows(problem), pre.removed_columns(problem));

  const auto exact = solvers::solve_simplex(pre.reduced);
  core::XbarPdipOptions options;
  options.hardware.crossbar.variation = mem::VariationModel::uniform(0.10);
  options.seed = 3;
  const auto outcome = core::solve_xbar_pdip(pre.reduced, options);
  if (!outcome.result.optimal() || !exact.optimal()) {
    std::printf("solve failed: %s\n",
                lp::to_string(outcome.result.status).c_str());
    return 1;
  }
  const Vec portions =
      pre.restore(outcome.result.x, problem.num_variables());
  std::printf("\nminimal daily cost: %.3f (exact %.3f, error %.2f%%)\n",
              -outcome.result.objective, -exact.objective,
              100.0 * lp::relative_error(outcome.result.objective,
                                         exact.objective));
  std::printf("portions:");
  for (double portion : portions) std::printf(" %.2f", portion);
  std::printf("\n");

  // Round-trip through the text format (usable with tools/memlp_solve).
  const char* path = "diet_example.lp";
  std::ofstream file(path);
  lp::write_text(file, problem);
  std::printf("\ninstance written to %s — try:  memlp_solve --solver xbar "
              "%s\n",
              path, path);
  return 0;
}
